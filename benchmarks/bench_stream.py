"""Live-stream ingestion benchmark: the full feed-to-labels path.

Writes an R-MAT edit feed (text dialect, ``+ u v`` / ``- u v``) to a
file and drives it through the real ingestion tier — ``FileTailSource``
→ ``RecordParser`` → ``StreamConsumer`` batching → ``Engine.update``
against a warm mutable session — the same code path ``repro stream``
runs in production.  Two gates (with ``--check``):

- **correctness**: the maintained labels after the feed drains must be
  bit-identical (CRC32 over canonical labels) to a from-scratch
  Tarjan run over the same edit sequence applied to a fresh
  ``DeltaCSR``;
- **freshness**: p95 batch age at apply time (how stale an edit is by
  the time it lands in the labels) must stay under
  ``FRESHNESS_P95_CEILING`` seconds, and sustained throughput must
  clear ``EDITS_PER_S_FLOOR`` edits/sec.

Writes a machine-readable ``BENCH_stream.json``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from bench_dynamic import rmat_edges  # noqa: E402  (same edit shape)

#: p95 batch age at apply time must stay under this (seconds).  The
#: consumer's batch_age is 0.05s here, so anything near a second means
#: apply cost — not batching policy — is gating freshness.
FRESHNESS_P95_CEILING = 1.0

#: sustained throughput floor over the whole drain (edits/sec through
#: parse + batch + incremental maintenance), deliberately modest so CI
#: machines under load do not flap.
EDITS_PER_S_FLOOR = 100.0

GRAPH = "wiki"


def make_feed(path, rng, g, num_batches, inserts_per, deletes_per):
    """Write the edit stream as a text-dialect feed file.

    Returns the ordered edit list for the oracle.
    """
    src, dst = g.edge_array()
    edits = []
    with open(path, "w") as f:
        f.write("# bench_stream feed\n")
        for _ in range(num_batches):
            ins_u, ins_v = rmat_edges(rng, g.num_nodes, inserts_per)
            for u, v in zip(ins_u.tolist(), ins_v.tolist()):
                f.write(f"+ {u} {v}\n")
                edits.append(("add", u, v))
            pick = rng.integers(0, src.shape[0], deletes_per)
            for u, v in zip(src[pick].tolist(), dst[pick].tolist()):
                f.write(f"- {u} {v}\n")
                edits.append(("remove", u, v))
        f.write('{"end": true}\n')
    return edits


def oracle_crc(graph_name, scale, edits):
    from repro.core.result import canonical_labels
    from repro.core.tarjan import tarjan_scc
    from repro.generators import generate
    from repro.graph.delta import DeltaCSR
    from repro.ioutil import crc32_chunks

    delta = DeltaCSR(generate(graph_name, scale=scale, seed=None).graph)
    for kind, u, v in edits:
        if kind == "add":
            delta.add_edge(u, v)
        else:
            delta.remove_edge(u, v)
    labels = canonical_labels(tarjan_scc(delta.snapshot()))
    return crc32_chunks(labels.tobytes())


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="smaller graph and stream (CI smoke; stdout-only unless "
        "--out is given)",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help="enforce the gates: labels bit-identical to the "
        "from-scratch oracle, p95 freshness lag <= "
        f"{FRESHNESS_P95_CEILING}s, throughput >= "
        f"{EDITS_PER_S_FLOOR:.0f} edits/s",
    )
    ap.add_argument("--scale", type=float, default=None)
    ap.add_argument("--batches", type=int, default=None)
    ap.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_stream.json next to the "
        "repo root for full runs, stdout-only for --quick)",
    )
    args = ap.parse_args(argv)

    import tempfile

    from repro.engine import Engine
    from repro.ingest.consumer import EngineApplier, StreamConsumer
    from repro.ingest.sources import FileTailSource
    from repro.kernels import backend_info

    scale = args.scale or (0.1 if args.quick else 0.3)
    num_batches = args.batches or (30 if args.quick else 100)
    inserts_per, deletes_per = 8, 4
    rng = np.random.default_rng(2024)

    with Engine(backend="serial") as eng, \
            tempfile.TemporaryDirectory() as tmp:
        session = eng.load(GRAPH, scale=scale, seed=None)
        g = session.graph
        feed = str(Path(tmp) / "feed.txt")
        edits = make_feed(
            feed, rng, g, num_batches, inserts_per, deletes_per
        )

        # warm the pipeline and promote outside the timed region (the
        # one-time promotion pays a full run; the stream gate is about
        # steady state).
        eng.run(session, method="method2")
        t0 = time.perf_counter()
        eng.update(session, [], [])
        promote_s = time.perf_counter() - t0

        source = FileTailSource(feed, follow=False)
        consumer = StreamConsumer(
            source,
            EngineApplier(eng, session),
            batch_edges=inserts_per + deletes_per,
            batch_age=0.05,
        )
        t0 = time.perf_counter()
        stats = consumer.run()
        drain_s = time.perf_counter() - t0
        source.close()

    total_edits = len(edits)
    edits_per_s = stats["records_applied"] / max(drain_s, 1e-12)
    lag = stats["freshness_lag"]
    doc = {
        "benchmark": "stream_ingest",
        "quick": args.quick,
        "kernels": backend_info(),
        "graph": GRAPH,
        "scale": scale,
        "num_nodes": int(g.num_nodes),
        "num_edges": int(g.num_edges),
        "edits_total": total_edits,
        "records_applied": stats["records_applied"],
        "batches": stats["batches"],
        "conflict_flushes": stats["conflict_flushes"],
        "promotion_s": round(promote_s, 6),
        "drain_s": round(drain_s, 6),
        "edits_per_s": round(edits_per_s, 1),
        "freshness_mean_s": round(lag["mean"], 6),
        "freshness_p95_s": round(lag["p95"], 6),
        "freshness_max_s": round(lag["max"], 6),
        "final_version": stats["graph_version"],
        "final_labels_crc32": stats["labels_crc32"],
    }
    print(
        f"{GRAPH}@{scale}: n={g.num_nodes} m={g.num_edges}, "
        f"{total_edits} edits drained in {drain_s * 1e3:.1f} ms "
        f"({stats['batches']} batches)"
    )
    print(
        f"throughput {edits_per_s:8.1f} edits/s   "
        f"freshness mean/p95/max "
        f"{lag['mean'] * 1e3:.1f}/{lag['p95'] * 1e3:.1f}/"
        f"{lag['max'] * 1e3:.1f} ms"
    )

    want = oracle_crc(GRAPH, scale, edits)
    doc["oracle_crc32"] = want
    doc["labels_match_oracle"] = bool(
        stats["labels_crc32"] == want
    )
    checks = {
        "labels_match_oracle": doc["labels_match_oracle"],
        "freshness_p95_s": doc["freshness_p95_s"],
        "freshness_p95_ceiling": FRESHNESS_P95_CEILING,
        "edits_per_s": doc["edits_per_s"],
        "edits_per_s_floor": EDITS_PER_S_FLOOR,
    }
    doc["checks"] = checks
    print(f"checks: {json.dumps(checks, sort_keys=True)}")
    if args.check:
        assert doc["labels_match_oracle"], (
            f"streamed labels diverged from the from-scratch oracle "
            f"(crc {stats['labels_crc32']} != {want})"
        )
        assert lag["p95"] <= FRESHNESS_P95_CEILING, (
            f"p95 freshness lag {lag['p95']:.3f}s over ceiling "
            f"{FRESHNESS_P95_CEILING}s"
        )
        assert edits_per_s >= EDITS_PER_S_FLOOR, (
            f"throughput {edits_per_s:.1f} edits/s under floor "
            f"{EDITS_PER_S_FLOOR:.0f}"
        )

    out = args.out
    if out is None and not args.quick:
        out = str(
            Path(__file__).resolve().parent.parent
            / "BENCH_stream.json"
        )
    if out:
        Path(out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
