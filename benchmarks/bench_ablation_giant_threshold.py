"""Ablation: the giant-SCC threshold and trial budget of phase 1.

Section 3.2: phase 1 transitions to phase 2 "when the giant SCC has
been identified (i.e. an SCC containing, say 1% of the nodes of the
original graph), or after a predefined number of iterations."  This
sweep varies the threshold: too high and phase 1 burns its trial
budget on BFS rounds that can never satisfy it; the 1 % default stops
as soon as the true giant appears.
"""

import pytest

from repro.bench import format_table, run_method, run_tarjan_baseline


def test_giant_threshold_sweep(benchmark, graphs, machine, emit):
    g = graphs("friend").graph  # smallest giant (0.38): thresholds bite

    def run():
        _, t_seq = run_tarjan_baseline(g, machine=machine)
        out = {}
        for threshold in (0.001, 0.01, 0.2, 0.5):
            r = run_method(
                g,
                "method1",
                machine=machine,
                giant_threshold=threshold,
                max_fwbw_trials=5,
            )
            c = r.result.profile.counters
            out[threshold] = (
                int(c["fwbw_trials"]),
                r.result.profile.trace.phase_work()["par_fwbw"],
                t_seq / r.times[32],
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{thr:.3f}", trials, f"{work:.0f}", f"{sp:.2f}"]
        for thr, (trials, work, sp) in out.items()
    ]
    emit(
        format_table(
            ["threshold", "FW-BW trials", "phase-1 work", "speedup @32"],
            rows,
            title="Section 3.2 ablation: giant-SCC threshold (friend, giant=0.38)",
        )
    )
    # an unattainable threshold (0.5 > giant fraction) burns the budget
    assert out[0.5][0] == 5
    # the paper's 1% stops promptly
    assert out[0.01][0] <= 3
    # thresholds below the giant's size all find the same giant: the
    # speedup is threshold-insensitive in the sane range
    assert abs(out[0.001][2] - out[0.01][2]) < 0.5