"""Shared fixtures for the figure/table benchmarks.

Every bench target prints the rows/series of the paper artifact it
regenerates (visible with ``pytest benchmarks/ --benchmark-only``),
and wraps its computation in the pytest-benchmark fixture so wall
times are recorded alongside.

``REPRO_SCALE`` scales the surrogate sizes (default 1.0 — the sizes
the structural calibrations were done at).
"""

from __future__ import annotations

import pytest

from repro.generators import generate, scale_from_env
from repro.runtime import Machine


@pytest.fixture(scope="session")
def machine() -> Machine:
    """The paper's 2-socket / 16-core / 32-thread machine model."""
    return Machine()


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return scale_from_env(default=1.0)


@pytest.fixture(scope="session")
def graphs(bench_scale):
    """Lazily generated surrogate cache shared across bench files."""
    cache = {}

    def get(name: str, scale: float | None = None):
        key = (name, scale)
        if key not in cache:
            cache[key] = generate(
                name, scale=bench_scale if scale is None else scale
            )
        return cache[key]

    return get


@pytest.fixture()
def emit(capsys):
    """Print a table straight to the terminal, bypassing capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _emit
