"""Phase-2 tail ablation: per-pivot vs batched multi-source FW-BW.

Reconstructs the workload the batched kernel exists for — the
"small-task storm" Recur-FWBW faces after phase 1 peels the giant SCC
from an R-MAT graph: Par-FWBW (no trim, so the tail survives into
phase 2) followed by Par-WCC leaves thousands of tiny independent
colour partitions.  Each cell drains that queue through the serial
driver, per-pivot vs ``--phase2-batch``, under each kernel backend
(``numpy`` reference tier, and the ``numba`` slot — the tuned
fastpath tier when numba itself is not importable).  Every compared
cell asserts bit-identical labels and an identical task trace before
reporting any timing; ``--check`` additionally gates the batched
speedup on the numba tier.  Writes a machine-readable
``BENCH_phase2.json``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

import numpy as np

#: with --check, batched must clear this multiple of the per-pivot
#: drain on the numba tier (fastpath when numba is absent).
SPEEDUP_FLOOR = 5.0


def tail_workload(scale, seed):
    """Fresh state + phase-2 queue for the R-MAT tail storm.

    Returns ``(state, items)`` where ``items`` is the
    ``[(color, nodes)]`` queue Par-WCC hands to Recur-FWBW after the
    giant SCC is gone.  Built fresh per cell so every drain starts
    from bit-identical state (same seed -> same pivot draws).
    """
    from repro.core import SCCState
    from repro.core.parfwbw import par_fwbw
    from repro.core.wcc import par_wcc
    from repro.generators import rmat_graph

    g = rmat_graph(scale, 8.0, rng=42)
    state = SCCState(g, seed=seed)
    par_fwbw(state, 0, giant_threshold=0.01, max_trials=5)
    return state, par_wcc(state)


def drain(scale, seed, *, batch):
    """Time one serial phase-2 drain; return (state, row)."""
    from repro.core.recurfwbw import run_recur_phase

    state, items = tail_workload(scale, seed)
    t0 = time.perf_counter()
    tasks = run_recur_phase(
        state, items, backend="serial", phase2_batch=batch
    )
    wall = time.perf_counter() - t0
    row = {
        "tasks": tasks,
        "queue_items": len(items),
        "wall_s": round(wall, 6),
        "batches": int(
            state.profile.counters.get("phase2_batches", 0)
        ),
    }
    return state, row


def identical(a, b):
    """Bit-identical outcome: labels and the full task trace."""
    if not np.array_equal(a.labels, b.labels):
        return False
    ra, rb = a.trace.records, b.trace.records
    return len(ra) == len(rb) and all(
        x == y for x, y in zip(ra, rb)
    )


def bench_tier(backend, scale, seed, repeats):
    """One backend tier: per-pivot vs batched, best-of-``repeats``."""
    from repro.kernels import use_backend

    with use_backend(backend):
        base_state = per_pivot = batched = None
        for _ in range(repeats):
            s, row = drain(scale, seed, batch=False)
            if per_pivot is None or row["wall_s"] < per_pivot["wall_s"]:
                base_state, per_pivot = s, row
            s, row = drain(scale, seed, batch=True)
            if batched is None or row["wall_s"] < batched["wall_s"]:
                batch_state, batched = s, row
    same = identical(base_state, batch_state)
    assert same, f"{backend}: batched drain diverged from per-pivot"
    assert per_pivot["tasks"] == batched["tasks"]
    return {
        "per_pivot": per_pivot,
        "batched": batched,
        "outputs_identical": same,
        "speedup": round(
            per_pivot["wall_s"] / max(batched["wall_s"], 1e-9), 3
        ),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="smaller R-MAT and one repeat (CI smoke; stdout-only "
        "unless --out is given)",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help="enforce the acceptance gate: batched >= "
        f"{SPEEDUP_FLOOR}x per-pivot on the numba tier, and "
        "bit-identical outputs everywhere (outputs are asserted "
        "even without --check)",
    )
    ap.add_argument(
        "--scale",
        type=int,
        default=None,
        help="R-MAT scale (default 14, 12 with --quick)",
    )
    ap.add_argument("--seed", type=int, default=123)
    ap.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats per cell, best kept (default 3, 1 quick)",
    )
    ap.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_phase2.json next to the "
        "repo root for full runs, stdout-only for --quick)",
    )
    args = ap.parse_args(argv)

    from repro.kernels import backend_info

    scale = args.scale or (12 if args.quick else 14)
    repeats = args.repeats or (1 if args.quick else 3)
    info = backend_info()

    doc = {
        "benchmark": "phase2_multisource",
        "quick": args.quick,
        "kernels": info,
        "rmat_scale": scale,
        "seed": args.seed,
        "repeats": repeats,
        "tiers": {},
    }
    for backend in ("numpy", "numba"):
        tier = bench_tier(backend, scale, args.seed, repeats)
        doc["tiers"][backend] = tier
        resolved = (
            info["resolved"] if backend == "numba" else backend
        )
        print(
            f"{backend:>6} (-> {resolved}): per-pivot "
            f"{tier['per_pivot']['wall_s'] * 1e3:7.1f} ms  batched "
            f"{tier['batched']['wall_s'] * 1e3:7.1f} ms  "
            f"({tier['batched']['batches']} batches)  "
            f"speedup {tier['speedup']:.2f}x  identical="
            f"{tier['outputs_identical']}"
        )

    gate = doc["tiers"]["numba"]["speedup"]
    doc["checks"] = {
        "speedup_floor": SPEEDUP_FLOOR,
        "numba_tier_speedup": gate,
        "speedup_gate": "enforced" if args.check else "reported",
    }
    if args.check:
        assert gate >= SPEEDUP_FLOOR, (
            f"batched phase-2 drain below floor: {gate:.2f}x on the "
            f"numba tier (need >= {SPEEDUP_FLOOR}x)"
        )
    print(f"checks: {json.dumps(doc['checks'], sort_keys=True)}")

    out = args.out
    if out is None and not args.quick:
        out = str(
            Path(__file__).resolve().parent.parent
            / "BENCH_phase2.json"
        )
    if out:
        Path(out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
