"""Extension bench: the paper's future work — distributed FW-BW-Trim.

Section 6: "we plan to implement our algorithm in a distributed
environment."  This bench runs the BSP implementation
(`repro.distributed`) and reports:

* rank-scaling of distributed Method 1 (+WCC) on a small-world graph
  and on the road network,
* the communication/computation split,
* the partitioner comparison (block / hash / BFS-locality edge cuts).

Expected shapes: small-world graphs scale sub-linearly and hit a
communication floor (their edge cut resists every partitioner); the
road network partitions beautifully (tiny cut) but is *latency-bound*
across hundreds of supersteps — the distributed mirror of the
shared-memory barrier pathology of Figure 6(i).
"""

import pytest

from repro.bench import format_table
from repro.core import strongly_connected_components, same_partition
from repro.distributed import (
    Cluster,
    bfs_partition,
    block_partition,
    distributed_method1,
    edge_cut,
    hash_partition,
)

RANKS = (1, 2, 4, 8, 16)


@pytest.mark.parametrize("name", ["livej", "ca-road"])
def test_distributed_scaling(benchmark, graphs, emit, name):
    g = graphs(name).graph
    tarjan = strongly_connected_components(g, "tarjan")

    def run():
        cluster = Cluster()
        out = {}
        for ranks in RANKS:
            part = bfs_partition(g, ranks)
            res = distributed_method1(g, part)
            assert same_partition(res.labels, tarjan.labels)
            out[ranks] = (cluster.simulate(res.dtrace), res)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    base = results[1][0].total_time
    rows = [
        [
            ranks,
            f"{base / sim.total_time:.2f}",
            f"{sim.comm_fraction:.2f}",
            len(res.dtrace.steps),
            f"{res.dtrace.total_messages():.0f}",
        ]
        for ranks, (sim, res) in results.items()
    ]
    emit(
        format_table(
            ["ranks", "speedup", "comm frac", "supersteps", "messages"],
            rows,
            title=f"[{name}] distributed Method 1 (+WCC), BFS partition",
        )
    )
    if name == "livej":
        # scales, but communication-floored
        assert results[16][0].total_time < results[1][0].total_time
        assert results[16][0].comm_fraction > 0.4
    else:
        # latency-bound: hundreds of supersteps, no scaling
        assert len(results[16][1].dtrace.steps) > 300
        assert results[16][0].total_time > results[1][0].total_time


def test_partitioner_comparison(benchmark, graphs, emit):
    def run():
        out = {}
        for name in ("livej", "ca-road"):
            g = graphs(name).graph
            out[name] = {
                "block": edge_cut(g, block_partition(g.num_nodes, 8)),
                "hash": edge_cut(g, hash_partition(g.num_nodes, 8, rng=0)),
                "bfs": edge_cut(g, bfs_partition(g, 8)),
                "edges": g.num_edges,
            }
        return out

    cuts = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            name,
            d["edges"],
            d["block"],
            d["hash"],
            d["bfs"],
            f"{d['bfs'] / d['edges']:.2%}",
        ]
        for name, d in cuts.items()
    ]
    emit(
        format_table(
            ["graph", "edges", "block cut", "hash cut", "bfs cut", "bfs cut %"],
            rows,
            title="8-rank edge cuts by partitioner",
        )
    )
    # the road network partitions well; the small-world graph does not
    assert cuts["ca-road"]["bfs"] < cuts["ca-road"]["hash"] / 4
    assert cuts["livej"]["bfs"] > cuts["livej"]["edges"] * 0.3
