"""Figure 6: speedup vs. Tarjan for all nine graphs.

One panel per dataset: Baseline / Method 1 / Method 2 speedups over
the simulated thread sweep {1, 2, 4, 8, 16, 32}.  Every partition is
verified against Tarjan's before being timed.  The closing summary
reports the paper's headline statistics: the per-graph 32-thread
range and the geometric mean over the small-world graphs (paper:
5.01x–29.41x, geomean 14.05x).
"""

import numpy as np
import pytest

from repro.bench import format_speedup_table, speedup_series
from repro.generators import dataset_names
from repro.runtime import STANDARD_THREAD_COUNTS

_collected: dict[str, dict[str, dict[int, float]]] = {}


@pytest.mark.parametrize("name", dataset_names())
def test_fig6_panel(benchmark, graphs, machine, emit, name):
    g = graphs(name).graph

    def run():
        return speedup_series(g, machine=machine)

    series, _runs = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_speedup_table(name, STANDARD_THREAD_COUNTS, series))
    from repro.bench import ascii_chart

    emit(
        ascii_chart(
            {s.method: s.speedups for s in series},
            STANDARD_THREAD_COUNTS,
            title=f"Figure 6 ({name})",
            y_label="speedup vs. Tarjan",
        )
    )
    _collected[name] = {
        s.method: dict(zip(s.threads, s.speedups)) for s in series
    }
    # the universal shapes
    m1 = _collected[name]["method1"]
    m2 = _collected[name]["method2"]
    base = _collected[name]["baseline"]
    if name not in ("patents",):  # patents: all methods ~= trim
        assert base[32] < m2[32] + 1e-9
    if name not in ("ca-road",):
        assert m2[32] >= m1[32] * 0.95  # method2 never clearly worse


def test_fig6_summary(benchmark, emit):
    """Headline numbers over the panels already computed."""
    if len(_collected) < 9:
        pytest.skip("panel benches did not run")

    def summarize():
        small_world = [
            n for n in _collected if n != "ca-road"
        ]
        at32 = {n: _collected[n]["method2"][32] for n in small_world}
        geo = float(np.exp(np.mean(np.log(list(at32.values())))))
        return at32, geo

    at32, geo = benchmark.pedantic(summarize, rounds=1, iterations=1)
    lines = [
        f"method2 @32 threads: min={min(at32.values()):.2f} "
        f"({min(at32, key=at32.get)}), max={max(at32.values()):.2f} "
        f"({max(at32, key=at32.get)})",
        f"geometric mean (small-world graphs): {geo:.2f}  [paper: 14.05]",
    ]
    emit("\n".join(lines))
    assert 8.0 < geo < 22.0
    assert max(at32.values()) > 15.0
