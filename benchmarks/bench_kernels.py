"""Kernel micro-benchmarks: real wall-clock timing of the vectorized
building blocks (frontier expansion, BFS, trim sweep, WCC round,
direction-optimizing BFS edge savings)."""

import numpy as np
import pytest

from repro.core import SCCState, par_trim, par_wcc
from repro.traversal import (
    bfs_mask,
    direction_optimizing_bfs,
    expand_frontier,
)


@pytest.fixture(scope="module")
def graph():
    from repro.generators import generate

    return generate("twitter", scale=0.5).graph


def test_kernel_frontier_expansion(benchmark, graph):
    rng = np.random.default_rng(0)
    frontier = np.unique(rng.integers(0, graph.num_nodes, 5000))
    targets = benchmark(
        expand_frontier, graph.indptr, graph.indices, frontier
    )
    assert targets.size > 0


def test_kernel_bfs_full(benchmark, graph):
    # pivot inside the giant SCC: full-graph-scale BFS
    pivot = int(np.argmax(graph.out_degrees()))

    def run():
        return bfs_mask(graph, pivot)

    mask, res = benchmark(run)
    assert mask.sum() > graph.num_nodes * 0.5
    assert res.levels < 20  # small-world


def test_kernel_dobfs_scans_fewer_edges(benchmark, graph):
    pivot = int(np.argmax(graph.out_degrees()))

    def run():
        return direction_optimizing_bfs(graph, pivot, alpha=8.0)

    mask, res = benchmark.pedantic(run, rounds=1, iterations=1)
    _, plain = bfs_mask(graph, pivot)
    assert res.edges_scanned < plain.edges_scanned

def test_kernel_trim_sweep(benchmark, graph):
    def run():
        state = SCCState(graph)
        return par_trim(state)

    trimmed = benchmark(run)
    assert trimmed > 0


def test_kernel_wcc(benchmark, graph):
    def run():
        state = SCCState(graph)
        return par_wcc(state)

    items = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(items) >= 1
