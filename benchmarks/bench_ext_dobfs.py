"""Extension bench: direction-optimizing BFS in the Par-FWBW phase.

Section 4.2 notes that post-Graph500 BFS improvements "may improve our
performance results even further"; Beamer et al.'s direction
optimization is the canonical one.  This bench runs Method 2 with the
level-synchronous kernel vs. the hybrid kernel and reports the
forward-pass work and the end-to-end simulated speedup.

The measured finding (worth the bench): at the surrogates' average
degree (~4-8) the bottom-up sweeps do NOT pay — every unvisited node
rescans its reverse row each level and the early exits are too shallow.
On a dense heavy-tailed graph (average degree ~24, where Beamer et al.
report their wins) the hybrid kernel cuts the forward-pass work
substantially.  Direction optimization is a density play, not a free
lunch — consistent with the original paper's decision to cite it as
future improvement rather than adopt it outright.
"""

import pytest

from repro.bench import format_table, run_method, run_tarjan_baseline
from repro.core import SCCState, par_fwbw
from repro.generators import rmat_graph


@pytest.mark.parametrize("name", ["twitter", "orkut"])
def test_dobfs_on_surrogates(benchmark, graphs, machine, emit, name):
    g = graphs(name).graph

    def run():
        _, t_seq = run_tarjan_baseline(g, machine=machine)
        out = {}
        for kernel in ("level", "dobfs"):
            r = run_method(
                g, "method2", machine=machine, bfs_kernel=kernel
            )
            out[kernel] = (
                r.result.profile.trace.phase_work()["par_fwbw"],
                t_seq / r.times[32],
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [kernel, f"{work:.0f}", f"{sp:.2f}"]
        for kernel, (work, sp) in out.items()
    ]
    emit(
        format_table(
            ["BFS kernel", "par_fwbw work", "method2 speedup @32"],
            rows,
            title=f"[{name}] direction-optimizing BFS in Par-FWBW "
            "(sparse surrogate: no win expected)",
        )
    )
    # at these densities the kernels stay within ~35% of each other
    ratio = out["dobfs"][0] / out["level"][0]
    assert 0.6 < ratio < 1.35


def test_dobfs_wins_on_dense_graph(benchmark, machine, emit):
    g = rmat_graph(13, 24.0, rng=11)  # avg degree ~24, heavy-tailed

    def run():
        out = {}
        for kernel in ("level", "dobfs"):
            s = SCCState(g, seed=0)
            par_fwbw(s, 0, bfs_kernel=kernel, pivot_strategy="maxdegree")
            out[kernel] = s.trace.phase_work()["par_fwbw"]
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["BFS kernel", "par_fwbw work"],
            [[k, f"{w:.0f}"] for k, w in out.items()],
            title="dense R-MAT (avg deg ~24): direction optimization pays",
        )
    )
    assert out["dobfs"] < out["level"]
