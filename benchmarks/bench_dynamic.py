"""Streaming-update benchmark: incremental SCC maintenance vs full
recompute.

Drives a sustained R-MAT edge-update stream (skewed endpoints, the
small-world shape the paper targets) through ``Engine.update`` against
a warm mutable session, and compares the mean per-batch update cost to
the cost of one warm full Method-2 recompute of the same graph.  The
incremental maintainer only ever touches the affected region, so a
batch must come in far below a recompute — ``--check`` gates sustained
update cost at <= 20% of recompute cost, and always verifies the final
maintained labels are bit-identical to a from-scratch application of
every edit.  Writes a machine-readable ``BENCH_dynamic.json``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

#: sustained (mean) update-batch cost must stay below this fraction of
#: one warm full recompute (with --check).
UPDATE_COST_CEILING = 0.20

GRAPH = "wiki"


def rmat_edges(rng, n, k, a=0.57, b=0.19, c=0.19):
    """``k`` R-MAT-distributed (src, dst) pairs over ``0..n-1``.

    Standard recursive-matrix quadrant descent (Chakrabarti et al.);
    the skew concentrates updates on hub nodes, the worst case for an
    incremental maintainer because hubs sit in the giant SCC.
    """
    bits = max(1, int(np.ceil(np.log2(max(2, n)))))
    src = np.zeros(k, dtype=np.int64)
    dst = np.zeros(k, dtype=np.int64)
    for _ in range(bits):
        r = rng.random(k)
        down = (r >= a + b).astype(np.int64)  # bottom half (src bit 1)
        right = (
            ((r >= a) & (r < a + b)) | (r >= a + b + c)
        ).astype(np.int64)  # right half (dst bit 1)
        src = src * 2 + down
        dst = dst * 2 + right
    return src % n, dst % n


def make_stream(rng, g, num_batches, inserts_per, deletes_per):
    """R-MAT insert batches plus deletes sampled from live edges."""
    src, dst = g.edge_array()
    batches = []
    for _ in range(num_batches):
        ins_u, ins_v = rmat_edges(rng, g.num_nodes, inserts_per)
        pick = rng.integers(0, src.shape[0], deletes_per)
        batches.append(
            (
                list(zip(ins_u.tolist(), ins_v.tolist())),
                list(zip(src[pick].tolist(), dst[pick].tolist())),
            )
        )
    return batches


def oracle_crc(graph_name, scale, batches):
    from repro.core.result import canonical_labels
    from repro.core.tarjan import tarjan_scc
    from repro.generators import generate
    from repro.graph.delta import DeltaCSR
    from repro.ioutil import crc32_chunks

    delta = DeltaCSR(generate(graph_name, scale=scale, seed=None).graph)
    for ins, dels in batches:
        for u, v in ins:
            delta.add_edge(u, v)
        for u, v in dels:
            delta.remove_edge(u, v)
    labels = canonical_labels(tarjan_scc(delta.snapshot()))
    return crc32_chunks(labels.tobytes())


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="smaller graph and stream (CI smoke; stdout-only unless "
        "--out is given)",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help="enforce the acceptance gate: sustained update cost <= "
        f"{UPDATE_COST_CEILING:.0%} of one warm full recompute, and "
        "final labels bit-identical to a from-scratch application",
    )
    ap.add_argument("--scale", type=float, default=None)
    ap.add_argument("--batches", type=int, default=None)
    ap.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_dynamic.json next to the "
        "repo root for full runs, stdout-only for --quick)",
    )
    args = ap.parse_args(argv)

    from repro.engine import Engine
    from repro.kernels import backend_info

    scale = args.scale or (0.1 if args.quick else 0.3)
    num_batches = args.batches or (30 if args.quick else 100)
    inserts_per, deletes_per = 8, 4
    rng = np.random.default_rng(2024)

    with Engine(backend="serial") as eng:
        session = eng.load(GRAPH, scale=scale, seed=None)
        g = session.graph
        batches = make_stream(
            rng, g, num_batches, inserts_per, deletes_per
        )

        # warm full-recompute baseline (median of 3 warm runs)
        eng.run(session, method="method2")  # warm the pipeline
        recompute_times = []
        for _ in range(3):
            t0 = time.perf_counter()
            eng.run(session, method="method2")
            recompute_times.append(time.perf_counter() - t0)
        recompute_s = float(np.median(recompute_times))

        # promote to a mutable session outside the timed region (the
        # one-time promotion pays a full run; steady state is what the
        # gate is about), then drive the sustained stream.
        promote = batches[0]
        t0 = time.perf_counter()
        eng.update(session, promote[0], promote[1])
        promote_s = time.perf_counter() - t0
        batch_times = []
        for ins, dels in batches[1:]:
            t0 = time.perf_counter()
            report = eng.update(session, ins, dels)
            batch_times.append(time.perf_counter() - t0)
        mean_batch_s = float(np.mean(batch_times))
        p95_batch_s = float(np.percentile(batch_times, 95))
        final_crc = report.labels_crc32
        version = report.version
        stats = report.stats

    total_edits = num_batches * (inserts_per + deletes_per)
    ratio = mean_batch_s / max(recompute_s, 1e-12)
    doc = {
        "benchmark": "dynamic_scc",
        "quick": args.quick,
        "kernels": backend_info(),
        "graph": GRAPH,
        "scale": scale,
        "num_nodes": int(g.num_nodes),
        "num_edges": int(g.num_edges),
        "batches": num_batches,
        "edits_total": total_edits,
        "recompute_s": round(recompute_s, 6),
        "promotion_s": round(promote_s, 6),
        "mean_batch_s": round(mean_batch_s, 6),
        "p95_batch_s": round(p95_batch_s, 6),
        "update_vs_recompute": round(ratio, 4),
        "updates_per_s": round(
            (inserts_per + deletes_per) / mean_batch_s, 1
        ),
        "final_version": version,
        "final_labels_crc32": final_crc,
        "taxonomy": stats,
    }
    print(
        f"{GRAPH}@{scale}: n={g.num_nodes} m={g.num_edges}, "
        f"{total_edits} edits in {num_batches} batches"
    )
    print(
        f"recompute {recompute_s * 1e3:8.1f} ms   "
        f"update batch mean {mean_batch_s * 1e3:8.2f} ms "
        f"(p95 {p95_batch_s * 1e3:.2f} ms)   "
        f"ratio {ratio:.3f}"
    )
    print(f"taxonomy: {json.dumps(stats, sort_keys=True)}")

    want = oracle_crc(GRAPH, scale, batches)
    doc["oracle_crc32"] = want
    doc["labels_match_oracle"] = bool(final_crc == want)
    checks = {
        "update_cost_ratio": round(ratio, 4),
        "update_cost_ceiling": UPDATE_COST_CEILING,
        "labels_match_oracle": doc["labels_match_oracle"],
    }
    doc["checks"] = checks
    print(f"checks: {json.dumps(checks, sort_keys=True)}")
    if args.check:
        assert doc["labels_match_oracle"], (
            f"maintained labels diverged from the from-scratch oracle "
            f"(crc {final_crc} != {want})"
        )
        assert ratio <= UPDATE_COST_CEILING, (
            f"sustained update cost is {ratio:.1%} of a full "
            f"recompute (ceiling {UPDATE_COST_CEILING:.0%})"
        )

    out = args.out
    if out is None and not args.quick:
        out = str(
            Path(__file__).resolve().parent.parent
            / "BENCH_dynamic.json"
        )
    if out:
        Path(out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
