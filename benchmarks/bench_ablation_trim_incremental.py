"""Ablation: incremental trim vs. Algorithm 4's full rescan.

Algorithm 4 as printed rescans every remaining node each iteration;
the production implementation computes effective degrees once and
maintains them incrementally as nodes are trimmed (DESIGN.md §5).
Both produce identical marks (property-tested); this bench quantifies
the work gap on the graph classes where it matters — deep trim
cascades (the citation DAG trims in long dependency chains) vs. the
shallow two-round cascades of social graphs.
"""

import pytest

from repro.bench import format_table
from repro.core import SCCState, par_trim, par_trim_rescan


@pytest.mark.parametrize("name", ["patents", "livej", "ca-road"])
def test_trim_incremental_ablation(benchmark, graphs, emit, name):
    g = graphs(name).graph

    def run():
        out = {}
        for label, fn in (("incremental", par_trim), ("rescan", par_trim_rescan)):
            s = SCCState(g)
            trimmed = fn(s)
            out[label] = (
                trimmed,
                s.trace.total_work(),
                int(s.profile.counters["trim_iterations"]),
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, trimmed, f"{work:.0f}", iters]
        for label, (trimmed, work, iters) in out.items()
    ]
    emit(
        format_table(
            ["variant", "trimmed", "recorded work", "iterations"],
            rows,
            title=f"[{name}] Par-Trim: incremental vs. Algorithm 4 rescan",
        )
    )
    inc, res = out["incremental"], out["rescan"]
    assert inc[0] == res[0]  # identical trim sets
    assert inc[1] <= res[1]  # incremental never does more work
    if inc[2] > 3:  # deep cascades: the gap is material
        assert res[1] > 1.5 * inc[1]
