"""Ablation: WCC pointer jumping vs. the paper's convergence behaviour.

Section 5 attributes Method 2's CA-road loss partly to Par-WCC: "the
algorithm requires a large number of iterations for convergence when
applied on non-small-world graphs."  Our default Par-WCC adds a
pointer-jumping compress round, converging in O(log d) rounds — an
implementation improvement over the published behaviour (EXPERIMENTS.md
notes the resulting deviation).  This bench quantifies both variants
on CA-road and on a small-world graph, where compression barely
matters because d is already tiny.
"""

from repro.bench import format_table, run_method


def compute(graphs, machine):
    out = {}
    for name in ("ca-road", "livej"):
        g = graphs(name).graph
        for compress in (True, False):
            run = run_method(
                g, "method2", machine=machine, wcc_compress=compress
            )
            out[(name, compress)] = run
    return out


def test_wcc_compress_ablation(benchmark, graphs, machine, emit):
    out = benchmark.pedantic(
        compute, args=(graphs, machine), rounds=1, iterations=1
    )
    rows = []
    for (name, compress), run in out.items():
        c = run.result.profile.counters
        rows.append(
            [
                name,
                "jump" if compress else "hook-only",
                int(c["wcc_iterations"]),
                f"{run.phase_times[1].get('par_wcc', 0.0):.0f}",
                f"{run.times[32]:.0f}",
            ]
        )
    emit(
        format_table(
            ["dataset", "WCC variant", "iters", "WCC work", "total @p=32"],
            rows,
            title="Ablation: WCC pointer jumping (compress) vs. hook-only",
        )
    )
    # On the high-diameter road graph, hook-only needs far more rounds…
    assert (
        out[("ca-road", False)].result.profile.counters["wcc_iterations"]
        > 2 * out[("ca-road", True)].result.profile.counters["wcc_iterations"]
    )
    # …while on a small-world graph the difference is modest.
    assert (
        out[("livej", False)].result.profile.counters["wcc_iterations"]
        <= 4 * out[("livej", True)].result.profile.counters["wcc_iterations"]
    )
