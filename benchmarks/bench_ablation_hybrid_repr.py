"""Section 4.1 ablation: hybrid set+colour representation vs. colour
scans for phase-2 pivot selection.

The paper: "Our experiments revealed that such a hybrid approach
resulted in ~10x better performance than using one representation
only."  We run Method 2's recursive phase with both representations
and compare the simulated phase time (the scan variant pays an O(N)
sweep per task) and the measured wall time.
"""

import time

from repro.bench import format_table, run_method
from repro.runtime import STANDARD_THREAD_COUNTS


def compute(graphs, machine):
    g = graphs("flickr").graph
    out = {}
    for repr_name in ("hybrid", "scan"):
        t0 = time.perf_counter()
        run = run_method(
            g, "method2", machine=machine, pivot_repr=repr_name
        )
        wall = time.perf_counter() - t0
        out[repr_name] = (run, wall)
    return out


def test_hybrid_representation_ablation(benchmark, graphs, machine, emit):
    out = benchmark.pedantic(
        compute, args=(graphs, machine), rounds=1, iterations=1
    )
    rows = []
    for name, (run, wall) in out.items():
        rows.append(
            [
                name,
                f"{run.phase_times[1]['recur_fwbw']:.0f}",
                f"{run.phase_times[32]['recur_fwbw']:.0f}",
                f"{wall:.3f}s",
            ]
        )
    emit(
        format_table(
            ["pivot repr", "recur @p=1 (units)", "recur @p=32", "wall"],
            rows,
            title="Section 4.1 ablation: hybrid vs. scan partition representation",
        )
    )
    hybrid_run, _ = out["hybrid"]
    scan_run, _ = out["scan"]
    ratio = (
        scan_run.phase_times[1]["recur_fwbw"]
        / hybrid_run.phase_times[1]["recur_fwbw"]
    )
    emit(f"scan/hybrid recursive-phase work ratio: {ratio:.1f}x (paper: ~10x)")
    assert ratio > 4.0  # order-of-magnitude class gap
