"""Integrity-tier overhead benchmark: what "trust but verify" costs.

Serves the same warm request stream through two in-process
:class:`~repro.service.server.SCCService` instances — the control arm
with checksums and auditing off, the guarded arm with block-CRC
sidecars on and the background auditor sampling at 5% — and compares
mean warm latency.  Also prices result certification per level as
information (certification is per-request opt-in, not standing
overhead).  Writes ``BENCH_integrity.json``; with ``--check`` the run
fails unless the guarded arm stays within the 5% overhead budget the
roadmap promises.
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

#: the acceptance gate: checksums + 5% audit sampling may cost at most
#: this fraction of warm serving latency.
OVERHEAD_BUDGET = 0.05


def serve_stream(cfg_kwargs, requests, *, warmup):
    """Mean warm-request latency through one service instance."""
    from repro.service.server import SCCService, ServiceConfig

    walls = []
    with SCCService(ServiceConfig(**cfg_kwargs)) as svc:
        for req in requests[:warmup]:
            resp = svc.handle(req)
            assert resp["ok"], resp
        for req in requests:
            t0 = time.perf_counter()
            resp = svc.handle(req)
            walls.append(time.perf_counter() - t0)
            assert resp["ok"], resp
        if svc.auditor is not None:
            svc.auditor.drain(timeout=60)
            audit = svc.auditor.to_dict()
        else:
            audit = None
        stats = svc.stats()
    walls.sort()
    return {
        "requests": len(walls),
        "mean_wall_s": round(sum(walls) / len(walls), 6),
        "p50_wall_s": round(walls[len(walls) // 2], 6),
        "p95_wall_s": round(walls[int(len(walls) * 0.95)], 6),
        "audit": audit,
        "integrity": stats["integrity"],
    }


def bench_certify(graph, scale, seed):
    """Per-level certification cost over one method2 result."""
    from repro.engine import Engine
    from repro.integrity import CERTIFY_LEVELS, certify_result

    rows = {}
    with Engine(backend="serial", canonical=True) as eng:
        sess = eng.load(graph, scale=scale)
        result = eng.run(sess, method="method2", seed=seed)
        for level in CERTIFY_LEVELS:
            t0 = time.perf_counter()
            cert = certify_result(
                sess.graph, result.labels, level=level, seed=seed
            )
            rows[level] = {
                "wall_s": round(time.perf_counter() - t0, 6),
                "ok": cert["ok"],
            }
    return rows


def main(argv=None) -> int:
    from repro.kernels import backend_info

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="smaller graph, fewer requests (CI smoke; stdout-only "
        "unless --out is given)",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help=f"fail unless overhead <= {OVERHEAD_BUDGET:.0%}",
    )
    ap.add_argument("--graph", default="wiki")
    ap.add_argument("--scale", type=float, default=None)
    ap.add_argument("--requests", type=int, default=None)
    ap.add_argument("--audit-rate", type=float, default=0.05)
    ap.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_integrity.json at the repo "
        "root for full runs, stdout-only for --quick)",
    )
    args = ap.parse_args(argv)

    scale = args.scale or (0.1 if args.quick else 0.4)
    n_requests = args.requests or (20 if args.quick else 60)
    requests = [
        {
            "op": "run",
            "graph": args.graph,
            "scale": scale,
            "id": str(i),
        }
        for i in range(n_requests)
    ]
    common = {"backend": "serial"}

    arms = {
        "unguarded": dict(
            common, checksums=False, audit_rate=0.0
        ),
        "guarded": dict(
            common, checksums=True, audit_rate=args.audit_rate
        ),
    }
    doc = {
        "benchmark": "integrity_overhead",
        "quick": args.quick,
        "graph": args.graph,
        "scale": scale,
        "audit_rate": args.audit_rate,
        "budget": OVERHEAD_BUDGET,
        "kernels": backend_info(),
        "arms": {},
    }
    for name, cfg in arms.items():
        row = serve_stream(cfg, requests, warmup=3)
        doc["arms"][name] = row
        print(
            f"{name:>10s}: mean {row['mean_wall_s']*1e3:8.2f} ms  "
            f"p50 {row['p50_wall_s']*1e3:8.2f} ms  "
            f"p95 {row['p95_wall_s']*1e3:8.2f} ms  "
            f"x{row['requests']}"
        )

    base = doc["arms"]["unguarded"]["mean_wall_s"]
    cost = doc["arms"]["guarded"]["mean_wall_s"]
    overhead = (cost - base) / base
    doc["overhead_frac"] = round(overhead, 4)
    guarded = doc["arms"]["guarded"]
    assert guarded["integrity"]["checksums"] is True
    assert guarded["integrity"]["verifications"] > 0, (
        "guarded arm never verified a sidecar — the benchmark is not "
        "measuring the integrity tier"
    )
    print(
        f"integrity overhead: {overhead:+.2%} of warm serving latency "
        f"(checksums on, audit_rate={args.audit_rate})"
    )

    doc["certify"] = bench_certify(args.graph, scale, seed=0)
    for level, row in doc["certify"].items():
        print(
            f"certify[{level:>6s}]: {row['wall_s']*1e3:8.2f} ms  "
            f"ok={row['ok']}"
        )

    out = args.out
    if out is None and not args.quick:
        out = str(
            Path(__file__).resolve().parent.parent
            / "BENCH_integrity.json"
        )
    if out:
        Path(out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {out}")

    if args.check and overhead > OVERHEAD_BUDGET:
        print(
            f"FAIL: overhead {overhead:.2%} exceeds the "
            f"{OVERHEAD_BUDGET:.0%} budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
