"""Ablation: pivot selection strategy for the giant-SCC hunt.

The paper picks a random node (Algorithm 5).  A max-degree pivot is a
folklore improvement: hubs of a scale-free graph are almost surely in
the giant SCC, so phase 1 finds it on the first trial instead of
burning BFS rounds on peripheral pivots.  This bench measures trials
and phase-1 work for both strategies across seeds.
"""

import numpy as np

from repro.bench import format_table
from repro.core import strongly_connected_components


def compute(graphs):
    g = graphs("friend").graph  # smallest giant fraction => random pivots miss
    out = {}
    for strategy in ("random", "maxdegree"):
        trials = []
        work = []
        for seed in range(8):
            r = strongly_connected_components(
                g, "method1", seed=seed, pivot_strategy=strategy
            )
            trials.append(r.profile.counters["fwbw_trials"])
            work.append(r.profile.trace.phase_work()["par_fwbw"])
        out[strategy] = (np.mean(trials), np.mean(work))
    return out


def test_pivot_strategy_ablation(benchmark, graphs, emit):
    out = benchmark.pedantic(
        compute, args=(graphs,), rounds=1, iterations=1
    )
    rows = [
        [name, f"{trials:.2f}", f"{work:.0f}"]
        for name, (trials, work) in out.items()
    ]
    emit(
        format_table(
            ["pivot strategy", "mean FW-BW trials", "mean phase-1 work"],
            rows,
            title="Ablation: pivot selection for the giant-SCC hunt (friend, 8 seeds)",
        )
    )
    assert out["maxdegree"][0] == 1.0  # hub is always in the giant
    assert out["maxdegree"][0] <= out["random"][0]
