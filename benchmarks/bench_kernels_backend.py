"""Backend-vs-backend kernel benchmark: the perf trajectory seed.

Times every registered hot kernel under the ``numpy`` reference backend
and the accelerated ``numba`` backend (``@njit`` loops when numba is
installed, the tuned pure-NumPy fastpath otherwise) on two Table-1-like
graphs — an R-MAT power-law graph (~1M edges at the default scale) and
a Watts–Strogatz small-world ring — verifying output parity on every
measured call, and writes a machine-readable ``BENCH_kernels.json``.

Run as a script (CI runs the ``--quick`` smoke)::

    PYTHONPATH=src python benchmarks/bench_kernels_backend.py
    PYTHONPATH=src python benchmarks/bench_kernels_backend.py --quick

Not a pytest-benchmark target on purpose: the JSON is a committed
artifact, and its generator must be runnable without dev extras.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.generators import rmat_graph, watts_strogatz_graph
from repro.kernels import (
    backend_info,
    bfs_level_transform,
    dfs_collect_colored,
    effective_degrees_arrays,
    expand_frontier,
    trim_decrement,
    use_backend,
    wcc_hook_round,
)

BACKENDS = ("numpy", "numba")


def _best_of(fn, repeats):
    """(best wall seconds, last result) over ``repeats`` calls."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _equal(a, b):
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(_equal(a[k], b[k]) for k in a)
    if isinstance(a, np.ndarray):
        return np.array_equal(a, b)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(_equal(x, y) for x, y in zip(a, b))
    return a == b


def _assert_equal(a, b, what):
    if not _equal(a, b):
        raise AssertionError(f"backend outputs diverge on {what}")


# ---------------------------------------------------------------------------
# Per-kernel drivers.  Each returns a closure per backend; closures are
# self-contained (fresh mutable arrays every call) so repeated timing
# is honest and outputs are comparable across backends.
# ---------------------------------------------------------------------------


def drive_expand(g):
    frontier = np.arange(g.num_nodes, dtype=np.int64)  # contiguous sweep

    def run():
        return expand_frontier(g.indptr, g.indices, frontier, unique=True)

    return run


def drive_bfs_level(g):
    def run():
        color = np.zeros(g.num_nodes, dtype=np.int64)
        color[0] = 1
        frontier = np.array([0], dtype=np.int64)
        scanned = 0
        while frontier.size:
            hits, s = bfs_level_transform(
                g.indptr, g.indices, frontier, color, {0: 1}
            )
            scanned += s
            frontier = hits[0]
        return color, scanned

    return run


def drive_dfs_collect(g):
    def run():
        color = np.zeros(g.num_nodes, dtype=np.int64)
        return dfs_collect_colored(g.indptr, g.indices, 0, {0: 1}, color)

    return run


def drive_effective_degrees(g):
    nodes = np.arange(g.num_nodes, dtype=np.int64)
    color = np.zeros(g.num_nodes, dtype=np.int64)

    def run():
        return effective_degrees_arrays(
            g.indptr, g.indices, g.in_indptr, g.in_indices, nodes, color
        )

    return run


def drive_trim_decrement(g):
    base_color = np.zeros(g.num_nodes, dtype=np.int64)
    cand = np.arange(0, g.num_nodes, 3, dtype=np.int64)
    old_colors = base_color[cand].copy()

    def run():
        color = base_color.copy()
        color[cand] = -1
        eff = np.full(g.num_nodes, 10**6, dtype=np.int64)
        hit, scanned = trim_decrement(
            g.indptr, g.indices, cand, old_colors, color, eff
        )
        return hit, scanned, eff

    return run


def drive_wcc_round(g):
    active = np.arange(g.num_nodes, dtype=np.int64)
    u, v = expand_frontier(
        g.indptr, g.indices, active, return_sources=True
    )

    def run():
        wcc = np.arange(g.num_nodes, dtype=np.int64)
        wcc_hook_round(u, v, wcc, active, True, True)
        return wcc

    return run


KERNEL_DRIVERS = (
    ("expand_frontier", drive_expand),
    ("bfs_level_transform", drive_bfs_level),
    ("dfs_collect_colored", drive_dfs_collect),
    ("effective_degrees", drive_effective_degrees),
    ("trim_decrement", drive_trim_decrement),
    ("wcc_hook_round", drive_wcc_round),
)


def bench_graph(g, repeats):
    rows = {}
    for name, make in KERNEL_DRIVERS:
        times, results = {}, {}
        for backend in BACKENDS:
            with use_backend(backend):
                run = make(g)
                times[backend], results[backend] = _best_of(run, repeats)
        _assert_equal(results["numpy"], results["numba"], name)
        rows[name] = {
            "numpy_s": round(times["numpy"], 6),
            "numba_s": round(times["numba"], 6),
            "speedup": round(times["numpy"] / max(times["numba"], 1e-12), 3),
            "outputs_identical": True,
        }
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="small graphs, fewer repeats (CI smoke; does not overwrite "
        "the committed JSON unless --out is given)",
    )
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_kernels.json next to the repo "
        "root for full runs, stdout-only for --quick)",
    )
    args = ap.parse_args(argv)

    repeats = args.repeats or (2 if args.quick else 3)
    if args.quick:
        graphs = [
            ("rmat", dict(scale=12, avg_degree=8.0), rmat_graph(12, 8.0, rng=1)),
            ("ws", dict(n=4096, k=4, p=0.05), watts_strogatz_graph(4096, 4, 0.05, rng=1)),
        ]
    else:
        graphs = [
            ("rmat", dict(scale=16, avg_degree=16.0), rmat_graph(16, 16.0, rng=1)),
            ("ws", dict(n=65536, k=8, p=0.05), watts_strogatz_graph(65536, 8, 0.05, rng=1)),
        ]

    doc = {
        "benchmark": "kernels_backend",
        "quick": args.quick,
        "repeats": repeats,
        "backend_info": backend_info(),
        "graphs": {},
    }
    for name, params, g in graphs:
        rows = bench_graph(g, repeats)
        doc["graphs"][name] = {
            "params": params,
            "num_nodes": g.num_nodes,
            "num_edges": g.num_edges,
            "kernels": rows,
        }
        for kname, row in rows.items():
            print(
                f"{name:>5s} {kname:<22s} numpy {row['numpy_s']*1e3:9.2f} ms"
                f"  numba {row['numba_s']*1e3:9.2f} ms"
                f"  speedup {row['speedup']:6.2f}x"
            )

    out = args.out
    if out is None and not args.quick:
        out = str(Path(__file__).resolve().parent.parent / "BENCH_kernels.json")
    if out:
        Path(out).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
