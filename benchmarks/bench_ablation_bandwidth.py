"""Ablation: memory-bandwidth ceiling on the machine model.

The default model is compute-bound (NUMA/SMT knees only), matching the
paper's reported scaling.  Real graph kernels saturate DRAM bandwidth;
this ablation adds a ceiling and shows scaling flattening where the
thread-throughput curve crosses it — a what-if the trace-driven design
makes free to ask.
"""

import pytest

from repro.bench import format_table, run_method, run_tarjan_baseline
from repro.runtime import Machine, MachineConfig


def test_bandwidth_ceiling_ablation(benchmark, graphs, emit):
    g = graphs("twitter").graph

    def run():
        out = {}
        for cap in (None, 16.0, 8.0):
            cfg = MachineConfig(mem_bandwidth_cap=cap)
            machine = Machine(cfg)
            _, t_seq = run_tarjan_baseline(g, machine=machine)
            r = run_method(g, "method2", machine=machine)
            out[cap] = {
                p: t_seq / r.times[p] for p in (1, 8, 16, 32)
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [str(cap or "none")] + [f"{out[cap][p]:.2f}" for p in (1, 8, 16, 32)]
        for cap in out
    ]
    emit(
        format_table(
            ["bandwidth cap", "p=1", "p=8", "p=16", "p=32"],
            rows,
            title="Ablation: memory-bandwidth ceiling (twitter, method2)",
        )
    )
    # an 8-units/time ceiling flattens scaling at ~8 effective threads
    assert out[8.0][32] < out[8.0][8] * 1.3
    # and the uncapped model keeps scaling past it
    assert out[None][32] > out[8.0][32] * 1.5