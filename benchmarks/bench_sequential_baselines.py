"""Sequential baselines: real wall-clock timing.

Tarjan is the paper's speedup denominator; Kosaraju is the in-repo
cross-check.  These are honest pytest-benchmark timings (multiple
rounds) of the pure-Python implementations, plus scipy's C
implementation for context — documenting the constant-factor reality
behind the trace-driven methodology (DESIGN.md: wall-clock Python time
is NOT what Figure 6 reports).
"""

import numpy as np
import pytest
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.core import gabow_scc, kosaraju_scc, tarjan_scc


@pytest.fixture(scope="module")
def livej_graph(request):
    from repro.generators import generate, scale_from_env

    return generate("livej", scale=min(scale_from_env(1.0), 1.0) * 0.5).graph


def test_tarjan_wall_time(benchmark, livej_graph):
    labels = benchmark(tarjan_scc, livej_graph)
    assert labels.min() >= 0


def test_kosaraju_wall_time(benchmark, livej_graph):
    labels = benchmark(kosaraju_scc, livej_graph)
    assert labels.min() >= 0


def test_gabow_wall_time(benchmark, livej_graph):
    labels = benchmark(gabow_scc, livej_graph)
    assert labels.min() >= 0


def test_scipy_wall_time(benchmark, livej_graph):
    g = livej_graph
    mat = sp.csr_matrix(
        (np.ones(g.num_edges), g.indices, g.indptr),
        shape=(g.num_nodes, g.num_nodes),
    )

    def run():
        return connected_components(mat, directed=True, connection="strong")

    n, labels = benchmark(run)
    assert n == int(tarjan_scc(g).max()) + 1
