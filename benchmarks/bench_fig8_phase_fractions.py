"""Figure 8: fraction of nodes whose SCC is identified per phase.

Runs Method 2 on every dataset and reports how many nodes each phase
(Trim, Trim2, Par-FWBW, Recur-FWBW) resolved — the paper's stacked
100 % bars.  Shape checks: Patents is ~100 % Trim (it is a DAG); the
big-giant graphs attribute their largest share to Par-FWBW; the
recursive share is largest on the graphs where Method 2 pays off.
"""

from repro.bench import format_table
from repro.core import strongly_connected_components
from repro.generators import dataset_names


def compute(graphs):
    out = {}
    for name in dataset_names():
        g = graphs(name).graph
        r = strongly_connected_components(g, "method2")
        out[name] = r.phase_fractions()
    return out


def test_fig8_phase_fractions(benchmark, graphs, emit):
    fractions = benchmark.pedantic(
        compute, args=(graphs,), rounds=1, iterations=1
    )
    phases = ["trim", "trim2", "par_fwbw", "recur_fwbw"]
    rows = [
        [name] + [f"{fractions[name].get(ph, 0.0):.3f}" for ph in phases]
        for name in fractions
    ]
    emit(
        format_table(
            ["dataset"] + phases,
            rows,
            title="Figure 8: fraction of nodes identified per phase (Method 2)",
        )
    )
    # Patents: a DAG — Trim does everything.
    assert fractions["patents"]["trim"] > 0.999
    # Giant-SCC-dominated graphs: par_fwbw share ~= giant fraction.
    assert fractions["twitter"]["par_fwbw"] > 0.7
    assert fractions["livej"]["par_fwbw"] > 0.7
    # Flickr leaves a real share for the recursive phase (Section 3.3).
    assert fractions["flickr"]["recur_fwbw"] > 0.02
    # fractions account for every node
    for name, fr in fractions.items():
        assert abs(sum(fr.values()) - 1.0) < 1e-9, name
