"""Serving-tier throughput benchmark: requests/sec vs. worker fleet.

Drives a saturating mixed-graph burst of ``SCCService.handle`` calls
from concurrent front threads against fleets of N forked engine
workers (N in {1, 2, 4} by default; N=1 is the in-process degraded
path, no fork).  Reports requests/sec, mean latency, and shed counts
per fleet size, plus a direct warm ``Engine.run`` baseline so the
single-worker serving overhead stays visible.  ``--check`` gates the
scaling acceptance: >= 2x requests/sec at N=4 vs N=1 — enforced only
on hosts with >= 4 CPU cores (a single-core container cannot scale by
forking), and always gates the N=1 path against the direct-engine
baseline.  Writes a machine-readable ``BENCH_serve.json``.
"""

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

#: N=4 must clear this multiple of the N=1 rate (with --check, on
#: hosts where os.cpu_count() >= 4).
SCALING_FLOOR = 2.0
#: serving at N=1 (admission + journal-less front, in-process engine)
#: must retain this fraction of raw warm engine throughput.
OVERHEAD_FLOOR = 0.5


def usable_cores() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the physical host; under a CPU-limited
    container or taskset the scheduler affinity mask is the real
    budget, and a fleet cannot scale past it.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def request_mix(scale, identities):
    """Distinct routable graph identities cycled through the burst."""
    graphs = ("wiki", "flickr")
    return [
        {
            "graph": graphs[i % len(graphs)],
            "scale": scale,
            "seed": 1 + i,
        }
        for i in range(identities)
    ]


def run_burst(service, requests, concurrency):
    """Drive ``requests`` through ``concurrency`` front threads."""
    results = [None] * len(requests)
    cursor = {"next": 0}
    lock = threading.Lock()

    def pump():
        while True:
            with lock:
                i = cursor["next"]
                if i >= len(requests):
                    return
                cursor["next"] = i + 1
            results[i] = service.handle(requests[i])

    threads = [
        threading.Thread(target=pump) for _ in range(concurrency)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0, results


def bench_fleet(n, mix, total, concurrency):
    from repro.service.server import SCCService, ServiceConfig
    from repro.service.govern import AdmissionConfig

    cfg = ServiceConfig(
        backend="serial",
        worker_processes=n,
        max_sessions=4 * len(mix),
        admission=AdmissionConfig(max_queue=max(64, 2 * concurrency)),
    )
    burst = [
        dict(mix[i % len(mix)], op="run", id=str(i))
        for i in range(total)
    ]
    svc = SCCService(cfg)
    try:
        # warm every identity's session on its owning worker first so
        # the timed burst measures serving, not graph generation.
        for i, req in enumerate(mix):
            warm = svc.handle(dict(req, op="run", id=f"warm-{i}"))
            assert warm["ok"], warm
        wall, results = run_burst(svc, burst, concurrency)
        ok = sum(1 for r in results if r and r["ok"])
        shed = sum(
            1 for r in results if r and not r["ok"] and r.get("shed")
        )
        assert ok == total, (
            f"N={n}: only {ok}/{total} ok ({shed} shed) — raise "
            f"max_queue or lower concurrency for this host"
        )
        crcs = {r["labels_crc32"] for r in results}
        fleet = svc.stats().get("workers") or {}
    finally:
        svc.drain()
        svc.close()
    return {
        "workers": n,
        "sharded": n > 1,
        "requests": total,
        "concurrency": concurrency,
        "ok": ok,
        "shed": shed,
        "wall_s": round(wall, 6),
        "rps": round(total / wall, 3),
        "mean_latency_ms": round(wall / total * 1e3, 3),
        "distinct_crcs": len(crcs),
        "deaths": fleet.get("deaths", 0),
        "respawns": fleet.get("respawns", 0),
    }


def bench_engine_direct(mix, total):
    """Raw warm engine throughput: the serving-overhead baseline."""
    from repro.engine import Engine

    with Engine(backend="serial") as eng:
        sessions = [
            eng.load(r["graph"], scale=r["scale"], seed=r["seed"])
            for r in mix
        ]
        for sess in sessions:
            eng.run(sess, method="method2")  # warm
        t0 = time.perf_counter()
        for i in range(total):
            eng.run(sessions[i % len(sessions)], method="method2")
        wall = time.perf_counter() - t0
    return {
        "requests": total,
        "wall_s": round(wall, 6),
        "rps": round(total / wall, 3),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="smaller graphs and burst (CI smoke; stdout-only unless "
        "--out is given)",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help="enforce the acceptance gates: N=1 serving overhead "
        "always; >=2x rps at N=4 vs N=1 when the host has >=4 cores",
    )
    ap.add_argument(
        "--fleets",
        default="1,2,4",
        help="comma-separated worker counts to sweep (default 1,2,4)",
    )
    ap.add_argument("--requests", type=int, default=None)
    ap.add_argument("--concurrency", type=int, default=8)
    ap.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_serve.json next to the repo "
        "root for full runs, stdout-only for --quick)",
    )
    args = ap.parse_args(argv)

    from repro.engine.pool import fork_available
    from repro.kernels import backend_info

    fleets = sorted(
        {max(1, int(f)) for f in args.fleets.split(",") if f.strip()}
    )
    scale = 0.03 if args.quick else 0.05
    total = args.requests or (16 if args.quick else 32)
    mix = request_mix(scale, identities=8)
    cores = usable_cores()

    doc = {
        "benchmark": "serve_workers",
        "quick": args.quick,
        "cpu_count": cores,
        "fork_available": fork_available(),
        "kernels": backend_info(),
        "scale": scale,
        "mix_identities": len(mix),
        "engine_direct": bench_engine_direct(mix, total),
        "fleets": {},
    }
    print(
        f"direct engine {doc['engine_direct']['rps']:8.1f} rps "
        f"({cores} cores)"
    )
    for n in fleets:
        if n > 1 and not fork_available():
            print(f"N={n}: skipped (fork unavailable)")
            continue
        row = bench_fleet(n, mix, total, args.concurrency)
        doc["fleets"][str(n)] = row
        print(
            f"N={n} workers {row['rps']:8.1f} rps  "
            f"mean {row['mean_latency_ms']:7.1f} ms  "
            f"{row['ok']}/{row['requests']} ok, {row['shed']} shed"
        )

    checks = {}
    one = doc["fleets"].get("1")
    four = doc["fleets"].get("4")
    if one is not None:
        ratio = one["rps"] / max(doc["engine_direct"]["rps"], 1e-9)
        checks["n1_overhead_ratio"] = round(ratio, 3)
        if args.check:
            assert ratio >= OVERHEAD_FLOOR, (
                f"single-worker serving regressed: {one['rps']:.1f} "
                f"rps is {ratio:.2f}x the direct engine rate "
                f"(floor {OVERHEAD_FLOOR})"
            )
    if one is not None and four is not None:
        speedup = four["rps"] / max(one["rps"], 1e-9)
        checks["n4_vs_n1_speedup"] = round(speedup, 3)
        # On hosts with fewer than 4 usable cores the >=2x fleet gate
        # is physically unreachable — downgrade to the overhead-floor
        # gate only, and record the downgrade in the JSON so a CI
        # reader can tell "passed" from "could not be measured here".
        checks["scaling_gate"] = (
            "enforced" if cores >= 4 else f"skipped: {cores} cores"
        )
        checks["scaling_gate_enforced"] = bool(
            args.check and cores >= 4
        )
        if args.check and cores >= 4:
            assert speedup >= SCALING_FLOOR, (
                f"fleet scaling below floor: N=4 is {speedup:.2f}x "
                f"N=1 (need >= {SCALING_FLOOR}x on {cores} cores)"
            )
        elif cores < 4:
            print(
                f"scaling gate skipped: {cores} core(s) < 4 — a "
                f"forked fleet cannot scale past the usable cores"
            )
    doc["checks"] = checks
    if checks:
        print(f"checks: {json.dumps(checks, sort_keys=True)}")

    out = args.out
    if out is None and not args.quick:
        out = str(
            Path(__file__).resolve().parent.parent / "BENCH_serve.json"
        )
    if out:
        Path(out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
