"""Engine serving benchmark: what a warm session is worth.

Measures the load-once/run-many amortization the engine layer exists
for: the first ``Engine.run()`` on a graph pays the full setup (load,
transpose CSR, shared-memory mirror, worker-pool fork) and every
subsequent run rides the warm session.  Reports cold vs. warm setup
overhead and wall time per dataset, asserts the warm runs pay at most
half the cold setup (in practice: none) with bit-identical canonical
labels, and records a ``repro batch``-equivalent ``run_many`` smoke.
Writes a machine-readable ``BENCH_engine.json``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

import numpy as np  # noqa: E402


def bench_dataset(engine, dataset, scale, *, warm_runs):
    t0 = time.perf_counter()
    sess = engine.load(dataset, scale=scale)
    cold = engine.run(sess, method="method2")
    cold_wall = time.perf_counter() - t0
    cold_setup = sess.stats.setup_seconds()

    warm_walls = []
    labels_identical = True
    for _ in range(warm_runs):
        t0 = time.perf_counter()
        warm = engine.run(sess, method="method2")
        warm_walls.append(time.perf_counter() - t0)
        labels_identical &= bool(
            np.array_equal(cold.labels, warm.labels)
        )
    warm_setup = sess.stats.setup_seconds() - cold_setup

    # The acceptance gate: a warm run pays at least 2x less setup than
    # the cold one (it should pay none), with identical labels.
    assert warm_setup * 2 <= cold_setup, (
        f"{dataset}: warm runs paid {warm_setup:.4f}s setup vs "
        f"{cold_setup:.4f}s cold — the session cache is not amortizing"
    )
    assert labels_identical, f"{dataset}: warm labels diverged"

    return {
        "cold": {
            "wall_s": round(cold_wall, 6),
            "setup_s": round(cold_setup, 6),
        },
        "warm": {
            "runs": warm_runs,
            "mean_wall_s": round(
                sum(warm_walls) / len(warm_walls), 6
            ),
            "setup_s": round(warm_setup, 6),
        },
        "labels_identical": labels_identical,
        "session": sess.stats.to_dict(),
    }


def bench_batch(engine, dataset, scale):
    """run_many over one warm session (the `repro batch` smoke)."""
    from repro.engine.batch import BatchJob

    jobs = [
        BatchJob(graph=dataset, scale=scale, method=m, backend=b)
        for m, b in (
            ("method2", engine.backend),
            ("method1", engine.backend),
            ("tarjan", "serial"),
        )
    ]
    report = engine.run_many(jobs)
    assert report.jobs_failed == 0, report.to_dict()
    return {
        "jobs_ok": report.jobs_ok,
        "jobs_total": report.jobs_total,
        "seconds": round(report.seconds, 6),
        "warm_jobs": sum(1 for r in report.records if r.warm),
    }


def main(argv=None) -> int:
    from repro.engine import Engine
    from repro.engine.pool import fork_available
    from repro.kernels import backend_info

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="small graphs, fewer warm runs (CI smoke; stdout-only "
        "unless --out is given)",
    )
    ap.add_argument(
        "--backend",
        default=None,
        help="executor for the parallel methods (default: processes "
        "when fork is available, else serial)",
    )
    ap.add_argument("--warm-runs", type=int, default=None)
    ap.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_engine.json next to the "
        "repo root for full runs, stdout-only for --quick)",
    )
    args = ap.parse_args(argv)

    backend = args.backend or (
        "processes" if fork_available() else "serial"
    )
    warm_runs = args.warm_runs or (2 if args.quick else 4)
    datasets = (
        [("wiki", 0.1), ("flickr", 0.1)]
        if args.quick
        else [("wiki", 1.0), ("flickr", 0.5), ("baidu", 0.5)]
    )

    doc = {
        "benchmark": "engine_serving",
        "quick": args.quick,
        "backend": backend,
        "kernels": backend_info(),
        "datasets": {},
    }
    with Engine(backend=backend, num_workers=2) as engine:
        for name, scale in datasets:
            row = bench_dataset(
                engine, name, scale, warm_runs=warm_runs
            )
            doc["datasets"][name] = dict(row, scale=scale)
            print(
                f"{name:>8s} cold {row['cold']['wall_s']*1e3:8.1f} ms "
                f"(setup {row['cold']['setup_s']*1e3:7.1f} ms)  "
                f"warm {row['warm']['mean_wall_s']*1e3:8.1f} ms "
                f"(setup {row['warm']['setup_s']*1e3:7.1f} ms)  "
                f"x{warm_runs}, labels identical"
            )
        name, scale = datasets[0]
        doc["batch"] = bench_batch(engine, name, scale)
        print(
            f"batch: {doc['batch']['jobs_ok']}/"
            f"{doc['batch']['jobs_total']} ok, "
            f"{doc['batch']['warm_jobs']} warm, "
            f"{doc['batch']['seconds']*1e3:.1f} ms"
        )

    out = args.out
    if out is None and not args.quick:
        out = str(
            Path(__file__).resolve().parent.parent / "BENCH_engine.json"
        )
    if out:
        Path(out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
