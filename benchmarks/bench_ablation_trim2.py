"""Section 3.4 ablation: Trim2's effect on the WCC step.

The paper: "the Trim2 step provides only a marginal speedup by itself;
however it reduces the execution time of the following WCC step by up
to 50% because it cuts out a chain of weakly connected size-2 SCCs."
We run Method 2 with and without Trim2 on the chain-heavy Flickr
surrogate and compare the Par-WCC simulated work and iteration count.
"""

from repro.bench import format_table, run_method


def compute(graphs, machine):
    g = graphs("flickr").graph
    out = {}
    for use_trim2 in (True, False):
        run = run_method(
            g, "method2", machine=machine, use_trim2=use_trim2
        )
        out[use_trim2] = run
    return out


def test_trim2_wcc_ablation(benchmark, graphs, machine, emit):
    out = benchmark.pedantic(
        compute, args=(graphs, machine), rounds=1, iterations=1
    )
    rows = []
    for use_trim2, run in out.items():
        c = run.result.profile.counters
        rows.append(
            [
                "with trim2" if use_trim2 else "without",
                f"{run.phase_times[1].get('par_wcc', 0.0):.0f}",
                int(c["wcc_iterations"]),
                int(c["wcc_components"]),
                int(c.get("trim2_pairs", 0)),
                f"{run.times[32]:.0f}",
            ]
        )
    emit(
        format_table(
            [
                "variant",
                "WCC work (units)",
                "WCC iters",
                "WCC comps",
                "trim2 pairs",
                "total @p=32",
            ],
            rows,
            title="Section 3.4 ablation: Trim2's effect on Par-WCC",
        )
    )
    with_t2 = out[True]
    without = out[False]
    wcc_with = with_t2.phase_times[1]["par_wcc"]
    wcc_without = without.phase_times[1]["par_wcc"]
    emit(
        f"WCC work reduction from Trim2: "
        f"{100 * (1 - wcc_with / wcc_without):.0f}% (paper: up to 50%)"
    )
    # Trim2 must shrink the WCC step's work on this chain-heavy graph.
    assert wcc_with < wcc_without
    # and detach a meaningful number of 2-cycles first
    assert with_t2.result.profile.counters["trim2_pairs"] > 100
