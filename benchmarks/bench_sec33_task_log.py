"""Section 3.3: the work-queue starvation log.

Regenerates the paper's listing of the first five Recur-FWBW task
executions under Method 1 on Flickr — tiny SCCs, empty FW/BW sets, a
barely-moving Remain column — plus the queue-depth observation ("the
recorded maximum queue depth with single threaded execution is only
six") and Method 2's contrast (thousands of initial work items after
Par-WCC; the paper reports ~10,000 on the full-size graph).
"""

from repro.bench import format_table, run_method
from repro.generators import generate


def compute(graphs, machine):
    g = graphs("flickr").graph
    m1 = run_method(g, "method1", machine=machine)
    m2 = run_method(g, "method2", machine=machine)
    sim1 = machine.simulate(m1.result.profile.trace, 1)
    sim2 = machine.simulate(m2.result.profile.trace, 1)
    return m1, m2, sim1.queue_stats["recur_fwbw"], sim2.queue_stats["recur_fwbw"]


def test_sec33_task_log(benchmark, graphs, machine, emit):
    m1, m2, q1, q2 = benchmark.pedantic(
        compute, args=(graphs, machine), rounds=1, iterations=1
    )
    head = m1.result.profile.task_log[:5]
    emit(
        format_table(
            ["SCC", "FW", "BW", "Remain"],
            [[e.scc, e.fw, e.bw, e.remain] for e in head],
            title=(
                "Section 3.3: first five Recur-FWBW task executions "
                "(Method 1, flickr surrogate)"
            ),
        )
    )
    emit(
        format_table(
            ["method", "initial items", "max global depth", "max total depth"],
            [
                ["method1", q1.initial_items, q1.max_global_depth, q1.max_total_depth],
                ["method2", q2.initial_items, q2.max_global_depth, q2.max_total_depth],
            ],
            title="Work-queue statistics at 1 thread",
        )
    )
    # the published observations
    giant = m1.result.labels.shape[0] * 0.01
    for e in head:
        assert e.scc < giant  # only small SCCs found
        assert e.fw + e.bw < max(e.remain, 1)  # no real partitioning
    assert q1.max_total_depth < 20  # starved queue (paper: depth 6)
    assert q2.initial_items > 20 * q1.initial_items  # WCC floods the queue
