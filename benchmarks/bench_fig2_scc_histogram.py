"""Figure 2: distribution of SCC sizes in the LiveJournal network.

The published histogram shows (a) one giant SCC on the same order as
the node count, (b) size-1 SCCs on the same order too, and (c) a
power-law decay in between.  This bench regenerates the histogram for
the LiveJournal surrogate and checks all three features.
"""

import numpy as np

from repro.analysis import size_histogram, summarize_scc_structure
from repro.bench import format_table
from repro.core import tarjan_scc


def compute(graphs):
    bundle = graphs("livej")
    labels = (
        bundle.true_labels
        if bundle.true_labels is not None
        else tarjan_scc(bundle.graph)
    )
    return bundle.graph, labels, size_histogram(labels)


def test_fig2_livej_histogram(benchmark, graphs, emit):
    g, labels, hist = benchmark.pedantic(
        compute, args=(graphs,), rounds=1, iterations=1
    )
    sizes = sorted(hist)
    rows = [[s, hist[s]] for s in sizes[:12]]
    rows.append(["...", "..."])
    rows.append([sizes[-1], hist[sizes[-1]]])
    emit(
        format_table(
            ["SCC size", "count"],
            rows,
            title="Figure 2: SCC size distribution (livej surrogate)",
        )
    )
    summary = summarize_scc_structure(labels)
    # (a) giant SCC of order N
    assert summary.giant_fraction > 0.5
    # (b) size-1 SCCs of the same order as the non-giant remainder
    assert hist[1] > 0.5 * (g.num_nodes - summary.largest_scc)
    # (c) monotone-ish power-law decay over the first decade
    small = [hist.get(s, 0) for s in range(1, 9)]
    assert small[0] > 10 * max(small[4:] + [1])
