"""Extension bench: Method 2 in the context of its lineage.

Not a paper artifact — this places the paper's algorithms between
their ancestor (Fleischer et al.'s pure FW-BW, no Trim) and their
best-known descendant (Slota et al.'s MultiStep: Trim + one
max-degree-pivot FW-BW + coloring), plus the standalone coloring
algorithm, on the simulated 32-thread machine.

Expected shape: fwbw << baseline < method1 <= coloring < multistep
~<= method2 on small-world graphs (MultiStep trades the WCC+recursion
machinery for coloring rounds; which side wins depends on the mid-SCC
tail), with everything degrading on ca-road.
"""

import pytest

from repro.bench import format_table, run_tarjan_baseline, run_method

METHODS = ("fwbw", "baseline", "method1", "method2", "coloring", "multistep")


@pytest.mark.parametrize("name", ["livej", "flickr", "twitter"])
def test_comparator_lineage(benchmark, graphs, machine, emit, name):
    g = graphs(name).graph

    def run():
        _, t_seq = run_tarjan_baseline(g, machine=machine)
        out = {}
        for method in METHODS:
            r = run_method(g, method, machine=machine)
            out[method] = {
                p: t_seq / r.times[p] for p in (1, 8, 32)
            }
        return out

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [m] + [f"{speedups[m][p]:.2f}" for p in (1, 8, 32)]
        for m in METHODS
    ]
    emit(
        format_table(
            ["method", "p=1", "p=8", "p=32"],
            rows,
            title=f"[{name}] lineage comparison: speedup vs. Tarjan",
        )
    )
    # lineage ordering at 32 threads
    assert speedups["fwbw"][32] < speedups["baseline"][32]
    assert speedups["baseline"][32] < speedups["method2"][32]
    assert speedups["method1"][32] <= speedups["method2"][32] * 1.02
    # the follow-on work is competitive with method2
    assert speedups["multistep"][32] > speedups["baseline"][32]
    assert speedups["coloring"][32] > speedups["fwbw"][32]
