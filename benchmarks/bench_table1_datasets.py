"""Table 1: the evaluation datasets.

Regenerates the paper's dataset table for the synthetic surrogates:
name, nodes, edges, largest SCC size and sampled diameter, next to the
published values (absolute sizes differ by design — the surrogates are
scaled down; the *fractions* and regime columns must match).
"""

import numpy as np

from repro.analysis import estimate_diameter
from repro.bench import format_table
from repro.core import tarjan_scc
from repro.generators import DATASETS, dataset_names


def compute_rows(graphs):
    rows = []
    for name in dataset_names():
        bundle = graphs(name)
        g = bundle.graph
        labels = (
            bundle.true_labels
            if bundle.true_labels is not None
            else tarjan_scc(g)
        )
        largest = int(np.bincount(labels).max())
        diam = estimate_diameter(g, samples=8, rng=0)
        paper = DATASETS[name].paper
        rows.append(
            [
                name,
                g.num_nodes,
                g.num_edges,
                largest,
                f"{largest / g.num_nodes:.2f}",
                f"{paper.largest_scc_frac:.2f}",
                diam,
                paper.diameter,
            ]
        )
    return rows


def test_table1(benchmark, graphs, emit):
    rows = benchmark.pedantic(
        compute_rows, args=(graphs,), rounds=1, iterations=1
    )
    emit(
        format_table(
            [
                "name",
                "nodes",
                "edges",
                "largest SCC",
                "SCC frac",
                "paper frac",
                "diam",
                "paper diam",
            ],
            rows,
            title="Table 1: dataset surrogates vs. published statistics",
        )
    )
    # shape assertions: fractions track the paper's
    for row in rows:
        name, frac, paper_frac = row[0], float(row[4]), float(row[5])
        assert abs(frac - paper_frac) < 0.15, name
