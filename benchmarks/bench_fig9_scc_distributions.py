"""Figure 9: SCC size distributions of all nine graphs.

Prints, per dataset: SCC count, size-1 count, mid-size count, largest
SCC, and the head of the size histogram.  Shape checks encode the
features the paper reads off the figure: a giant component plus
dominant size-1 mass everywhere except Patents (all trivial) and
CA-road (many more, larger, mid-size SCCs).
"""

import numpy as np

from repro.analysis import size_histogram, summarize_scc_structure
from repro.bench import format_table
from repro.core import tarjan_scc
from repro.generators import dataset_names


def compute(graphs):
    out = {}
    for name in dataset_names():
        bundle = graphs(name)
        labels = (
            bundle.true_labels
            if bundle.true_labels is not None
            else tarjan_scc(bundle.graph)
        )
        out[name] = (
            summarize_scc_structure(labels),
            size_histogram(labels),
        )
    return out


def test_fig9_distributions(benchmark, graphs, emit):
    stats = benchmark.pedantic(
        compute, args=(graphs,), rounds=1, iterations=1
    )
    rows = []
    for name, (summary, hist) in stats.items():
        head = ", ".join(
            f"{s}:{hist[s]}" for s in sorted(hist)[:5]
        )
        rows.append(
            [
                name,
                summary.num_sccs,
                summary.trivial_sccs,
                summary.mid_sccs,
                summary.largest_scc,
                head,
            ]
        )
    emit(
        format_table(
            ["dataset", "#SCCs", "size-1", "mid", "largest", "histogram head"],
            rows,
            title="Figure 9: SCC size distributions",
        )
    )
    for name, (summary, hist) in stats.items():
        if name == "patents":
            assert summary.acyclic
            continue
        # size-1 SCCs are the most frequent class
        assert hist[1] == max(hist.values())
        assert summary.giant_fraction > 0.1
    # CA-road: more *large* non-giant SCCs (size >= 100) per node than
    # any small-world graph (Section 5 / Fig. 9(9): "the size of these
    # SCCs is larger as well").
    def large_mid_per_node(name):
        summary, hist = stats[name]
        big = sum(
            c for s, c in hist.items() if 100 <= s < summary.largest_scc
        )
        return big / summary.num_nodes

    sw_mass = max(
        large_mid_per_node(n)
        for n in stats
        if n not in ("ca-road", "patents")
    )
    assert large_mid_per_node("ca-road") > sw_mass
