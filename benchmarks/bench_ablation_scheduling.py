"""Section 4.3 ablation: dynamic vs. static load balancing.

"Statically assigning the same number of nodes to each thread
naturally induces workload imbalance if the work involves neighborhood
exploration" (the scale-free property).  We build a degree-sum
parallel-for over an R-MAT graph's nodes and simulate both schedules:
static chunking eats the hub's work on one thread, dynamic spreads it.
"""

import numpy as np

from repro.bench import format_table
from repro.generators import rmat_graph
from repro.runtime import Machine, WorkTrace


def compute(machine):
    g = rmat_graph(15, 12.0, rng=7)
    work = g.out_degrees().astype(np.float64) + 1.0
    total = float(work.sum())
    traces = {}
    for schedule in ("dynamic", "static"):
        tr = WorkTrace()
        tr.parallel_for(
            "sweep",
            work=total,
            items=g.num_nodes,
            schedule=schedule,
            item_work=work if schedule == "static" else None,
        )
        traces[schedule] = tr
    times = {
        schedule: {
            p: machine.simulate(tr, p).total_time for p in (1, 8, 16, 32)
        }
        for schedule, tr in traces.items()
    }
    skew = float(work.max() / work.mean())
    return times, skew


def test_scheduling_ablation(benchmark, machine, emit):
    times, skew = benchmark.pedantic(
        compute, args=(machine,), rounds=1, iterations=1
    )
    rows = [
        [schedule] + [f"{times[schedule][p]:.0f}" for p in (1, 8, 16, 32)]
        for schedule in ("dynamic", "static")
    ]
    emit(
        format_table(
            ["schedule", "p=1", "p=8", "p=16", "p=32"],
            rows,
            title=(
                "Section 4.3 ablation: neighborhood sweep under "
                f"static vs. dynamic scheduling (degree skew {skew:.0f}x)"
            ),
        )
    )
    # Equal at one thread; dynamic wins once threads multiply.
    assert times["dynamic"][1] == times["static"][1]
    assert times["dynamic"][32] < times["static"][32]
