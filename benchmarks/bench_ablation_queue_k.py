"""Section 4.3 ablation: work-queue batch size K.

The paper sets K = 1 for Baseline/Method 1 ("these algorithms suffer
from a lack of task level parallelism") and K = 8 for Method 2.  We
replay Method 2's recorded task DAG under the simulated two-level
queue for a K sweep: larger K amortizes global-queue accesses when
(and only when) the queue is actually full of items.
"""

from repro.bench import format_table
from repro.core import strongly_connected_components
from repro.runtime.scheduler import simulate_task_dag
from repro.runtime.trace import TaskDAGRecord


def _sweep(rec, machine, ks=(1, 2, 4, 8, 16)):
    out = {}
    for k in ks:
        rec_k = TaskDAGRecord(phase=rec.phase, tasks=rec.tasks, queue_k=k)
        time, stats = simulate_task_dag(rec_k, 32, machine.config)
        out[k] = (time, stats)
    return out


def compute(graphs, machine):
    # (a) the real Method 2 task DAG on the flickr surrogate (~500
    # moderately sized tasks)
    g = graphs("flickr").graph
    result = strongly_connected_components(g, "method2")
    rec = [
        r for r in result.profile.trace if isinstance(r, TaskDAGRecord)
    ][0]
    real = _sweep(rec, machine)
    # (b) a flooded queue: 10,000 tiny independent items — the regime
    # the paper's full-size graphs put Method 2 in (~10,000 work items,
    # Section 5), where batching pays.
    from repro.runtime.trace import Task

    flood_rec = TaskDAGRecord(
        phase="flood", tasks=tuple(Task(cost=40.0) for _ in range(10_000))
    )
    flood = _sweep(flood_rec, machine)
    return real, flood


def test_queue_k_ablation(benchmark, graphs, machine, emit):
    real, flood = benchmark.pedantic(
        compute, args=(graphs, machine), rounds=1, iterations=1
    )
    for title, sweep in (
        ("Method 2 task DAG (flickr surrogate)", real),
        ("flooded queue: 10,000 tiny items", flood),
    ):
        rows = [
            [k, f"{time:.0f}", stats.global_accesses, f"{stats.utilization:.2f}"]
            for k, (time, stats) in sweep.items()
        ]
        emit(
            format_table(
                ["K", "makespan @p=32", "global accesses", "utilization"],
                rows,
                title=f"Section 4.3 ablation: queue batch size — {title}",
            )
        )
    # Larger batches always cut global-queue traffic...
    assert real[8][1].global_accesses < real[1][1].global_accesses
    assert flood[8][1].global_accesses < flood[1][1].global_accesses / 4
    # ...and win the makespan once the queue is actually flooded (the
    # paper's K=8 choice is tied to Method 2's ~10,000 work items).
    assert flood[8][0] < flood[1][0]
    # On the scaled-down surrogate's ~500 tasks, batching can cost
    # some balance — the tradeoff the paper's per-method K reflects.
    assert real[8][0] <= real[1][0] * 2.0
