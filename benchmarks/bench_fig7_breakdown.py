"""Figure 7: execution-time breakdown for all methods on all graphs.

For each dataset and method, prints the per-phase simulated time at
each thread count — the stacked-bar data of the paper's Figure 7.
The shape checks encode the paper's reading of the figure: Par-FWBW
segments scale down with threads; the Baseline's recursive segment
does not; Method 2's recursive segment scales where Method 1's
plateaus.
"""

import pytest

from repro.bench import breakdown_series, format_table, run_method
from repro.generators import dataset_names
from repro.runtime import STANDARD_THREAD_COUNTS


@pytest.mark.parametrize("name", dataset_names())
def test_fig7_breakdown(benchmark, graphs, machine, emit, name):
    g = graphs(name).graph

    def run():
        return {
            method: run_method(g, method, machine=machine)
            for method in ("baseline", "method1", "method2")
        }

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    for method, run in runs.items():
        data = breakdown_series(run)
        rows = [
            [phase] + [f"{v:.0f}" for v in values]
            for phase, values in data.items()
        ]
        rows.append(
            ["TOTAL"]
            + [f"{run.times[p]:.0f}" for p in STANDARD_THREAD_COUNTS]
        )
        emit(
            format_table(
                ["phase"] + [f"p={p}" for p in STANDARD_THREAD_COUNTS],
                rows,
                title=(
                    f"Figure 7 ({name}, {method}): simulated time "
                    "per phase (edge-units)"
                ),
            )
        )

    # Baseline's recursive phase barely shrinks (one thread chews the
    # giant SCC) while phase-1 data-parallel segments scale.
    if name != "patents":
        base = runs["baseline"]
        assert (
            base.phase_times[32]["recur_fwbw"]
            > 0.6 * base.phase_times[1]["recur_fwbw"]
        )
    m1 = runs["method1"]
    if (
        name != "ca-road"  # high-diameter BFS is sync-bound (Section 5)
        and "par_fwbw" in m1.phase_times[1]
        and m1.phase_times[1]["par_fwbw"] > 5000
    ):
        assert (
            m1.phase_times[32]["par_fwbw"]
            < m1.phase_times[1]["par_fwbw"]
        )
    if name == "ca-road":
        # the level-synchronous BFS must NOT scale here
        assert (
            m1.phase_times[32]["par_fwbw"]
            > 0.8 * m1.phase_times[1]["par_fwbw"]
        )
