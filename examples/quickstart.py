#!/usr/bin/env python
"""Quickstart: detect SCCs in a small-world graph and ask the simulated
machine what the parallel algorithms would buy you.

Run:  python examples/quickstart.py
"""

from repro import strongly_connected_components
from repro.generators import generate
from repro.runtime import Machine, STANDARD_THREAD_COUNTS


def main() -> None:
    # 1. Get a graph.  Here: the LiveJournal surrogate at half scale.
    #    (Any CSRGraph works — build your own with
    #    repro.graph.from_edge_array or read_edge_list.)
    bundle = generate("livej", scale=0.5)
    g = bundle.graph
    print(f"graph: {g.num_nodes} nodes, {g.num_edges} edges")

    # 2. Detect SCCs with the paper's best algorithm (Method 2).
    result = strongly_connected_components(g, method="method2")
    print(f"SCCs found: {result.num_sccs}")
    print(f"largest SCC: {result.largest_scc_size()} nodes "
          f"({result.giant_fraction():.0%} of the graph)")
    print("nodes resolved per phase:",
          {k: f"{v:.1%}" for k, v in result.phase_fractions().items()})

    # 3. Verify against the optimal sequential algorithm.
    tarjan = strongly_connected_components(g, method="tarjan")
    from repro.core import same_partition

    assert same_partition(result.labels, tarjan.labels)
    print("partition verified against Tarjan's algorithm")

    # 4. Replay both runs on the simulated 2-socket Xeon to get the
    #    paper's Figure 6 numbers for this graph.
    machine = Machine()
    t_seq = machine.simulate(tarjan.profile.trace, threads=1).total_time
    print("\nsimulated speedup vs. Tarjan (method2):")
    for p in STANDARD_THREAD_COUNTS:
        t_par = machine.simulate(result.profile.trace, threads=p).total_time
        print(f"  {p:2d} threads: {t_seq / t_par:5.2f}x")


if __name__ == "__main__":
    main()
