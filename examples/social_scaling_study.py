#!/usr/bin/env python
"""Scaling study: how the three algorithms behave on YOUR machine model.

The paper evaluates on a fixed 2-socket Xeon.  Because this library's
timing is trace-driven, the same recorded run can be replayed on any
machine shape — more sockets, wider SMT, slower interconnect — to ask
"would Method 2 still win at 64 threads on 4 sockets?".

This example runs the Twitter surrogate once per algorithm and then
replays the traces on (a) the paper's machine and (b) a hypothetical
4-socket, 64-thread box with a weaker interconnect.

Run:  python examples/social_scaling_study.py
"""

from repro import strongly_connected_components
from repro.bench import format_table
from repro.generators import generate
from repro.runtime import Machine, MachineConfig

PAPER = MachineConfig()  # 2 x 8 cores x 2 SMT (Section 5)
BIG_NUMA = MachineConfig(
    sockets=4,
    cores_per_socket=8,
    smt=2,
    numa_eff=0.6,  # weaker cross-socket interconnect
    smt_eff=0.5,
    sync_base=250.0,  # barriers cost more on 4 sockets
    sync_per_thread=12.0,
)


def main() -> None:
    bundle = generate("twitter", scale=0.5)
    g = bundle.graph
    print(f"Twitter surrogate: {g.num_nodes} nodes, {g.num_edges} edges\n")

    tarjan = strongly_connected_components(g, "tarjan")
    runs = {
        m: strongly_connected_components(g, m)
        for m in ("baseline", "method1", "method2")
    }

    for label, cfg, threads in (
        ("paper machine (2x8x2)", PAPER, (1, 8, 16, 32)),
        ("hypothetical 4-socket (4x8x2)", BIG_NUMA, (1, 16, 32, 64)),
    ):
        machine = Machine(cfg)
        t_seq = machine.simulate(tarjan.profile.trace, 1).total_time
        rows = []
        for method, result in runs.items():
            speedups = [
                t_seq
                / machine.simulate(result.profile.trace, p).total_time
                for p in threads
            ]
            rows.append([method] + [f"{s:.2f}" for s in speedups])
        print(
            format_table(
                ["method"] + [f"p={p}" for p in threads],
                rows,
                title=f"speedup vs. Tarjan — {label}",
            )
        )
        print()


if __name__ == "__main__":
    main()
