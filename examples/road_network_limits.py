#!/usr/bin/env python
"""Knowing when NOT to use the parallel methods: the road-network case.

Section 5's honest caveat: on the (non-small-world) CA-road graph both
methods lose to Tarjan — the level-synchronous BFS drowns in barrier
costs across ~hundreds of levels and Par-WCC needs many rounds.  The
paper's advice is that "users have a priori knowledge about the
property of their graphs"; this example shows how to *check* instead,
using the small-world classifier, and then demonstrates the
consequence on both graph classes.

Run:  python examples/road_network_limits.py
"""

from repro import strongly_connected_components
from repro.analysis import classify_graph
from repro.generators import generate
from repro.runtime import Machine


def best_method_for(g) -> str:
    """The decision rule the paper leaves to the user, automated."""
    report = classify_graph(g, samples=8)
    return "method2" if report.small_world else "tarjan"


def main() -> None:
    machine = Machine()
    for name in ("wiki", "ca-road"):
        bundle = generate(name, scale=0.5 if name == "wiki" else 1.0)
        g = bundle.graph
        report = classify_graph(g, samples=8)
        print(f"== {name}: {g.num_nodes} nodes, diameter ~{report.diameter_estimate} "
              f"-> small-world: {report.small_world}")

        tarjan = strongly_connected_components(g, "tarjan")
        method2 = strongly_connected_components(g, "method2")
        t_seq = machine.simulate(tarjan.profile.trace, 1).total_time
        t_par = machine.simulate(method2.profile.trace, 32).total_time
        print(f"   method2 @32 threads: {t_seq / t_par:.2f}x vs. Tarjan")
        print(f"   recommended: {best_method_for(g)}\n")


if __name__ == "__main__":
    main()
