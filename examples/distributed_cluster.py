#!/usr/bin/env python
"""The paper's future work, runnable: distributed FW-BW-Trim on a
simulated cluster.

Section 6 closes with "we plan to implement our algorithm in a
distributed environment.  Our extensions can be easily implemented in
such an environment as they only require data from direct neighbors."
This example runs the BSP implementation over three partitioners and a
rank sweep, and shows the two distributed failure modes the
shared-memory paper foreshadows: small-world graphs resist
partitioning (communication floor), high-diameter graphs multiply
barrier latency (superstep floor).

Run:  python examples/distributed_cluster.py
"""

from repro.bench import format_table
from repro.core import strongly_connected_components, same_partition
from repro.distributed import (
    Cluster,
    bfs_partition,
    block_partition,
    distributed_method1,
    edge_cut,
    hash_partition,
)
from repro.generators import generate


def main() -> None:
    for name, scale in (("livej", 1.0), ("ca-road", 1.0)):
        bundle = generate(name, scale=scale)
        g = bundle.graph
        tarjan = strongly_connected_components(g, "tarjan")
        print(f"== {name}: {g.num_nodes} nodes, {g.num_edges} edges")

        # partitioner quality at 8 ranks
        rows = []
        for label, part in (
            ("block", block_partition(g.num_nodes, 8)),
            ("hash", hash_partition(g.num_nodes, 8, rng=0)),
            ("bfs", bfs_partition(g, 8)),
        ):
            cut = edge_cut(g, part)
            rows.append([label, cut, f"{cut / g.num_edges:.1%}"])
        print(format_table(["partitioner", "cut edges", "cut %"], rows))

        # rank scaling with the best partitioner
        cluster = Cluster()
        rows = []
        base = None
        for ranks in (1, 2, 4, 8, 16):
            res = distributed_method1(g, bfs_partition(g, ranks))
            assert same_partition(res.labels, tarjan.labels)
            sim = cluster.simulate(res.dtrace)
            base = base or sim.total_time
            rows.append(
                [
                    ranks,
                    f"{base / sim.total_time:.2f}",
                    f"{sim.comm_fraction:.0%}",
                    len(res.dtrace.steps),
                ]
            )
        print(
            format_table(
                ["ranks", "speedup", "comm", "supersteps"],
                rows,
                title="distributed Method 1 (+WCC) scaling",
            )
        )
        print()


if __name__ == "__main__":
    main()
