#!/usr/bin/env python
"""Web-graph structure analysis: the bow-tie around the giant SCC.

The paper's Section 2.2 motivates everything with the structure of
real web/social graphs: one giant SCC, a power-law tail of small ones,
and the Broder et al. bow-tie.  This example runs the full analysis
pipeline on the Baidu web-graph surrogate:

1. SCC decomposition (Method 2),
2. SCC size distribution (the Figure 2 histogram),
3. bow-tie decomposition (IN / CORE / OUT / other),
4. small-world classification and degree statistics.

Run:  python examples/web_graph_bowtie.py
"""

from repro import strongly_connected_components
from repro.analysis import (
    bowtie_decomposition,
    classify_graph,
    degree_statistics,
    summarize_scc_structure,
)
from repro.generators import generate


def main() -> None:
    bundle = generate("baidu", scale=0.5)
    g = bundle.graph
    print(f"Baidu web-graph surrogate: {g.num_nodes} nodes, "
          f"{g.num_edges} edges\n")

    result = strongly_connected_components(g, method="method2")

    # --- SCC structure (Section 2.2 / Figure 2)
    summary = summarize_scc_structure(result.labels)
    print("SCC structure:")
    print(f"  components:   {summary.num_sccs}")
    print(f"  giant SCC:    {summary.largest_scc} nodes "
          f"({summary.giant_fraction:.0%})")
    print(f"  size-1 SCCs:  {summary.trivial_sccs}")
    print(f"  mid-size:     {summary.mid_sccs}")
    hist = result.size_histogram()
    print("  histogram head:",
          {s: hist[s] for s in sorted(hist)[:6]})

    # --- bow-tie (Broder et al. [11])
    bt = bowtie_decomposition(g, result.labels)
    print("\nbow-tie decomposition:")
    for region, frac in bt.fractions().items():
        print(f"  {region:>5s}: {frac:7.1%}")

    # --- graph character
    report = classify_graph(g)
    deg = degree_statistics(g)
    print("\ngraph character:")
    print(f"  sampled diameter:  {report.diameter_estimate} "
          f"(log2 N = {report.log2_n:.1f})")
    print(f"  small-world:       {report.small_world}")
    print(f"  max/mean degree:   {deg.skew:.0f}x "
          f"(power-law alpha ~ {deg.alpha:.2f})")


if __name__ == "__main__":
    main()
