"""Unit tests for the simulated machine model."""

import pytest

from repro.runtime import (
    Machine,
    MachineConfig,
    Task,
    WorkTrace,
    PAPER_MACHINE,
)


class TestMachineConfig:
    def test_max_threads(self):
        assert PAPER_MACHINE.max_threads == 32
        assert MachineConfig(sockets=1, cores_per_socket=4, smt=1).max_threads == 4

    def test_efficiency_placement(self):
        effs = PAPER_MACHINE.thread_efficiencies()
        assert len(effs) == 32
        assert all(e == 1.0 for e in effs[:8])
        assert all(e == PAPER_MACHINE.numa_eff for e in effs[8:16])
        assert all(e == PAPER_MACHINE.smt_eff for e in effs[16:])

    def test_throughput_monotone(self):
        prev = 0.0
        for p in range(1, 33):
            t = PAPER_MACHINE.throughput(p)
            assert t > prev
            prev = t

    def test_throughput_knees(self):
        # marginal gain drops at the socket and SMT boundaries
        gain_within = PAPER_MACHINE.throughput(8) - PAPER_MACHINE.throughput(7)
        gain_numa = PAPER_MACHINE.throughput(9) - PAPER_MACHINE.throughput(8)
        gain_smt = PAPER_MACHINE.throughput(17) - PAPER_MACHINE.throughput(16)
        assert gain_within > gain_numa > gain_smt

    def test_sync_cost_zero_single_thread(self):
        assert PAPER_MACHINE.sync_cost(1) == 0.0
        assert PAPER_MACHINE.sync_cost(2) > 0.0

    def test_throughput_validation(self):
        with pytest.raises(ValueError):
            PAPER_MACHINE.throughput(0)


class TestSimulate:
    def test_sequential_ignores_threads(self):
        tr = WorkTrace()
        tr.sequential("s", work=1000)
        m = Machine()
        assert m.simulate(tr, 1).total_time == m.simulate(tr, 32).total_time

    def test_parallel_for_scales(self):
        tr = WorkTrace()
        tr.parallel_for("p", work=1_000_000, items=100_000)
        m = Machine()
        t1 = m.simulate(tr, 1).total_time
        t8 = m.simulate(tr, 8).total_time
        assert t1 / t8 > 6.0

    def test_items_limit_parallelism(self):
        tr = WorkTrace()
        tr.parallel_for("p", work=1_000_000, items=2)
        m = Machine()
        t2 = m.simulate(tr, 2).total_time
        t32 = m.simulate(tr, 32).total_time
        # only 2 independent items: 32 threads cannot beat 2 by much
        assert t32 > 0.9 * t2

    def test_static_chunk_floor(self):
        import numpy as np

        tr = WorkTrace()
        work = np.ones(1000)
        work[0] = 50_000  # hub in the first chunk
        tr.parallel_for(
            "p",
            work=float(work.sum()),
            items=1000,
            schedule="static",
            item_work=work,
        )
        m = Machine()
        assert m.simulate(tr, 32).total_time >= 50_000

    def test_dynamic_beats_static_on_skew(self):
        import numpy as np

        work = np.ones(1000)
        work[0] = 50_000
        tr_s = WorkTrace()
        tr_s.parallel_for("p", work=float(work.sum()), items=1000,
                          schedule="static", item_work=work)
        tr_d = WorkTrace()
        tr_d.parallel_for("p", work=float(work.sum()), items=1000)
        m = Machine()
        assert (
            m.simulate(tr_d, 32).total_time
            < m.simulate(tr_s, 32).total_time
        )

    def test_sync_makes_many_tiny_regions_slow(self):
        # One big region vs. 500 slivers of the same total work: the
        # sliced version must lose at high thread counts (the CA-road
        # BFS pathology).
        big = WorkTrace()
        big.parallel_for("p", work=100_000, items=10_000)
        sliced = WorkTrace()
        for _ in range(500):
            sliced.parallel_for("p", work=200, items=20)
        m = Machine()
        assert (
            m.simulate(sliced, 32).total_time
            > 3 * m.simulate(big, 32).total_time
        )

    def test_phase_times_sum_to_total(self):
        tr = WorkTrace()
        tr.parallel_for("a", work=100, items=10)
        tr.sequential("b", work=50)
        tr.task_dag("c", [Task(cost=10)])
        m = Machine()
        r = m.simulate(tr, 4)
        assert abs(sum(r.phase_times.values()) - r.total_time) < 1e-9

    def test_thread_bounds(self):
        tr = WorkTrace()
        m = Machine()
        with pytest.raises(ValueError):
            m.simulate(tr, 0)
        with pytest.raises(ValueError):
            m.simulate(tr, 33)

    def test_sweep(self):
        tr = WorkTrace()
        tr.parallel_for("a", work=1000, items=100)
        m = Machine()
        results = m.sweep(tr, [1, 2, 4])
        assert [r.threads for r in results] == [1, 2, 4]
        assert results[0].total_time > results[2].total_time

    def test_empty_trace(self):
        m = Machine()
        assert m.simulate(WorkTrace(), 8).total_time == 0.0
