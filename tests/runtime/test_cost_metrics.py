"""Tests for the cost model and execution profiles."""

import time

import pytest

from repro.runtime import CostModel, DEFAULT_COST_MODEL, ExecutionProfile


class TestCostModel:
    def test_stream_is_the_unit(self):
        assert DEFAULT_COST_MODEL.stream(edges=1) == DEFAULT_COST_MODEL.stream_edge

    def test_dfs_pricier_than_stream(self):
        c = DEFAULT_COST_MODEL
        assert c.dfs(nodes=1, edges=1) > c.stream(nodes=1, edges=1)
        assert c.bfs(nodes=1, edges=1) >= c.stream(nodes=1, edges=1)

    def test_linearity(self):
        c = CostModel()
        assert c.stream(nodes=3, edges=5) == 3 * c.stream_node + 5 * c.stream_edge
        assert c.dfs(nodes=2) == 2 * c.dfs_node
        assert c.bfs(edges=7) == 7 * c.bfs_edge

    def test_custom_constants(self):
        c = CostModel(dfs_edge=2.0, dfs_node=2.0)
        assert c.dfs(nodes=1, edges=1) == 4.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_COST_MODEL.dfs_edge = 1.0


class TestExecutionProfile:
    def test_wall_timer_accumulates(self):
        p = ExecutionProfile()
        with p.wall_timer("x"):
            time.sleep(0.01)
        with p.wall_timer("x"):
            time.sleep(0.01)
        assert p.wall_times["x"] >= 0.02

    def test_wall_timer_records_on_exception(self):
        p = ExecutionProfile()
        with pytest.raises(RuntimeError):
            with p.wall_timer("y"):
                raise RuntimeError()
        assert "y" in p.wall_times

    def test_bump(self):
        p = ExecutionProfile()
        p.bump("iters")
        p.bump("iters", 2)
        assert p.counters["iters"] == 3

    def test_log_task(self):
        p = ExecutionProfile()
        p.log_task(2, 0, 0, 125432)
        entry = p.task_log[0]
        assert (entry.scc, entry.fw, entry.bw, entry.remain) == (2, 0, 0, 125432)
