"""Tests for the ASCII chart renderer and the bandwidth-capped model."""

import pytest

from repro.bench import ascii_chart
from repro.runtime import Machine, MachineConfig, WorkTrace


class TestAsciiChart:
    def test_contains_marks_and_legend(self):
        out = ascii_chart(
            {"a": [1.0, 2.0, 3.0], "b": [0.5, 1.0, 1.5]},
            [1, 2, 4],
            title="t",
        )
        assert "o=a" in out and "x=b" in out
        assert out.startswith("t\n")
        assert "o" in out and "x" in out

    def test_peak_at_top_row(self):
        out = ascii_chart({"a": [0.0, 10.0]}, [1, 2], height=5)
        rows = [l for l in out.splitlines() if "|" in l]
        assert "o" in rows[0]  # max value on the top row

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": [1.0]}, [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({}, [])

    def test_all_zero_series(self):
        out = ascii_chart({"a": [0.0, 0.0]}, [1, 2])
        assert "o" in out  # rendered on the baseline row


class TestBandwidthCap:
    def test_cap_limits_throughput(self):
        capped = MachineConfig(mem_bandwidth_cap=6.0)
        assert capped.throughput(32) == 6.0
        assert capped.throughput(4) == 4.0  # below the ceiling

    def test_default_uncapped(self):
        cfg = MachineConfig()
        assert cfg.throughput(32) > 20.0

    def test_capped_parallel_for_flatlines(self):
        tr = WorkTrace()
        tr.parallel_for("p", work=1_000_000, items=100_000)
        m = Machine(MachineConfig(mem_bandwidth_cap=8.0))
        t8 = m.simulate(tr, 8).total_time
        t32 = m.simulate(tr, 32).total_time
        assert t32 >= t8 * 0.95  # no gain past the ceiling

    def test_sequential_unaffected(self):
        tr = WorkTrace()
        tr.sequential("s", work=100.0)
        m = Machine(MachineConfig(mem_bandwidth_cap=2.0))
        assert m.simulate(tr, 32).total_time == 100.0
