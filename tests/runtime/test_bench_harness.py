"""Tests for the bench harness and table/chart formatting."""

import numpy as np
import pytest

from repro.bench import (
    FIG6_METHODS,
    breakdown_series,
    format_speedup_table,
    format_table,
    run_method,
    run_tarjan_baseline,
    speedup_series,
)
from repro.runtime import Machine, STANDARD_THREAD_COUNTS
from tests.conftest import random_digraph


@pytest.fixture(scope="module")
def graph():
    return random_digraph(300, 1500, seed=8)


class TestRunners:
    def test_run_method_times_all_threads(self, graph):
        run = run_method(graph, "method2")
        assert set(run.times) == set(STANDARD_THREAD_COUNTS)
        assert run.times[1] > run.times[32]

    def test_run_tarjan_baseline(self, graph):
        result, t_seq = run_tarjan_baseline(graph)
        assert t_seq > 0
        assert result.method == "tarjan"

    def test_speedup_series_verifies(self, graph):
        series, runs = speedup_series(graph)
        assert [s.method for s in series] == list(FIG6_METHODS)
        for s in series:
            assert len(s.speedups) == len(STANDARD_THREAD_COUNTS)
            assert all(x > 0 for x in s.speedups)

    def test_speedup_series_detects_bad_partition(self, graph, monkeypatch):
        import repro.bench.harness as harness

        class FakeResult:
            def __init__(self, labels):
                self.labels = labels

        real = harness.same_partition
        monkeypatch.setattr(
            harness, "same_partition", lambda a, b: False
        )
        with pytest.raises(AssertionError):
            speedup_series(graph, methods=("method2",))
        monkeypatch.setattr(harness, "same_partition", real)

    def test_breakdown_series_shapes(self, graph):
        run = run_method(graph, "method2")
        data = breakdown_series(run)
        for phase, values in data.items():
            assert len(values) == len(STANDARD_THREAD_COUNTS)
        # totals match the per-phase sums
        for i, p in enumerate(STANDARD_THREAD_COUNTS):
            assert sum(v[i] for v in data.values()) == pytest.approx(
                run.times[p]
            )

    def test_custom_machine_and_threads(self, graph):
        m = Machine()
        run = run_method(graph, "method1", machine=m, thread_counts=(1, 2))
        assert set(run.times) == {1, 2}


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "2.50" in out  # float formatting

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_speedup_table(self):
        from repro.bench.harness import SpeedupSeries

        s = SpeedupSeries(method="m", threads=[1, 2], speedups=[1.0, 1.9])
        out = format_speedup_table("g", [1, 2], [s])
        assert "[g] speedup vs. Tarjan" in out
        assert "1.90" in out
