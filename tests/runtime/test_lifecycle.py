"""Run-lifecycle tests: checkpoints, resume, deadlines, degradation.

The load-bearing property: a run resumed from *any* phase-boundary
checkpoint produces labels **bit-identical** to the uninterrupted run
(state arrays + work queue + RNG state all round-trip), and a corrupt
checkpoint is detected by CRC and skipped in favour of the newest
older one that verifies.
"""

import os
import shutil
import struct
import time
import zipfile

import numpy as np
import pytest

import repro.core.method2 as method2_module
from repro.errors import (
    CheckpointError,
    PhaseTimeoutError,
    ReproError,
    exit_code_for,
)
from repro.graph import from_edge_array
from repro.runtime import FaultPlan, FaultSpec, SupervisorConfig
from repro.runtime.lifecycle import (
    RunHarness,
    latest_checkpoint,
    load_checkpoint,
)
from tests.conftest import random_digraph


@pytest.fixture
def graph():
    return random_digraph(300, 2400, seed=11)


def ckpt_files(d):
    return sorted(f for f in os.listdir(d) if f.endswith(".ckpt.npz"))


def corrupt(path):
    # Flip one byte inside the largest member's *compressed payload*.
    # A naive flip at the file midpoint can land in zip structural
    # slack (e.g. the redundant local-header size fields that readers
    # never consult) and damage nothing the loader actually reads.
    with zipfile.ZipFile(path) as zf:
        info = max(zf.infolist(), key=lambda i: i.compress_size)
    data = bytearray(open(path, "rb").read())
    fnlen, exlen = struct.unpack_from(
        "<HH", data, info.header_offset + 26
    )
    payload = info.header_offset + 30 + fnlen + exlen
    data[payload + info.compress_size // 2] ^= 0xFF
    open(path, "wb").write(bytes(data))


class TestCheckpointFiles:
    def test_one_checkpoint_per_phase(self, graph, tmp_path):
        h = RunHarness("method2", seed=1, checkpoint_dir=tmp_path)
        h.run(graph)
        names = ckpt_files(tmp_path)
        assert names == [
            f"phase-{i:02d}-{n}.ckpt.npz"
            for i, n in enumerate(
                ["par_trim_1", "par_fwbw", "par_trim_2", "par_trim2",
                 "par_trim_3", "par_wcc", "recur_fwbw"]
            )
        ]
        assert os.path.exists(tmp_path / "graph.npz")
        assert h.report.verified

    def test_load_verifies_crc(self, graph, tmp_path):
        RunHarness("method2", seed=1, checkpoint_dir=tmp_path).run(graph)
        path = tmp_path / ckpt_files(tmp_path)[0]
        arrays, meta = load_checkpoint(path)
        assert meta["phase_index"] == 0
        assert meta["method"] == "method2"
        corrupt(path)
        with pytest.raises(CheckpointError) as err:
            load_checkpoint(path)
        assert str(path) in str(err.value)

    def test_missing_checkpoint_typed(self, tmp_path):
        with pytest.raises(CheckpointError) as err:
            latest_checkpoint(tmp_path / "absent.ckpt.npz")
        assert exit_code_for(err.value) == 13

    def test_empty_dir_typed(self, tmp_path):
        with pytest.raises(CheckpointError):
            latest_checkpoint(tmp_path)

    def test_fallback_skips_corrupt_newest(self, graph, tmp_path):
        RunHarness("method2", seed=1, checkpoint_dir=tmp_path).run(graph)
        names = ckpt_files(tmp_path)
        corrupt(tmp_path / names[-1])
        path, _, meta = latest_checkpoint(tmp_path)
        assert path.endswith(names[-2])
        assert meta["phase_index"] == len(names) - 2

    def test_all_corrupt_lists_defects(self, graph, tmp_path):
        RunHarness("method2", seed=1, checkpoint_dir=tmp_path).run(graph)
        for name in ckpt_files(tmp_path):
            corrupt(tmp_path / name)
        with pytest.raises(CheckpointError) as err:
            latest_checkpoint(tmp_path)
        assert "no valid checkpoint" in str(err.value)


class TestResume:
    @pytest.mark.parametrize("method", ["method1", "method2"])
    def test_resume_from_every_boundary_is_bit_identical(
        self, graph, tmp_path, method
    ):
        base_dir = tmp_path / "base"
        h = RunHarness(method, seed=3, checkpoint_dir=base_dir)
        base = h.run(graph).labels.copy()
        names = ckpt_files(base_dir)
        for cut in range(len(names)):
            d = tmp_path / f"cut{cut}"
            shutil.copytree(base_dir, d)
            for name in names[cut + 1:]:
                os.remove(d / name)
            h2 = RunHarness.from_checkpoint(d)
            labels = h2.resume(d).labels
            assert np.array_equal(labels, base), (
                f"{method} resumed after {names[cut]} diverged"
            )
            assert h2.report.resumed_from.endswith(names[cut])
            assert h2.report.cross_checked

    def test_resume_completed_run_verifies_only(self, graph, tmp_path):
        h = RunHarness("method2", seed=3, checkpoint_dir=tmp_path)
        base = h.run(graph).labels
        h2 = RunHarness.from_checkpoint(tmp_path)
        res = h2.resume(tmp_path)
        assert np.array_equal(res.labels, base)
        assert h2.report.phases_run == []
        assert h2.report.resumed_phase is None
        assert h2.report.verified

    def test_resume_after_corruption_falls_back(self, graph, tmp_path):
        h = RunHarness("method2", seed=3, checkpoint_dir=tmp_path)
        base = h.run(graph).labels.copy()
        corrupt(tmp_path / ckpt_files(tmp_path)[-1])
        res = RunHarness.from_checkpoint(tmp_path).resume(tmp_path)
        assert np.array_equal(res.labels, base)

    def test_wrong_graph_refused(self, graph, tmp_path):
        RunHarness("method2", seed=3, checkpoint_dir=tmp_path).run(graph)
        other = random_digraph(300, 2400, seed=99)
        with pytest.raises(CheckpointError) as err:
            RunHarness.from_checkpoint(tmp_path).resume(tmp_path, other)
        assert "fingerprint" in str(err.value)

    def test_wrong_method_refused(self, graph, tmp_path):
        RunHarness("method2", seed=3, checkpoint_dir=tmp_path).run(graph)
        h = RunHarness("method1", seed=3)
        with pytest.raises(CheckpointError):
            h.resume(tmp_path, graph)

    def test_wrong_plan_refused(self, graph, tmp_path):
        RunHarness("method2", seed=3, checkpoint_dir=tmp_path).run(graph)
        h = RunHarness("method2", seed=3, use_trim2=False)
        with pytest.raises(CheckpointError) as err:
            h.resume(tmp_path, graph)
        assert "plan" in str(err.value)

    def test_missing_graph_beside_checkpoint(self, graph, tmp_path):
        RunHarness("method2", seed=3, checkpoint_dir=tmp_path).run(graph)
        os.remove(tmp_path / "graph.npz")
        with pytest.raises(CheckpointError) as err:
            RunHarness.from_checkpoint(tmp_path).resume(tmp_path)
        assert "graph.npz" in str(err.value)

    def test_from_checkpoint_restores_config(self, graph, tmp_path):
        cfg = SupervisorConfig(task_timeout=7.0, max_task_retries=1)
        h = RunHarness(
            "method2",
            seed=42,
            checkpoint_dir=tmp_path,
            backend="serial",
            num_threads=3,
            phase_timeout=120.0,
            supervisor=cfg,
            queue_k=4,
            pivot_strategy="random",
        )
        h.run(graph)
        h2 = RunHarness.from_checkpoint(tmp_path)
        assert h2.seed == 42
        assert h2.num_threads == 3
        assert h2.phase_timeout == 120.0
        assert h2.supervisor.task_timeout == 7.0
        assert h2.method_kwargs["queue_k"] == 4
        h3 = RunHarness.from_checkpoint(tmp_path, backend="threads")
        assert h3.backend == "threads"


class TestHarnessValidation:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            RunHarness("tarjan")

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            RunHarness("method2", phase_timeout=0)

    def test_unserializable_kwargs_rejected_when_checkpointing(
        self, tmp_path
    ):
        with pytest.raises(ValueError):
            RunHarness(
                "method2", checkpoint_dir=tmp_path, queue_k=object()
            )

    def test_runs_without_checkpoint_dir(self, graph):
        h = RunHarness("method2", seed=1)
        res = h.run(graph)
        assert h.report.checkpoints == []
        assert res.num_sccs > 0


class TestDeadlines:
    def test_wedged_phase_times_out(self, graph, monkeypatch):
        import repro.core.method1 as m1

        monkeypatch.setattr(
            m1, "par_trim", lambda state, **kw: time.sleep(10)
        )
        h = RunHarness("method1", seed=1, phase_timeout=0.3)
        t0 = time.monotonic()
        with pytest.raises(PhaseTimeoutError) as err:
            h.run(graph)
        assert time.monotonic() - t0 < 5
        assert exit_code_for(err.value) == 14

    def test_generous_deadline_does_not_fire(self, graph):
        h = RunHarness("method2", seed=1, phase_timeout=60.0)
        res = h.run(graph)
        assert h.report.degradations == 0
        assert res.num_sccs > 0


class TestDegradation:
    def _flaky(self, monkeypatch, fail_backends):
        real = method2_module.run_recur_phase
        calls = []

        def flaky(state, initial, *, backend="serial", **kw):
            calls.append(backend)
            if backend in fail_backends:
                raise RuntimeError(f"synthetic {backend} failure")
            return real(state, initial, backend=backend, **kw)

        monkeypatch.setattr(method2_module, "run_recur_phase", flaky)
        return calls

    def test_degrades_down_the_chain_to_serial(self, graph, monkeypatch):
        calls = self._flaky(
            monkeypatch, {"supervised", "processes", "threads"}
        )
        h = RunHarness("method2", seed=1, backend="supervised")
        res = h.run(graph)
        assert calls == ["supervised", "processes", "serial"]
        assert h.report.degradations == 2
        assert h.report.degraded_to == "serial"
        assert h.report.cross_checked  # degraded runs are proven
        assert res.num_sccs > 0

    def test_serial_failure_is_fatal(self, graph, monkeypatch):
        self._flaky(
            monkeypatch, {"supervised", "processes", "threads", "serial"}
        )
        h = RunHarness("method2", seed=1, backend="threads")
        with pytest.raises(RuntimeError):
            h.run(graph)

    def test_resume_replays_degradation_bit_identically(
        self, graph, tmp_path, monkeypatch
    ):
        # degrade during recur, then corrupt the final checkpoint so
        # resume restarts the recur phase from the par_wcc boundary:
        # the rolled-back RNG state means the re-degraded serial run
        # reproduces the original labels exactly.
        calls = self._flaky(monkeypatch, {"threads"})
        h = RunHarness(
            "method2", seed=1, backend="threads", checkpoint_dir=tmp_path
        )
        base = h.run(graph).labels.copy()
        assert calls == ["threads", "serial"]
        corrupt(tmp_path / ckpt_files(tmp_path)[-1])
        calls.clear()
        h2 = RunHarness.from_checkpoint(tmp_path)
        res = h2.resume(tmp_path)
        assert calls == ["threads", "serial"]
        assert h2.report.degradations == 1
        assert np.array_equal(res.labels, base)

    def test_rollback_discards_partial_phase_work(
        self, graph, monkeypatch
    ):
        real = method2_module.run_recur_phase
        state_holder = {}

        def poison_then_fail(state, initial, *, backend="serial", **kw):
            if backend != "serial":
                # mutate state, then die: the harness must roll back
                state.mark_singletons(state.active_nodes()[:5], 3)
                state_holder["poisoned"] = True
                raise RuntimeError("synthetic failure after mutation")
            return real(state, initial, backend=backend, **kw)

        monkeypatch.setattr(
            method2_module, "run_recur_phase", poison_then_fail
        )
        h = RunHarness("method2", seed=1, backend="threads")
        res = h.run(graph)  # cross-check would fail without rollback
        assert state_holder["poisoned"]
        assert h.report.cross_checked


class TestFaultPlanPhaseSite:
    def test_raise_at_boundary_propagates(self, graph):
        plan = FaultPlan(
            [FaultSpec(kind="raise", site="phase", index=2, stage="pre")]
        )
        h = RunHarness("method2", seed=1, fault_plan=plan)
        with pytest.raises(Exception):
            h.run(graph)

    def test_hook_sees_all_stages_in_order(self, graph, tmp_path):
        events = []
        h = RunHarness(
            "method2",
            seed=1,
            checkpoint_dir=tmp_path,
            phase_hook=lambda name, stage: events.append((name, stage)),
        )
        h.run(graph)
        per_phase = [e for e in events if e[0] == "par_fwbw"]
        assert per_phase == [
            ("par_fwbw", "pre"), ("par_fwbw", "mid"), ("par_fwbw", "post")
        ]


class TestExitCodes:
    def test_taxonomy_is_distinct(self):
        assert exit_code_for(CheckpointError("x")) == 13
        assert exit_code_for(PhaseTimeoutError("p", 1.0)) == 14
        assert exit_code_for(ReproError("x")) == 10
        assert exit_code_for(RuntimeError("x")) == 1
