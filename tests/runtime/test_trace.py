"""Unit tests for work-trace records."""

import numpy as np
import pytest

from repro.runtime import (
    ParallelForRecord,
    SequentialRecord,
    Task,
    TaskDAGRecord,
    WorkTrace,
    static_chunk_maxima,
)


class TestRecords:
    def test_parallel_for_validation(self):
        with pytest.raises(ValueError):
            ParallelForRecord(phase="p", work=-1, items=0)
        with pytest.raises(ValueError):
            ParallelForRecord(phase="p", work=1, items=1, schedule="magic")

    def test_sequential_validation(self):
        with pytest.raises(ValueError):
            SequentialRecord(phase="p", work=-1)

    def test_task_validation(self):
        with pytest.raises(ValueError):
            Task(cost=-1)

    def test_task_dag_spawn_order_enforced(self):
        with pytest.raises(ValueError):
            TaskDAGRecord(
                phase="t", tasks=(Task(cost=1, parent=0), Task(cost=1))
            )
        with pytest.raises(ValueError):
            TaskDAGRecord(phase="t", tasks=(Task(cost=1, parent=1),))

    def test_task_dag_queue_k(self):
        with pytest.raises(ValueError):
            TaskDAGRecord(phase="t", tasks=(), queue_k=0)

    def test_task_dag_stats(self):
        rec = TaskDAGRecord(
            phase="t",
            tasks=(Task(cost=2), Task(cost=3, parent=0), Task(cost=5)),
        )
        assert rec.total_work == 10
        assert rec.num_roots == 2


class TestStaticChunkMaxima:
    def test_uniform_items(self):
        out = static_chunk_maxima(np.ones(100), [1, 2, 4])
        assert out[1] == 100
        assert out[2] == 50
        assert out[4] == 25

    def test_skewed_items(self):
        work = np.ones(100)
        work[0] = 1000  # hub at the front
        out = static_chunk_maxima(work, [4])
        assert out[4] >= 1000  # the hub chunk dominates

    def test_empty(self):
        out = static_chunk_maxima(np.empty(0), [1, 2])
        assert out == {1: 0.0, 2: 0.0}

    def test_more_threads_than_items(self):
        out = static_chunk_maxima(np.array([5.0, 7.0]), [8])
        assert out[8] == 7.0


class TestWorkTrace:
    def test_recording_and_totals(self):
        tr = WorkTrace()
        tr.parallel_for("a", work=10, items=5)
        tr.sequential("b", work=3)
        tr.task_dag("c", [Task(cost=2), Task(cost=2, parent=0)])
        assert len(tr) == 3
        assert tr.total_work() == 17
        assert tr.phase_work() == {"a": 10.0, "b": 3.0, "c": 4.0}

    def test_phases_first_appearance_order(self):
        tr = WorkTrace()
        tr.sequential("z", work=1)
        tr.sequential("a", work=1)
        tr.sequential("z", work=1)
        assert tr.phases() == ["z", "a"]

    def test_static_item_work_computes_chunks(self):
        tr = WorkTrace()
        tr.parallel_for(
            "a",
            work=100,
            items=10,
            schedule="static",
            item_work=np.full(10, 10.0),
        )
        rec = tr.records[0]
        assert rec.static_chunk_max[2] == 50.0

    def test_merged(self):
        a = WorkTrace()
        a.sequential("x", work=1)
        b = WorkTrace()
        b.sequential("y", work=2)
        m = a.merged(b)
        assert len(m) == 2
        assert m.total_work() == 3
        assert len(a) == 1 and len(b) == 1  # originals untouched
