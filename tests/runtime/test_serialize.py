"""Tests for trace serialization."""

import numpy as np
import pytest

from repro.runtime import (
    Machine,
    Task,
    WorkTrace,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)


def sample_trace() -> WorkTrace:
    tr = WorkTrace()
    tr.parallel_for("a", work=100.0, items=10)
    tr.parallel_for(
        "b",
        work=50.0,
        items=5,
        schedule="static",
        item_work=np.array([30.0, 5.0, 5.0, 5.0, 5.0]),
    )
    tr.sequential("c", work=7.5)
    tr.task_dag(
        "d",
        [Task(cost=3.0), Task(cost=4.0, parent=0), Task(cost=1.0)],
        queue_k=8,
    )
    return tr


class TestRoundtrip:
    def test_dict_roundtrip_preserves_records(self):
        tr = sample_trace()
        tr2 = trace_from_dict(trace_to_dict(tr))
        assert len(tr2) == len(tr)
        assert tr2.total_work() == tr.total_work()
        assert tr2.phase_work() == tr.phase_work()

    def test_simulation_identical_after_roundtrip(self):
        tr = sample_trace()
        tr2 = trace_from_dict(trace_to_dict(tr))
        m = Machine()
        for p in (1, 8, 32):
            assert (
                m.simulate(tr, p).total_time
                == m.simulate(tr2, p).total_time
            )

    def test_file_roundtrip(self, tmp_path):
        tr = sample_trace()
        path = tmp_path / "trace.json"
        save_trace(tr, path)
        tr2 = load_trace(path)
        assert tr2.total_work() == tr.total_work()

    def test_static_chunks_preserved(self):
        tr = sample_trace()
        tr2 = trace_from_dict(trace_to_dict(tr))
        rec = tr2.records[1]
        assert rec.static_chunk_max[2] == pytest.approx(35.0)

    def test_version_checked(self):
        with pytest.raises(ValueError):
            trace_from_dict({"version": 99, "records": []})

    def test_unknown_record_type(self):
        with pytest.raises(ValueError):
            trace_from_dict(
                {"version": 1, "records": [{"type": "quantum"}]}
            )

    def test_real_algorithm_trace_roundtrip(self):
        from repro import strongly_connected_components
        from tests.conftest import random_digraph

        g = random_digraph(150, 600, seed=3)
        r = strongly_connected_components(g, "method2")
        tr2 = trace_from_dict(trace_to_dict(r.profile.trace))
        m = Machine()
        assert m.simulate(tr2, 32).total_time == pytest.approx(
            m.simulate(r.profile.trace, 32).total_time
        )
