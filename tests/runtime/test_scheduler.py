"""Unit tests for the two-level work-queue simulator."""

import pytest

from repro.runtime import MachineConfig, Task, TaskDAGRecord, simulate_task_dag

CFG = MachineConfig()


def dag(tasks, k=1):
    return TaskDAGRecord(phase="t", tasks=tuple(tasks), queue_k=k)


class TestBasics:
    def test_empty(self):
        t, stats = simulate_task_dag(dag([]), 4, CFG)
        assert t == 0.0
        assert stats.tasks == 0

    def test_single_task(self):
        t, stats = simulate_task_dag(dag([Task(cost=100)]), 1, CFG)
        assert t >= 100
        assert stats.tasks == 1
        assert stats.initial_items == 1

    def test_all_tasks_execute(self):
        tasks = [Task(cost=10) for _ in range(50)]
        _, stats = simulate_task_dag(dag(tasks), 4, CFG)
        assert stats.tasks == 50

    def test_children_execute_after_parent(self):
        tasks = [Task(cost=10), Task(cost=10, parent=0), Task(cost=10, parent=1)]
        t, _ = simulate_task_dag(dag(tasks), 8, CFG)
        assert t >= 30  # strictly serialized chain

    def test_deterministic(self):
        tasks = [Task(cost=c) for c in (5, 9, 2, 14, 3, 8)]
        a = simulate_task_dag(dag(tasks, k=2), 3, CFG)
        b = simulate_task_dag(dag(tasks, k=2), 3, CFG)
        assert a[0] == b[0]
        assert a[1] == b[1]


class TestScaling:
    def test_wide_phase_scales(self):
        tasks = [Task(cost=100) for _ in range(640)]
        t1, _ = simulate_task_dag(dag(tasks, k=8), 1, CFG)
        t8, _ = simulate_task_dag(dag(tasks, k=8), 8, CFG)
        assert t1 / t8 > 5.0

    def test_serial_chain_does_not_scale(self):
        tasks = [Task(cost=100, parent=i - 1 if i else -1) for i in range(50)]
        t1, _ = simulate_task_dag(dag(tasks), 1, CFG)
        t32, _ = simulate_task_dag(dag(tasks), 32, CFG)
        assert t32 > 0.95 * t1  # the Section 3.3 pathology

    def test_more_workers_never_much_slower(self):
        tasks = [Task(cost=50) for _ in range(100)]
        t4, _ = simulate_task_dag(dag(tasks, k=4), 4, CFG)
        t16, _ = simulate_task_dag(dag(tasks, k=4), 16, CFG)
        assert t16 <= t4 * 1.05

    def test_numa_smt_speeds_affect_tasks(self):
        # 32 identical tasks on 32 workers: makespan set by the slowest
        # (SMT) worker, so it exceeds cost/1.0.
        tasks = [Task(cost=1000) for _ in range(32)]
        t32, _ = simulate_task_dag(dag(tasks, k=1), 32, CFG)
        assert t32 >= 1000 / CFG.smt_eff


class TestQueueBehaviour:
    def test_queue_depth_tracks_serialization(self):
        # A chain where each task spawns one child: global queue should
        # stay tiny (the paper's "maximum queue depth ... only six").
        tasks = [Task(cost=10, parent=i - 1 if i else -1) for i in range(100)]
        _, stats = simulate_task_dag(dag(tasks), 1, CFG)
        assert stats.max_total_depth <= 2

    def test_queue_depth_with_wide_roots(self):
        tasks = [Task(cost=10) for _ in range(1000)]
        _, stats = simulate_task_dag(dag(tasks, k=8), 4, CFG)
        assert stats.max_global_depth >= 900

    def test_larger_k_fewer_global_accesses(self):
        tasks = [Task(cost=10) for _ in range(800)]
        _, s1 = simulate_task_dag(dag(tasks, k=1), 8, CFG)
        _, s8 = simulate_task_dag(dag(tasks, k=8), 8, CFG)
        assert s8.global_accesses < s1.global_accesses / 4

    def test_utilization_bounds(self):
        tasks = [Task(cost=10) for _ in range(64)]
        _, stats = simulate_task_dag(dag(tasks, k=2), 8, CFG)
        assert 0.0 < stats.utilization <= 1.2  # small overhead slack

    def test_merge_stats(self):
        tasks = [Task(cost=10) for _ in range(10)]
        _, a = simulate_task_dag(dag(tasks), 2, CFG)
        _, b = simulate_task_dag(dag(tasks), 2, CFG)
        merged = a.merge(b)
        assert merged.tasks == 20
        assert merged.max_global_depth == a.max_global_depth
