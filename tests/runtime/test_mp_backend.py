"""Tests for the multiprocessing (GIL-free) phase-2 backend."""

import numpy as np
import pytest

from repro import strongly_connected_components
from repro.core import SCCState, same_partition
from repro.core.recurfwbw import run_recur_phase
from repro.runtime.mp_backend import fork_available
from repro.runtime.trace import TaskDAGRecord
from tests.conftest import random_digraph, scipy_scc_labels

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="requires POSIX fork"
)


class TestProcessBackend:
    @pytest.mark.parametrize("seed", range(3))
    def test_correct_decomposition(self, seed):
        g = random_digraph(200, 800, seed=seed)
        s = SCCState(g, seed=seed)
        run_recur_phase(
            s,
            [(0, np.arange(200))],
            backend="processes",
            num_threads=2,
        )
        s.check_done()
        assert same_partition(s.labels, scipy_scc_labels(g))

    def test_scan_representation(self):
        g = random_digraph(120, 400, seed=5)
        s = SCCState(g)
        run_recur_phase(
            s, [(0, None)], backend="processes", num_threads=2
        )
        s.check_done()
        assert same_partition(s.labels, scipy_scc_labels(g))

    def test_task_dag_recorded(self):
        g = random_digraph(100, 400, seed=1)
        s = SCCState(g)
        n_tasks = run_recur_phase(
            s,
            [(0, np.arange(100))],
            backend="processes",
            num_threads=2,
            queue_k=4,
        )
        recs = [r for r in s.trace if isinstance(r, TaskDAGRecord)]
        assert len(recs) == 1
        assert len(recs[0].tasks) == n_tasks
        for i, t in enumerate(recs[0].tasks):
            assert t.parent < i

    def test_counters_synced(self):
        g = random_digraph(150, 500, seed=2)
        s = SCCState(g)
        run_recur_phase(
            s, [(0, np.arange(150))], backend="processes", num_threads=2
        )
        assert s.num_sccs == int(s.labels.max()) + 1
        # fresh colours must not collide with ones used in the run
        assert s.new_color() > int(s.color.max())

    def test_full_methods_through_api(self):
        g = random_digraph(200, 900, seed=3)
        oracle = scipy_scc_labels(g)
        for method in ("baseline", "method1", "method2"):
            r = strongly_connected_components(
                g, method, backend="processes", num_threads=2
            )
            assert same_partition(r.labels, oracle), method

    def test_task_log_collected(self):
        g = random_digraph(150, 600, seed=4)
        s = SCCState(g)
        run_recur_phase(
            s, [(0, np.arange(150))], backend="processes", num_threads=2
        )
        assert len(s.profile.task_log) > 0

    def test_empty_initial(self):
        g = random_digraph(10, 20, seed=0)
        s = SCCState(g)
        assert (
            run_recur_phase(s, [], backend="processes", num_threads=2)
            == 0
        )
