"""Unit tests for the fault-injection harness and the supervisor."""

import glob
import multiprocessing as mp

import numpy as np
import pytest

from repro.core import SCCState, StateInvariantError, same_partition, tarjan_scc
from repro.core.recurfwbw import run_recur_phase
from repro.runtime import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    SupervisorConfig,
    TwoLevelWorkQueue,
)
from repro.runtime import faults as faults_mod
from repro.runtime.mp_backend import _shm_array, fork_available
from repro.runtime.supervisor import repair_partition
from tests.conftest import random_digraph, scipy_scc_labels

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires POSIX fork"
)


class TestFaultPlan:
    def test_match_by_site_index_attempt(self):
        plan = FaultPlan([FaultSpec(kind="raise", site="task", index=3)])
        assert plan.match("task", 3, attempt=0) is not None
        assert plan.match("task", 3, attempt=1) is None  # times=1
        assert plan.match("task", 2, attempt=0) is None
        assert plan.match("queue", 3, attempt=0) is None

    def test_times_covers_retries(self):
        plan = FaultPlan([FaultSpec(kind="raise", index=0, times=3)])
        assert all(plan.match("task", 0, a) for a in range(3))
        assert plan.match("task", 0, 3) is None

    def test_fire_raise(self):
        plan = FaultPlan.single("raise", index=1, stage="mid")
        plan.fire("task", 1, stage="pre")  # wrong stage: no-op
        with pytest.raises(FaultInjected):
            plan.fire("task", 1, stage="mid")

    def test_crash_downgraded_at_thread_site(self):
        plan = FaultPlan([FaultSpec(kind="crash", site="queue", index=0)])
        with pytest.raises(FaultInjected):
            plan.fire("queue", 0, stage="pre", thread_site=True)

    def test_poison_never_fires_as_control_fault(self):
        plan = FaultPlan.single("poison", index=0)
        plan.fire("task", 0, stage="pre")  # must not raise
        assert plan.poison("task", 0)
        assert not plan.poison("task", 1)

    def test_random_plan_is_seed_deterministic(self):
        a = FaultPlan.random(42, n_faults=4)
        b = FaultPlan.random(42, n_faults=4)
        c = FaultPlan.random(43, n_faults=4)
        assert a.specs == b.specs
        assert a.specs != c.specs

    def test_parse_compact(self):
        plan = FaultPlan.parse("crash@2,hang@0:mid, poison@5")
        kinds = [(s.kind, s.index, s.stage) for s in plan.specs]
        assert kinds == [
            ("crash", 2, "pre"),
            ("hang", 0, "mid"),
            ("poison", 5, "pre"),
        ]

    def test_parse_json(self):
        plan = FaultPlan.parse('[{"kind": "raise", "index": 7, "times": 2}]')
        assert plan.specs[0].kind == "raise"
        assert plan.specs[0].times == 2

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("explode")
        with pytest.raises(ValueError):
            FaultPlan([FaultSpec(kind="meteor")])

    def test_parse_corrupt_compact(self):
        plan = FaultPlan.parse("corrupt.indptr@0:post")
        (spec,) = plan.specs
        assert spec.kind == "corrupt"
        assert spec.array == "indptr"
        assert spec.index == 0
        assert spec.stage == "post"
        assert spec.site == "task"  # storage arrays keep the default site

    def test_parse_corrupt_run_arrays_imply_phase_site(self):
        # labels/color only exist inside a run, so the compact grammar
        # must route them to the phase site where the run-local seals
        # can catch the flip — any other site would silently no-op.
        for array in ("labels", "color"):
            plan = FaultPlan.parse(f"corrupt.{array}@1:post")
            (spec,) = plan.specs
            assert spec.site == "phase", array
            assert spec.array == array

    def test_corrupt_run_arrays_reject_non_phase_sites(self):
        with pytest.raises(ValueError, match="requires site='phase'"):
            FaultSpec(kind="corrupt", site="task", array="labels")
        with pytest.raises(ValueError, match="requires site='phase'"):
            FaultSpec(kind="corrupt", site="request", array="color")
        # the phase site itself is fine
        FaultSpec(kind="corrupt", site="phase", array="labels")

    def test_global_arming(self):
        assert faults_mod.active_plan() is None
        with faults_mod.injected(FaultPlan.single("raise")) as plan:
            assert faults_mod.active_plan() is plan
        assert faults_mod.active_plan() is None


class TestQueueFaults:
    def test_exception_does_not_wedge_termination(self):
        # a raising callback must stop the queue, not deadlock it
        def proc(item):
            if item == 5:
                raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            TwoLevelWorkQueue(3, k=2).run(range(20), proc)

    def test_record_mode_drains_and_records(self):
        seen = []

        def proc(item):
            if item % 3 == 0:
                raise ValueError(f"bad {item}")
            seen.append(item)

        tel = TwoLevelWorkQueue(2, k=1, on_error="record").run(
            range(9), proc
        )
        assert tel.failed == 3
        assert len(tel.errors) == 3
        assert sorted(seen) == [1, 2, 4, 5, 7, 8]

    def test_record_mode_with_children(self):
        def proc(item):
            if item == "bad":
                raise RuntimeError("dropped subtree")
            if item == 0:
                return ["bad", 1, 2]

        tel = TwoLevelWorkQueue(2, on_error="record").run([0], proc)
        assert tel.failed == 1 and tel.tasks == 3

    def test_injected_raise_via_global_plan(self):
        plan = FaultPlan(
            [FaultSpec(kind="raise", site="queue", index=0)]
        )
        with faults_mod.injected(plan):
            tel = TwoLevelWorkQueue(1, on_error="record").run(
                range(5), lambda i: None
            )
        assert tel.failed == 1
        assert isinstance(tel.errors[0], FaultInjected)

    def test_zero_overhead_when_disarmed(self):
        # no plan armed: the hook must not even allocate a counter
        tel = TwoLevelWorkQueue(2).run(range(10), lambda i: None)
        assert tel.failed == 0 and tel.errors == []


class TestShmHygiene:
    def test_registry_sees_segment_before_failure(self):
        # a failure *after* creation must still leave the segment
        # registered so the caller's finally can unlink it
        registry = []
        with pytest.raises((TypeError, ValueError)):
            # shape/init mismatch triggers the failure after create
            _shm_array((10,), np.int64, np.zeros(3, dtype=np.int64), registry)
        assert len(registry) == 1
        registry[0].close()
        registry[0].unlink()


class TestRepairPartition:
    def test_uncommitted_nodes_return_to_parent_colour(self):
        color = np.array([5, 7, 8, 9, 5, -1], dtype=np.int64)
        mark = np.zeros(6, dtype=bool)
        mark[5] = True
        n = repair_partition(color, mark, 5, (7, 8, 9), None)
        assert n == 3
        assert color.tolist() == [5, 5, 5, 5, 5, -1]

    def test_committed_nodes_stay_detached(self):
        color = np.array([9, 9, 7], dtype=np.int64)
        mark = np.array([True, False, False])
        repair_partition(color, mark, 5, (7, 8, 9), None)
        assert color.tolist() == [-1, 5, 5]

    def test_hybrid_restriction(self):
        color = np.array([7, 7, 7], dtype=np.int64)
        mark = np.zeros(3, dtype=bool)
        nodes = np.array([0, 2], dtype=np.int64)
        n = repair_partition(color, mark, 5, (7, 8, 9), nodes)
        assert n == 2
        assert color.tolist() == [5, 7, 5]  # node 1 untouched


def _live_shm_segments() -> set:
    return set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/wnsm_*"))


@needs_fork
class TestSupervisedBackend:
    def _run(self, plan=None, seed=1, n=150, m=600, **cfg_kwargs):
        g = random_digraph(n, m, seed=seed)
        s = SCCState(g, seed=seed)
        cfg = SupervisorConfig(
            task_timeout=cfg_kwargs.pop("task_timeout", 5.0),
            grace=0.1,
            backoff_base=0.01,
            fault_plan=plan,
            **cfg_kwargs,
        )
        tasks = run_recur_phase(
            s,
            [(0, np.arange(n))],
            backend="supervised",
            num_threads=2,
            supervisor=cfg,
        )
        return g, s, tasks

    def test_clean_run_matches_oracle(self):
        g, s, tasks = self._run()
        s.check_done()
        assert tasks > 0
        assert same_partition(s.labels, scipy_scc_labels(g))
        assert "supervisor_retries" not in s.profile.counters

    def test_injected_raise_is_retried(self):
        g, s, _ = self._run(FaultPlan.single("raise", index=0))
        assert s.profile.counters["supervisor_retries"] == 1
        assert same_partition(s.labels, scipy_scc_labels(g))

    def test_mid_task_raise_repairs_colours(self):
        g, s, _ = self._run(FaultPlan.single("raise", index=1, stage="mid"))
        assert same_partition(s.labels, scipy_scc_labels(g))
        s.check_invariants(cross_check=True)

    def test_retry_exhaustion_degrades_to_serial(self):
        plan = FaultPlan([FaultSpec(kind="raise", index=0, times=99)])
        g, s, tasks = self._run(plan, max_task_retries=1)
        assert s.profile.counters["supervisor_degraded"] == 1
        assert tasks > 0  # serial driver completed the phase
        assert same_partition(s.labels, scipy_scc_labels(g))

    def test_poisoned_write_caught_and_redone(self):
        g, s, _ = self._run(FaultPlan.single("poison", index=1))
        assert s.profile.counters["supervisor_verify_failures"] == 1
        assert s.profile.counters["supervisor_degraded"] == 1
        assert same_partition(s.labels, scipy_scc_labels(g))

    def test_no_shm_leak_across_degradation(self):
        before = _live_shm_segments()
        plan = FaultPlan([FaultSpec(kind="raise", index=0, times=99)])
        self._run(plan, max_task_retries=0)
        assert _live_shm_segments() <= before

    def test_partial_phase_skips_completeness_check(self):
        # an empty seed resolves nothing: the verifier must apply the
        # structural checks only, not demand a complete labelling
        g = random_digraph(60, 150, seed=3)
        s = SCCState(g)
        tasks = run_recur_phase(
            s,
            [],
            backend="supervised",
            num_threads=2,
            supervisor=SupervisorConfig(task_timeout=5.0),
        )
        assert tasks == 0
        assert s.unfinished() == 60

    def test_report_via_direct_call(self):
        from repro.runtime import run_supervised_recur_phase

        g = random_digraph(100, 400, seed=2)
        s = SCCState(g)
        report = run_supervised_recur_phase(
            s,
            [(0, np.arange(100))],
            num_workers=2,
            config=SupervisorConfig(
                task_timeout=5.0,
                fault_plan=FaultPlan.single("raise", index=0),
            ),
        )
        assert report.retries == 1 and report.task_errors == 1
        assert report.verified and report.cross_checked
        assert not report.degraded
        assert report.tasks > 0


@needs_fork
class TestMpBackendGuard:
    def test_timeout_surfaces_instead_of_deadlock(self):
        # a hung task under the *plain* process backend must error out
        # (the pre-fix behaviour was an unbounded fut.get() deadlock)
        from repro.runtime.mp_backend import (
            _WORKER_CTX,
            run_recur_phase_processes,
        )

        g = random_digraph(80, 300, seed=0)
        s = SCCState(g)
        plan = FaultPlan(
            [FaultSpec(kind="hang", index=0, hang_seconds=60.0)]
        )
        with pytest.raises(RuntimeError, match="did not complete"):
            with faults_mod.injected(plan):
                run_recur_phase_processes(
                    s,
                    [(0, np.arange(80))],
                    num_workers=2,
                    task_timeout=0.5,
                )
        assert not _WORKER_CTX  # context disarmed on the error path

    def test_dead_worker_diagnosed(self):
        from repro.runtime.mp_backend import run_recur_phase_processes

        g = random_digraph(80, 300, seed=0)
        s = SCCState(g)
        plan = FaultPlan([FaultSpec(kind="crash", index=0)])
        with pytest.raises(RuntimeError, match="supervised"):
            with faults_mod.injected(plan):
                run_recur_phase_processes(
                    s,
                    [(0, np.arange(80))],
                    num_workers=2,
                    task_timeout=1.0,
                )


class TestCheckInvariants:
    def test_clean_complete_state_passes(self):
        g = random_digraph(50, 200, seed=0)
        s = SCCState(g)
        labels = tarjan_scc(g)
        for sid in range(int(labels.max()) + 1):
            s.mark_scc(np.flatnonzero(labels == sid), 3)
        s.check_invariants(cross_check=True)

    def test_mark_color_disagreement_detected(self):
        g = random_digraph(20, 60, seed=0)
        s = SCCState(g)
        s.mark[3] = True  # mark without detaching the colour
        with pytest.raises(StateInvariantError, match="DONE_COLOR"):
            s.check_invariants(require_complete=False)

    def test_unresolved_nodes_detected(self):
        g = random_digraph(20, 60, seed=0)
        s = SCCState(g)
        with pytest.raises(StateInvariantError, match="unresolved"):
            s.check_invariants()

    def test_wrong_partition_caught_by_cross_check(self):
        g, n = random_digraph(40, 160, seed=1), 40
        s = SCCState(g)
        s.mark_singletons(np.arange(n), 3)  # claim all-trivial SCCs
        try:
            s.check_invariants(cross_check=True)
            # only valid if the graph truly has no nontrivial SCC
            assert int(tarjan_scc(g).max()) == n - 1
        except StateInvariantError:
            pass

    def test_label_hole_detected(self):
        g = random_digraph(10, 30, seed=0)
        s = SCCState(g)
        s.mark_singletons(np.arange(10), 3)
        s.labels[0] = 5  # duplicate id 5, id 0 now unused
        with pytest.raises(StateInvariantError, match="dense"):
            s.check_invariants()

    def test_snapshot_restore_roundtrip(self):
        g = random_digraph(30, 90, seed=0)
        s = SCCState(g)
        snap = s.snapshot()
        s.mark_scc(np.arange(5), 3)
        s.new_color()
        assert s.num_sccs == 1
        s.restore(snap)
        assert s.num_sccs == 0
        assert not s.mark.any()
        assert (s.labels == -1).all()
