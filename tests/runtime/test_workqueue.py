"""Tests for the real (threaded) two-level work queue."""

import threading

import pytest

from repro.runtime import TwoLevelWorkQueue


class TestBasics:
    def test_processes_all_initial_items(self):
        seen = []
        lock = threading.Lock()

        def proc(item):
            with lock:
                seen.append(item)

        tel = TwoLevelWorkQueue(4, k=2).run(range(100), proc)
        assert sorted(seen) == list(range(100))
        assert tel.tasks == 100

    def test_children_processed(self):
        seen = set()
        lock = threading.Lock()

        def proc(item):
            with lock:
                seen.add(item)
            if item < 50:
                return [item + 100]

        TwoLevelWorkQueue(3, k=1).run(range(50), proc)
        assert seen == set(range(50)) | set(range(100, 150))

    def test_empty_initial(self):
        tel = TwoLevelWorkQueue(2).run([], lambda i: None)
        assert tel.tasks == 0

    def test_single_worker(self):
        order = []
        TwoLevelWorkQueue(1, k=1).run([1, 2, 3], order.append)
        assert order == [1, 2, 3]

    def test_recursive_tree(self):
        # binary tree of depth 6 spawned dynamically
        count = [0]
        lock = threading.Lock()

        def proc(depth):
            with lock:
                count[0] += 1
            if depth < 6:
                return [depth + 1, depth + 1]

        TwoLevelWorkQueue(4, k=2).run([0], proc)
        assert count[0] == 2**7 - 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TwoLevelWorkQueue(0)
        with pytest.raises(ValueError):
            TwoLevelWorkQueue(1, k=0)


class TestErrorPropagation:
    def test_exception_propagates(self):
        def proc(item):
            if item == 5:
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            TwoLevelWorkQueue(4, k=1).run(range(10), proc)

    def test_workers_stop_after_error(self):
        # Must terminate even with an infinite spawner alongside a crash.
        def proc(item):
            if item == "bad":
                raise ValueError("stop")
            return None

        with pytest.raises(ValueError):
            TwoLevelWorkQueue(2, k=1).run(["bad"] + list(range(100)), proc)

    def test_raise_mid_tree_does_not_wedge_termination(self):
        # A raising callback amid recursive spawning must never wedge
        # the idle-based termination detection: every worker exits and
        # the exception surfaces to the caller.
        def proc(depth):
            if depth == 3:
                raise RuntimeError("subtree dies")
            if depth < 5:
                return [depth + 1, depth + 1]

        for workers in (1, 2, 4):
            with pytest.raises(RuntimeError, match="subtree dies"):
                TwoLevelWorkQueue(workers, k=2).run([0], proc)

    def test_error_recorded_in_telemetry_on_record_mode(self):
        def proc(item):
            if item % 4 == 0:
                raise KeyError(item)

        tel = TwoLevelWorkQueue(3, k=2, on_error="record").run(
            range(16), proc
        )
        assert tel.failed == 4
        assert len(tel.errors) == 4
        assert all(isinstance(e, KeyError) for e in tel.errors)
        assert tel.tasks == 12  # the surviving tasks all drained

    def test_record_mode_terminates_with_spawned_children(self):
        # children spawned before a sibling fails must still be drained
        def proc(item):
            if item == ("child", 7):
                raise RuntimeError("one child dies")
            if isinstance(item, int):
                return [("child", item)]

        tel = TwoLevelWorkQueue(2, k=1, on_error="record").run(
            range(10), proc
        )
        assert tel.failed == 1
        assert tel.tasks == 19

    def test_on_error_validation(self):
        with pytest.raises(ValueError):
            TwoLevelWorkQueue(1, on_error="ignore")


class TestTelemetry:
    def test_per_worker_tasks_sum(self):
        tel = TwoLevelWorkQueue(4, k=2).run(range(64), lambda i: None)
        assert sum(tel.per_worker_tasks) == 64

    def test_global_access_counted(self):
        tel = TwoLevelWorkQueue(2, k=4).run(range(32), lambda i: None)
        assert tel.global_accesses >= 32 // 4

    def test_max_global_depth_at_least_initial(self):
        tel = TwoLevelWorkQueue(2, k=1).run(range(40), lambda i: None)
        assert tel.max_global_depth >= 40
