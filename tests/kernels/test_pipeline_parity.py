"""Full-pipeline backend parity on generator graphs.

Complements :mod:`tests.property.test_backend_parity` (small randomized
digraphs) with Table-1-shaped inputs: an R-MAT power-law graph and a
Watts–Strogatz small-world ring, run through the complete Method 1 /
Method 2 / baseline pipelines, plus the process-pool executor — whose
forked workers must inherit the dispatcher's backend choice.
"""

import numpy as np
import pytest

from repro.core.api import strongly_connected_components
from repro.generators import rmat_graph, watts_strogatz_graph
from repro.kernels import use_backend
from tests.conftest import scipy_scc_labels
from repro.core.result import same_partition
from repro.runtime.mp_backend import fork_available


def _graphs():
    return [
        ("rmat", rmat_graph(9, 8.0, rng=7)),
        ("ws", watts_strogatz_graph(400, 4, 0.1, rng=7)),
    ]


GRAPHS = _graphs()


@pytest.mark.parametrize("method", ["baseline", "method1", "method2"])
@pytest.mark.parametrize("name,g", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_pipelines_bit_identical_across_backends(method, name, g):
    with use_backend("numpy"):
        base = strongly_connected_components(g, method, seed=0)
    with use_backend("numba"):
        fast = strongly_connected_components(g, method, seed=0)
    assert np.array_equal(base.labels, fast.labels)
    assert base.profile.trace.records == fast.profile.trace.records
    assert same_partition(base.labels, scipy_scc_labels(g))


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_process_workers_inherit_backend():
    g = rmat_graph(8, 6.0, rng=3)
    results = {}
    for backend in ("numpy", "numba"):
        with use_backend(backend):
            results[backend] = strongly_connected_components(
                g, "method2", seed=0, backend="processes", num_threads=2
            )
    assert np.array_equal(
        results["numpy"].labels, results["numba"].labels
    )
    assert (
        results["numpy"].profile.trace.records
        == results["numba"].profile.trace.records
    )
