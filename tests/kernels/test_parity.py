"""Cross-backend parity for every kernel behind the registry.

The contract (DESIGN.md §8): every implementation of a kernel must
produce bit-identical output arrays, identical in-place mutations, and
identical scanned-edge counts.  Three implementations are exercised —
the numpy reference, whatever the accelerated ``numba`` backend
resolves to on this machine (the @njit wrappers with numba installed,
the tuned-NumPy fastpath otherwise), and the :mod:`repro.kernels.jit`
loop wrappers called directly, which run in interpreted mode when
numba is absent so the compiled kernels' logic is tested everywhere.
"""

import numpy as np
import pytest

from repro.kernels import get_kernel, use_backend
from repro.kernels import jit, reference
from tests.conftest import random_digraph

SEEDS = [0, 1, 2, 7]


def _accelerated(name):
    with use_backend("numba"):
        return get_kernel(name)


def _graph(seed, n=60, m=240):
    return random_digraph(n, m, seed=seed)


def _frontier(g, rng):
    k = rng.integers(1, max(2, g.num_nodes // 2))
    return np.unique(rng.integers(0, g.num_nodes, size=k)).astype(np.int64)


class TestExpandFrontier:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_backends_match(self, seed):
        g = _graph(seed)
        rng = np.random.default_rng(seed)
        frontier = _frontier(g, rng)
        ref_t, ref_s = reference.expand_frontier(
            g.indptr, g.indices, frontier, return_sources=True
        )
        for impl in (_accelerated("expand_frontier"), jit.expand_frontier):
            t, s = impl(g.indptr, g.indices, frontier, return_sources=True)
            assert np.array_equal(t, ref_t)
            assert np.array_equal(s, ref_s)
            u = impl(g.indptr, g.indices, frontier, unique=True)
            assert np.array_equal(
                u,
                reference.expand_frontier(
                    g.indptr, g.indices, frontier, unique=True
                ),
            )

    def test_empty_frontier(self):
        g = _graph(0)
        empty = np.empty(0, dtype=np.int64)
        for impl in (
            reference.expand_frontier,
            _accelerated("expand_frontier"),
            jit.expand_frontier,
        ):
            assert impl(g.indptr, g.indices, empty).size == 0


class TestBfsLevelTransform:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_backends_match(self, seed):
        g = _graph(seed)
        rng = np.random.default_rng(seed)
        base_color = rng.integers(0, 3, size=g.num_nodes).astype(np.int64)
        frontier = _frontier(g, rng)
        olds = np.array([0, 1], dtype=np.int64)
        news = np.array([100, 101], dtype=np.int64)

        ref_color = base_color.copy()
        ref_hits, ref_scanned = reference.bfs_level_transform(
            g.indptr, g.indices, frontier, ref_color, olds, news
        )
        for impl in (
            _accelerated("bfs_level_transform"),
            jit.bfs_level_transform,
        ):
            color = base_color.copy()
            hits, scanned = impl(
                g.indptr, g.indices, frontier, color, olds, news
            )
            assert scanned == ref_scanned
            assert np.array_equal(color, ref_color)
            assert len(hits) == len(ref_hits)
            for h, rh in zip(hits, ref_hits):
                assert np.array_equal(h, rh)


class TestEffectiveDegrees:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_backends_match(self, seed):
        g = _graph(seed)
        rng = np.random.default_rng(seed)
        color = rng.integers(0, 3, size=g.num_nodes).astype(np.int64)
        nodes = _frontier(g, rng)
        ref = reference.effective_degrees_arrays(
            g.indptr, g.indices, g.in_indptr, g.in_indices, nodes, color
        )
        for impl in (
            _accelerated("effective_degrees"),
            jit.effective_degrees_arrays,
        ):
            out, inn, scanned = impl(
                g.indptr, g.indices, g.in_indptr, g.in_indices, nodes, color
            )
            assert np.array_equal(out, ref[0])
            assert np.array_equal(inn, ref[1])
            assert scanned == ref[2]


class TestTrimDecrement:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_backends_match(self, seed):
        g = _graph(seed)
        rng = np.random.default_rng(seed)
        color = rng.integers(0, 2, size=g.num_nodes).astype(np.int64)
        cand = _frontier(g, rng)  # sorted, as the contract requires
        old_colors = color[cand].copy()
        color[cand] = -1  # candidates were just detached
        base_eff = rng.integers(0, 5, size=g.num_nodes).astype(np.int64)

        ref_eff = base_eff.copy()
        ref_hit, ref_scanned = reference.trim_decrement(
            g.indptr, g.indices, cand, old_colors, color, ref_eff
        )
        for impl in (_accelerated("trim_decrement"), jit.trim_decrement):
            eff = base_eff.copy()
            hit, scanned = impl(
                g.indptr, g.indices, cand, old_colors, color, eff
            )
            assert np.array_equal(hit, ref_hit)  # expansion order
            assert scanned == ref_scanned
            assert np.array_equal(eff, ref_eff)

    def test_bincount_path_matches_scalar_path(self, monkeypatch):
        # Force the fastpath's bincount branch even on a small batch.
        from repro.kernels import fastpath

        g = _graph(3, n=40, m=200)
        color = np.zeros(g.num_nodes, dtype=np.int64)
        cand = np.arange(0, g.num_nodes, 2, dtype=np.int64)
        old_colors = color[cand].copy()
        color[cand] = -1
        eff_ref = np.full(g.num_nodes, 10, dtype=np.int64)
        ref_hit, _ = reference.trim_decrement(
            g.indptr, g.indices, cand, old_colors, color, eff_ref
        )
        monkeypatch.setattr(fastpath, "_BINCOUNT_CUTOFF", 0)
        eff = np.full(g.num_nodes, 10, dtype=np.int64)
        hit, _ = fastpath.trim_decrement(
            g.indptr, g.indices, cand, old_colors, color, eff
        )
        assert np.array_equal(hit, ref_hit)
        assert np.array_equal(eff, eff_ref)


class TestWccHookRound:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("both", [False, True])
    @pytest.mark.parametrize("compress", [False, True])
    def test_all_backends_match(self, seed, both, compress):
        g = _graph(seed)
        rng = np.random.default_rng(seed)
        active = np.arange(g.num_nodes, dtype=np.int64)
        u, v = reference.expand_frontier(
            g.indptr, g.indices, active, return_sources=True
        )
        u, v = np.asarray(v), np.asarray(u)  # mixed orientation on purpose
        base = rng.permutation(g.num_nodes).astype(np.int64)

        ref = base.copy()
        reference.wcc_hook_round(u, v, ref, active, both, compress)
        assert not np.array_equal(ref, base)  # the round did something
        for impl in (_accelerated("wcc_hook_round"), jit.wcc_hook_round):
            wcc = base.copy()
            impl(u, v, wcc, active, both, compress)
            assert np.array_equal(wcc, ref)


class TestTrim2PatternPairs:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("incoming", [False, True])
    def test_all_backends_match(self, seed, incoming):
        # Graph rich in 2-cycles so the pattern actually fires.
        rng = np.random.default_rng(seed)
        edges = []
        n = 30
        for i in range(0, n - 1, 2):
            edges += [(i, i + 1), (i + 1, i)]
        for _ in range(20):
            a, b = rng.integers(0, n, size=2)
            if a != b:
                edges.append((int(a), int(b)))
        from repro.graph import from_edge_list

        g = from_edge_list(edges, n)
        color = np.zeros(n, dtype=np.int64)
        if incoming:
            nbr = (g.in_indptr, g.in_indices)
            back = (g.indptr, g.indices)
            eff_dir = 1
        else:
            nbr = (g.indptr, g.indices)
            back = (g.in_indptr, g.in_indices)
            eff_dir = 0
        eff = reference.effective_degrees_arrays(
            g.indptr, g.indices, g.in_indptr, g.in_indices,
            np.arange(n, dtype=np.int64), color,
        )[eff_dir]
        cands = np.flatnonzero(eff == 1).astype(np.int64)
        ref = reference.trim2_pattern_pairs(
            *nbr, *back, cands, color, eff
        )
        assert ref[0].size  # the fixture produced at least one pair
        for impl in (
            _accelerated("trim2_pattern_pairs"),
            jit.trim2_pattern_pairs,
        ):
            n_arr, k_arr, scanned = impl(*nbr, *back, cands, color, eff)
            assert np.array_equal(n_arr, ref[0])
            assert np.array_equal(k_arr, ref[1])
            assert scanned == ref[2]


class TestDfsCollectColored:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_backends_match(self, seed):
        g = _graph(seed)
        rng = np.random.default_rng(seed)
        base_color = np.zeros(g.num_nodes, dtype=np.int64)
        # A two-transition map like the real BW pass {c: cbw, cfw: cscc}.
        half = rng.integers(0, g.num_nodes, size=g.num_nodes // 2)
        base_color[half] = 1
        pivot = int(half[0]) if half.size else 0
        olds = np.array([1, 0], dtype=np.int64)
        news = np.array([50, 60], dtype=np.int64)

        ref_color = base_color.copy()
        ref_parts, ref_edges = reference.dfs_collect_colored(
            g.indptr, g.indices, pivot, olds, news, ref_color
        )
        assert all(np.all(np.diff(p) > 0) for p in ref_parts if p.size)
        for impl in (
            _accelerated("dfs_collect_colored"),
            jit.dfs_collect_colored,
        ):
            color = base_color.copy()
            parts, edges = impl(
                g.indptr, g.indices, pivot, olds, news, color
            )
            assert edges == ref_edges
            assert np.array_equal(color, ref_color)
            for p, rp in zip(parts, ref_parts):
                assert np.array_equal(p, rp)
