"""Unit tests for the kernel dispatch registry."""

import numpy as np
import pytest

from repro import kernels
from repro.kernels import registry
from repro.kernels.registry import (
    BACKEND_CHOICES,
    ENV_VAR,
    available_backends,
    backend_info,
    get_backend,
    get_kernel,
    kernel_names,
    register,
    resolve_backend,
    set_backend,
    use_backend,
)

ALL_KERNELS = (
    "expand_frontier",
    "bfs_level_transform",
    "effective_degrees",
    "trim_decrement",
    "wcc_hook_round",
    "trim2_pattern_pairs",
    "dfs_collect_colored",
    "ms_expand_frontier",
    "ms_fwbw_intersect",
)


@pytest.fixture(autouse=True)
def _clean_backend():
    """Every test starts and ends with no backend pinned."""
    set_backend(None)
    yield
    set_backend(None)


class TestResolution:
    def test_default_is_auto_resolving_to_numba(self):
        assert resolve_backend("auto") == "numba"
        assert get_backend() in ("numpy", "numba")

    def test_numpy_resolves_to_itself(self):
        assert resolve_backend("numpy") == "numpy"

    def test_unknown_request_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("cuda")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_backend("cuda")

    def test_set_backend_pins_and_clears(self):
        set_backend("numpy")
        assert get_backend() == "numpy"
        set_backend(None)
        assert registry._override is None

    def test_env_var_respected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert get_backend() == "numpy"

    def test_explicit_pin_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        set_backend("numba")
        assert get_backend() == "numba"

    def test_use_backend_restores_previous(self):
        set_backend("numba")
        with use_backend("numpy"):
            assert get_backend() == "numpy"
        assert get_backend() == "numba"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("numpy"):
                raise RuntimeError("boom")
        assert registry._override is None


class TestRegistryContents:
    def test_all_hot_kernels_have_a_reference(self):
        for name in ALL_KERNELS:
            assert name in kernel_names()
            assert "numpy" in available_backends(name)

    def test_get_kernel_unknown_name(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            get_kernel("warp_drive")

    def test_per_kernel_fallback_to_reference(self):
        # A kernel registered only under numpy must still dispatch when
        # the accelerated backend is active.
        @register("only_numpy_test_kernel", "numpy")
        def impl():
            return "reference"

        try:
            with use_backend("numba"):
                assert get_kernel("only_numpy_test_kernel")() == "reference"
        finally:
            registry._REGISTRY.pop("only_numpy_test_kernel")

    def test_reregistration_replaces(self):
        @register("replace_test_kernel", "numpy")
        def first():
            return 1

        @register("replace_test_kernel", "numpy")
        def second():
            return 2

        try:
            assert get_kernel("replace_test_kernel", "numpy")() == 2
        finally:
            registry._REGISTRY.pop("replace_test_kernel")

    def test_register_rejects_virtual_backends(self):
        with pytest.raises(ValueError):
            register("x", "auto")

    def test_backend_info_shape(self):
        info = backend_info()
        assert set(info) == {
            "requested", "resolved", "numba_available", "jit_active",
            "kernels",
        }
        assert info["resolved"] in ("numpy", "numba", "fastpath")
        assert isinstance(info["numba_available"], bool)
        for name in ALL_KERNELS:
            assert name in info["kernels"]
        if not info["numba_available"]:
            assert info["jit_active"] is False

    def test_backend_info_never_claims_numba_without_numba(self):
        # Regression: backend_info() used to echo the resolved slot
        # name ("numba") even when numba was not importable, so
        # benchmark JSON recorded a JIT run that never happened.  The
        # (resolved, numba_available, jit_active) triple must be
        # consistent: "numba" only ever appears with the JIT active.
        info = backend_info()
        triple = (
            info["resolved"],
            info["numba_available"],
            info["jit_active"],
        )
        if registry.numba_available():
            assert triple == ("numba", True, True)
        else:
            assert triple == ("fastpath", False, False)
        if info["resolved"] == "numba":
            assert info["jit_active"]

    def test_backend_info_numpy_pin_reports_numpy(self):
        with use_backend("numpy"):
            info = backend_info()
        assert info["resolved"] == "numpy"
        assert info["jit_active"] is False

    def test_numba_request_without_numba_warns_once(self):
        if registry.numba_available():
            pytest.skip("numba installed; fallback warning not reachable")
        registry._warned_missing_numba = False
        with pytest.warns(RuntimeWarning, match="numba is not"):
            assert resolve_backend("numba") == "numba"
        # second resolution is silent
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolve_backend("numba")


class TestDispatcherValidation:
    def test_transition_targets_may_not_be_sources(self):
        indptr = np.array([0, 1, 1], dtype=np.int64)
        indices = np.array([1], dtype=np.int64)
        color = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError, match="transition targets"):
            kernels.bfs_level_transform(
                indptr, indices, np.array([0]), color, {0: 1, 1: 2}
            )
        with pytest.raises(ValueError, match="transition targets"):
            kernels.dfs_collect_colored(indptr, indices, 0, {0: 1, 1: 2}, color)

    def test_dfs_pivot_color_must_be_mapped(self):
        indptr = np.array([0, 1, 1], dtype=np.int64)
        indices = np.array([1], dtype=np.int64)
        color = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError, match="pivot colour"):
            kernels.dfs_collect_colored(indptr, indices, 0, {7: 9}, color)

    def test_expand_unique_excludes_sources(self):
        indptr = np.array([0, 2, 2], dtype=np.int64)
        indices = np.array([1, 1], dtype=np.int64)
        with pytest.raises(ValueError, match="unique"):
            kernels.expand_frontier(
                indptr, indices, np.array([0]),
                return_sources=True, unique=True,
            )
