"""Parity and semantics for the bit-parallel multi-source kernels.

Same three-tier scheme as :mod:`tests.kernels.test_parity`: the numpy
reference, whatever the accelerated ``numba`` backend resolves to on
this machine, and the :mod:`repro.kernels.jit` wrappers called
directly (interpreted when numba is absent).  The multi-source
contract is stricter than "same reachability": bit-identical frontier
node/bit arrays, identical in-place ``visited`` mutations, identical
scanned-edge counts, and — for the intersect kernel — the
deterministic lowest-wave pivot-claim tie-break.
"""

import numpy as np
import pytest

from repro import kernels
from repro.kernels import get_kernel, use_backend
from repro.kernels import jit, reference
from repro.kernels.reference import (
    MS_BW_ONLY,
    MS_CLAIMED,
    MS_FW_ONLY,
    MS_MAX_WAVES,
    MS_SCC,
    MS_UNREACHED,
)
from tests.conftest import random_digraph

SEEDS = [0, 1, 2, 7]


def _accelerated(name):
    with use_backend("numba"):
        return get_kernel(name)


def _wave_setup(g, rng, n_waves):
    """Random disjoint-wave state: ``n_waves`` colours, one pivot each.

    Returns ``(color, wave_colors, wave_masks, pivots, bits)`` with
    every node painted one of the wave colours.
    """
    color = rng.integers(0, n_waves, size=g.num_nodes).astype(np.int64)
    # ensure every colour occurs so each wave has a pivot
    color[:n_waves] = np.arange(n_waves)
    wave_colors = np.arange(n_waves, dtype=np.int64)
    wave_masks = np.left_shift(
        np.uint64(1), np.arange(n_waves, dtype=np.uint64)
    )
    pivots = np.array(
        [int(rng.choice(np.flatnonzero(color == c))) for c in wave_colors],
        dtype=np.int64,
    )
    return color, wave_colors, wave_masks, pivots, wave_masks.copy()


def _tiers():
    return (
        ("reference", reference.ms_expand_frontier),
        ("accelerated", _accelerated("ms_expand_frontier")),
        ("jit", jit.ms_expand_frontier),
    )


class TestMsExpandFrontier:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_waves", [1, 3, 17, 64])
    def test_one_level_all_tiers_match(self, seed, n_waves):
        g = random_digraph(80, 400, seed=seed)
        rng = np.random.default_rng(seed)
        color, wc, wm, pivots, bits = _wave_setup(g, rng, n_waves)
        base = np.zeros(g.num_nodes, dtype=np.uint64)
        base[pivots] = bits
        ref_vis = base.copy()
        ref = reference.ms_expand_frontier(
            g.indptr, g.indices, pivots, bits, ref_vis, color, wc, wm
        )
        for name, impl in _tiers()[1:]:
            vis = base.copy()
            nxt, nbits, scanned = impl(
                g.indptr, g.indices, pivots, bits, vis, color, wc, wm
            )
            assert np.array_equal(nxt, ref[0]), name
            assert np.array_equal(nbits, ref[1]), name
            assert scanned == ref[2], name
            assert np.array_equal(vis, ref_vis), name

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fixpoint_visited_identical(self, seed):
        g = random_digraph(120, 700, seed=seed)
        rng = np.random.default_rng(seed + 100)
        color, wc, wm, pivots, bits = _wave_setup(g, rng, 11)
        finals = {}
        for name, impl in _tiers():
            vis = np.zeros(g.num_nodes, dtype=np.uint64)
            vis[pivots] = bits
            frontier, fbits = pivots, bits
            total = 0
            while frontier.size:
                frontier, fbits, scanned = impl(
                    g.indptr, g.indices, frontier, fbits, vis,
                    color, wc, wm,
                )
                total += scanned
            finals[name] = (vis, total)
        ref_vis, ref_total = finals["reference"]
        for name in ("accelerated", "jit"):
            assert np.array_equal(finals[name][0], ref_vis), name
            assert finals[name][1] == ref_total, name

    def test_colour_boundary_respected(self):
        # 0 -> 1 -> 2 with node 2 painted a non-wave colour: the wave
        # must stop at the boundary without visiting node 2.
        from repro.graph import from_edge_list

        g = from_edge_list([(0, 1), (1, 2)], 3)
        color = np.array([5, 5, 9], dtype=np.int64)
        wc = np.array([5], dtype=np.int64)
        wm = np.array([1], dtype=np.uint64)
        for name, impl in _tiers():
            vis = np.zeros(3, dtype=np.uint64)
            vis[0] = np.uint64(1)
            nxt, nbits, scanned = impl(
                g.indptr, g.indices,
                np.array([0], dtype=np.int64),
                np.array([1], dtype=np.uint64),
                vis, color, wc, wm,
            )
            assert nxt.tolist() == [1], name
            assert scanned == 1, name
            nxt, nbits, scanned = impl(
                g.indptr, g.indices, nxt, nbits, vis, color, wc, wm
            )
            assert nxt.size == 0, name
            assert vis[2] == 0, name

    def test_empty_frontier(self):
        g = random_digraph(10, 30, seed=0)
        wc = np.array([0], dtype=np.int64)
        wm = np.array([1], dtype=np.uint64)
        empty = np.empty(0, dtype=np.int64)
        ebits = np.empty(0, dtype=np.uint64)
        for name, impl in _tiers():
            vis = np.zeros(10, dtype=np.uint64)
            nxt, nbits, scanned = impl(
                g.indptr, g.indices, empty, ebits, vis,
                np.zeros(10, dtype=np.int64), wc, wm,
            )
            assert nxt.size == 0 and nbits.size == 0 and scanned == 0


class TestMsFwbwIntersect:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_tiers_match_on_random_masks(self, seed):
        # Arbitrary overlapping visited masks — exercises every
        # category including CLAIMED and the tie-break.
        rng = np.random.default_rng(seed)
        n = 200
        nodes = np.arange(n, dtype=np.int64)
        bits = np.left_shift(
            np.uint64(1),
            rng.integers(0, MS_MAX_WAVES, size=n).astype(np.uint64),
        )
        fw = rng.integers(0, 2**63, size=n, dtype=np.int64).astype(np.uint64)
        bw = rng.integers(0, 2**63, size=n, dtype=np.int64).astype(np.uint64)
        ref = reference.ms_fwbw_intersect(nodes, bits, fw, bw)
        assert set(np.unique(ref)) <= {
            MS_SCC, MS_FW_ONLY, MS_BW_ONLY, MS_UNREACHED, MS_CLAIMED
        }
        for name, impl in (
            ("accelerated", _accelerated("ms_fwbw_intersect")),
            ("jit", jit.ms_fwbw_intersect),
        ):
            assert np.array_equal(
                impl(nodes, bits, fw, bw), ref
            ), name

    def test_lowest_wave_claim_tie_break(self):
        # One node inside the FW∧BW region of waves 0 and 3: only the
        # lowest wave (bit 0) may claim it as SCC; wave 3 sees CLAIMED.
        nodes = np.array([7, 7], dtype=np.int64)
        bits = np.array([1 << 0, 1 << 3], dtype=np.uint64)
        fw = np.zeros(8, dtype=np.uint64)
        bw = np.zeros(8, dtype=np.uint64)
        fw[7] = bw[7] = np.uint64((1 << 0) | (1 << 3))
        for name, impl in (
            ("reference", reference.ms_fwbw_intersect),
            ("accelerated", _accelerated("ms_fwbw_intersect")),
            ("jit", jit.ms_fwbw_intersect),
        ):
            cat = impl(nodes, bits, fw, bw)
            assert cat.tolist() == [MS_SCC, MS_CLAIMED], name

    def test_category_semantics(self):
        # bit 0 wave: SCC, FW-only, BW-only, unreached.
        nodes = np.arange(4, dtype=np.int64)
        bits = np.full(4, 1, dtype=np.uint64)
        fw = np.array([1, 1, 0, 0], dtype=np.uint64)
        bw = np.array([1, 0, 1, 0], dtype=np.uint64)
        cat = reference.ms_fwbw_intersect(nodes, bits, fw, bw)
        assert cat.tolist() == [
            MS_SCC, MS_FW_ONLY, MS_BW_ONLY, MS_UNREACHED
        ]


class TestDispatcherValidation:
    def _call(self, wc, wm, visited=None):
        g = random_digraph(10, 30, seed=0)
        vis = (
            visited
            if visited is not None
            else np.zeros(10, dtype=np.uint64)
        )
        return kernels.ms_expand_frontier(
            g.indptr, g.indices,
            np.array([0], dtype=np.int64),
            np.array([1], dtype=np.uint64),
            vis, np.zeros(10, dtype=np.int64), wc, wm,
        )

    def test_rejects_empty_waves(self):
        with pytest.raises(ValueError, match="at least one wave"):
            self._call(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.uint64),
            )

    def test_rejects_too_many_waves(self):
        n = MS_MAX_WAVES + 1
        with pytest.raises(ValueError, match="64"):
            self._call(
                np.arange(n, dtype=np.int64),
                np.ones(n, dtype=np.uint64),
            )

    def test_rejects_unsorted_wave_colors(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            self._call(
                np.array([3, 1], dtype=np.int64),
                np.array([1, 2], dtype=np.uint64),
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="aligned"):
            self._call(
                np.array([0, 1], dtype=np.int64),
                np.array([1], dtype=np.uint64),
            )

    def test_rejects_wrong_visited_dtype(self):
        with pytest.raises(ValueError, match="uint64"):
            self._call(
                np.array([0], dtype=np.int64),
                np.array([1], dtype=np.uint64),
                visited=np.zeros(10, dtype=np.int64),
            )
