"""Gate for the continuous self-audit loop (repro.integrity.audit)."""

import pytest

from repro.core import tarjan_scc
from repro.core.result import canonical_labels
from repro.integrity import SelfAuditor
from repro.ioutil import crc32_chunks


@pytest.fixture()
def edge_file(tmp_path):
    """A small on-disk edge list the auditor can reload from source."""
    edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)]
    path = tmp_path / "audit_graph.txt"
    path.write_text("".join(f"{u} {v}\n" for u, v in edges))
    return str(path)


def served_crc(edge_file):
    from repro.graph import read_edge_list

    g = read_edge_list(edge_file)
    labels = canonical_labels(tarjan_scc(g))
    return crc32_chunks(labels.tobytes())


class TestSampling:
    def test_deterministic_and_rate_shaped(self):
        aud = SelfAuditor(rate=0.25, seed=7)
        picks = [aud.selects(i) for i in range(4000)]
        assert picks == [aud.selects(i) for i in range(4000)]
        frac = sum(picks) / len(picks)
        assert 0.18 < frac < 0.32
        aud.stop()

    def test_rate_bounds(self):
        aud0 = SelfAuditor(rate=0.0)
        aud1 = SelfAuditor(rate=1.0)
        assert not any(aud0.selects(i) for i in range(100))
        assert all(aud1.selects(i) for i in range(100))
        aud0.stop()
        aud1.stop()
        with pytest.raises(ValueError):
            SelfAuditor(rate=1.5)

    def test_none_crc_never_submitted(self):
        aud = SelfAuditor(rate=1.0)
        assert not aud.maybe_submit(0, {"graph": "x"}, None)
        assert aud.sampled == 0
        aud.stop()


class TestAuditing:
    def test_matching_crc_passes(self, edge_file):
        aud = SelfAuditor(rate=1.0)
        try:
            req = {"graph": edge_file, "method": "method2", "seed": 0}
            assert aud.maybe_submit(3, req, served_crc(edge_file))
            assert aud.drain(60)
            assert aud.audits_run == 1
            assert aud.mismatches == 0
        finally:
            aud.stop()

    def test_mismatch_fires_callback_with_record(self, edge_file):
        hits = []
        aud = SelfAuditor(
            rate=1.0,
            on_mismatch=lambda rec, ref: hits.append((rec, ref)),
        )
        try:
            req = {"graph": edge_file, "method": "method2", "seed": 0}
            good = served_crc(edge_file)
            aud.maybe_submit(0, req, good ^ 0xDEAD, fingerprint=42)
            assert aud.drain(60)
            assert aud.mismatches == 1
            (rec, ref), = hits
            assert ref == good
            assert rec.fingerprint == 42
            assert rec.labels_crc32 == good ^ 0xDEAD
        finally:
            aud.stop()

    def test_bad_request_counts_error_not_crash(self):
        aud = SelfAuditor(rate=1.0)
        try:
            aud.maybe_submit(0, {"graph": "/nonexistent/zz"}, 123)
            assert aud.drain(60)
            assert aud.errors == 1
            assert aud.mismatches == 0
        finally:
            aud.stop()

    def test_full_queue_drops_not_blocks(self):
        aud = SelfAuditor(rate=1.0, max_queue=1)
        # fill the queue without starting the drain thread so the next
        # submission finds it full
        aud._queue.put_nowait(None)
        assert not aud.maybe_submit(0, {"graph": "x"}, 1)
        assert aud.dropped == 1
        aud.stop()

    def test_reference_path_is_serial_numpy(self, edge_file):
        """The reference replay must agree with Tarjan regardless of
        the process-global kernel selection at submit time."""
        from repro.kernels import use_backend

        aud = SelfAuditor(rate=1.0)
        try:
            with use_backend("numba"):
                ref = aud.reference_crc(
                    {"graph": edge_file, "method": "method1", "seed": 3}
                )
            assert ref == served_crc(edge_file)
        finally:
            aud.stop()

    def test_to_dict_counters(self, edge_file):
        aud = SelfAuditor(rate=1.0)
        try:
            req = {"graph": edge_file, "method": "method2", "seed": 0}
            aud.maybe_submit(0, req, served_crc(edge_file))
            assert aud.drain(60)
            d = aud.to_dict()
            assert d["sampled"] == 1
            assert d["audits_run"] == 1
            assert d["mismatches"] == 0
            assert d["rate"] == 1.0
        finally:
            aud.stop()

    def test_stop_is_idempotent_and_releases_engine(self, edge_file):
        aud = SelfAuditor(rate=1.0)
        req = {"graph": edge_file, "method": "method2", "seed": 0}
        aud.maybe_submit(0, req, served_crc(edge_file))
        aud.drain(60)
        aud.stop()
        aud.stop()
        with pytest.raises(RuntimeError):
            aud.engine.load(edge_file)
