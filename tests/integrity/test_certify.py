"""Gate for result certification (repro.integrity.certify).

A certificate must accept every true SCC partition and reject every
perturbed one: membership proofs re-derive strong connectivity from
the graph itself, so relabelings pass and *partition* changes fail.
"""

import numpy as np
import pytest

from repro.core import tarjan_scc
from repro.core.result import canonical_labels
from repro.errors import IntegrityError
from repro.generators import generate
from repro.graph import from_edge_list
from repro.integrity import CERTIFY_LEVELS, certify_result

from tests.conftest import SMALL_GRAPHS, random_digraph


def true_labels(g):
    return canonical_labels(tarjan_scc(g))


class TestAccepts:
    @pytest.mark.parametrize("name", sorted(SMALL_GRAPHS))
    @pytest.mark.parametrize("level", CERTIFY_LEVELS)
    def test_true_partition_certifies(self, name, level):
        edges, n = SMALL_GRAPHS[name]
        g = from_edge_list(edges, n)
        cert = certify_result(g, true_labels(g), level=level)
        assert cert["ok"]
        assert cert["n"] == n
        assert cert["level"] == level
        if level == "full":
            assert cert["tarjan_checked"]
        if level in ("sample", "full") and n:
            assert cert["sampled"]
            assert all(p["proved"] for p in cert["sampled"])

    def test_surrogate_dataset_certifies(self):
        g = generate("wiki", scale=0.02, seed=1).graph
        cert = certify_result(g, true_labels(g), level="full", k=16)
        assert cert["ok"]
        assert cert["num_sccs"] == np.unique(true_labels(g)).size
        # the giant SCC is always in the sample
        labels = true_labels(g)
        _, counts = np.unique(labels, return_counts=True)
        giant_size = int(counts.max())
        assert any(
            p["size"] == giant_size for p in cert["sampled"]
        )

    def test_relabeling_is_not_a_failure(self):
        """Swapping two label *values* keeps the partition; only the
        crc changes, not the proofs."""
        g = random_digraph(200, 600, seed=5)
        labels = true_labels(g)
        uniq = np.unique(labels)
        if uniq.size < 2:
            pytest.skip("needs >= 2 SCCs")
        swapped = labels.copy()
        swapped[labels == uniq[0]] = uniq[1]
        swapped[labels == uniq[1]] = uniq[0]
        cert = certify_result(g, swapped, level="sample", k=32)
        assert cert["ok"]

    def test_sampling_is_deterministic(self):
        g = random_digraph(300, 900, seed=9)
        labels = true_labels(g)
        c1 = certify_result(g, labels, seed=4, k=4)
        c2 = certify_result(g, labels, seed=4, k=4)
        assert c1 == c2


class TestRejects:
    def test_split_scc_fails_the_proof(self):
        """Carving one node out of a cycle's SCC leaves a label group
        that is not strongly connected."""
        g = from_edge_list([(0, 1), (1, 2), (2, 3), (3, 0)], 4)
        labels = true_labels(g)  # one SCC
        bad = labels.copy()
        bad[2] = labels.max() + 1
        cert = certify_result(g, bad, level="sample", k=8, strict=False)
        assert not cert["ok"]
        assert cert["failures"]

    def test_merged_sccs_fail_the_proof(self):
        g = from_edge_list(
            [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)], 4
        )
        labels = true_labels(g)  # two 2-cycles
        bad = np.zeros_like(labels)  # claim: one giant SCC
        cert = certify_result(g, bad, level="sample", strict=False)
        assert not cert["ok"]

    def test_strict_raises_exit_20(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], 3)
        bad = np.array([0, 0, 1], dtype=np.int64)
        with pytest.raises(IntegrityError) as exc:
            certify_result(g, bad, level="sample")
        assert exc.value.exit_code == 20

    def test_full_level_tarjan_cross_check(self):
        """A partition the sampler happens to miss still fails the
        independent Tarjan cross-check (k=0 disables sampling)."""
        g = from_edge_list([(0, 1), (1, 0), (2, 3), (3, 2)], 4)
        bad = np.array([0, 0, 0, 0], dtype=np.int64)
        cert = certify_result(
            g, bad, level="full", k=0, strict=False
        )
        assert cert["tarjan_checked"]
        assert not cert["ok"]
        assert any("Tarjan" in f for f in cert["failures"])


class TestValidation:
    def test_unknown_level(self):
        g = from_edge_list([(0, 1)], 2)
        with pytest.raises(ValueError, match="certify level"):
            certify_result(g, np.zeros(2, np.int64), level="xxl")

    def test_label_shape_mismatch(self):
        g = from_edge_list([(0, 1)], 2)
        with pytest.raises(ValueError, match="cover"):
            certify_result(g, np.zeros(3, np.int64))

    def test_large_graph_skips_tarjan_tier(self):
        g = random_digraph(100, 300, seed=1)
        cert = certify_result(
            g, true_labels(g), level="full", tarjan_max_nodes=10
        )
        assert cert["ok"]
        assert not cert["tarjan_checked"]
