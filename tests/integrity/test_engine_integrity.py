"""Integrity wiring through GraphSession and Engine.

Covers the seal points (load, transpose, degrees), the verify points
(session borrow/return, phase boundaries, final), detection of seeded
``corrupt`` faults at the ``"phase"`` site, and the quarantine →
rebuild → correct-answer recovery path.
"""

import numpy as np
import pytest

from repro.core import tarjan_scc
from repro.core.result import canonical_labels
from repro.engine.engine import Engine
from repro.engine.session import GraphSession
from repro.errors import IntegrityError
from repro.graph import from_edge_list
from repro.runtime.faults import FaultPlan, FaultSpec, apply_corruption


def small_graph():
    return from_edge_list(
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 0)], 5
    )


def phase_corrupt(array, *, index=0, stage="pre", flip_seed=0):
    return FaultSpec(
        kind="corrupt",
        site="phase",
        index=index,
        stage=stage,
        array=array,
        flip_seed=flip_seed,
    )


class TestSessionSeals:
    def test_seal_points_follow_materialization(self):
        sess = GraphSession(small_graph(), integrity=True)
        cs = sess.checksums
        assert cs.sealed("indptr") and cs.sealed("indices")
        assert not cs.sealed("in_indptr")
        sess.ensure_transpose()
        assert cs.sealed("in_indptr") and cs.sealed("in_indices")
        sess.effective_degrees()
        assert cs.sealed("out_degrees") and cs.sealed("in_degrees")
        checked = sess.verify_integrity(context="test")
        assert checked == 6
        assert sess.stats.integrity_verifications == 6
        sess.close()

    def test_corruption_detected_and_counted(self):
        sess = GraphSession(small_graph(), integrity=True)
        spec = phase_corrupt("indices")
        apply_corruption(sess.graph.indices, spec)
        with pytest.raises(IntegrityError) as exc:
            sess.verify_integrity(context="after-rot")
        assert exc.value.array == "indices"
        assert sess.stats.integrity_failures == 1
        sess.close()

    def test_integrity_off_is_a_noop(self):
        sess = GraphSession(small_graph())
        assert sess.checksums is None
        assert sess.verify_integrity() == 0
        assert sess.stats.integrity_verifications == 0
        sess.close()


class TestEngineDetection:
    @pytest.fixture()
    def engine(self):
        with Engine(
            backend="serial", canonical=True, integrity=True
        ) as eng:
            yield eng

    def test_clean_run_verifies_and_succeeds(self, engine):
        g = small_graph()
        result = engine.run(g, method="method2")
        assert np.array_equal(
            result.labels, canonical_labels(tarjan_scc(g))
        )
        sess = engine.session(g)
        assert sess.stats.integrity_verifications > 0
        assert sess.stats.integrity_failures == 0

    @pytest.mark.parametrize(
        "array,stage",
        [
            ("indices", "pre"),
            ("indptr", "pre"),
            ("labels", "post"),
            ("color", "mid"),
        ],
    )
    def test_phase_site_corruption_raises(self, engine, array, stage):
        plan = FaultPlan([phase_corrupt(array, stage=stage)])
        with pytest.raises(IntegrityError):
            engine.run(small_graph(), method="method2", fault_plan=plan)

    def test_borrowed_session_verified_for_any_method(self, engine):
        """Non-pipeline methods still get the borrow-time guard."""
        sess = engine.session(small_graph())
        apply_corruption(sess.graph.indices, phase_corrupt("indices"))
        with pytest.raises(IntegrityError):
            engine.run(sess, method="tarjan")

    def test_fault_plan_without_checksums_stays_silent(self):
        """Corruption of run-local state with integrity off is not
        detected — the flag is what buys detection."""
        with Engine(backend="serial", canonical=True) as eng:
            sess = eng.session(small_graph())
            assert sess.checksums is None


class TestQuarantine:
    def test_detect_quarantine_rebuild_recover(self):
        with Engine(
            backend="serial", canonical=True, integrity=True
        ) as eng:
            sess = eng.load("wiki", scale=0.02)
            fp = sess.fingerprint
            plan = FaultPlan([phase_corrupt("indices", index=1)])
            with pytest.raises(IntegrityError):
                eng.run(sess, method="method2", seed=0, fault_plan=plan)
            assert eng.quarantine(fp)
            assert eng.quarantines == 1
            assert sess.closed

            rebuilt = eng.load("wiki", scale=0.02)
            assert rebuilt is not sess
            result = eng.run(rebuilt, method="method2", seed=0)
            expected = canonical_labels(tarjan_scc(rebuilt.graph))
            assert np.array_equal(result.labels, expected)
            assert rebuilt.stats.integrity_failures == 0

    def test_quarantine_unknown_fingerprint(self):
        with Engine(backend="serial") as eng:
            assert not eng.quarantine(0xDEADBEEF)
            assert eng.quarantines == 0
