"""Unit gate for the block-CRC sidecars (repro.integrity.checksums)."""

import numpy as np
import pytest

from repro.errors import IntegrityError
from repro.integrity import ChecksummedArrays


class TestSealVerify:
    def test_clean_roundtrip(self):
        cs = ChecksummedArrays()
        a = np.arange(1000, dtype=np.int64)
        cs.seal("a", a)
        cs.verify("a", a)
        cs.verify("a", a.copy())  # identity-free: bytes, not buffers
        assert cs.verifications == 2
        assert cs.mismatches == 0

    def test_single_bit_flip_detected_and_localized(self):
        cs = ChecksummedArrays(block_bytes=64)
        a = np.zeros(100, dtype=np.int64)
        cs.seal("indices", a)
        a[70] ^= 1  # byte offset 560 -> block 8 at 64 B/block
        with pytest.raises(IntegrityError) as exc:
            cs.verify("indices", a, context="phase[2]:trim")
        msg = str(exc.value)
        assert "indices" in msg
        assert "block=8" in msg
        assert "phase[2]:trim" in msg
        assert exc.value.array == "indices"
        assert exc.value.block == 8
        assert cs.mismatches == 1

    def test_every_block_is_covered(self):
        cs = ChecksummedArrays(block_bytes=16)
        a = np.arange(64, dtype=np.uint8)
        cs.seal("a", a)
        for i in range(a.size):
            b = a.copy()
            b[i] ^= 0x80
            with pytest.raises(IntegrityError):
                cs.verify("a", b)

    def test_dtype_drift_detected(self):
        cs = ChecksummedArrays()
        a = np.zeros(8, dtype=np.int64)
        cs.seal("a", a)
        with pytest.raises(IntegrityError, match="drifted"):
            cs.verify("a", a.view(np.uint64))

    def test_length_drift_detected(self):
        cs = ChecksummedArrays()
        a = np.zeros(8, dtype=np.int64)
        cs.seal("a", a)
        with pytest.raises(IntegrityError, match="drifted"):
            cs.verify("a", a[:4])

    def test_unsealed_name_is_a_caller_bug(self):
        cs = ChecksummedArrays()
        with pytest.raises(KeyError):
            cs.verify("ghost", np.zeros(1))

    def test_empty_array_seals_and_verifies(self):
        cs = ChecksummedArrays()
        a = np.empty(0, dtype=np.int64)
        cs.seal("empty", a)
        cs.verify("empty", np.empty(0, dtype=np.int64))

    def test_readonly_view_seals_like_its_owner(self):
        base = np.arange(50, dtype=np.int64)
        view = base.view()
        view.setflags(write=False)
        cs = ChecksummedArrays()
        cs.seal("a", view)
        cs.verify("a", base)
        base[3] ^= 1
        with pytest.raises(IntegrityError):
            cs.verify("a", view)


class TestVerifyAll:
    def test_skips_unsealed_by_default(self):
        cs = ChecksummedArrays()
        a = np.arange(10)
        cs.seal("a", a)
        checked = cs.verify_all({"a": a, "later": np.zeros(3)})
        assert checked == 1

    def test_require_all_sealed(self):
        cs = ChecksummedArrays()
        with pytest.raises(KeyError):
            cs.verify_all(
                {"never": np.zeros(3)}, require_all_sealed=True
            )

    def test_reports_first_corrupt_array(self):
        cs = ChecksummedArrays()
        a, b = np.arange(10), np.arange(20)
        cs.seal("a", a)
        cs.seal("b", b)
        b2 = b.copy()
        b2[0] ^= 1
        with pytest.raises(IntegrityError) as exc:
            cs.verify_all({"a": a, "b": b2})
        assert exc.value.array == "b"


class TestBookkeeping:
    def test_reseal_replaces(self):
        cs = ChecksummedArrays()
        a = np.arange(10)
        cs.seal("a", a)
        a[0] = 99
        cs.seal("a", a)
        cs.verify("a", a)
        assert cs.seals == 2

    def test_drop_and_names(self):
        cs = ChecksummedArrays()
        cs.seal("b", np.zeros(1))
        cs.seal("a", np.zeros(1))
        assert cs.names == ("a", "b")
        assert cs.drop("a")
        assert not cs.drop("a")
        assert not cs.sealed("a")
        assert len(cs) == 1

    def test_crc32_stable_and_content_sensitive(self):
        cs1, cs2 = ChecksummedArrays(), ChecksummedArrays()
        a = np.arange(100_000, dtype=np.int64)
        cs1.seal("a", a)
        cs2.seal("a", a.copy())
        assert cs1.crc32("a") == cs2.crc32("a")
        assert cs1.crc32("missing") is None
        b = a.copy()
        b[12345] ^= 1
        cs2.seal("a", b)
        assert cs1.crc32("a") != cs2.crc32("a")

    def test_block_bytes_validated(self):
        with pytest.raises(ValueError):
            ChecksummedArrays(block_bytes=0)

    def test_to_dict(self):
        cs = ChecksummedArrays()
        cs.seal("a", np.zeros(4))
        cs.verify("a", np.zeros(4))
        d = cs.to_dict()
        assert d["sealed_arrays"] == 1
        assert d["verifications"] == 1
        assert d["mismatches"] == 0
