"""Tests for edge reciprocity."""

import numpy as np
import pytest

from repro.analysis import edge_reciprocity, reciprocal_edge_count
from repro.graph import from_edge_list, orient_undirected


class TestReciprocity:
    def test_fully_reciprocal(self):
        g = from_edge_list([(0, 1), (1, 0), (1, 2), (2, 1)], 3)
        assert edge_reciprocity(g) == 1.0
        assert reciprocal_edge_count(g) == 4

    def test_no_reciprocity(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], 3)
        assert edge_reciprocity(g) == 0.0

    def test_mixed(self):
        g = from_edge_list([(0, 1), (1, 0), (1, 2)], 3)
        assert edge_reciprocity(g) == pytest.approx(2 / 3)

    def test_empty(self):
        assert edge_reciprocity(from_edge_list([], 3)) == 0.0

    def test_self_loop_is_reciprocal(self):
        from repro.graph import from_edge_array

        g = from_edge_array(
            np.array([0]), np.array([0]), 1, dedup=False
        )
        assert edge_reciprocity(g) == 1.0

    def test_independent_orientation_near_quarter(self):
        # independent coin model: P(reverse survives | edge survives)
        # is 1/3 per *directed* edge: of the three live outcomes
        # (fwd, bwd, both) with equal mass, "both" holds 2 of the 4
        # directed edges -> reciprocity = 2*P(both)/(expected edges)
        # = (2*0.25)/1.0 = 0.5 of edges have partners... measured:
        rng = np.random.default_rng(0)
        src = rng.integers(0, 3000, 30000)
        dst = rng.integers(0, 3000, 30000)
        keep = src != dst
        g = orient_undirected(src[keep], dst[keep], 3000, rng=1)
        r = edge_reciprocity(g)
        assert 0.4 < r < 0.6

    def test_choose_orientation_zero(self):
        rng = np.random.default_rng(2)
        src = rng.integers(0, 2000, 10000)
        dst = rng.integers(0, 2000, 10000)
        keep = src != dst
        g = orient_undirected(
            src[keep], dst[keep], 2000, mode="choose", rng=3
        )
        assert edge_reciprocity(g) == 0.0

    def test_matches_networkx(self):
        import networkx as nx

        from tests.conftest import random_digraph

        g = random_digraph(80, 500, seed=9)
        ref = nx.reciprocity(g.to_networkx())
        assert edge_reciprocity(g) == pytest.approx(ref)
