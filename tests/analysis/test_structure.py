"""Tests for diameter estimation, small-world classification, degree
statistics and the bow-tie decomposition."""

import numpy as np
import pytest

from repro.analysis import (
    BowTie,
    bowtie_decomposition,
    classify_graph,
    degree_statistics,
    estimate_diameter,
    eccentricity_sample,
    is_small_world,
    powerlaw_fit,
)
from repro.core import tarjan_scc
from repro.generators import rmat_graph, watts_strogatz_graph
from repro.graph import from_edge_list


class TestDiameter:
    def test_path_diameter(self):
        g = from_edge_list([(i, i + 1) for i in range(9)], 10)
        assert estimate_diameter(g, samples=10) == 9

    def test_directed_vs_undirected(self):
        # directed path: undirected closure has diameter 9; the plain
        # directed eccentricity from node 9 is 0 (nothing reachable)
        g = from_edge_list([(i, i + 1) for i in range(9)], 10)
        assert estimate_diameter(g, samples=10, undirected=False) <= 9

    def test_eccentricity_sample_shape(self):
        g = from_edge_list([(0, 1), (1, 2)], 3)
        eccs = eccentricity_sample(g, samples=2, rng=0)
        assert eccs.shape == (2,)

    def test_empty_graph(self):
        assert estimate_diameter(from_edge_list([], 0)) == 0

    def test_sampling_is_lower_bound(self):
        g = from_edge_list([(i, i + 1) for i in range(99)], 100)
        full = estimate_diameter(g, samples=100)
        sampled = estimate_diameter(g, samples=3, rng=1)
        assert sampled <= full


class TestSmallWorld:
    def test_ws_rewired_is_small_world(self):
        g = watts_strogatz_graph(2000, 3, 0.2, rng=0)
        assert is_small_world(g)

    def test_lattice_is_not(self):
        g = watts_strogatz_graph(2000, 2, 0.0, rng=0)
        assert not is_small_world(g)

    def test_report_fields(self):
        g = watts_strogatz_graph(500, 3, 0.3, rng=1)
        rep = classify_graph(g)
        assert rep.num_nodes == 500
        assert rep.ratio == pytest.approx(
            rep.diameter_estimate / rep.log2_n
        )


class TestDegrees:
    def test_stats_on_star(self):
        g = from_edge_list([(0, i) for i in range(1, 21)], 21)
        st = degree_statistics(g)
        assert st.max_out == 20
        assert st.max_in == 1
        assert st.skew > 10

    def test_rmat_is_scale_free_ish(self):
        g = rmat_graph(12, 8.0, rng=0)
        st = degree_statistics(g)
        assert st.skew > 8
        assert 1.2 < st.alpha < 4.0

    def test_powerlaw_fit_on_synthetic(self):
        rng = np.random.default_rng(0)
        # discrete Pareto alpha=2.5
        u = rng.random(20000)
        x = np.floor((1 - u) ** (-1 / 1.5)).astype(int)
        alpha = powerlaw_fit(x, xmin=2)
        assert 2.2 < alpha < 2.8

    def test_powerlaw_degenerate(self):
        assert np.isnan(powerlaw_fit(np.array([1, 1, 1])))


class TestBowTie:
    def test_in_core_out(self):
        # 0 -> {1,2} -> 3, node 4 disconnected
        g = from_edge_list([(0, 1), (1, 2), (2, 1), (2, 3)], 5)
        labels = tarjan_scc(g)
        bt = bowtie_decomposition(g, labels)
        assert bt.core == 2
        assert bt.inset == 1
        assert bt.outset == 1
        assert bt.other == 1
        assert bt.total == 5

    def test_fractions_sum_to_one(self):
        g = from_edge_list([(0, 1), (1, 0), (1, 2)], 4)
        bt = bowtie_decomposition(g, tarjan_scc(g))
        assert sum(bt.fractions().values()) == pytest.approx(1.0)

    def test_planted_bowtie_core_dominates(self, planted_medium):
        bt = bowtie_decomposition(planted_medium.graph, planted_medium.labels)
        assert bt.core > bt.inset and bt.core > bt.outset
        assert bt.core / bt.total == pytest.approx(0.55, abs=0.02)
