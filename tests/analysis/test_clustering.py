"""Tests for the clustering-coefficient estimator."""

import numpy as np
import pytest

from repro.analysis import average_clustering, local_clustering
from repro.generators import watts_strogatz_graph
from repro.graph import from_edge_list


class TestLocalClustering:
    def test_triangle(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], 3)
        assert local_clustering(g, 0) == 1.0

    def test_star_center_zero(self):
        g = from_edge_list([(0, i) for i in range(1, 6)], 6)
        assert local_clustering(g, 0) == 0.0

    def test_leaf_zero(self):
        g = from_edge_list([(0, 1)], 2)
        assert local_clustering(g, 1) == 0.0

    def test_matches_networkx(self):
        import networkx as nx

        from tests.conftest import random_digraph

        g = random_digraph(60, 240, seed=4)
        und = g.to_networkx().to_undirected()
        ref = nx.clustering(und)
        for v in range(0, 60, 7):
            assert local_clustering(g, v) == pytest.approx(ref[v])


class TestAverageClustering:
    def test_lattice_clusters_rewired_less(self):
        # WS: the lattice has high clustering; full rewiring destroys it
        lattice = watts_strogatz_graph(600, 4, 0.0, rng=0)
        random = watts_strogatz_graph(600, 4, 1.0, rng=0)
        assert (
            average_clustering(lattice, 100)
            > 3 * average_clustering(random, 100) + 0.05
        )

    def test_small_world_regime(self):
        # modest rewiring keeps clustering while diameter collapses —
        # the defining Watts-Strogatz observation [29]
        from repro.analysis import estimate_diameter

        lattice = watts_strogatz_graph(800, 4, 0.0, rng=1)
        sw = watts_strogatz_graph(800, 4, 0.05, rng=1)
        assert average_clustering(sw, 100, rng=1) > 0.5 * average_clustering(
            lattice, 100, rng=1
        )
        assert estimate_diameter(sw, samples=6) < estimate_diameter(
            lattice, samples=6
        )

    def test_empty_graph(self):
        assert average_clustering(from_edge_list([], 0)) == 0.0

    def test_deterministic_sampling(self):
        g = watts_strogatz_graph(300, 3, 0.2, rng=2)
        assert average_clustering(g, 50, rng=9) == average_clustering(
            g, 50, rng=9
        )
