"""Tests for SCC structure statistics (Figures 2 and 9 data)."""

import numpy as np
import pytest

from repro.analysis import (
    giant_fraction,
    scc_sizes_from_labels,
    size_histogram,
    summarize_scc_structure,
)


LABELS = np.array([0, 0, 0, 0, 1, 2, 2, 3])


class TestSizes:
    def test_sizes(self):
        assert np.array_equal(scc_sizes_from_labels(LABELS), [4, 1, 2, 1])

    def test_incomplete_labels_rejected(self):
        with pytest.raises(ValueError):
            scc_sizes_from_labels(np.array([0, -1]))

    def test_empty(self):
        assert scc_sizes_from_labels(np.empty(0, dtype=np.int64)).size == 0

    def test_histogram(self):
        assert size_histogram(LABELS) == {1: 2, 2: 1, 4: 1}

    def test_giant_fraction(self):
        assert giant_fraction(LABELS) == pytest.approx(0.5)


class TestSummary:
    def test_summary_fields(self):
        s = summarize_scc_structure(LABELS)
        assert s.num_nodes == 8
        assert s.num_sccs == 4
        assert s.largest_scc == 4
        assert s.trivial_sccs == 2
        assert s.mid_sccs == 1
        assert not s.acyclic

    def test_acyclic_detection(self):
        s = summarize_scc_structure(np.arange(5))
        assert s.acyclic
        assert s.largest_scc == 1

    def test_planted_structure_recovered(self, planted_medium):
        s = summarize_scc_structure(planted_medium.labels)
        assert s.giant_fraction == pytest.approx(0.55, abs=0.02)
        assert s.trivial_sccs > 0
        assert s.mid_sccs > 0
