"""Tests for manifest parsing and per-job-isolated batch execution."""

import dataclasses
import json

import pytest

from repro.engine import Engine
from repro.engine.batch import (
    BatchJob,
    BatchReport,
    load_manifest,
    run_batch,
)
from repro.runtime.faults import FaultPlan, FaultSpec


def job_fault_plan(text: str) -> FaultPlan:
    """Parse a compact plan and pin it to the batch 'job' site."""
    return FaultPlan(
        dataclasses.replace(s, site="job")
        for s in FaultPlan.parse(text).specs
    )


class TestBatchJob:
    def test_from_dict_minimal(self):
        job = BatchJob.from_dict({"graph": "wiki"})
        assert job.method == "method2"
        assert job.backend == "serial"

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown batch-job key"):
            BatchJob.from_dict({"graph": "wiki", "methdo": "method1"})

    def test_from_dict_requires_graph(self):
        with pytest.raises(ValueError, match="graph"):
            BatchJob.from_dict({"method": "method2"})

    def test_describe_defaults_and_label(self):
        assert (
            BatchJob(graph="wiki").describe() == "method2@wiki[serial]"
        )
        assert BatchJob(graph="wiki", label="x").describe() == "x"


class TestManifest:
    def test_jobs_object_and_bare_list(self, tmp_path):
        obj = tmp_path / "obj.json"
        obj.write_text(json.dumps({"jobs": [{"graph": "wiki"}]}))
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps([{"graph": "wiki"}, {"graph": "ljournal"}]))
        assert len(load_manifest(obj)) == 1
        assert len(load_manifest(bare)) == 2

    def test_invalid_json_diagnosed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="invalid manifest JSON"):
            load_manifest(path)

    def test_empty_manifest_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        with pytest.raises(ValueError, match="non-empty"):
            load_manifest(path)


class TestRunBatch:
    def jobs(self):
        return [
            BatchJob(graph="wiki", scale=0.05, method="method2"),
            BatchJob(graph="wiki", scale=0.05, method="method1"),
            BatchJob(graph="wiki", scale=0.05, method="tarjan"),
        ]

    def test_all_ok_and_sessions_warm(self):
        with Engine() as eng:
            report = run_batch(eng, self.jobs())
        assert report.jobs_total == 3
        assert report.jobs_ok == 3
        assert report.first_failure_code == 0
        # one graph -> one session; later jobs ride it warm.
        assert len(report.sessions) == 1
        assert report.records[1].warm and report.records[2].warm
        # all three jobs agree on the SCC count.
        assert len({r.num_sccs for r in report.records}) == 1

    def test_bad_job_is_isolated(self):
        jobs = self.jobs()
        jobs.insert(1, BatchJob(graph="/no/such/file.txt"))
        with Engine() as eng:
            report = run_batch(eng, jobs)
        assert report.jobs_total == 4
        assert report.jobs_ok == 3
        bad = report.records[1]
        assert not bad.ok
        assert bad.exit_code == 1
        assert bad.error_type == "FileNotFoundError"
        # the failure did not stop the jobs after it.
        assert report.records[2].ok and report.records[3].ok
        assert report.first_failure_code == 1

    def test_injected_fault_survived(self):
        """The chaos drill the CLI --fault-plan flag runs: the hit job
        fails typed, every other job completes."""
        with Engine() as eng:
            report = run_batch(
                eng,
                self.jobs(),
                fault_plan=job_fault_plan("crash@1:pre"),
            )
        assert [r.ok for r in report.records] == [True, False, True]
        hit = report.records[1]
        assert hit.error_type == "FaultInjected"
        assert hit.exit_code == 1
        assert report.jobs_ok == 2

    def test_progress_callback_sees_every_record(self):
        seen = []
        with Engine() as eng:
            run_batch(eng, self.jobs(), progress=seen.append)
        assert [r.index for r in seen] == [0, 1, 2]

    def test_run_many_delegates(self):
        with Engine() as eng:
            report = eng.run_many(self.jobs()[:1])
        assert isinstance(report, BatchReport)
        assert report.jobs_ok == 1

    def test_report_roundtrips_to_json(self, tmp_path):
        out = tmp_path / "report.json"
        with Engine() as eng:
            report = run_batch(eng, self.jobs()[:2])
        report.write(out)
        data = json.loads(out.read_text())
        assert data["jobs_total"] == 2
        assert data["jobs_ok"] == 2
        assert len(data["jobs"]) == 2
        assert data["sessions"]  # amortization stats published

    def test_per_job_fault_plan_forces_supervised(self):
        """A job carrying its own fault plan runs supervised and
        recovers (first retry succeeds)."""
        job = BatchJob(
            graph="wiki", scale=0.05, fault_plan="raise@0", workers=2
        )
        with Engine() as eng:
            report = run_batch(eng, [job])
        rec = report.records[0]
        assert rec.ok, rec.error


class TestBatchHardening:
    def jobs(self):
        return [
            BatchJob(graph="wiki", scale=0.05, method="method2"),
            BatchJob(graph="wiki", scale=0.05, method="method1"),
        ]

    def test_batch_level_corrupt_targets_its_job_by_index(self):
        """A batch-level ``corrupt`` spec pinned to the "job" site (the
        CLI --fault-plan route) rots exactly the indexed job's warm
        arrays; the integrity tier detects it and the retry recovers on
        a rebuilt session.  The other job never sees the flip."""
        from repro.service.retry import RetryPolicy

        plan = FaultPlan(
            [FaultSpec(kind="corrupt", site="job", index=0, array="indices")]
        )
        with Engine(integrity=True) as eng:
            report = run_batch(
                eng,
                self.jobs(),
                fault_plan=plan,
                retry=RetryPolicy(
                    max_attempts=2, backoff_base=0.0, jitter=0.0
                ),
            )
        hit, clean = report.records
        assert hit.ok, hit.error
        assert hit.attempts == 2
        assert clean.ok and clean.attempts == 1
        assert hit.num_sccs == clean.num_sccs

    def test_batch_level_phase_corrupt_rides_into_every_job(self):
        """A batch-level "phase"-site ``corrupt`` spec (run-owned
        labels) fires at a phase boundary inside every job's run; each
        job detects, retries, and lands on the clean answer."""
        from repro.service.retry import RetryPolicy

        plan = FaultPlan(
            [
                FaultSpec(
                    kind="corrupt",
                    site="phase",
                    index=1,
                    stage="post",
                    array="labels",
                )
            ]
        )
        jobs = [
            BatchJob(graph="wiki", scale=0.05, method="method2"),
            BatchJob(graph="wiki", scale=0.05, method="method2"),
        ]
        with Engine(integrity=True) as eng:
            report = run_batch(
                eng,
                jobs,
                fault_plan=plan,
                retry=RetryPolicy(
                    max_attempts=2, backoff_base=0.0, jitter=0.0
                ),
            )
        assert all(r.ok for r in report.records), [
            r.error for r in report.records
        ]
        assert [r.attempts for r in report.records] == [2, 2]
        assert len({r.num_sccs for r in report.records}) == 1

    def test_batch_level_corrupt_fails_typed_without_retry(self):
        """No retry policy: the detected corruption surfaces as a typed
        IntegrityError failure (exit 20) and the session is
        quarantined, so the next job rebuilds and runs clean."""
        plan = FaultPlan(
            [FaultSpec(kind="corrupt", site="job", index=0, array="indptr")]
        )
        with Engine(integrity=True) as eng:
            report = run_batch(eng, self.jobs(), fault_plan=plan)
            quarantines = eng.quarantines
        hit, clean = report.records
        assert not hit.ok
        assert hit.error_type == "IntegrityError"
        assert hit.exit_code == 20
        assert clean.ok
        assert quarantines == 1
        assert report.integrity_failures == 1

    def test_retry_recovers_transient_job_fault(self):
        """With a retry policy, a job-site fault with times=1 fails the
        first attempt and the second attempt lands clean."""
        from repro.service.retry import RetryPolicy

        with Engine() as eng:
            report = run_batch(
                eng,
                self.jobs(),
                fault_plan=job_fault_plan("raise@0:pre"),
                retry=RetryPolicy(
                    max_attempts=2, backoff_base=0.0, jitter=0.0
                ),
            )
        hit, clean = report.records
        assert hit.ok, hit.error
        assert hit.attempts == 2  # the retry did the saving
        assert clean.ok and clean.attempts == 1

    def test_retry_does_not_burn_on_permanent_failures(self):
        from repro.service.retry import RetryPolicy

        jobs = [BatchJob(graph="/no/such/file.txt")]
        with Engine() as eng:
            report = run_batch(
                eng,
                jobs,
                retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            )
        rec = report.records[0]
        assert not rec.ok
        assert rec.attempts == 1  # permanent: failed fast

    def test_job_timeout_fails_typed(self):
        # an absurdly small budget trips the engine's cooperative
        # phase-deadline check at the first phase boundary.
        job = BatchJob(graph="wiki", scale=0.05, timeout=1e-7)
        with Engine() as eng:
            report = run_batch(eng, [job])
        rec = report.records[0]
        assert not rec.ok
        assert rec.error_type == "PhaseTimeoutError"
        assert rec.exit_code == 14

    def test_interrupt_sheds_remainder_and_keeps_report(self):
        """The SIGTERM/SIGINT contract: in-flight finishes, the rest is
        shed typed, and the report is still complete."""
        import os
        import signal as signal_mod

        jobs = self.jobs() + [
            BatchJob(graph="wiki", scale=0.05, method="tarjan")
        ]
        fired = {"done": False}

        def interrupt_after_first(rec):
            if not fired["done"]:
                fired["done"] = True
                os.kill(os.getpid(), signal_mod.SIGTERM)

        with Engine() as eng:
            report = run_batch(
                eng, jobs, progress=interrupt_after_first
            )
        assert report.records[0].ok  # in-flight job finished
        assert report.jobs_shed == 2
        for rec in report.records[1:]:
            assert rec.shed and not rec.ok
            assert rec.exit_code == 17
            assert rec.error_type == "ServiceOverloadError"
            assert rec.attempts == 0
        # the report still serializes completely (what --output writes).
        data = report.to_dict()
        assert data["jobs_shed"] == 2
        assert len(data["jobs"]) == 3

    def test_shed_jobs_roundtrip_in_json(self, tmp_path):
        import os
        import signal as signal_mod

        out = tmp_path / "report.json"

        def interrupt(rec):
            os.kill(os.getpid(), signal_mod.SIGTERM)

        with Engine() as eng:
            report = run_batch(eng, self.jobs(), progress=interrupt)
        report.write(out)
        data = json.loads(out.read_text())
        assert data["jobs_shed"] == 1
        assert data["jobs"][1]["shed"] is True
        assert data["jobs"][0]["attempts"] == 1
