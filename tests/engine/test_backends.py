"""Tests for the ExecutorBackend protocol and registry."""

import numpy as np
import pytest

from repro.core import SCCState, same_partition
from repro.engine.backends import (
    BACKENDS,
    BackendCapabilities,
    ExecutorBackend,
    SerialBackend,
    ThreadsBackend,
    backend_names,
    get_executor,
)
from tests.conftest import random_digraph, scipy_scc_labels


class TestRegistry:
    def test_all_four_registered(self):
        assert backend_names() == (
            "serial",
            "threads",
            "processes",
            "supervised",
        )

    def test_get_executor_resolves(self):
        for name in backend_names():
            backend = get_executor(name)
            assert backend.name == name
            assert isinstance(backend, ExecutorBackend)
            assert isinstance(backend.capabilities, BackendCapabilities)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="processes"):
            get_executor("fibers")

    def test_capability_flags(self):
        assert not BACKENDS["serial"].capabilities.processes
        assert BACKENDS["serial"].capabilities.deadline
        assert BACKENDS["processes"].capabilities.processes
        assert BACKENDS["processes"].capabilities.warm_pool
        assert not BACKENDS["processes"].capabilities.fault_tolerant
        assert BACKENDS["supervised"].capabilities.fault_tolerant
        assert BACKENDS["supervised"].capabilities.warm_pool


class TestDirectUse:
    """The protocol is usable without the method pipelines on top."""

    @pytest.mark.parametrize("cls", [SerialBackend, ThreadsBackend])
    def test_run_phase_decomposes(self, cls):
        g = random_digraph(120, 400, seed=7)
        s = SCCState(g, seed=7)
        n_tasks = cls().run_phase(s, [(0, np.arange(120))])
        assert n_tasks > 0
        s.check_done()
        assert same_partition(s.labels, scipy_scc_labels(g))

    def test_serial_deadline_honoured(self):
        from repro.errors import PhaseTimeoutError

        g = random_digraph(200, 800, seed=8)
        s = SCCState(g, seed=8)
        with pytest.raises(PhaseTimeoutError):
            SerialBackend().run_phase(
                s, [(0, np.arange(200))], deadline=0.0
            )
