"""The engine parity gate.

The engine's contract: canonical labels are bit-identical no matter
which executor ran phase 2, which kernel backend computed the
traversals, or whether the session was cold or warm.  The SCC
partition of a graph is unique, so any divergence here is a real bug
(shared-memory corruption, colour collision, stale pool state), not a
representation choice.

``REPRO_ENGINE_BACKENDS`` (comma list) restricts the executor axis —
the CI matrix job sets it to run one backend per matrix entry.
"""

import os

import numpy as np
import pytest

from repro.engine import Engine
from repro.engine.pool import fork_available
from repro.kernels import use_backend
from tests.conftest import random_digraph, scipy_scc_labels

ALL_BACKENDS = ("serial", "processes", "supervised")
BACKENDS = tuple(
    b.strip()
    for b in os.environ.get(
        "REPRO_ENGINE_BACKENDS", ",".join(ALL_BACKENDS)
    ).split(",")
    if b.strip()
)
KERNELS = ("numpy", "numba")


def skip_unless_runnable(backend):
    if backend in ("processes", "supervised") and not fork_available():
        pytest.skip("requires POSIX fork")


@pytest.fixture(scope="module")
def graph():
    return random_digraph(250, 1000, seed=11)


@pytest.fixture(scope="module")
def reference(graph):
    """Canonical labels from the serial backend on a cold engine."""
    with Engine() as eng:
        result = eng.run(graph, method="method2", backend="serial")
    return result.labels


@pytest.mark.parametrize("kernels", KERNELS)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", ("method1", "method2"))
def test_labels_bit_identical_cold_and_warm(
    graph, reference, method, backend, kernels
):
    skip_unless_runnable(backend)
    with Engine(backend=backend, num_workers=2) as eng, use_backend(
        kernels
    ):
        cold = eng.run(graph, method=method)
        warm = eng.run(graph, method=method)
    from repro.core import same_partition

    assert same_partition(cold.labels, scipy_scc_labels(graph))
    assert np.array_equal(cold.labels, reference)
    assert np.array_equal(warm.labels, reference)


def test_warm_run_pays_no_setup(graph):
    skip_unless_runnable("processes")
    with Engine(backend="processes", num_workers=2) as eng:
        eng.run(graph, method="method2")
        sess = eng.session(graph)
        setup_after_cold = sess.stats.setup_seconds()
        spawns = sess.stats.pool_spawns
        eng.run(graph, method="method2")
        eng.run(graph, method="method1")
        assert sess.stats.setup_seconds() == setup_after_cold
        assert sess.stats.pool_spawns == spawns  # one fork, many runs
        assert sess.stats.warm_runs >= 2


def test_other_methods_run_through_engine(graph):
    """Every registered method is servable (kwarg filtering works)."""
    oracle = scipy_scc_labels(graph)
    from repro.core import same_partition

    with Engine() as eng:
        for method in (
            "tarjan",
            "kosaraju",
            "gabow",
            "baseline",
            "fwbw",
            "coloring",
            "multistep",
        ):
            result = eng.run(graph, method=method)
            assert same_partition(result.labels, oracle), method


def test_raw_labels_match_direct_call(graph):
    """canonical=False reproduces the method's own label order."""
    from repro import strongly_connected_components

    direct = strongly_connected_components(graph, "method2", seed=0)
    with Engine(canonical=False) as eng:
        served = eng.run(graph, method="method2", seed=0)
    assert np.array_equal(served.labels, direct.labels)
