"""Tests for warm graph sessions and the engine's session cache."""

import numpy as np
import pytest

from repro.engine import Engine, GraphSession, graph_fingerprint
from repro.engine.pool import fork_available
from tests.conftest import random_digraph

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires POSIX fork"
)


class TestFingerprint:
    def test_stable_across_reloads(self):
        a = random_digraph(60, 200, seed=3)
        b = random_digraph(60, 200, seed=3)
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_distinguishes_graphs(self):
        a = random_digraph(60, 200, seed=3)
        b = random_digraph(60, 200, seed=4)
        assert graph_fingerprint(a) != graph_fingerprint(b)


class TestSessionCaching:
    def test_transpose_built_once(self):
        g = random_digraph(80, 300, seed=0)
        with GraphSession(g) as sess:
            sess.ensure_transpose()
            assert sess.stats.transpose_seconds >= 0.0
            before = sess.stats.transpose_reuses
            sess.ensure_transpose()
            sess.ensure_transpose()
            assert sess.stats.transpose_reuses == before + 2

    def test_degrees_and_validation_cached(self):
        g = random_digraph(80, 300, seed=1)
        with GraphSession(g) as sess:
            d1 = sess.effective_degrees()
            d2 = sess.effective_degrees()
            assert d1 is d2
            sess.validate()
            t = sess.stats.validate_seconds
            sess.validate()  # second call is a cache hit
            assert sess.stats.validate_seconds == t

    def test_closed_session_guards(self):
        sess = GraphSession(random_digraph(10, 30, seed=2))
        sess.close()
        sess.close()  # idempotent
        assert sess.closed
        with pytest.raises(RuntimeError):
            sess.ensure_transpose()


class TestEngineSessionCache:
    def test_dedup_by_fingerprint(self):
        g = random_digraph(50, 150, seed=5)
        same = random_digraph(50, 150, seed=5)
        with Engine() as eng:
            assert eng.session(g) is eng.session(same)
            assert len(eng.sessions) == 1

    def test_session_passthrough(self):
        g = random_digraph(50, 150, seed=5)
        with Engine() as eng:
            sess = eng.session(g)
            assert eng.session(sess) is sess

    def test_lru_eviction_closes(self):
        with Engine(max_sessions=2) as eng:
            s1 = eng.session(random_digraph(30, 90, seed=1))
            s2 = eng.session(random_digraph(30, 90, seed=2))
            s3 = eng.session(random_digraph(30, 90, seed=3))
            assert s1.closed  # least recently used got evicted
            assert not s2.closed and not s3.closed
            assert len(eng.sessions) == 2

    def test_load_dataset_cached_by_source(self):
        with Engine() as eng:
            s1 = eng.load("wiki", scale=0.05)
            s2 = eng.load("wiki", scale=0.05)
            assert s1 is s2
            assert s1.name == "wiki"

    def test_close_closes_sessions(self):
        eng = Engine()
        sess = eng.session(random_digraph(30, 90, seed=6))
        eng.close()
        assert sess.closed
        with pytest.raises(RuntimeError):
            eng.session(random_digraph(10, 20, seed=0))


@needs_fork
class TestWarmPool:
    def test_pool_reused_for_same_signature(self):
        g = random_digraph(60, 200, seed=9)
        with GraphSession(g) as sess:
            mirror1, pool1 = sess.executor_resources(num_workers=2)
            mirror2, pool2 = sess.executor_resources(num_workers=2)
            assert mirror1 is mirror2
            assert pool1 is pool2
            assert sess.stats.pool_spawns == 1
            assert sess.stats.pool_reuses == 1

    def test_pool_respawned_on_config_change(self):
        g = random_digraph(60, 200, seed=9)
        with GraphSession(g) as sess:
            _, pool1 = sess.executor_resources(num_workers=2)
            _, pool2 = sess.executor_resources(num_workers=3)
            assert pool1 is not pool2
            assert not pool1.alive  # the old pool was torn down
            assert sess.stats.pool_spawns == 2

    def test_condemned_pool_replaced(self):
        """A pool condemned mid-run (timeout, dead worker) must not be
        handed out again."""
        g = random_digraph(60, 200, seed=9)
        with GraphSession(g) as sess:
            _, pool1 = sess.executor_resources(num_workers=2)
            pool1.terminate()
            _, pool2 = sess.executor_resources(num_workers=2)
            assert pool2 is not pool1
            assert pool2.alive
            assert sess.stats.pool_spawns == 2

    def test_warmup_forks_eagerly(self):
        g = random_digraph(60, 200, seed=9)
        with GraphSession(g) as sess:
            sess.warmup(processes=True, num_workers=2)
            assert sess.stats.pool_spawns == 1
            assert g._in_indptr is not None
