"""Tests for the shared-memory mirror and worker-context plumbing.

The load-bearing guarantee: every shared-memory segment is unlinked on
*every* exit path — success, mid-construction crash, double close — so
no run can leak a segment until reboot.
"""

import multiprocessing as mp
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import SCCState
from repro.engine.shm import (
    WORKER_CTX,
    SharedStateMirror,
    arm_worker_context,
    disarm_worker_context,
    shm_array,
)
from tests.conftest import random_digraph


def segment_gone(name: str) -> bool:
    """True when no shared segment with this name exists any more."""
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    seg.close()
    return False


@pytest.fixture
def record_segments(monkeypatch):
    """Record the name of every segment created during the test."""
    created = []
    orig = shared_memory.SharedMemory

    def recording(*args, **kwargs):
        seg = orig(*args, **kwargs)
        if kwargs.get("create"):
            created.append(seg.name)
        return seg

    monkeypatch.setattr(
        "multiprocessing.shared_memory.SharedMemory", recording
    )
    return created


class TestShmArray:
    def test_roundtrip(self):
        registry = []
        init = np.arange(8, dtype=np.int64)
        try:
            arr = shm_array((8,), np.int64, init, registry)
            assert np.array_equal(arr, init)
            assert len(registry) == 1
        finally:
            for seg in registry:
                seg.close()
                seg.unlink()

    def test_registered_before_failure(self):
        """A failing init copy must still leave the segment in the
        registry, so the caller's cleanup can unlink it."""
        registry = []
        with pytest.raises((TypeError, ValueError)):
            shm_array(
                (10,), np.int64, np.zeros(3, dtype=np.int64), registry
            )
        assert len(registry) == 1
        registry[0].close()
        registry[0].unlink()


class TestSharedStateMirror:
    def test_load_flush_roundtrip(self):
        g = random_digraph(40, 120, seed=0)
        s = SCCState(g, seed=0)
        s.color[:] = np.arange(40)
        s.mark[::2] = True
        with SharedStateMirror(40) as mirror:
            mirror.load(s)
            mirror.color[5] = 99
            mirror.scc_counter.value = 7
            mirror.color_counter.value = 123
            mirror.flush(s)
        assert s.color[5] == 99
        assert s.num_sccs == 7
        assert s.new_color() >= 123

    def test_unlinked_on_success_path(self, record_segments):
        mirror = SharedStateMirror(16)
        assert len(record_segments) == len(SharedStateMirror.ARRAYS)
        mirror.close()
        assert all(segment_gone(name) for name in record_segments)

    def test_unlinked_on_constructor_crash(
        self, record_segments, monkeypatch
    ):
        """A crash after the arrays exist (here: the counter alloc)
        must unlink every segment already created."""

        def boom(*args, **kwargs):
            raise OSError("simulated counter allocation failure")

        monkeypatch.setattr("repro.engine.shm.mp.Value", boom)
        with pytest.raises(OSError, match="simulated"):
            SharedStateMirror(16)
        assert len(record_segments) == len(SharedStateMirror.ARRAYS)
        assert all(segment_gone(name) for name in record_segments)

    def test_close_idempotent_and_guards(self, record_segments):
        mirror = SharedStateMirror(8)
        mirror.close()
        mirror.close()  # second close is a no-op, not a crash
        assert mirror.closed
        s = SCCState(random_digraph(8, 20, seed=1))
        with pytest.raises(RuntimeError):
            mirror.load(s)
        with pytest.raises(RuntimeError):
            mirror.flush(s)

    def test_size_mismatch_rejected(self):
        with SharedStateMirror(8) as mirror:
            s = SCCState(random_digraph(9, 20, seed=1))
            with pytest.raises(ValueError, match="sized for"):
                mirror.load(s)


class TestWorkerContext:
    def test_arm_disarm(self):
        g = random_digraph(12, 30, seed=2)
        with SharedStateMirror(12) as mirror:
            arm_worker_context(
                g, mirror, cost=None, phase_id=3, kernel_backend="numpy"
            )
            try:
                assert WORKER_CTX["graph"] is g
                assert WORKER_CTX["color"] is mirror.color
                assert WORKER_CTX["phase_id"] == 3
                assert WORKER_CTX["kernel_backend"] == "numpy"
            finally:
                disarm_worker_context()
            assert not WORKER_CTX

    def test_legacy_alias_is_same_object(self):
        from repro.runtime.mp_backend import _WORKER_CTX, _shm_array

        assert _WORKER_CTX is WORKER_CTX
        assert _shm_array is shm_array
