"""DynamicSCC: the incremental maintainer must land every update in
the right taxonomy bucket, keep the pseudo-topological level invariant,
and never diverge from a from-scratch recompute of the merged view."""

import numpy as np
import pytest

from repro.core.tarjan import tarjan_scc
from repro.engine.dynamic import (
    DEFAULT_DAMAGE_THRESHOLD,
    DynamicSCC,
    rep_labels,
)
from repro.graph import from_edge_array
from repro.graph.delta import DeltaCSR
from tests.conftest import random_digraph


def make_dyn(edges, n, **kwargs):
    if edges:
        arr = np.array(edges, dtype=np.int64)
        src, dst = arr[:, 0], arr[:, 1]
    else:
        src = dst = np.empty(0, dtype=np.int64)
    delta = DeltaCSR(from_edge_array(src, dst, n), compact_ratio=10.0)
    return DynamicSCC(delta, **kwargs)


def assert_levels_hold(dyn):
    """level[a] < level[b] for every condensation edge a -> b."""
    src, dst = dyn.delta.edge_array()
    ls, ld = dyn.labels[src], dyn.labels[dst]
    inter = ls != ld
    lvl_s = np.array([dyn.level_of(l) for l in ls[inter]])
    lvl_d = np.array([dyn.level_of(l) for l in ld[inter]])
    assert bool((lvl_s < lvl_d).all())


class TestInsertTaxonomy:
    def test_intra_component_insert_is_fast(self):
        dyn = make_dyn([(0, 1), (1, 2), (2, 0)], 3)
        assert not dyn.insert(0, 2)
        assert dyn.stats.fast_inserts == 1
        assert dyn.num_components == 1

    def test_level_compatible_insert_is_fast(self):
        # chain 0 -> 1 -> 2: adding 0 -> 2 respects the levels.
        dyn = make_dyn([(0, 1), (1, 2)], 3)
        assert not dyn.insert(0, 2)
        assert dyn.stats.fast_inserts == 1
        assert dyn.stats.searched_inserts == 0
        assert_levels_hold(dyn)

    def test_back_edge_merges_cycle(self):
        dyn = make_dyn([(0, 1), (1, 2), (2, 3)], 4)
        assert dyn.num_components == 4
        assert dyn.insert(3, 0)  # closes 0..3 into one SCC
        assert dyn.stats.merges == 1
        assert dyn.stats.merged_components == 4
        assert dyn.num_components == 1
        assert dyn.labels.tolist() == [0, 0, 0, 0]
        dyn.verify()

    def test_partial_cycle_merges_only_the_path(self):
        # 0 -> 1 -> 2 -> 3, back edge 2 -> 0 merges {0,1,2} but not 3.
        dyn = make_dyn([(0, 1), (1, 2), (2, 3)], 4)
        assert dyn.insert(2, 0)
        assert dyn.labels.tolist() == [0, 0, 0, 3]
        assert sorted(dyn.members(0).tolist()) == [0, 1, 2]
        assert_levels_hold(dyn)
        dyn.verify()

    def test_level_violating_insert_without_cycle_cascades(self):
        # two chains; a cross edge from the deep end of one to the
        # head of the other violates levels but closes no cycle.
        dyn = make_dyn([(0, 1), (1, 2), (3, 4)], 5)
        assert not dyn.insert(2, 3)
        assert dyn.stats.searched_inserts >= 1
        assert dyn.stats.merges == 0
        assert_levels_hold(dyn)
        dyn.verify()

    def test_noop_insert_counts_noop(self):
        dyn = make_dyn([(0, 1)], 2)
        assert not dyn.insert(0, 1)
        assert dyn.stats.noops == 1


class TestDeleteTaxonomy:
    def test_cross_component_delete_is_fast(self):
        dyn = make_dyn([(0, 1)], 2)
        assert not dyn.delete(0, 1)
        assert dyn.stats.cross_deletes == 1
        dyn.verify()

    def test_intact_certificate_spares_recompute(self):
        # complete digraph on 3 nodes: 0 still reaches 1 via 2 after
        # the delete, so the partition stands without a recompute.
        dyn = make_dyn(
            [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)], 3
        )
        assert dyn.num_components == 1
        assert not dyn.delete(0, 1)
        assert dyn.stats.intact_deletes == 1
        assert dyn.stats.splits == 0
        dyn.verify()

    def test_cycle_break_splits_into_singletons(self):
        # threshold 1.0 keeps the restricted split path even though
        # the broken component spans the whole graph.
        dyn = make_dyn([(0, 1), (1, 2), (2, 0)], 3, damage_threshold=1.0)
        assert dyn.delete(2, 0)
        assert dyn.stats.splits == 1
        assert dyn.stats.split_components == 3
        assert dyn.num_components == 3
        assert_levels_hold(dyn)
        dyn.verify()

    def test_split_into_two_sccs(self):
        # 0<->1 and 2<->3 joined into one SCC by 1->2 and 3->0;
        # deleting 3->0 splits it back into the two 2-cycles.
        dyn = make_dyn(
            [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2), (3, 0)],
            4,
            damage_threshold=1.0,
        )
        assert dyn.num_components == 1
        assert dyn.delete(3, 0)
        assert dyn.stats.splits == 1
        assert dyn.num_components == 2
        assert dyn.labels.tolist() == [0, 0, 2, 2]
        assert_levels_hold(dyn)
        dyn.verify()

    def test_self_loop_delete_never_splits(self):
        dyn = make_dyn([(0, 0), (0, 1), (1, 0)], 2)
        assert not dyn.delete(0, 0)
        assert dyn.stats.intact_deletes == 1
        dyn.verify()

    def test_damage_threshold_triggers_rebuild(self):
        dyn = make_dyn(
            [(0, 1), (1, 2), (2, 0)], 3, damage_threshold=0.5
        )
        # the broken component is the whole graph (> 50% of nodes)
        assert dyn.delete(2, 0)
        assert dyn.stats.rebuilds == 1
        assert dyn.stats.splits == 0
        dyn.verify()


class TestRecomputeHook:
    def test_custom_recompute_used_for_init_and_rebuild(self):
        calls = []

        def counting(g):
            calls.append(g.num_nodes)
            return tarjan_scc(g)

        dyn = make_dyn(
            [(0, 1), (1, 2), (2, 0)],
            3,
            damage_threshold=0.01,
            recompute=counting,
        )
        assert len(calls) == 1  # initial labels
        dyn.delete(2, 0)  # any split exceeds the tiny threshold
        assert len(calls) == 2  # rebuild
        dyn.verify()

    def test_explicit_labels_skip_recompute(self):
        edges = [(0, 1), (1, 0), (2, 2)]
        arr = np.array(edges, dtype=np.int64)
        g = from_edge_array(arr[:, 0], arr[:, 1], 3)
        delta = DeltaCSR(g)
        dyn = DynamicSCC(delta, labels=tarjan_scc(g))
        assert dyn.labels.tolist() == [0, 0, 2]

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            make_dyn([(0, 1)], 2, damage_threshold=0.0)
        g = from_edge_array(
            np.array([0], dtype=np.int64), np.array([1], dtype=np.int64), 2
        )
        with pytest.raises(ValueError):
            DynamicSCC(DeltaCSR(g), labels=np.zeros(5, dtype=np.int64))


class TestRepLabels:
    def test_normalizes_to_min_member(self):
        labels = np.array([7, 7, 3, 3, 9], dtype=np.int64)
        assert rep_labels(labels).tolist() == [0, 0, 2, 2, 4]

    def test_idempotent(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 5, 30).astype(np.int64)
        once = rep_labels(labels)
        assert np.array_equal(once, rep_labels(once))


class TestFuzzStream:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_stream_never_diverges(self, seed):
        n = 30
        base = random_digraph(n, 60, seed=seed)
        delta = DeltaCSR(base, compact_ratio=10.0)
        dyn = DynamicSCC(delta)
        rng = np.random.default_rng(seed + 1000)
        for step in range(200):
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if rng.integers(0, 2):
                dyn.insert(u, v)
            else:
                dyn.delete(u, v)
            if step % 20 == 19:
                dyn.verify()
                assert_levels_hold(dyn)
        dyn.verify()
        # the member index and the label array tell the same story
        total = 0
        for rep in np.unique(dyn.labels):
            members = dyn.members(int(rep))
            assert bool((dyn.labels[members] == rep).all())
            total += members.size
        assert total == n

    def test_batch_apply_equals_singles(self):
        n = 20
        base = random_digraph(n, 40, seed=6)
        rng = np.random.default_rng(42)
        inserts = [
            (int(rng.integers(0, n)), int(rng.integers(0, n)))
            for _ in range(25)
        ]
        deletes = [
            (int(rng.integers(0, n)), int(rng.integers(0, n)))
            for _ in range(15)
        ]
        a = DynamicSCC(DeltaCSR(base, compact_ratio=10.0))
        a.apply(inserts, deletes)
        b = DynamicSCC(DeltaCSR(base, compact_ratio=10.0))
        for e in inserts:
            b.insert(*e)
        for e in deletes:
            b.delete(*e)
        assert np.array_equal(a.labels, b.labels)
        a.verify()

    def test_default_damage_threshold_exported(self):
        assert 0 < DEFAULT_DAMAGE_THRESHOLD <= 1
