"""Source-cache freshness: ``Engine.load`` keys warm sessions by
source, so a rewritten edge-list file must invalidate the mapping and
reload — never silently serve the bytes the file used to contain."""

import os

import numpy as np

from repro.engine import Engine


def write_edges(path, edges):
    path.write_text(
        "".join(f"{u} {v}\n" for u, v in edges), encoding="utf-8"
    )


def bump_mtime(path, ns=2_000_000_000):
    """Force a visibly different mtime regardless of fs resolution."""
    st = os.stat(path)
    os.utime(path, ns=(st.st_atime_ns, st.st_mtime_ns + ns))


class TestFileSourceInvalidation:
    def test_rewritten_file_reloads(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edges(path, [(0, 1), (1, 2), (2, 0)])
        with Engine() as eng:
            first = eng.load(str(path))
            assert first.graph.num_edges == 3
            # unchanged file: the warm session is served back
            assert eng.load(str(path)) is first
            # rewrite: same length trap avoided via mtime, different
            # content must produce a session over the new bytes
            write_edges(path, [(0, 1), (1, 2), (2, 3)])
            bump_mtime(path)
            second = eng.load(str(path))
            assert second is not first
            assert second.graph.num_nodes == 4
            assert not second.graph.has_edge(2, 0)
            assert second.graph.has_edge(2, 3)

    def test_same_size_rewrite_detected_by_mtime(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edges(path, [(0, 1), (1, 2)])
        with Engine() as eng:
            first = eng.load(str(path))
            write_edges(path, [(0, 2), (2, 1)])  # same byte length
            bump_mtime(path)
            second = eng.load(str(path))
            assert second is not first
            assert second.graph.has_edge(0, 2)

    def test_deleted_file_keeps_serving_warm_session(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edges(path, [(0, 1), (1, 0)])
        with Engine() as eng:
            first = eng.load(str(path))
            os.unlink(path)
            # unstat-able source is treated as unchanged, not an error
            assert eng.load(str(path)) is first

    def test_reload_produces_fresh_labels(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edges(path, [(0, 1), (1, 0)])
        with Engine() as eng:
            r1 = eng.run(eng.load(str(path)))
            assert r1.num_sccs == 1
            write_edges(path, [(0, 1), (1, 2)])
            bump_mtime(path)
            r2 = eng.run(eng.load(str(path)))
            assert r2.num_sccs == 3
            assert not np.array_equal(r1.labels, r2.labels)


class TestDatasetSourcesSkipStat:
    def test_dataset_source_cached_without_stat(self):
        with Engine() as eng:
            a = eng.load("wiki", scale=0.02, seed=7)
            b = eng.load("wiki", scale=0.02, seed=7)
            assert a is b
            # a different parameterization is a different source key
            c = eng.load("wiki", scale=0.04, seed=7)
            assert c is not a
