"""Stream sources: offsets, reconnects, watchdog, deterministic chaos."""

import socket
import threading

import pytest

from repro.errors import StreamFeedError
from repro.ingest.sources import (
    FileTailSource,
    PipeSource,
    SocketSource,
    open_source,
)
from repro.runtime.faults import FaultPlan, FaultSpec


def stream_plan(kind, index, **kwargs):
    return FaultPlan(
        [FaultSpec(kind=kind, site="stream", index=index, **kwargs)]
    )


# -- file tail -----------------------------------------------------------
def test_file_tail_once_reads_to_eof(tmp_path):
    path = tmp_path / "feed.txt"
    path.write_bytes(b"0 1\n2 3\n")
    with FileTailSource(path, follow=False, chunk_bytes=4) as src:
        chunks = []
        while True:
            got = src.read()
            if got is None:
                break
            chunks.append(got)
    assert chunks == [(0, b"0 1\n"), (4, b"2 3\n")]


def test_file_tail_follow_idles_at_eof_then_sees_appends(tmp_path):
    path = tmp_path / "feed.txt"
    path.write_bytes(b"0 1\n")
    with FileTailSource(path, follow=True) as src:
        assert src.read() == (0, b"0 1\n")
        assert src.read() == (4, b"")  # idle, not end
        with open(path, "ab") as f:
            f.write(b"2 3\n")
        assert src.read() == (4, b"2 3\n")


def test_file_tail_seek_resumes_mid_file(tmp_path):
    path = tmp_path / "feed.txt"
    path.write_bytes(b"0 1\n2 3\n")
    with FileTailSource(path, follow=False) as src:
        src.seek(4)
        assert src.read() == (4, b"2 3\n")
        assert not src.replays_from_start


def test_missing_file_exhausts_reconnects_typed(tmp_path):
    src = FileTailSource(
        tmp_path / "absent.txt",
        max_reconnects=2,
        sleep=lambda s: None,
    )
    with pytest.raises(StreamFeedError) as ei:
        src.read()
    assert ei.value.exit_code == 21
    assert isinstance(ei.value, ConnectionError)


# -- deterministic chaos -------------------------------------------------
def test_disconnect_fault_redials_and_resumes(tmp_path):
    path = tmp_path / "feed.txt"
    path.write_bytes(b"0 1\n2 3\n")
    src = FileTailSource(
        path,
        follow=False,
        chunk_bytes=4,
        fault_plan=stream_plan("disconnect", 1),
        sleep=lambda s: None,
    )
    assert src.read() == (0, b"0 1\n")
    # read #1 severs the transport; the same call reopens and resumes
    # at the recorded offset, so delivery is seamless.
    assert src.read() == (4, b"2 3\n")
    assert src.faults["disconnect"] == 1


def test_dup_fault_redelivers_previous_chunk(tmp_path):
    path = tmp_path / "feed.txt"
    path.write_bytes(b"0 1\n2 3\n")
    src = FileTailSource(
        path,
        follow=False,
        chunk_bytes=4,
        fault_plan=stream_plan("dup", 1),
    )
    first = src.read()
    assert src.read() == first  # byte-identical replay at old offset
    assert src.read() == (4, b"2 3\n")
    assert src.faults["dup"] == 1


def test_garbage_fault_garbles_in_place_same_length(tmp_path):
    path = tmp_path / "feed.txt"
    payload = b"0 1\n2 3\n"
    path.write_bytes(payload)
    src = FileTailSource(
        path,
        follow=False,
        fault_plan=stream_plan("garbage", 0, bit_flips=2),
    )
    offset, data = src.read()
    assert offset == 0
    assert len(data) == len(payload)  # offsets stay truthful
    assert data != payload
    assert data.count(0xFE) >= 1
    # determinism: a second source under the same plan reads the same
    # garbled bytes (the chaos-drill oracle depends on this).
    src2 = FileTailSource(
        path,
        follow=False,
        fault_plan=stream_plan("garbage", 0, bit_flips=2),
    )
    assert src2.read() == (offset, data)


def test_stall_fault_sleeps_hang_seconds(tmp_path):
    path = tmp_path / "feed.txt"
    path.write_bytes(b"0 1\n")
    naps = []
    src = FileTailSource(
        path,
        follow=False,
        fault_plan=stream_plan("stall", 0, hang_seconds=7.5),
        sleep=naps.append,
    )
    assert src.read() == (0, b"0 1\n")
    assert naps == [7.5]
    assert src.faults["stall"] == 1


def test_stalled_feed_watchdog_forces_redial(tmp_path):
    path = tmp_path / "feed.txt"
    path.write_bytes(b"0 1\n")
    now = [0.0]
    src = FileTailSource(
        path,
        follow=True,
        stall_timeout=5.0,
        clock=lambda: now[0],
        sleep=lambda s: None,
    )
    assert src.read() == (0, b"0 1\n")
    now[0] = 2.0
    assert src.read() == (4, b"")  # quiet but within budget
    assert src.stalls == 0
    now[0] = 20.0
    assert src.read() == (4, b"")  # past budget: declared stalled
    assert src.stalls == 1


# -- sockets -------------------------------------------------------------
def _serve_unix(path, payloads, accepts):
    """Accept ``accepts`` connections; send the whole feed to each."""
    srv = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    srv.bind(str(path))
    srv.listen(4)

    def run():
        for _ in range(accepts):
            conn, _ = srv.accept()
            for chunk in payloads:
                conn.sendall(chunk)
            conn.close()
        srv.close()

    t = threading.Thread(target=run, daemon=True)
    t.start()
    return t


def test_socket_source_replays_from_start_after_peer_close(tmp_path):
    sock_path = tmp_path / "feed.sock"
    t = _serve_unix(sock_path, [b"0 1\n2 3\n"], accepts=2)
    src = SocketSource(
        str(sock_path),
        read_timeout=2.0,
        max_reconnects=4,
        sleep=lambda s: None,
    )
    assert src.replays_from_start
    first = src.read()
    assert first[0] == 0 and first[1].startswith(b"0 1\n")
    # drain until the peer closes (an empty read schedules a redial)
    # and the second accept replays the stream from offset 0 — the
    # at-least-once contract the downstream overlap trim absorbs.
    replayed = None
    for _ in range(50):
        got = src.read()
        if got[1] and got[0] == 0:
            replayed = got
            break
    assert replayed is not None
    assert replayed[1].startswith(b"0 1\n")
    src.close()
    t.join(timeout=5)


def test_socket_seek_is_a_noop(tmp_path):
    src = SocketSource(str(tmp_path / "never.sock"))
    src.seek(999)
    assert src.offset == 0
    src.close()


# -- pipes and specs -----------------------------------------------------
def test_pipe_source_reads_to_eof():
    import io

    src = PipeSource(io.BytesIO(b"0 1\n2 3\n"), chunk_bytes=4)
    assert src.read() == (0, b"0 1\n")
    assert src.read() == (4, b"2 3\n")
    assert src.read() is None


def test_open_source_spec_dispatch(tmp_path):
    p = tmp_path / "f.txt"
    p.write_bytes(b"")
    assert isinstance(open_source(f"tail:{p}"), FileTailSource)
    assert open_source(f"tail:{p}").follow
    assert not open_source(f"tail-once:{p}").follow
    assert isinstance(open_source(str(p)), FileTailSource)
    s = open_source("socket:/tmp/x.sock")
    assert isinstance(s, SocketSource) and s.address == "/tmp/x.sock"
    s = open_source("tcp:localhost:9999")
    assert isinstance(s, SocketSource)
    assert s.address == ("localhost", 9999)
    with pytest.raises(ValueError):
        open_source("tcp:9999")
