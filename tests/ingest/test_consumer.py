"""StreamConsumer: batching, backpressure, degrade, exact resume."""

import numpy as np
import pytest

from repro.core.result import canonical_labels
from repro.core.tarjan import tarjan_scc
from repro.engine import Engine
from repro.errors import ReproError, ServiceOverloadError
from repro.generators import generate
from repro.graph.delta import DeltaCSR
from repro.ingest.checkpoint import StreamCheckpoint
from repro.ingest.consumer import EngineApplier, StreamConsumer
from repro.ingest.sources import FileTailSource
from repro.ioutil import crc32_chunks

GRAPH, SCALE = "wiki", 0.05


def write_feed(path, edits, end=True):
    with open(path, "w") as f:
        for kind, u, v in edits:
            f.write(f"{'+' if kind == 'add' else '-'} {u} {v}\n")
        if end:
            f.write('{"end": true}\n')


def oracle_crc(edits):
    delta = DeltaCSR(generate(GRAPH, scale=SCALE, seed=None).graph)
    for kind, u, v in edits:
        if kind == "add":
            delta.add_edge(u, v)
        else:
            delta.remove_edge(u, v)
    labels = canonical_labels(tarjan_scc(delta.snapshot()))
    return crc32_chunks(labels.tobytes())


def make_edits(n, seed=7):
    rng = np.random.default_rng(seed)
    g = generate(GRAPH, scale=SCALE, seed=None).graph
    edits = []
    for u, v in rng.integers(0, g.num_nodes, (n, 2)).tolist():
        edits.append(("add", u, v))
    src, dst = g.edge_array()
    for i in rng.integers(0, src.shape[0], n // 2).tolist():
        edits.append(("remove", int(src[i]), int(dst[i])))
    return edits


class StubApplier:
    """Scriptable applier for backpressure/degrade behavior."""

    def __init__(self, responses=None):
        self.responses = list(responses or [])
        self.batches = []
        self.compactions = 0

    def _next(self, default):
        if self.responses:
            return self.responses.pop(0)
        return default

    def apply_batch(self, inserts, deletes):
        self.batches.append((list(inserts), list(deletes)))
        return self._next(
            {"ok": True, "graph_version": len(self.batches),
             "labels_crc32": 0, "log_ratio": 0.0}
        )

    def compact(self):
        self.compactions += 1
        return {"ok": True, "log_ratio": 0.0}


def test_end_to_end_labels_match_oracle(tmp_path):
    edits = make_edits(60)
    feed = tmp_path / "feed.txt"
    write_feed(feed, edits)
    with Engine(backend="serial") as eng:
        session = eng.load(GRAPH, scale=SCALE, seed=None)
        src = FileTailSource(feed, follow=False)
        consumer = StreamConsumer(
            src, EngineApplier(eng, session), batch_edges=16
        )
        stats = consumer.run()
        src.close()
    assert stats["ended"]
    assert stats["records_applied"] == len(edits)
    assert stats["labels_crc32"] == oracle_crc(edits)


def test_conflict_flush_preserves_edit_order(tmp_path):
    # add then remove of the same edge must land in different batches
    # (inserts apply before deletes within one update).
    feed = tmp_path / "feed.txt"
    write_feed(
        feed,
        [("add", 1, 2), ("add", 3, 4), ("remove", 1, 2)],
    )
    src = FileTailSource(feed, follow=False)
    stub = StubApplier()
    consumer = StreamConsumer(src, stub, batch_edges=64)
    consumer.run()
    src.close()
    assert consumer.conflict_flushes == 1
    assert stub.batches[0] == ([(1, 2), (3, 4)], [])
    assert stub.batches[1] == ([], [(1, 2)])


def test_sigkill_shaped_resume_applies_nothing_twice(tmp_path):
    edits = make_edits(40)
    feed = tmp_path / "feed.txt"
    ck_path = tmp_path / "wm.json"
    write_feed(feed, edits)
    with Engine(backend="serial") as eng:
        session = eng.load(GRAPH, scale=SCALE, seed=None)
        applier = EngineApplier(eng, session)
        # first consumer dies (stopped) after a few batches: the
        # watermark names exactly the applied prefix.
        src = FileTailSource(feed, follow=False, chunk_bytes=32)
        first = StreamConsumer(
            src,
            applier,
            checkpoint=StreamCheckpoint(ck_path),
            batch_edges=8,
            max_batches=2,
        )
        first.run()
        src.close()
        applied_before = first.records_applied
        assert 0 < applied_before < len(edits)
        version_before = first.graph_version

        # a fresh consumer resumes from the committed watermark and
        # applies only the tail.
        src = FileTailSource(feed, follow=False)
        second = StreamConsumer(
            src,
            applier,
            checkpoint=StreamCheckpoint(ck_path),
            batch_edges=8,
        )
        assert second.resumed
        stats = second.run()
        src.close()
    assert stats["records_applied"] == len(edits)
    assert stats["graph_version"] > version_before
    assert stats["labels_crc32"] == oracle_crc(edits)


def test_resume_with_nothing_new_applies_nothing(tmp_path):
    edits = make_edits(20)
    feed = tmp_path / "feed.txt"
    ck_path = tmp_path / "wm.json"
    write_feed(feed, edits)
    with Engine(backend="serial") as eng:
        session = eng.load(GRAPH, scale=SCALE, seed=None)
        applier = EngineApplier(eng, session)
        for _ in range(2):
            src = FileTailSource(feed, follow=False)
            consumer = StreamConsumer(
                src,
                applier,
                checkpoint=StreamCheckpoint(ck_path),
                batch_edges=8,
            )
            stats = consumer.run()
            src.close()
    # second run found the whole feed committed: same totals, and the
    # graph version did not advance (no batch was re-applied).
    assert stats["records_applied"] == len(edits)
    assert consumer.batches == stats["batches"]
    assert stats["labels_crc32"] == oracle_crc(edits)


def test_backpressure_retries_then_succeeds(tmp_path):
    feed = tmp_path / "feed.txt"
    write_feed(feed, [("add", 1, 2)])
    shed = {"ok": False, "error": "full", "error_type": "ServiceOverloadError"}
    stub = StubApplier(responses=[shed, shed])
    naps = []
    src = FileTailSource(feed, follow=False)
    consumer = StreamConsumer(
        src, stub, batch_edges=4, shed_retries=4, sleep=naps.append
    )
    consumer.run()
    src.close()
    assert consumer.sheds == 2
    assert len(stub.batches) == 3  # two shed attempts + the success
    assert len(naps) >= 2  # backed off between attempts


def test_backpressure_budget_exhausted_raises_typed(tmp_path):
    feed = tmp_path / "feed.txt"
    write_feed(feed, [("add", 1, 2)])
    shed = {"ok": False, "error": "full", "error_type": "ServiceOverloadError"}
    stub = StubApplier(responses=[shed] * 10)
    src = FileTailSource(feed, follow=False)
    consumer = StreamConsumer(
        src, stub, batch_edges=4, shed_retries=2, sleep=lambda s: None
    )
    with pytest.raises(ServiceOverloadError):
        consumer.run()
    src.close()


def test_fatal_applier_error_is_typed_not_retried(tmp_path):
    feed = tmp_path / "feed.txt"
    write_feed(feed, [("add", 1, 2)])
    bad = {"ok": False, "error": "boom", "error_type": "ValueError"}
    stub = StubApplier(responses=[bad])
    src = FileTailSource(feed, follow=False)
    consumer = StreamConsumer(src, stub, batch_edges=4)
    with pytest.raises(ReproError):
        consumer.run()
    src.close()
    assert len(stub.batches) == 1


def test_degrade_compacts_when_log_ratio_over_budget(tmp_path):
    feed = tmp_path / "feed.txt"
    write_feed(feed, [("add", 1, 2), ("add", 3, 4)])
    hot = {"ok": True, "graph_version": 1, "labels_crc32": 0,
           "log_ratio": 0.9}
    stub = StubApplier(responses=[hot])
    src = FileTailSource(feed, follow=False)
    consumer = StreamConsumer(
        src, stub, batch_edges=64, degrade_log_ratio=0.5
    )
    consumer.run()
    src.close()
    assert consumer.degrades == 1
    assert stub.compactions == 1


def test_stats_shape(tmp_path):
    feed = tmp_path / "feed.txt"
    write_feed(feed, [("add", 1, 2)])
    src = FileTailSource(feed, follow=False)
    consumer = StreamConsumer(src, StubApplier(), batch_edges=4)
    stats = consumer.run()
    src.close()
    for key in (
        "ended", "resumed", "batches", "records_applied",
        "conflict_flushes", "sheds", "degrades", "committed_offset",
        "freshness_lag", "parser", "source",
    ):
        assert key in stats
    assert stats["parser"]["edges"] == 1
    assert stats["source"]["reads"] >= 1
