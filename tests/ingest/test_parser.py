"""RecordParser: both dialects, policy routing, dedup, disconnects."""

import pytest

from repro.errors import GraphIngestError
from repro.ingest.parser import RecordParser


def test_text_dialect_bare_plus_minus():
    p = RecordParser()
    recs = p.feed(b"0 1\n+ 1 2\n- 3 4\n")
    assert [(r.kind, r.u, r.v) for r in recs] == [
        ("add", 0, 1),
        ("add", 1, 2),
        ("remove", 3, 4),
    ]
    assert p.report.edges == 3


def test_ndjson_dialect_and_end_record():
    p = RecordParser()
    recs = p.feed(
        b'{"add": [0, 17]}\n'
        b'{"remove": [3, 4], "seq": 812}\n'
        b'{"end": true}\n'
    )
    assert [(r.kind, r.u, r.v) for r in recs] == [
        ("add", 0, 17),
        ("remove", 3, 4),
        ("end", -1, -1),
    ]
    assert recs[1].seq == 812
    assert p.report.edges == 2  # end is a control record, not an edge


def test_comments_and_blanks_counted_not_parsed():
    p = RecordParser()
    recs = p.feed(b"# header\n\n0 1\n")
    assert len(recs) == 1
    assert p.report.comments == 1
    assert p.report.blanks == 1


def test_records_carry_watermark_offsets():
    payload = b"0 1\n+ 2 3\n"
    p = RecordParser()
    recs = p.feed(payload)
    assert recs[0].end_offset == 4
    assert recs[1].end_offset == len(payload)


def test_strict_policy_raises_located_error():
    p = RecordParser(on_error="strict")
    with pytest.raises(GraphIngestError) as ei:
        p.feed(b"0 1\nnonsense one\n")
    assert ei.value.line == 2


def test_skip_policy_counts_and_drops_garbage():
    p = RecordParser(on_error="skip")
    recs = p.feed(b"0 1\n\xfe\xfe\xfe\n2 3\n")
    assert [(r.u, r.v) for r in recs] == [(0, 1), (2, 3)]
    assert p.report.dropped == 1


def test_repair_policy_coerces_float_ids():
    p = RecordParser(on_error="repair")
    recs = p.feed(b"+ 3.0 4.0\n")
    assert [(r.u, r.v) for r in recs] == [(3, 4)]
    assert p.report.repaired == 1


def test_seq_dedup_window_drops_resends():
    p = RecordParser(dedup_window=8)
    first = p.feed(b'{"add": [0, 1], "seq": 5}\n')
    again = p.feed(b'{"add": [0, 1], "seq": 5}\n')
    assert len(first) == 1
    assert again == []
    assert p.report.duplicates == 1


def test_seq_dedup_window_is_bounded():
    p = RecordParser(dedup_window=2)
    p.feed(b'{"add": [0, 1], "seq": 1}\n')
    p.feed(b'{"add": [0, 2], "seq": 2}\n')
    p.feed(b'{"add": [0, 3], "seq": 3}\n')  # evicts seq 1
    recs = p.feed(b'{"add": [0, 1], "seq": 1}\n')
    assert len(recs) == 1  # outside the window: applied again (idempotent)


def test_note_disconnect_counts_torn_tail():
    p = RecordParser(on_error="skip")
    p.feed(b"0 1\n2 ")
    dropped = p.note_disconnect()
    assert dropped == 2
    assert p.report.dropped == 1
    # the next complete line parses cleanly
    recs = p.feed(b"7 8\n")
    assert [(r.u, r.v) for r in recs] == [(7, 8)]


def test_feed_at_replay_does_not_double_parse():
    payload = b"0 1\n2 3\n"
    p = RecordParser()
    p.feed_at(0, payload)
    again = p.feed_at(0, payload)  # peer replayed from the start
    assert again == []
    assert p.report.edges == 2


def test_flush_parses_final_unterminated_record():
    p = RecordParser()
    recs = p.feed(b"0 1\n9 9")
    assert [(r.u, r.v) for r in recs] == [(0, 1)]
    recs = p.flush()
    assert [(r.u, r.v) for r in recs] == [(9, 9)]
    assert recs[0].end_offset == 7
