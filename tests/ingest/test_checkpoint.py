"""StreamCheckpoint: atomic CRC-guarded watermark persistence."""

import json

import pytest

from repro.errors import CheckpointError
from repro.ingest.checkpoint import StreamCheckpoint, Watermark


def test_round_trip(tmp_path):
    ck = StreamCheckpoint(tmp_path / "wm.json")
    wm = Watermark(
        offset=1234,
        graph_version=7,
        labels_crc32=999,
        batches=3,
        records=41,
    )
    ck.save(wm)
    assert ck.load() == wm


def test_missing_file_is_fresh_stream(tmp_path):
    ck = StreamCheckpoint(tmp_path / "absent.json")
    assert ck.load() is None
    assert ck.corrupt_loads == 0


def test_corrupt_payload_reads_as_absent(tmp_path):
    path = tmp_path / "wm.json"
    ck = StreamCheckpoint(path)
    ck.save(Watermark(offset=100, graph_version=2))
    doc = json.loads(path.read_text())
    # hand-edit the payload: the stored CRC no longer matches, so a
    # resume must NOT trust the (wrong) offset.
    doc["payload"] = doc["payload"].replace("100", "999")
    path.write_text(json.dumps(doc))
    assert ck.load() is None
    assert ck.corrupt_loads == 1


def test_corrupt_payload_strict_raises_typed(tmp_path):
    path = tmp_path / "wm.json"
    ck = StreamCheckpoint(path)
    ck.save(Watermark(offset=100, graph_version=2))
    path.write_text(path.read_text()[:-10])
    with pytest.raises(CheckpointError):
        ck.load(strict=True)


def test_truncated_file_reads_as_absent(tmp_path):
    path = tmp_path / "wm.json"
    ck = StreamCheckpoint(path)
    ck.save(Watermark(offset=55, graph_version=1))
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    assert ck.load() is None


def test_unknown_format_reads_as_absent(tmp_path):
    path = tmp_path / "wm.json"
    path.write_text(json.dumps({"format": "other", "payload": "{}"}))
    ck = StreamCheckpoint(path)
    assert ck.load() is None
    assert ck.corrupt_loads == 1


def test_save_overwrites_atomically(tmp_path):
    path = tmp_path / "wm.json"
    ck = StreamCheckpoint(path)
    for i in range(5):
        ck.save(Watermark(offset=i * 10, graph_version=i))
    wm = ck.load()
    assert wm.offset == 40 and wm.graph_version == 4
    # no temp droppings left behind
    assert [p.name for p in tmp_path.iterdir()] == ["wm.json"]
