"""LineFramer: byte-exact framing under splits, CRLF, tears, replay."""

from repro.ingest.framing import LineFramer


def test_frames_across_arbitrary_chunk_splits():
    payload = b"0 1\n2 3\n4 5\n"
    for split in range(len(payload) + 1):
        fr = LineFramer()
        frames = fr.feed(payload[:split]) + fr.feed(payload[split:])
        assert [f.text for f in frames] == ["0 1", "2 3", "4 5"]
        assert [f.lineno for f in frames] == [1, 2, 3]
        assert frames[-1].end_offset == len(payload)


def test_crlf_frames_identically_to_lf():
    lf = LineFramer()
    crlf = LineFramer()
    a = lf.feed(b"0 1\n2 3\n")
    b = crlf.feed(b"0 1\r\n2 3\r\n")
    assert [f.text for f in a] == [f.text for f in b] == ["0 1", "2 3"]
    # offsets differ (CRLF is longer) but each names the byte after
    # its own terminator.
    assert b[0].end_offset == 5 and b[1].end_offset == 10


def test_crlf_split_between_cr_and_lf():
    fr = LineFramer()
    frames = fr.feed(b"0 1\r")
    assert frames == []
    frames = fr.feed(b"\n2 3\n")
    assert [f.text for f in frames] == ["0 1", "2 3"]


def test_flush_surfaces_final_unterminated_record():
    fr = LineFramer()
    frames = fr.feed(b"0 1\n2 3")
    assert [f.text for f in frames] == ["0 1"]
    frame = fr.flush()
    assert frame is not None
    assert frame.text == "2 3"
    assert frame.end_offset == len(b"0 1\n2 3")
    # flush is idempotent on an empty buffer
    assert fr.flush() is None


def test_feed_at_trims_replayed_overlap_byte_exactly():
    payload = b"0 1\r\n2 3\n"
    fr = LineFramer()
    fr.feed_at(0, payload[:7])  # "0 1\r\n2 " — partial second record
    # peer dies and replays from the start of record 2 (offset 5)
    frames = fr.feed_at(5, payload[5:])
    assert [f.text for f in frames] == ["2 3"]
    assert fr.overlap_bytes == 2  # "2 " fed twice, trimmed once


def test_feed_at_full_duplicate_chunk_is_absorbed():
    fr = LineFramer()
    first = fr.feed_at(0, b"0 1\n")
    dup = fr.feed_at(0, b"0 1\n")
    assert [f.text for f in first] == ["0 1"]
    assert dup == []
    assert fr.overlap_bytes == 4
    # stream continues where it left off
    assert [f.text for f in fr.feed_at(4, b"2 3\n")] == ["2 3"]


def test_feed_at_forward_gap_is_counted_and_consumed():
    fr = LineFramer()
    fr.feed_at(0, b"0 1\n")
    frames = fr.feed_at(10, b"4 5\n")
    assert [f.text for f in frames] == ["4 5"]
    assert fr.gap_bytes == 6
    assert fr.offset == 14


def test_discard_partial_advances_past_torn_tail():
    fr = LineFramer()
    fr.feed(b"0 1\n2 ")
    dropped = fr.discard_partial()
    assert dropped == 2
    assert fr.partial_discards == 1
    assert fr.offset == 6
    # replaying the torn record in full is trimmed up to the discard
    # point, and the remainder frames cleanly
    frames = fr.feed_at(4, b"2 3\n")
    assert [f.text for f in frames] == ["3"]


def test_start_offset_resume():
    fr = LineFramer(start_offset=100)
    frames = fr.feed_at(100, b"7 8\n")
    assert frames[0].end_offset == 104
