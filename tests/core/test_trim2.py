"""Tests for Par-Trim2 (Algorithm 8, Figure 4 patterns)."""

import numpy as np
import pytest

from repro.core import PHASE_TRIM2, SCCState, par_trim2
from repro.graph import from_edge_array, from_edge_list
from tests.conftest import SMALL_GRAPHS, random_digraph, scipy_scc_labels


class TestPatterns:
    def test_pattern_a_no_other_incoming(self):
        # Fig 4(a): A<->B, extra edge OUT of the pair is fine.
        g = from_edge_list([(0, 1), (1, 0), (0, 2)], 3)
        s = SCCState(g)
        assert par_trim2(s) == 2
        assert s.mark[0] and s.mark[1] and not s.mark[2]
        assert s.labels[0] == s.labels[1]
        assert s.phase_of[0] == PHASE_TRIM2

    def test_pattern_b_no_other_outgoing(self):
        # Fig 4(b): A<->B, extra edge INTO the pair is fine.
        g = from_edge_list([(0, 1), (1, 0), (2, 0)], 3)
        s = SCCState(g)
        assert par_trim2(s) == 2
        assert s.mark[0] and s.mark[1]

    def test_embedded_two_cycle_not_matched(self):
        # A<->B inside a larger cycle: extra in AND out edges on A, so
        # neither pattern applies — and indeed {0,1,2} is one SCC.
        g = from_edge_list([(0, 1), (1, 0), (1, 2), (2, 0)], 3)
        s = SCCState(g)
        assert par_trim2(s) == 0
        assert not s.mark.any()

    def test_plain_two_cycle(self):
        g = from_edge_list([(0, 1), (1, 0)], 2)
        s = SCCState(g)
        assert par_trim2(s) == 2

    def test_chain_of_two_cycles_ends_cut(self):
        # (0,1) -> (2,3) -> (4,5): the end pairs match Figure 4's
        # patterns (nothing else in / nothing else out) and are cut in
        # one pass; the middle pair has both an extra in- and out-edge
        # and survives (Section 3.4: Trim2 *shortens* the chains the
        # WCC step must then propagate across).
        g = from_edge_list(
            [(0, 1), (1, 0), (2, 3), (3, 2), (4, 5), (5, 4), (1, 2), (3, 4)],
            6,
        )
        s = SCCState(g)
        assert par_trim2(s) == 4
        assert s.mark[0] and s.mark[1] and s.mark[4] and s.mark[5]
        assert not s.mark[2] and not s.mark[3]
        assert s.num_sccs == 2

    def test_respects_colors(self):
        # A<->B plus an in-edge from another partition: the in-edge is
        # invisible, so the pair still matches pattern (a)/(b).
        g = from_edge_list([(0, 1), (1, 0), (2, 0), (0, 2)], 3)
        s = SCCState(g)
        s.color[2] = 99
        assert par_trim2(s) == 2

    def test_self_loop_only_node(self):
        g = from_edge_array(np.array([0]), np.array([0]), 1, dedup=False)
        s = SCCState(g)
        detached = par_trim2(s)
        assert detached == 1
        assert s.mark[0]
        assert s.num_sccs == 1

    def test_no_candidates_noop(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], 3)
        s = SCCState(g)
        assert par_trim2(s) == 0

    def test_all_marked_noop(self):
        g = from_edge_list([(0, 1), (1, 0)], 2)
        s = SCCState(g)
        s.mark_scc(np.array([0, 1]), PHASE_TRIM2)
        assert par_trim2(s) == 0


class TestSoundness:
    @pytest.mark.parametrize("seed", range(6))
    def test_only_real_size2_sccs_marked(self, seed):
        g = random_digraph(120, 400, seed=seed)
        s = SCCState(g)
        par_trim2(s)
        oracle = scipy_scc_labels(g)
        sizes = np.bincount(oracle)
        for v in np.flatnonzero(s.mark):
            sid = oracle[v]
            assert sizes[sid] == s.labels[s.labels == s.labels[v]].size
            # marked pair must be the full true SCC
            mine = np.flatnonzero(s.labels == s.labels[v])
            theirs = np.flatnonzero(oracle == sid)
            assert np.array_equal(mine, theirs)

    def test_counter_updated(self):
        g = from_edge_list([(0, 1), (1, 0)], 2)
        s = SCCState(g)
        par_trim2(s)
        assert s.profile.counters["trim2_pairs"] == 1
