"""Tests for the distributed (BSP) extension."""

import numpy as np
import pytest

from repro.core import strongly_connected_components, same_partition
from repro.distributed import (
    Cluster,
    ClusterConfig,
    DistTrace,
    Partition,
    bfs_partition,
    block_partition,
    distributed_method1,
    edge_cut,
    hash_partition,
)
from repro.generators import generate, road_grid_graph
from tests.conftest import random_digraph, scipy_scc_labels


class TestPartitioners:
    def test_block_contiguous_and_balanced(self):
        p = block_partition(100, 4)
        assert p.rank_sizes().tolist() == [25, 25, 25, 25]
        assert np.all(np.diff(p.owner) >= 0)

    def test_hash_balanced_ish(self):
        p = hash_partition(10000, 8, rng=0)
        assert p.imbalance() < 1.1

    def test_bfs_partition_balanced(self):
        g = random_digraph(500, 2000, seed=1)
        p = bfs_partition(g, 4)
        assert p.imbalance() < 1.05

    def test_bfs_beats_hash_on_grid(self):
        g = road_grid_graph(40, 40, rng=0)
        cut_bfs = edge_cut(g, bfs_partition(g, 8))
        cut_hash = edge_cut(g, hash_partition(g.num_nodes, 8, rng=0))
        assert cut_bfs < cut_hash / 4

    def test_single_rank_zero_cut(self):
        g = random_digraph(100, 400, seed=2)
        assert edge_cut(g, block_partition(100, 1)) == 0

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            Partition(owner=np.array([0, 5]), num_ranks=2)
        with pytest.raises(ValueError):
            Partition(owner=np.array([0]), num_ranks=0)


class TestClusterModel:
    def test_superstep_shape_checked(self):
        t = DistTrace(2)
        with pytest.raises(ValueError):
            t.superstep("x", [1.0, 2.0, 3.0])

    def test_single_rank_pays_no_comm(self):
        t = DistTrace(1)
        t.superstep("x", [100.0], [50.0])
        sim = Cluster().simulate(t)
        assert sim.comm_time == 0.0

    def test_comm_charged_on_multirank(self):
        t = DistTrace(2)
        t.superstep("x", [100.0, 100.0], [50.0, 0.0])
        cfg = ClusterConfig()
        sim = Cluster(cfg).simulate(t)
        assert sim.comm_time == cfg.alpha + cfg.beta * 50.0

    def test_compute_uses_max_rank(self):
        t = DistTrace(4)
        t.superstep("x", [100.0, 0.0, 0.0, 0.0])
        cfg = ClusterConfig()
        sim = Cluster(cfg).simulate(t)
        assert sim.compute_time == pytest.approx(100.0 / cfg.rank_throughput)

    def test_phase_times_sum(self):
        t = DistTrace(2)
        t.superstep("a", [10.0, 10.0], [1.0, 1.0])
        t.superstep("b", [20.0, 5.0], [0.0, 0.0])
        sim = Cluster().simulate(t)
        assert sum(sim.phase_times.values()) == pytest.approx(sim.total_time)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(rank_throughput=0)
        with pytest.raises(ValueError):
            ClusterConfig(alpha=-1)


class TestDistributedMethod1:
    @pytest.mark.parametrize("ranks", [1, 3, 8])
    @pytest.mark.parametrize("seed", range(3))
    def test_correct_on_random_graphs(self, ranks, seed):
        g = random_digraph(200, 800, seed=seed)
        part = hash_partition(200, ranks, rng=seed)
        res = distributed_method1(g, part)
        assert same_partition(res.labels, scipy_scc_labels(g))

    def test_correct_on_dataset(self):
        b = generate("flickr", scale=0.2)
        part = bfs_partition(b.graph, 4)
        res = distributed_method1(b.graph, part)
        tarjan = strongly_connected_components(b.graph, "tarjan")
        assert same_partition(res.labels, tarjan.labels)

    def test_no_messages_on_one_rank(self):
        g = random_digraph(150, 500, seed=4)
        res = distributed_method1(g, block_partition(150, 1))
        assert res.dtrace.total_messages() == 0.0

    def test_messages_bounded_by_touches(self):
        g = random_digraph(150, 600, seed=5)
        part = hash_partition(150, 4, rng=0)
        res = distributed_method1(g, part)
        # every superstep's messages cannot exceed edges touched; a
        # loose global bound: trims/bfs/wcc touch each edge a bounded
        # number of times per iteration
        steps = len(res.dtrace.steps)
        assert res.dtrace.total_messages() <= 2 * g.num_edges * steps

    def test_work_conservation_across_ranks(self):
        # total recorded work must not depend on the partitioning
        g = random_digraph(200, 900, seed=6)
        w1 = distributed_method1(
            g, block_partition(200, 1)
        ).dtrace.total_work()
        w8 = distributed_method1(
            g, hash_partition(200, 8, rng=1)
        ).dtrace.total_work()
        assert w1 == pytest.approx(w8, rel=1e-9)

    def test_without_wcc(self):
        g = random_digraph(150, 600, seed=7)
        res = distributed_method1(
            g, hash_partition(150, 4, rng=0), use_wcc=False
        )
        assert same_partition(res.labels, scipy_scc_labels(g))

    def test_phase2_lpt_balance(self):
        b = generate("flickr", scale=0.2)
        part = hash_partition(b.graph.num_nodes, 8, rng=0)
        res = distributed_method1(b.graph, part)
        work = res.phase2_rank_work
        # LPT keeps the heaviest rank within a small factor of the mean
        # unless one subtree dominates (then max == that subtree).
        assert work.max() <= max(work.mean() * 4, work.max())
        assert work.sum() > 0
