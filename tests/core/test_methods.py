"""Correctness tests for the three full algorithms (Alg. 3, 6, 9)."""

import numpy as np
import pytest

from repro import strongly_connected_components
from repro.core import PHASE_NAMES, same_partition
from repro.graph import from_edge_list
from tests.conftest import random_digraph, scipy_scc_labels

ALL_METHODS = ["tarjan", "kosaraju", "baseline", "method1", "method2"]
PARALLEL = ["baseline", "method1", "method2"]


@pytest.mark.parametrize("method", ALL_METHODS)
class TestCorrectness:
    def test_small_graphs(self, small_graph, method):
        name, g = small_graph
        r = strongly_connected_components(g, method)
        assert same_partition(r.labels, scipy_scc_labels(g))

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed, method):
        g = random_digraph(200, 800, seed=seed)
        r = strongly_connected_components(g, method)
        assert same_partition(r.labels, scipy_scc_labels(g))

    def test_planted_graph(self, planted_medium, method):
        r = strongly_connected_components(planted_medium.graph, method)
        assert same_partition(r.labels, planted_medium.labels)


@pytest.mark.parametrize("method", PARALLEL)
class TestParallelMethodDetails:
    def test_all_nodes_phase_attributed(self, planted_medium, method):
        r = strongly_connected_components(planted_medium.graph, method)
        assert (r.phase_of >= 0).all()

    def test_deterministic_under_seed(self, method):
        g = random_digraph(150, 600, seed=9)
        a = strongly_connected_components(g, method, seed=4)
        b = strongly_connected_components(g, method, seed=4)
        assert np.array_equal(a.labels, b.labels)

    def test_trace_nonempty(self, method):
        g = random_digraph(100, 300, seed=1)
        r = strongly_connected_components(g, method)
        assert len(r.profile.trace) > 0
        assert r.profile.trace.total_work() > 0

    def test_threads_backend_correct(self, method):
        g = random_digraph(200, 800, seed=3)
        r = strongly_connected_components(
            g, method, backend="threads", num_threads=4
        )
        assert same_partition(r.labels, scipy_scc_labels(g))

    def test_scan_pivot_repr_correct(self, method):
        g = random_digraph(120, 400, seed=5)
        r = strongly_connected_components(g, method, pivot_repr="scan")
        assert same_partition(r.labels, scipy_scc_labels(g))

    def test_maxdegree_pivot_correct(self, method):
        g = random_digraph(120, 500, seed=6)
        r = strongly_connected_components(
            g, method, pivot_strategy="maxdegree"
        )
        assert same_partition(r.labels, scipy_scc_labels(g))


class TestMethodSpecifics:
    def test_unknown_method_rejected(self):
        g = from_edge_list([(0, 1)], 2)
        with pytest.raises(ValueError):
            strongly_connected_components(g, "magic")

    def test_method2_without_trim2(self):
        g = random_digraph(150, 500, seed=7)
        r = strongly_connected_components(g, "method2", use_trim2=False)
        assert same_partition(r.labels, scipy_scc_labels(g))
        assert "trim2_pairs" not in r.profile.counters

    def test_method2_wcc_counters(self, planted_medium):
        r = strongly_connected_components(planted_medium.graph, "method2")
        assert r.profile.counters["wcc_components"] >= 1
        assert r.profile.counters.get("trim2_pairs", 0) >= 1

    def test_method1_giant_found_on_planted(self, planted_medium):
        r = strongly_connected_components(planted_medium.graph, "method1")
        sizes = np.bincount(r.labels)
        giant_id = int(np.argmax(sizes))
        giant_node = int(np.flatnonzero(r.labels == giant_id)[0])
        # the giant SCC must be identified by the par-fwbw phase
        from repro.core import PHASE_FWBW

        assert r.phase_of[giant_node] == PHASE_FWBW

    def test_phase_fractions_sum_to_one(self, planted_medium):
        r = strongly_connected_components(planted_medium.graph, "method2")
        total = sum(r.phase_fractions().values())
        assert total == pytest.approx(1.0)

    def test_wall_times_recorded(self, planted_medium):
        r = strongly_connected_components(planted_medium.graph, "method2")
        assert "par_trim" in r.profile.wall_times
        assert "recur_fwbw" in r.profile.wall_times

    def test_custom_queue_k(self):
        g = random_digraph(100, 400, seed=8)
        r = strongly_connected_components(g, "method2", queue_k=2)
        from repro.runtime.trace import TaskDAGRecord

        rec = [x for x in r.profile.trace if isinstance(x, TaskDAGRecord)][0]
        assert rec.queue_k == 2

    def test_empty_graph_all_methods(self):
        g = from_edge_list([], 0)
        for method in ALL_METHODS:
            r = strongly_connected_components(g, method)
            assert r.labels.size == 0
