"""Tests for SCC results, canonicalization and pivot helpers."""

import numpy as np
import pytest

from repro.core import PIVOT_STRATEGIES, choose_pivot
from repro.core.result import SCCResult, canonical_labels, same_partition
from repro.graph import from_edge_list


class TestCanonicalLabels:
    def test_idempotent(self):
        labels = np.array([5, 5, 2, 2, 9])
        c = canonical_labels(labels)
        assert np.array_equal(canonical_labels(c), c)

    def test_first_occurrence_order(self):
        assert np.array_equal(
            canonical_labels(np.array([7, 7, 3, 7, 3])), [0, 0, 1, 0, 1]
        )

    def test_same_partition_ignores_label_values(self):
        a = np.array([0, 0, 1, 2])
        b = np.array([9, 9, 4, 7])
        assert same_partition(a, b)

    def test_different_partitions_detected(self):
        assert not same_partition(np.array([0, 0, 1]), np.array([0, 1, 1]))

    def test_shape_mismatch(self):
        assert not same_partition(np.array([0]), np.array([0, 1]))


class TestSCCResult:
    def r(self):
        return SCCResult(
            labels=np.array([0, 0, 0, 1, 2, 2]), method="test"
        )

    def test_num_sccs(self):
        assert self.r().num_sccs == 3

    def test_sizes(self):
        assert np.array_equal(self.r().sizes(), [3, 1, 2])

    def test_largest_and_giant(self):
        r = self.r()
        assert r.largest_scc_size() == 3
        assert r.giant_fraction() == pytest.approx(0.5)

    def test_size_histogram(self):
        assert self.r().size_histogram() == {1: 1, 2: 1, 3: 1}

    def test_to_sets(self):
        sets = self.r().to_sets()
        assert {frozenset(s) for s in sets} == {
            frozenset({0, 1, 2}),
            frozenset({3}),
            frozenset({4, 5}),
        }

    def test_phase_fractions_empty_without_phase_of(self):
        assert self.r().phase_fractions() == {}

    def test_simulate_requires_profile(self):
        with pytest.raises(ValueError):
            self.r().simulate(8)

    def test_simulate_and_speedup_over(self):
        from repro import strongly_connected_components
        from tests.conftest import random_digraph

        # big enough that parallel wins over the sync overhead
        g = random_digraph(5000, 25000, seed=12)
        tarjan = strongly_connected_components(g, "tarjan")
        m2 = strongly_connected_components(g, "method2")
        assert m2.simulate(32) < m2.simulate(1)
        sp = m2.speedup_over(tarjan, 32)
        assert sp == pytest.approx(
            tarjan.simulate(1) / m2.simulate(32)
        )


class TestChoosePivot:
    def test_strategies_listed(self):
        assert set(PIVOT_STRATEGIES) == {"random", "maxdegree", "first"}

    def test_random_in_candidates(self):
        rng = np.random.default_rng(0)
        cands = np.array([3, 7, 11])
        for _ in range(10):
            assert choose_pivot(cands, "random", rng) in cands

    def test_first(self):
        rng = np.random.default_rng(0)
        assert choose_pivot(np.array([9, 1]), "first", rng) == 9

    def test_maxdegree(self):
        g = from_edge_list([(0, 1), (0, 2), (0, 3), (1, 0)], 4)
        rng = np.random.default_rng(0)
        assert choose_pivot(np.arange(4), "maxdegree", rng, g) == 0

    def test_maxdegree_needs_graph(self):
        with pytest.raises(ValueError):
            choose_pivot(np.array([0]), "maxdegree", np.random.default_rng(0))

    def test_empty_candidates(self):
        with pytest.raises(ValueError):
            choose_pivot(
                np.array([], dtype=np.int64), "random", np.random.default_rng(0)
            )

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            choose_pivot(np.array([0]), "psychic", np.random.default_rng(0))
