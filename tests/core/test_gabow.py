"""Tests for Gabow's path-based SCC algorithm."""

import numpy as np
import pytest

from repro import strongly_connected_components
from repro.core import gabow_scc, kosaraju_scc, same_partition, tarjan_scc
from repro.graph import from_edge_list
from repro.runtime import WorkTrace
from tests.conftest import random_digraph, scipy_scc_labels


class TestGabow:
    def test_small_graphs(self, small_graph):
        _, g = small_graph
        assert same_partition(gabow_scc(g), scipy_scc_labels(g))

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        g = random_digraph(180, 700, seed=seed, self_loops=True)
        assert same_partition(gabow_scc(g), scipy_scc_labels(g))

    def test_three_sequential_algorithms_agree(self):
        for seed in range(4):
            g = random_digraph(150, 600, seed=seed)
            t = tarjan_scc(g)
            k = kosaraju_scc(g)
            b = gabow_scc(g)
            assert same_partition(t, k)
            assert same_partition(t, b)

    def test_deep_cycle_no_recursion_limit(self):
        n = 5000
        g = from_edge_list([(i, (i + 1) % n) for i in range(n)], n)
        assert int(gabow_scc(g).max()) == 0

    def test_through_public_api(self):
        g = random_digraph(120, 500, seed=9)
        r = strongly_connected_components(g, "gabow")
        assert same_partition(r.labels, scipy_scc_labels(g))
        assert r.method == "gabow"

    def test_trace_recorded(self):
        g = random_digraph(50, 200, seed=1)
        tr = WorkTrace()
        gabow_scc(g, trace=tr)
        assert len(tr) == 1
        # same work model as Tarjan: one DFS over everything
        tr2 = WorkTrace()
        tarjan_scc(g, trace=tr2)
        assert tr.total_work() == tr2.total_work()

    def test_planted(self, planted_medium):
        assert same_partition(
            gabow_scc(planted_medium.graph), planted_medium.labels
        )
