"""Tests for the extension comparator algorithms (FW-BW, coloring,
MultiStep)."""

import numpy as np
import pytest

from repro import strongly_connected_components
from repro.core import (
    PHASE_COLORING,
    SCCState,
    color_propagation_round,
    same_partition,
)
from repro.graph import from_edge_list
from tests.conftest import random_digraph, scipy_scc_labels

COMPARATORS = ["fwbw", "coloring", "multistep"]


@pytest.mark.parametrize("method", COMPARATORS)
class TestCorrectness:
    def test_small_graphs(self, small_graph, method):
        _, g = small_graph
        r = strongly_connected_components(g, method)
        assert same_partition(r.labels, scipy_scc_labels(g))

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed, method):
        g = random_digraph(200, 800, seed=seed)
        r = strongly_connected_components(g, method)
        assert same_partition(r.labels, scipy_scc_labels(g))

    def test_planted(self, planted_medium, method):
        r = strongly_connected_components(planted_medium.graph, method)
        assert same_partition(r.labels, planted_medium.labels)


class TestColoringDetails:
    def test_single_round_on_one_scc(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], 3)
        r = strongly_connected_components(g, "coloring", use_trim=False)
        assert r.num_sccs == 1
        assert r.profile.counters["coloring_rounds"] == 1

    def test_phase_attribution(self):
        g = from_edge_list([(0, 1), (1, 0)], 2)
        r = strongly_connected_components(g, "coloring", use_trim=False)
        assert (r.phase_of == PHASE_COLORING).all()

    def test_propagation_round_marks_root_sccs(self):
        # two disjoint 2-cycles: one round finds both SCCs
        g = from_edge_list([(0, 1), (1, 0), (2, 3), (3, 2)], 4)
        s = SCCState(g)
        active = np.arange(4)
        color_propagation_round(s, active, phase="coloring")
        assert s.mark.all()
        assert s.num_sccs == 2

    def test_chain_needs_multiple_rounds(self):
        # a -> B-cycle -> c: round 1 finds only the max-coloured SCCs,
        # later rounds (plus trim) mop up — bounded rounds still work.
        g = from_edge_list(
            [(0, 1), (1, 2), (2, 1), (2, 3), (4, 3)], 5
        )
        r = strongly_connected_components(g, "coloring", use_trim=False)
        assert same_partition(r.labels, scipy_scc_labels(g))

    def test_max_rounds_enforced(self):
        # A chain with DECREASING ids: every node is coloured by the
        # head (the max id), whose "SCC" is just itself — one node per
        # round, so a 1-round budget must fail.  (An increasing chain
        # converges in one round: each node is its own max ancestor.)
        g = from_edge_list([(i + 1, i) for i in range(30)], 31)
        with pytest.raises(RuntimeError):
            strongly_connected_components(
                g, "coloring", use_trim=False, max_rounds=1
            )

    def test_worst_case_chain_still_correct(self):
        g = from_edge_list([(i + 1, i) for i in range(30)], 31)
        r = strongly_connected_components(g, "coloring", use_trim=False)
        assert r.num_sccs == 31
        # trim collapses the same chain in one coloring round of zero
        r2 = strongly_connected_components(g, "coloring", use_trim=True)
        assert r2.profile.counters["coloring_rounds"] == 0

    def test_trim_reduces_rounds(self):
        g = random_digraph(300, 900, seed=3)
        with_trim = strongly_connected_components(g, "coloring")
        without = strongly_connected_components(g, "coloring", use_trim=False)
        assert (
            with_trim.profile.counters["coloring_rounds"]
            <= without.profile.counters["coloring_rounds"]
        )


class TestMultistepDetails:
    def test_giant_found_by_fwbw(self, planted_medium):
        from repro.core import PHASE_FWBW

        r = strongly_connected_components(planted_medium.graph, "multistep")
        sizes = np.bincount(r.labels)
        giant_node = int(np.flatnonzero(r.labels == np.argmax(sizes))[0])
        assert r.phase_of[giant_node] == PHASE_FWBW

    def test_counters(self, planted_medium):
        r = strongly_connected_components(planted_medium.graph, "multistep")
        assert "coloring_rounds" in r.profile.counters


class TestFwbwDetails:
    def test_no_trim_phase(self):
        g = random_digraph(150, 500, seed=1)
        r = strongly_connected_components(g, "fwbw")
        from repro.core import PHASE_RECUR

        assert (r.phase_of == PHASE_RECUR).all()

    def test_threads_backend(self):
        g = random_digraph(150, 500, seed=2)
        r = strongly_connected_components(
            g, "fwbw", backend="threads", num_threads=4
        )
        assert same_partition(r.labels, scipy_scc_labels(g))

    def test_more_tasks_than_baseline(self, planted_medium):
        # without Trim, each trivial SCC costs a full task
        fwbw = strongly_connected_components(planted_medium.graph, "fwbw")
        base = strongly_connected_components(planted_medium.graph, "baseline")
        assert (
            fwbw.profile.counters["recur_tasks"]
            > base.profile.counters["recur_tasks"]
        )
