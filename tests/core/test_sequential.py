"""Tests for the sequential baselines (Tarjan, Kosaraju)."""

import numpy as np
import pytest

from repro.core import kosaraju_scc, tarjan_scc
from repro.core.result import same_partition
from repro.graph import from_edge_list
from repro.runtime import WorkTrace
from tests.conftest import SMALL_GRAPHS, random_digraph, scipy_scc_labels


@pytest.mark.parametrize("algo", [tarjan_scc, kosaraju_scc])
class TestAgainstOracle:
    def test_small_graphs(self, small_graph, algo):
        _, g = small_graph
        assert same_partition(algo(g), scipy_scc_labels(g))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed, algo):
        g = random_digraph(150, 700, seed=seed, self_loops=True)
        assert same_partition(algo(g), scipy_scc_labels(g))

    def test_labels_complete(self, algo):
        g = random_digraph(100, 300, seed=42)
        labels = algo(g)
        assert labels.min() >= 0
        assert labels.shape == (100,)


class TestTarjanSpecifics:
    def test_single_giant_cycle_one_scc(self):
        n = 5000  # recursion-depth stressor: O(N)-deep DFS
        edges = [(i, (i + 1) % n) for i in range(n)]
        g = from_edge_list(edges, n)
        labels = tarjan_scc(g)
        assert labels.max() == 0

    def test_labels_in_reverse_topological_order(self):
        # Tarjan emits an SCC only after all its descendants: in a DAG
        # a successor's label is always smaller.
        g = from_edge_list([(0, 1), (1, 2), (0, 2)], 3)
        labels = tarjan_scc(g)
        assert labels[2] < labels[1] < labels[0]

    def test_trace_records_sequential_work(self):
        g = random_digraph(50, 200, seed=1)
        tr = WorkTrace()
        tarjan_scc(g, trace=tr)
        assert len(tr) == 1
        rec = tr.records[0]
        assert rec.work > 0

    def test_empty_graph(self):
        g = from_edge_list([], 0)
        assert tarjan_scc(g).size == 0


class TestKosarajuSpecifics:
    def test_agrees_with_tarjan(self):
        for seed in range(4):
            g = random_digraph(120, 500, seed=seed)
            assert same_partition(tarjan_scc(g), kosaraju_scc(g))

    def test_trace_records_two_passes(self):
        g = random_digraph(50, 200, seed=2)
        tr_t, tr_k = WorkTrace(), WorkTrace()
        tarjan_scc(g, trace=tr_t)
        kosaraju_scc(g, trace=tr_k)
        assert tr_k.total_work() == pytest.approx(2 * tr_t.total_work())
