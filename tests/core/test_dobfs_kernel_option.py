"""Tests for the direction-optimizing BFS option in Par-FWBW."""

import numpy as np
import pytest

from repro import strongly_connected_components
from repro.core import SCCState, par_fwbw, same_partition
from tests.conftest import random_digraph, scipy_scc_labels


class TestDobfsKernel:
    @pytest.mark.parametrize("seed", range(3))
    def test_same_giant_as_level_bfs(self, seed):
        g = random_digraph(300, 1800, seed=seed)
        s_level = SCCState(g, seed=7)
        s_dobfs = SCCState(g, seed=7)
        out_level = par_fwbw(s_level, 0, bfs_kernel="level")
        out_dobfs = par_fwbw(s_dobfs, 0, bfs_kernel="dobfs")
        assert out_level.largest_scc == out_dobfs.largest_scc
        assert np.array_equal(s_level.mark, s_dobfs.mark)

    @pytest.mark.parametrize("method", ["method1", "method2"])
    def test_methods_correct_with_dobfs(self, method):
        g = random_digraph(250, 1200, seed=5)
        r = strongly_connected_components(g, method, bfs_kernel="dobfs")
        assert same_partition(r.labels, scipy_scc_labels(g))

    def test_unknown_kernel_rejected(self):
        g = random_digraph(50, 150, seed=0)
        with pytest.raises(ValueError):
            par_fwbw(SCCState(g), 0, bfs_kernel="quantum")

    def test_dobfs_scans_fewer_edges_on_dense_graph(self):
        g = random_digraph(500, 15000, seed=1)
        s_level = SCCState(g, seed=3)
        s_dobfs = SCCState(g, seed=3)
        par_fwbw(s_level, 0, bfs_kernel="level")
        par_fwbw(s_dobfs, 0, bfs_kernel="dobfs")
        # recorded forward-pass work should be lower for dobfs
        w_level = s_level.trace.phase_work()["par_fwbw"]
        w_dobfs = s_dobfs.trace.phase_work()["par_fwbw"]
        assert w_dobfs < w_level
