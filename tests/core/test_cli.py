"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestDatasets:
    def test_lists_all_nine(self, capsys):
        code, out = run_cli(capsys, "datasets")
        assert code == 0
        for name in ("livej", "twitter", "ca-road", "patents"):
            assert name in out


class TestScc:
    def test_dataset_run(self, capsys):
        code, out = run_cli(
            capsys, "scc", "--dataset", "flickr", "--scale", "0.1",
            "--method", "method2",
        )
        assert code == 0
        assert "SCCs:" in out
        assert "simulated time @32 threads" in out

    def test_tarjan_no_seed_kwarg(self, capsys):
        code, out = run_cli(
            capsys, "scc", "--dataset", "flickr", "--scale", "0.1",
            "--method", "tarjan",
        )
        assert code == 0
        assert "largest SCC" in out

    def test_threads_flag(self, capsys):
        code, out = run_cli(
            capsys, "scc", "--dataset", "baidu", "--scale", "0.1",
            "--threads", "8",
        )
        assert code == 0
        assert "@8 threads" in out

    def test_edge_list_input(self, capsys, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n1 2\n")
        code, out = run_cli(capsys, "scc", "--input", str(path))
        assert code == 0
        assert "SCCs: 2" in out

    def test_unknown_method_raises(self, capsys):
        with pytest.raises(ValueError):
            run_cli(
                capsys, "scc", "--dataset", "baidu", "--scale", "0.1",
                "--method", "bogus",
            )


class TestSweep:
    def test_panel_printed(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "--dataset", "baidu", "--scale", "0.15",
            "--methods", "method1,method2",
        )
        assert code == 0
        assert "speedup vs. Tarjan" in out
        assert "method2" in out
        assert "p=32" in out


class TestDistributed:
    def test_rank_scaling_report(self, capsys):
        code, out = run_cli(
            capsys, "distributed", "--dataset", "flickr",
            "--scale", "0.1", "--ranks", "1,4",
        )
        assert code == 0
        assert "supersteps" in out
        assert "bfs partition" in out

    def test_partitioner_choice(self, capsys):
        code, out = run_cli(
            capsys, "distributed", "--dataset", "baidu",
            "--scale", "0.1", "--ranks", "2", "--partitioner", "hash",
        )
        assert code == 0
        assert "hash partition" in out

    def test_bad_partitioner_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(
                ["distributed", "--dataset", "baidu",
                 "--partitioner", "psychic"]
            )


class TestInfo:
    def test_dataset_info(self, capsys):
        code, out = run_cli(
            capsys, "info", "--dataset", "patents", "--scale", "0.1"
        )
        assert code == 0
        assert "small-world" in out
        assert "SCCs:" in out

    def test_requires_source(self, capsys):
        with pytest.raises(SystemExit):
            main(["info"])

    def test_mutually_exclusive_sources(self, capsys, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        with pytest.raises(SystemExit):
            main(
                ["info", "--dataset", "livej", "--input", str(path)]
            )


class TestBatch:
    def manifest(self, tmp_path, jobs):
        import json

        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({"jobs": jobs}))
        return str(path)

    def test_all_jobs_ok(self, capsys, tmp_path):
        mf = self.manifest(
            tmp_path,
            [
                {"graph": "wiki", "scale": 0.05, "method": "method2"},
                {"graph": "wiki", "scale": 0.05, "method": "tarjan"},
            ],
        )
        code, out = run_cli(capsys, "batch", mf)
        assert code == 0
        assert "batch: 2/2 ok" in out
        assert "1 session(s)" in out

    def test_failed_job_isolated_and_exit_code(self, capsys, tmp_path):
        import json

        mf = self.manifest(
            tmp_path,
            [
                {"graph": "wiki", "scale": 0.05},
                {"graph": "/no/such/edges.txt"},
                {"graph": "wiki", "scale": 0.05, "method": "tarjan"},
            ],
        )
        out_path = tmp_path / "report.json"
        code, out = run_cli(
            capsys, "batch", mf, "--output", str(out_path)
        )
        assert code == 1  # first failure's exit code
        assert "batch: 2/3 ok" in out
        assert "FAIL(1)" in out
        report = json.loads(out_path.read_text())
        assert report["jobs_failed"] == 1
        assert [j["ok"] for j in report["jobs"]] == [True, False, True]

    def test_fault_plan_injects_at_job_site(self, capsys, tmp_path):
        mf = self.manifest(
            tmp_path,
            [
                {"graph": "wiki", "scale": 0.05},
                {"graph": "wiki", "scale": 0.05, "method": "tarjan"},
            ],
        )
        code, out = run_cli(
            capsys, "batch", mf, "--fault-plan", "crash@0:pre"
        )
        assert code == 1
        assert "FaultInjected" in out
        assert "batch: 1/2 ok" in out

    def test_bad_manifest_exits_2(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        assert main(["batch", str(path)]) == 2

    def test_bad_fault_plan_exits_2(self, capsys, tmp_path):
        mf = self.manifest(tmp_path, [{"graph": "wiki", "scale": 0.05}])
        assert main(["batch", mf, "--fault-plan", "explode@x"]) == 2
