"""Batched multi-source phase 2 vs the per-pivot path, end to end.

The contract (DESIGN.md §13): on a deterministic drain the batched
path is *bit-identical* to the per-pivot path — same labels, same
trace records (costs and scanned-edge attribution included) — under
every kernel backend.  Deterministic drains are the serial driver and
the single-worker process executors (FIFO master dispatch); the
threaded queue's local-deque order already makes its per-pivot drain
nondeterministic, so there the batched path carries the executor's
existing guarantee: a correct partition.
"""

import numpy as np
import pytest

from repro.core import SCCState
from repro.core.parfwbw import par_fwbw
from repro.core.recurfwbw import (
    Phase2BatchPolicy,
    plan_batches,
    resolve_batch_policy,
    run_recur_phase,
    WorkItem,
)
from repro.core.result import same_partition
from repro.core.wcc import par_wcc
from repro.generators import datasets
from repro.kernels import use_backend
from tests.conftest import scipy_scc_labels

GENERATORS = datasets.dataset_names()
KERNEL_BACKENDS = ("numpy", "numba")
SCALE = 0.02


def tail_state(name):
    """Post-phase-1 storm: giant SCC peeled, WCCs seed the queue."""
    g = datasets.generate(name, scale=SCALE, seed=7).graph
    s = SCCState(g, seed=11)
    par_fwbw(s, 0, giant_threshold=0.01, max_trials=3)
    return g, s, par_wcc(s)


def drain(name, *, executor="serial", kernel="numpy", batch=False):
    g, s, items = tail_state(name)
    with use_backend(kernel):
        run_recur_phase(
            s, items, backend=executor, num_threads=1,
            phase2_batch=batch,
        )
    return g, s


class TestSerialBitIdentical:
    @pytest.mark.parametrize("kernel", KERNEL_BACKENDS)
    @pytest.mark.parametrize("name", GENERATORS)
    def test_batched_equals_per_pivot(self, name, kernel):
        g, base = drain(name, kernel=kernel, batch=False)
        _, batched = drain(name, kernel=kernel, batch=True)
        assert np.array_equal(base.labels, batched.labels)
        assert base.trace.records == batched.trace.records
        assert same_partition(batched.labels, scipy_scc_labels(g))
        assert batched.profile.counters.get("phase2_batches", 0) > 0
        assert base.profile.counters.get("phase2_batches") is None


class TestProcessExecutorsBitIdentical:
    @pytest.mark.parametrize("executor", ("processes", "supervised"))
    @pytest.mark.parametrize("kernel", KERNEL_BACKENDS)
    def test_batched_equals_per_pivot(self, executor, kernel):
        g, base = drain(
            "wiki", executor=executor, kernel=kernel, batch=False
        )
        _, batched = drain(
            "wiki", executor=executor, kernel=kernel, batch=True
        )
        assert np.array_equal(base.labels, batched.labels)
        assert base.trace.records == batched.trace.records
        assert same_partition(batched.labels, scipy_scc_labels(g))
        assert batched.profile.counters.get("phase2_batches", 0) > 0


class TestThreadsCorrect:
    @pytest.mark.parametrize("kernel", KERNEL_BACKENDS)
    def test_batched_partition_correct(self, kernel):
        g, s, items = tail_state("flickr")
        with use_backend(kernel):
            run_recur_phase(
                s, items, backend="threads", num_threads=2,
                phase2_batch=True,
            )
        assert same_partition(s.labels, scipy_scc_labels(g))
        assert s.profile.counters.get("phase2_batches", 0) > 0


class TestPolicy:
    def test_resolution(self):
        assert resolve_batch_policy(False) is None
        assert resolve_batch_policy(None) is None
        default = resolve_batch_policy(True)
        assert isinstance(default, Phase2BatchPolicy)
        assert default.width == 64
        custom = Phase2BatchPolicy(width=8)
        assert resolve_batch_policy(custom) is custom
        with pytest.raises(TypeError):
            resolve_batch_policy("yes")

    def test_validation(self):
        with pytest.raises(ValueError):
            Phase2BatchPolicy(width=0)
        with pytest.raises(ValueError):
            Phase2BatchPolicy(width=65)
        with pytest.raises(ValueError):
            Phase2BatchPolicy(min_run=0)
        with pytest.raises(ValueError):
            Phase2BatchPolicy(max_item_nodes=0)

    def _items(self, colors, size=4):
        return [
            WorkItem(color=c, nodes=np.arange(size)) for c in colors
        ]

    def test_width_cap(self):
        policy = Phase2BatchPolicy(width=4)
        plans = plan_batches(self._items(range(10)), policy)
        assert [
            len(p) if isinstance(p, list) else 1 for p in plans
        ] == [4, 4, 2]

    def test_repeated_color_breaks_run(self):
        policy = Phase2BatchPolicy(width=8)
        plans = plan_batches(self._items([1, 2, 2, 3]), policy)
        # the duplicate colour may not share a run with its twin
        assert isinstance(plans[0], list)
        assert [it.color for it in plans[0]] == [1, 2]
        assert isinstance(plans[1], list)
        assert [it.color for it in plans[1]] == [2, 3]

    def test_short_runs_degrade_to_singles(self):
        policy = Phase2BatchPolicy(width=8, min_run=3)
        plans = plan_batches(self._items([1, 2]), policy)
        assert all(isinstance(p, WorkItem) for p in plans)

    def test_oversized_items_not_batched(self):
        policy = Phase2BatchPolicy(width=8, max_item_nodes=3)
        small = self._items([1, 2], size=2)
        big = self._items([3], size=9)
        plans = plan_batches(small + big, policy)
        assert isinstance(plans[0], list) and len(plans[0]) == 2
        assert isinstance(plans[1], WorkItem)

    def test_scan_items_not_batched(self):
        # scan-representation items (nodes=None) always run per-pivot
        policy = Phase2BatchPolicy()
        items = [WorkItem(color=c, nodes=None) for c in (1, 2, 3)]
        plans = plan_batches(items, policy)
        assert all(isinstance(p, WorkItem) for p in plans)

    def test_no_policy_passthrough(self):
        items = self._items([1, 2, 3])
        assert plan_batches(items, None) == items
