"""Tests for the phase-2 recursive FW-BW task kernel and drivers."""

import numpy as np
import pytest

from repro.core import (
    SCCState,
    WorkItem,
    collect_color_sets,
    recur_fwbw_task,
    run_recur_phase,
)
from repro.core.result import same_partition
from repro.graph import from_edge_list
from repro.runtime.trace import TaskDAGRecord
from tests.conftest import random_digraph, scipy_scc_labels


def full_item(g):
    return WorkItem(color=0, nodes=np.arange(g.num_nodes))


class TestSingleTask:
    def test_identifies_pivot_scc_and_partitions(self):
        # IN(0) -> core{1,2} -> OUT(3); pivot forced to the core
        g = from_edge_list([(0, 1), (1, 2), (2, 1), (2, 3)], 4)
        s = SCCState(g)
        item = WorkItem(color=0, nodes=np.array([1, 2, 0, 3]))
        children, cost = recur_fwbw_task(s, item, pivot_strategy="first")
        assert s.mark[1] and s.mark[2]
        assert cost > 0
        child_sets = {frozenset(ch.nodes.tolist()) for ch in children}
        assert child_sets == {frozenset({0}), frozenset({3})}

    def test_task_log_entry(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 1), (2, 3)], 4)
        s = SCCState(g)
        recur_fwbw_task(
            s,
            WorkItem(color=0, nodes=np.array([1, 2, 0, 3])),
            pivot_strategy="first",
        )
        entry = s.profile.task_log[0]
        assert entry.scc == 2
        assert entry.fw == 1 and entry.bw == 1 and entry.remain == 0

    def test_empty_item_returns_no_children(self):
        g = from_edge_list([(0, 1)], 2)
        s = SCCState(g)
        s.color[:] = 5
        children, cost = recur_fwbw_task(
            s, WorkItem(color=0, nodes=np.arange(2))
        )
        assert children == []
        assert s.num_sccs == 0

    def test_scan_representation(self):
        g = from_edge_list([(0, 1), (1, 0)], 2)
        s = SCCState(g)
        children, cost_scan = recur_fwbw_task(
            s, WorkItem(color=0, nodes=None), pivot_strategy="first"
        )
        assert s.mark.all()
        s2 = SCCState(g)
        _, cost_hybrid = recur_fwbw_task(
            s2, full_item(g), pivot_strategy="first"
        )
        # same result, but scan charged the O(N) colour sweep
        assert cost_scan >= cost_hybrid


class TestDrivers:
    @pytest.mark.parametrize("backend", ["serial", "threads"])
    @pytest.mark.parametrize("seed", range(3))
    def test_full_decomposition(self, backend, seed):
        g = random_digraph(150, 600, seed=seed)
        s = SCCState(g, seed=seed)
        run_recur_phase(
            s,
            [(0, np.arange(150))],
            backend=backend,
            num_threads=4,
        )
        s.check_done()
        assert same_partition(s.labels, scipy_scc_labels(g))

    def test_task_dag_recorded(self):
        g = random_digraph(100, 400, seed=1)
        s = SCCState(g)
        n_tasks = run_recur_phase(s, [(0, np.arange(100))], queue_k=4)
        recs = [r for r in s.trace if isinstance(r, TaskDAGRecord)]
        assert len(recs) == 1
        assert len(recs[0].tasks) == n_tasks
        assert recs[0].queue_k == 4

    def test_spawn_tree_parents_valid(self):
        g = random_digraph(100, 400, seed=2)
        s = SCCState(g)
        run_recur_phase(s, [(0, np.arange(100))])
        rec = [r for r in s.trace if isinstance(r, TaskDAGRecord)][0]
        roots = [t for t in rec.tasks if t.parent == -1]
        assert len(roots) == 1
        for i, t in enumerate(rec.tasks):
            assert t.parent < i

    def test_multiple_initial_items(self):
        g = from_edge_list([(0, 1), (1, 0), (2, 3), (3, 2)], 4)
        s = SCCState(g)
        s.color[:2] = 5
        s.color[2:] = 6
        run_recur_phase(
            s, [(5, np.array([0, 1])), (6, np.array([2, 3]))]
        )
        s.check_done()
        assert s.num_sccs == 2

    def test_unknown_backend(self):
        g = from_edge_list([(0, 1)], 2)
        with pytest.raises(ValueError):
            run_recur_phase(SCCState(g), [], backend="gpu")

    def test_scan_repr_end_to_end(self):
        g = random_digraph(80, 300, seed=5)
        s = SCCState(g)
        run_recur_phase(s, [(0, None)])
        s.check_done()
        assert same_partition(s.labels, scipy_scc_labels(g))


class TestCollectColorSets:
    def test_groups_by_color(self):
        g = from_edge_list([], 6)
        s = SCCState(g)
        s.color[:] = [5, 6, 5, 7, 6, 5]
        sets = dict(collect_color_sets(s))
        assert set(sets) == {5, 6, 7}
        assert np.array_equal(sets[5], [0, 2, 5])

    def test_marked_excluded(self):
        g = from_edge_list([], 3)
        s = SCCState(g)
        s.mark_singletons(np.array([1]), 0)
        sets = collect_color_sets(s)
        all_nodes = np.concatenate([n for _, n in sets])
        assert 1 not in all_nodes

    def test_empty_when_done(self):
        g = from_edge_list([], 2)
        s = SCCState(g)
        s.mark_singletons(np.arange(2), 0)
        assert collect_color_sets(s) == []
