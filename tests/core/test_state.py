"""Tests for the Color/mark algorithm state."""

import numpy as np
import pytest

from repro.core import DONE_COLOR, PHASE_RECUR, PHASE_TRIM, SCCState
from repro.graph import from_edge_list


def make_state(n=6):
    return SCCState(from_edge_list([(i, (i + 1) % n) for i in range(n)], n))


class TestColors:
    def test_initial_state(self):
        s = make_state()
        assert np.all(s.color == 0)
        assert not s.mark.any()
        assert np.all(s.labels == -1)
        assert s.num_sccs == 0

    def test_new_color_unique(self):
        s = make_state()
        colors = [s.new_color() for _ in range(10)]
        assert len(set(colors)) == 10
        assert DONE_COLOR not in colors

    def test_new_colors_block(self):
        s = make_state()
        block = s.new_colors(5)
        assert block.shape == (5,)
        assert s.new_color() > block.max()


class TestMarking:
    def test_mark_scc_sets_invariants(self):
        s = make_state()
        sid = s.mark_scc(np.array([1, 3]), PHASE_RECUR)
        assert s.mark[1] and s.mark[3]
        assert s.color[1] == DONE_COLOR
        assert s.labels[1] == s.labels[3] == sid
        assert s.phase_of[1] == PHASE_RECUR
        assert s.num_sccs == 1

    def test_mark_scc_empty_rejected(self):
        with pytest.raises(ValueError):
            make_state().mark_scc(np.array([], dtype=np.int64), PHASE_RECUR)

    def test_mark_singletons_distinct_labels(self):
        s = make_state()
        s.mark_singletons(np.array([0, 2, 4]), PHASE_TRIM)
        assert s.num_sccs == 3
        assert len({int(s.labels[i]) for i in (0, 2, 4)}) == 3

    def test_mark_pairs(self):
        s = make_state()
        s.mark_pairs(np.array([0, 2]), np.array([1, 3]), PHASE_TRIM)
        assert s.num_sccs == 2
        assert s.labels[0] == s.labels[1]
        assert s.labels[2] == s.labels[3]
        assert s.labels[0] != s.labels[2]

    def test_mark_pairs_shape_checked(self):
        with pytest.raises(ValueError):
            make_state().mark_pairs(np.array([0]), np.array([1, 2]), PHASE_TRIM)

    def test_unfinished_and_active(self):
        s = make_state()
        assert s.unfinished() == 6
        s.mark_singletons(np.array([0, 1]), PHASE_TRIM)
        assert s.unfinished() == 4
        assert np.array_equal(s.active_nodes(), [2, 3, 4, 5])

    def test_check_done_raises_when_incomplete(self):
        s = make_state()
        with pytest.raises(RuntimeError):
            s.check_done()

    def test_check_done_passes_when_complete(self):
        s = make_state()
        s.mark_scc(np.arange(6), PHASE_RECUR)
        s.check_done()


class TestPick:
    def test_pick_deterministic_with_seed(self):
        a = SCCState(from_edge_list([(0, 1)], 50), seed=5)
        b = SCCState(from_edge_list([(0, 1)], 50), seed=5)
        cands = np.arange(50)
        assert a.pick(cands, "random") == b.pick(cands, "random")

    def test_pick_first(self):
        s = make_state()
        assert s.pick(np.array([4, 2, 9]), "first") == 4


class TestColourTriple:
    """The task-colour allocator shared by every phase-2 executor."""

    def test_window_clear_of_skip(self):
        from repro.core.state import skip_colour_triple

        assert skip_colour_triple(5, 99) == ((5, 6, 7), 8)
        # skip inside the window: the triple steps over it.
        assert skip_colour_triple(5, 6) == ((5, 7, 8), 9)
        # skip at the window start.
        assert skip_colour_triple(5, 5) == ((6, 7, 8), 9)

    def test_alloc_skips_live_partition_colour(self):
        """Regression: a task splitting the root partition (colour 0)
        or any colour still at the allocation watermark must never be
        handed that same colour back as cfw/cbw/cscc — the BW
        transition map {c: cbw, cfw: cscc} is ill-defined when a
        target colour is also a source."""
        s = make_state()
        # fresh state: the next window [1, 4) would include a task
        # colour of 1, 2 or 3; each must be stepped over.
        for skip in (1, 2, 3):
            t = SCCState(from_edge_list([(0, 1)], 4))
            triple = t.alloc_colour_triple(skip)
            assert skip not in triple
            assert len(set(triple)) == 3
            assert t.new_color() > max(triple)
        # root partition (colour 0) never collides but still allocates.
        assert s.alloc_colour_triple(0) == (1, 2, 3)

    def test_alloc_is_consistent_with_module_function(self):
        from repro.core.state import skip_colour_triple

        s = make_state()
        expected, nxt = skip_colour_triple(1, 2)
        assert s.alloc_colour_triple(2) == expected
        assert s.color_watermark() == nxt
