"""Unit tests for the distributed kernels against their shared-memory
twins: same marks, same reachability, same components."""

import numpy as np
import pytest

from repro.core import SCCState, par_trim, par_wcc
from repro.distributed import DistTrace, hash_partition
from repro.distributed.algorithms import (
    dist_bfs_reach,
    dist_trim,
    dist_wcc,
)
from repro.graph import from_edge_list
from repro.traversal.bfs import bfs_color_transform
from tests.conftest import random_digraph


def setup(n=150, m=600, seed=0, ranks=4):
    g = random_digraph(n, m, seed=seed)
    state = SCCState(g, seed=seed)
    part = hash_partition(n, ranks, rng=seed)
    dtrace = DistTrace(ranks)
    return g, state, part, dtrace


class TestDistTrim:
    @pytest.mark.parametrize("seed", range(4))
    def test_same_marks_as_shared_memory(self, seed):
        g, s_dist, part, dtrace = setup(seed=seed)
        s_ref = SCCState(g, seed=seed)
        n_ref = par_trim(s_ref)
        n_dist = dist_trim(s_dist, part, dtrace)
        assert n_ref == n_dist
        assert np.array_equal(s_ref.mark, s_dist.mark)

    def test_supersteps_recorded(self):
        g, state, part, dtrace = setup(seed=1)
        dist_trim(state, part, dtrace)
        assert len(dtrace.steps) >= 1
        assert dtrace.total_work() > 0

    def test_messages_zero_single_rank(self):
        g = random_digraph(100, 400, seed=2)
        state = SCCState(g)
        part = hash_partition(100, 1)
        dtrace = DistTrace(1)
        dist_trim(state, part, dtrace)
        assert dtrace.total_messages() == 0


class TestDistBfs:
    @pytest.mark.parametrize("direction", ["out", "in"])
    def test_same_recolouring_as_shared_memory(self, direction):
        g = random_digraph(120, 500, seed=3)
        s_dist = SCCState(g)
        s_ref = SCCState(g)
        part = hash_partition(120, 4, rng=0)
        dtrace = DistTrace(4)
        pivot = 7
        out_dist = dist_bfs_reach(
            s_dist, part, dtrace, pivot, {0: 5}, direction=direction
        )
        bfs_color_transform(
            g, pivot, {0: 5}, s_ref.color, direction=direction
        )
        assert np.array_equal(s_dist.color, s_ref.color)
        assert set(out_dist[5].tolist()) == set(
            np.flatnonzero(s_ref.color == 5).tolist()
        )

    def test_two_transitions(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0), (3, 0)], 4)
        state = SCCState(g)
        part = hash_partition(4, 2, rng=0)
        dtrace = DistTrace(2)
        dist_bfs_reach(state, part, dtrace, 0, {0: 5})
        out = dist_bfs_reach(
            state, part, dtrace, 0, {0: 7, 5: 6}, direction="in"
        )
        assert set(out[6].tolist()) == {0, 1, 2}
        assert set(out[7].tolist()) == {3}

    def test_pivot_color_checked(self):
        g = from_edge_list([(0, 1)], 2)
        state = SCCState(g)
        state.color[0] = 9
        with pytest.raises(ValueError):
            dist_bfs_reach(
                state, hash_partition(2, 2), DistTrace(2), 0, {0: 5}
            )

    def test_bad_direction(self):
        g = from_edge_list([(0, 1)], 2)
        with pytest.raises(ValueError):
            dist_bfs_reach(
                SCCState(g),
                hash_partition(2, 2),
                DistTrace(2),
                0,
                {0: 5},
                direction="up",
            )


class TestDistWcc:
    @pytest.mark.parametrize("seed", range(4))
    def test_same_components_as_shared_memory(self, seed):
        g, s_dist, part, dtrace = setup(seed=seed, m=300)
        s_ref = SCCState(g, seed=seed)
        ref_items = par_wcc(s_ref)
        dist_items = dist_wcc(s_dist, part, dtrace)
        ref_sets = {frozenset(n.tolist()) for _, n in ref_items}
        dist_sets = {frozenset(n.tolist()) for _, n in dist_items}
        assert ref_sets == dist_sets

    def test_empty_when_all_marked(self):
        g = from_edge_list([(0, 1)], 2)
        state = SCCState(g)
        state.mark_scc(np.array([0, 1]), 0)
        assert dist_wcc(state, hash_partition(2, 2), DistTrace(2)) == []

    def test_iterations_recorded_as_supersteps(self):
        g, state, part, dtrace = setup(seed=5, m=300)
        dist_wcc(state, part, dtrace)
        assert len(dtrace.steps) >= 1
