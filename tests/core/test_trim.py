"""Tests for Par-Trim (Algorithm 4)."""

import numpy as np
import pytest

from repro.core import (
    PHASE_TRIM,
    SCCState,
    effective_degrees,
    par_trim,
    par_trim_rescan,
)
from repro.graph import from_edge_list
from tests.conftest import SMALL_GRAPHS, random_digraph, scipy_scc_labels


class TestEffectiveDegrees:
    def test_counts_same_color_only(self):
        g = from_edge_list([(0, 1), (2, 1)], 3)
        s = SCCState(g)
        s.color[2] = 9  # different partition
        out, ins, _ = effective_degrees(s, np.arange(3))
        assert ins[1] == 1  # only the edge from same-colour node 0
        assert out[2] == 0  # its target is in another partition

    def test_marked_neighbours_excluded(self):
        g = from_edge_list([(0, 1), (2, 1)], 3)
        s = SCCState(g)
        s.mark_singletons(np.array([2]), PHASE_TRIM)  # colour -> DONE
        out, ins, _ = effective_degrees(s, np.array([0, 1]))
        assert ins[1] == 1

    def test_scanned_counts_all_adjacency(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], 3)
        s = SCCState(g)
        _, _, scanned = effective_degrees(s, np.arange(3))
        assert scanned == 6  # 3 out + 3 in


class TestParTrim:
    def test_dag_fully_trimmed(self):
        g = from_edge_list([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
        s = SCCState(g)
        trimmed = par_trim(s)
        assert trimmed == 4
        assert s.mark.all()
        assert s.num_sccs == 4

    def test_cycle_not_trimmed(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], 3)
        s = SCCState(g)
        assert par_trim(s) == 0
        assert not s.mark.any()

    def test_figure_1b_cascade(self):
        # Leaves d, e and source a trim in round one; the removal of c
        # then exposes b (Section 2.2's iterative trimming).
        edges, n = SMALL_GRAPHS["figure1b"]
        g = from_edge_list(edges, n)
        s = SCCState(g)
        assert par_trim(s) == 5
        assert s.profile.counters["trim_iterations"] == 2

    def test_long_chain_cascades_from_both_ends(self):
        # A 6-path trims inward from both ends: 3 iterations.
        g = from_edge_list([(i, i + 1) for i in range(5)], 6)
        s = SCCState(g)
        assert par_trim(s) == 6
        assert s.profile.counters["trim_iterations"] == 3

    def test_tail_behind_scc_trimmed(self):
        edges, n = SMALL_GRAPHS["scc_with_tail"]
        g = from_edge_list(edges, n)
        s = SCCState(g)
        assert par_trim(s) == 2  # nodes 3, 4
        assert not s.mark[:3].any()

    def test_isolated_nodes_trimmed(self):
        g = from_edge_list([], 5)
        s = SCCState(g)
        assert par_trim(s) == 5

    def test_self_loop_survives_trim(self):
        from repro.graph import from_edge_array

        g = from_edge_array(np.array([0]), np.array([0]), 1, dedup=False)
        s = SCCState(g)
        assert par_trim(s) == 0  # in/out degree 1 via the loop

    def test_respects_existing_colors(self):
        # 2-cycle split across two partitions: both ends become
        # effectively degree-0 and must be trimmed.
        g = from_edge_list([(0, 1), (1, 0)], 2)
        s = SCCState(g)
        s.color[1] = 9
        assert par_trim(s) == 2

    def test_restrict_mask(self):
        g = from_edge_list([(0, 1)], 4)
        s = SCCState(g)
        restrict = np.array([True, True, False, False])
        par_trim(s, restrict=restrict)
        assert s.mark[0] and s.mark[1]
        assert not s.mark[2] and not s.mark[3]

    def test_trace_records_work(self):
        g = random_digraph(60, 200, seed=0)
        s = SCCState(g)
        par_trim(s)
        assert len(s.trace) >= 1
        assert s.trace.total_work() > 0

    def test_trimmed_nodes_are_truly_trivial_sccs(self):
        for seed in range(4):
            g = random_digraph(150, 450, seed=seed)
            s = SCCState(g)
            par_trim(s)
            sizes = np.bincount(scipy_scc_labels(g))
            # every marked node must be a size-1 SCC in truth
            oracle = scipy_scc_labels(g)
            for v in np.flatnonzero(s.mark):
                assert sizes[oracle[v]] == 1


class TestRescanEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_same_marks_as_incremental(self, seed):
        g = random_digraph(120, 350, seed=seed)
        s1, s2 = SCCState(g), SCCState(g)
        t1 = par_trim(s1)
        t2 = par_trim_rescan(s2)
        assert t1 == t2
        assert np.array_equal(s1.mark, s2.mark)

    def test_rescan_records_more_work_on_deep_cascade(self):
        # A long path forces ~n/2 trim rounds; the literal Algorithm 4
        # rescans all survivors each round (O(n^2) work) while the
        # incremental version only touches trimmed frontiers (O(n)).
        g = from_edge_list([(i, i + 1) for i in range(59)], 60)
        s1, s2 = SCCState(g), SCCState(g)
        par_trim(s1)
        par_trim_rescan(s2)
        assert s2.trace.total_work() > 3 * s1.trace.total_work()
