"""Tests for the phase-1 parallel FW-BW step."""

import numpy as np
import pytest

from repro.core import PHASE_FWBW, SCCState, par_fwbw
from repro.generators import SCCStructureSpec, scc_structured_graph
from repro.graph import from_edge_list
from tests.conftest import random_digraph, scipy_scc_labels


class TestParFwbw:
    def test_finds_whole_graph_scc(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], 3)
        s = SCCState(g)
        out = par_fwbw(s, 0, giant_threshold=0.5)
        assert out.found_giant
        assert out.largest_scc == 3
        assert s.mark.all()
        assert np.all(s.phase_of == PHASE_FWBW)

    def test_partitions_coloured_correctly(self):
        # IN -> SCC -> OUT structure around a 2-cycle core {1,2}; the
        # maxdegree pivot (node 2) lands in the core on trial one, so
        # node 0 becomes the BW-only partition and node 3 the FW-only.
        g = from_edge_list([(0, 1), (1, 2), (2, 1), (2, 3)], 4)
        s = SCCState(g, seed=0)
        out = par_fwbw(
            s, 0, giant_threshold=0.5, pivot_strategy="maxdegree"
        )
        assert out.found_giant and out.trials == 1
        assert s.mark[1] and s.mark[2]
        assert not s.mark[0] and not s.mark[3]
        # IN and OUT nodes must now carry different colours
        assert s.color[0] != s.color[3]

    def test_finds_planted_giant(self):
        p = scc_structured_graph(
            SCCStructureSpec(n=2000, giant_frac=0.6, trivial_frac=0.5), 3
        )
        s = SCCState(p.graph, seed=1)
        out = par_fwbw(s, 0, giant_threshold=0.01, max_trials=5)
        assert out.found_giant
        assert out.largest_scc >= 0.58 * 2000

    def test_retry_when_pivot_misses(self):
        # pivot strategy "first" with node 0 upstream of the cycle:
        # trial 1 finds the singleton {0}, the giant lies in 0's FW
        # set, and the retry-on-largest-partition logic must find it.
        edges = [(0, 1)] + [(i, i + 1) for i in range(1, 9)] + [(9, 1)]
        g = from_edge_list(edges, 10)
        s = SCCState(g, seed=0)
        out = par_fwbw(
            s, 0, giant_threshold=0.5, max_trials=3, pivot_strategy="first"
        )
        assert out.found_giant
        assert out.trials == 2
        assert out.largest_scc == 9

    def test_gives_up_after_max_trials(self):
        # all-trivial DAG: no giant exists
        g = from_edge_list([(0, 1), (1, 2), (2, 3)], 4)
        s = SCCState(g)
        out = par_fwbw(s, 0, giant_threshold=0.9, max_trials=2)
        assert not out.found_giant
        assert out.trials == 2

    def test_empty_color_noop(self):
        g = from_edge_list([(0, 1)], 2)
        s = SCCState(g)
        s.color[:] = 7  # nothing has colour 0
        out = par_fwbw(s, 0)
        assert out.trials == 0
        assert not out.found_giant

    def test_marked_sccs_are_true_sccs(self):
        for seed in range(4):
            g = random_digraph(200, 900, seed=seed)
            s = SCCState(g, seed=seed)
            par_fwbw(s, 0, giant_threshold=0.01, max_trials=4)
            oracle = scipy_scc_labels(g)
            for sid in range(s.num_sccs):
                mine = np.flatnonzero(s.labels == sid)
                theirs = np.flatnonzero(oracle == oracle[mine[0]])
                assert np.array_equal(mine, theirs)

    def test_parameter_validation(self):
        g = from_edge_list([(0, 1)], 2)
        with pytest.raises(ValueError):
            par_fwbw(SCCState(g), 0, giant_threshold=0.0)
        with pytest.raises(ValueError):
            par_fwbw(SCCState(g), 0, max_trials=0)

    def test_maxdegree_pivot_lands_in_giant_first_try(self):
        p = scc_structured_graph(
            SCCStructureSpec(n=3000, giant_frac=0.5, giant_chords=3.0), 5
        )
        s = SCCState(p.graph, seed=2)
        out = par_fwbw(
            s, 0, giant_threshold=0.01, pivot_strategy="maxdegree"
        )
        assert out.found_giant
        assert out.trials == 1
