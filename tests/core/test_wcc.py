"""Tests for Par-WCC (Algorithm 7)."""

import numpy as np
import pytest

from repro.core import PHASE_TRIM, SCCState, par_wcc
from repro.graph import from_edge_list
from tests.conftest import random_digraph, scipy_wcc_labels


class TestParWcc:
    def test_two_islands(self):
        g = from_edge_list([(0, 1), (2, 3)], 4)
        s = SCCState(g)
        items = par_wcc(s)
        assert len(items) == 2
        groups = {frozenset(nodes.tolist()) for _, nodes in items}
        assert groups == {frozenset({0, 1}), frozenset({2, 3})}

    def test_one_directional_edge_merges(self):
        # weak connectivity ignores direction
        g = from_edge_list([(0, 1), (2, 1)], 3)
        s = SCCState(g)
        items = par_wcc(s)
        assert len(items) == 1

    def test_colors_assigned_uniquely(self):
        g = from_edge_list([(0, 1), (2, 3), (4, 5)], 6)
        s = SCCState(g)
        items = par_wcc(s)
        colors = [c for c, _ in items]
        assert len(set(colors)) == 3
        for c, nodes in items:
            assert np.all(s.color[nodes] == c)

    def test_marked_nodes_excluded(self):
        g = from_edge_list([(0, 1), (1, 2)], 3)
        s = SCCState(g)
        s.mark_singletons(np.array([1]), PHASE_TRIM)
        items = par_wcc(s)
        # removing the middle node splits the island in two
        assert len(items) == 2

    def test_respects_partition_colors(self):
        # one weak island split across two colours must NOT merge
        g = from_edge_list([(0, 1), (1, 2)], 3)
        s = SCCState(g)
        s.color[:2] = 5
        s.color[2] = 6
        items = par_wcc(s)
        assert len(items) == 2

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_scipy_wcc(self, seed):
        g = random_digraph(150, 300, seed=seed)
        s = SCCState(g)
        items = par_wcc(s)
        oracle = scipy_wcc_labels(g)
        mine = {frozenset(nodes.tolist()) for _, nodes in items}
        theirs: dict[int, set[int]] = {}
        for v, lab in enumerate(oracle):
            theirs.setdefault(int(lab), set()).add(v)
        assert mine == {frozenset(v) for v in theirs.values()}

    def test_empty_when_all_marked(self):
        g = from_edge_list([(0, 1)], 2)
        s = SCCState(g)
        s.mark_scc(np.array([0, 1]), PHASE_TRIM)
        assert par_wcc(s) == []

    def test_counters(self):
        g = random_digraph(80, 160, seed=3)
        s = SCCState(g)
        items = par_wcc(s)
        assert s.profile.counters["wcc_components"] == len(items)
        assert s.profile.counters["wcc_iterations"] >= 1

    def test_iterations_grow_with_diameter(self):
        # a long path needs more hook/compress rounds than a star
        path = from_edge_list([(i, i + 1) for i in range(399)], 400)
        star = from_edge_list([(0, i) for i in range(1, 400)], 400)
        sp = SCCState(path)
        ss = SCCState(star)
        par_wcc(sp)
        par_wcc(ss)
        assert (
            sp.profile.counters["wcc_iterations"]
            > ss.profile.counters["wcc_iterations"]
        )


class TestOutOnlyDeviation:
    def test_out_only_variant_can_underconnect(self):
        """Documents the published Algorithm 7 deviation (DESIGN.md §2).

        With the edge 1 -> 0 only, pulling minima over *out*-neighbours
        lets node 1 adopt node 0's label, but with the edge 0 -> 1 the
        one-directional pull can never inform node 1 of node 0's lower
        label... the printed algorithm relies on symmetric adjacency.
        """
        g = from_edge_list([(1, 0)], 2)  # pull works here
        s = SCCState(g)
        assert len(par_wcc(s, directions="out")) == 1

        g2 = from_edge_list([(0, 1)], 2)  # pull cannot work here
        s2 = SCCState(g2)
        items = par_wcc(s2, directions="out")
        assert len(items) == 2  # WRONG as WCC — hence the deviation

    def test_both_directions_correct_either_way(self):
        for edges in ([(0, 1)], [(1, 0)]):
            g = from_edge_list(edges, 2)
            s = SCCState(g)
            assert len(par_wcc(s)) == 1

    def test_bad_directions_rejected(self):
        g = from_edge_list([(0, 1)], 2)
        with pytest.raises(ValueError):
            par_wcc(SCCState(g), directions="diagonal")
