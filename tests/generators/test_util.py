"""Unit tests for generator helpers."""

import numpy as np
import pytest

from repro.generators.util import (
    as_rng,
    sample_power_law_sizes,
    segmented_uniform,
)


class TestAsRng:
    def test_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_seed(self):
        a = as_rng(42).random()
        b = as_rng(42).random()
        assert a == b

    def test_none(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestPowerLawSizes:
    def test_exact_total(self):
        for total in (1, 7, 100, 12345):
            sizes = sample_power_law_sizes(
                as_rng(1), total, alpha=2.2, lo=1, hi=64
            )
            assert int(sizes.sum()) == total

    def test_bounds_respected(self):
        sizes = sample_power_law_sizes(
            as_rng(2), 5000, alpha=2.0, lo=2, hi=32
        )
        # All but possibly merged-tail entries within [lo, hi+lo].
        assert sizes.min() >= 2
        assert sizes.max() <= 32 + 2

    def test_skew_toward_small(self):
        sizes = sample_power_law_sizes(
            as_rng(3), 20000, alpha=2.5, lo=1, hi=128
        )
        assert (sizes == 1).sum() > (sizes >= 10).sum()

    def test_zero_total(self):
        assert sample_power_law_sizes(as_rng(0), 0, alpha=2.0, lo=1, hi=4).size == 0

    def test_total_below_lo(self):
        sizes = sample_power_law_sizes(as_rng(0), 1, alpha=2.0, lo=2, hi=4)
        assert int(sizes.sum()) == 1

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            sample_power_law_sizes(as_rng(0), 10, alpha=2.0, lo=5, hi=4)


class TestSegmentedUniform:
    def test_within_segment(self):
        offsets = np.array([0, 10, 30])
        sizes = np.array([10, 20, 5])
        ids = np.array([0, 1, 2, 1, 0])
        picks = segmented_uniform(as_rng(4), offsets, sizes, ids)
        for pick, k in zip(picks, ids):
            assert offsets[k] <= pick < offsets[k] + sizes[k]

    def test_deterministic_under_seed(self):
        offsets = np.array([0, 5])
        sizes = np.array([5, 5])
        ids = np.zeros(100, dtype=np.int64)
        a = segmented_uniform(as_rng(7), offsets, sizes, ids)
        b = segmented_uniform(as_rng(7), offsets, sizes, ids)
        assert np.array_equal(a, b)
