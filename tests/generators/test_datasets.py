"""Tests for the nine-dataset surrogate registry (Table 1)."""

import numpy as np
import pytest

from repro.generators import DATASETS, dataset_names, generate, scale_from_env
from repro.graph import validate_graph
from tests.conftest import scipy_scc_labels


class TestRegistry:
    def test_all_nine_datasets_registered(self):
        assert dataset_names() == [
            "livej",
            "flickr",
            "baidu",
            "wiki",
            "friend",
            "twitter",
            "orkut",
            "patents",
            "ca-road",
        ]

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            generate("nope")

    def test_paper_stats_present(self):
        for spec in DATASETS.values():
            assert spec.paper.nodes > 0
            assert spec.paper.edges > spec.paper.nodes
            assert 0 <= spec.paper.largest_scc_frac <= 1

    def test_traits(self):
        assert DATASETS["patents"].acyclic
        assert not DATASETS["ca-road"].small_world
        assert DATASETS["orkut"].oriented
        assert DATASETS["friend"].oriented
        assert DATASETS["ca-road"].oriented


@pytest.mark.parametrize("name", dataset_names())
class TestGeneration:
    def test_generates_and_validates(self, name):
        b = generate(name, scale=0.08)
        assert b.name == name
        validate_graph(b.graph, check_transpose=False)
        assert b.graph.num_nodes > 0

    def test_deterministic(self, name):
        a = generate(name, scale=0.08)
        b = generate(name, scale=0.08)
        assert a.graph == b.graph

    def test_scale_changes_size(self, name):
        small = generate(name, scale=0.05).graph
        big = generate(name, scale=0.15).graph
        assert big.num_nodes > small.num_nodes

    def test_planted_labels_when_present(self, name):
        b = generate(name, scale=0.08)
        if b.true_labels is not None:
            from repro.core.result import same_partition

            assert same_partition(b.true_labels, scipy_scc_labels(b.graph))


class TestStructuralFidelity:
    """Surrogates must match the paper's giant-SCC fractions (Table 1)."""

    @pytest.mark.parametrize(
        "name,tol",
        [
            ("livej", 0.03),
            ("flickr", 0.03),
            ("baidu", 0.03),
            ("wiki", 0.03),
            ("friend", 0.03),
            ("twitter", 0.03),
            ("orkut", 0.08),
        ],
    )
    def test_giant_fraction_close_to_paper(self, name, tol):
        b = generate(name, scale=0.5)
        labels = (
            b.true_labels
            if b.true_labels is not None
            else scipy_scc_labels(b.graph)
        )
        frac = np.bincount(labels).max() / b.graph.num_nodes
        assert abs(frac - DATASETS[name].paper.largest_scc_frac) < tol

    def test_caroad_giant_fraction_at_base_scale(self):
        # The grid sits near its directed-percolation threshold, so the
        # giant fraction is calibrated at the base size only (smaller
        # scales drift low — finite-size effect, noted in DESIGN.md).
        b = generate("ca-road", scale=1.0)
        frac = (
            np.bincount(scipy_scc_labels(b.graph)).max()
            / b.graph.num_nodes
        )
        assert abs(frac - DATASETS["ca-road"].paper.largest_scc_frac) < 0.12

    def test_patents_is_acyclic(self):
        b = generate("patents", scale=0.3)
        sizes = np.bincount(scipy_scc_labels(b.graph))
        assert sizes.max() == 1

    def test_caroad_has_many_mid_sccs(self):
        b = generate("ca-road", scale=0.5)
        sizes = np.bincount(scipy_scc_labels(b.graph))
        assert ((sizes >= 2) & (sizes < sizes.max())).sum() > 100


class TestScaleEnv:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_env() == 1.0

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert scale_from_env() == 0.25

    def test_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(ValueError):
            scale_from_env()

    def test_non_positive(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            scale_from_env()

    def test_generate_uses_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        g_env = generate("livej").graph
        g_exp = generate("livej", scale=0.05).graph
        assert g_env == g_exp
