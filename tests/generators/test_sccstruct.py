"""Tests for the planted SCC-structure generator — including the key
guarantee that planted components ARE the true SCCs."""

import numpy as np
import pytest

from repro.generators import SCCStructureSpec, scc_structured_graph
from repro.graph import validate_graph
from tests.conftest import scipy_scc_labels
from repro.core.result import same_partition


def build(seed=0, **kw):
    defaults = dict(n=1500, giant_frac=0.5, trivial_frac=0.6, alpha=2.2)
    defaults.update(kw)
    return scc_structured_graph(SCCStructureSpec(**defaults), seed)


class TestGroundTruth:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_planted_components_are_exact_sccs(self, seed):
        p = build(seed=seed, chain2_pairs=25)
        assert same_partition(p.labels, scipy_scc_labels(p.graph))

    def test_ground_truth_with_no_giant(self):
        p = build(giant_frac=0.0)
        assert p.giant_comp == -1
        assert same_partition(p.labels, scipy_scc_labels(p.graph))

    def test_ground_truth_all_giant(self):
        p = build(giant_frac=1.0)
        assert same_partition(p.labels, scipy_scc_labels(p.graph))

    def test_without_permutation(self):
        p = build(permute=False)
        assert same_partition(p.labels, scipy_scc_labels(p.graph))


class TestStructure:
    def test_node_count(self):
        p = build(n=2000)
        assert p.graph.num_nodes == 2000
        assert p.labels.shape == (2000,)

    def test_giant_fraction(self):
        p = build(n=4000, giant_frac=0.7)
        sizes = np.bincount(p.labels)
        assert abs(sizes.max() / 4000 - 0.7) < 0.02

    def test_trivial_fraction(self):
        p = build(n=4000, giant_frac=0.5, trivial_frac=0.9)
        sizes = np.bincount(p.labels)
        non_giant = 4000 - sizes.max()
        assert (sizes == 1).sum() > 0.7 * non_giant

    def test_comp_sizes_consistent_with_labels(self):
        p = build()
        observed = np.sort(np.bincount(p.labels))
        planted = np.sort(p.comp_sizes)
        assert np.array_equal(observed, planted)

    def test_chain2_creates_size2_sccs(self):
        p = build(n=2000, chain2_pairs=50, trivial_frac=0.9)
        sizes = np.bincount(p.labels)
        assert (sizes == 2).sum() >= 50

    def test_graph_validates(self):
        validate_graph(build().graph)

    def test_no_self_loops(self):
        g = build().graph
        src, dst = g.edge_array()
        assert not np.any(src == dst)

    def test_deterministic_under_seed(self):
        a = build(seed=9)
        b = build(seed=9)
        assert a.graph == b.graph
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        assert build(seed=1).graph != build(seed=2).graph

    def test_small_world_diameter(self):
        from repro.analysis import estimate_diameter

        p = build(n=6000, giant_frac=0.8, giant_chords=2.5)
        diam = estimate_diameter(p.graph, samples=8)
        assert diam < 5 * np.log2(6000)


class TestSpecValidation:
    def test_bad_n(self):
        with pytest.raises(ValueError):
            SCCStructureSpec(n=0)

    def test_bad_giant_frac(self):
        with pytest.raises(ValueError):
            SCCStructureSpec(n=10, giant_frac=1.5)

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            SCCStructureSpec(n=10, alpha=0.5)

    def test_bad_max_small(self):
        with pytest.raises(ValueError):
            SCCStructureSpec(n=10, max_small=1)

    def test_tiny_graph(self):
        p = scc_structured_graph(SCCStructureSpec(n=1), 0)
        assert p.graph.num_nodes == 1
