"""Tests for the R-MAT generator."""

import numpy as np
import pytest

from repro.generators import rmat_edges, rmat_graph
from repro.graph import validate_graph


class TestRmat:
    def test_node_and_edge_counts(self):
        g = rmat_graph(10, 8.0, rng=0)
        assert g.num_nodes == 1024
        # dedup/self-loop removal shrinks the raw count somewhat
        assert 0.5 * 1024 * 8 < g.num_edges <= 1024 * 8

    def test_raw_edges_count(self):
        src, dst = rmat_edges(8, 4.0, rng=1)
        assert src.shape == dst.shape == (1024,)

    def test_endpoints_in_range(self):
        src, dst = rmat_edges(9, 6.0, rng=2)
        assert src.min() >= 0 and src.max() < 512
        assert dst.min() >= 0 and dst.max() < 512

    def test_skewed_degree_distribution(self):
        g = rmat_graph(12, 8.0, rng=3)
        deg = g.out_degrees()
        # scale-free: max degree far above the mean
        assert deg.max() > 8 * deg.mean()

    def test_uniform_quadrants_not_skewed(self):
        g = rmat_graph(12, 8.0, a=0.25, b=0.25, c=0.25, noise=0.0, rng=4)
        deg = g.out_degrees()
        assert deg.max() < 6 * max(deg.mean(), 1)

    def test_deterministic(self):
        assert rmat_graph(8, 4.0, rng=5) == rmat_graph(8, 4.0, rng=5)

    def test_validates(self):
        validate_graph(rmat_graph(8, 4.0, rng=6))

    def test_scale_zero(self):
        g = rmat_graph(0, 3.0, rng=7)
        assert g.num_nodes == 1
        assert g.num_edges == 0  # only self-loops possible, dropped

    def test_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat_edges(4, 2.0, a=0.9, b=0.2, c=0.2)

    def test_negative_scale(self):
        with pytest.raises(ValueError):
            rmat_edges(-1, 2.0)
