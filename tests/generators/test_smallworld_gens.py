"""Tests for Watts–Strogatz, road-grid and citation-DAG generators."""

import numpy as np
import pytest

from repro.analysis import estimate_diameter
from repro.generators import (
    citation_dag,
    grid_undirected_edges,
    road_grid_graph,
    watts_strogatz_graph,
)
from repro.graph import validate_graph
from tests.conftest import scipy_scc_labels


class TestWattsStrogatz:
    def test_ring_lattice_at_p0(self):
        g = watts_strogatz_graph(20, 2, 0.0, rng=0)
        assert g.num_edges == 40
        assert g.has_edge(0, 1) and g.has_edge(0, 2)
        assert g.has_edge(19, 0) and g.has_edge(19, 1)

    def test_p0_is_one_scc(self):
        g = watts_strogatz_graph(30, 2, 0.0, rng=0)
        labels = scipy_scc_labels(g)
        assert labels.max() == 0

    def test_rewiring_shrinks_diameter(self):
        lattice = watts_strogatz_graph(600, 3, 0.0, rng=1)
        rewired = watts_strogatz_graph(600, 3, 0.1, rng=1)
        d0 = estimate_diameter(lattice, samples=6)
        d1 = estimate_diameter(rewired, samples=6)
        assert d1 < d0 / 2  # the Watts-Strogatz collapse

    def test_p1_fully_random(self):
        g = watts_strogatz_graph(100, 2, 1.0, rng=2)
        # destination spread far beyond the k-neighbourhood
        src, dst = g.edge_array()
        gaps = (dst - src) % 100
        assert (gaps > 10).sum() > 50

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(0, 1, 0.1)
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, 0, 0.1)
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, 10, 0.1)
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, 2, 1.5)

    def test_validates(self):
        validate_graph(watts_strogatz_graph(50, 3, 0.2, rng=3))


class TestRoadGrid:
    def test_grid_edge_count(self):
        src, dst = grid_undirected_edges(4, 3)
        # right edges: 3 per row * 3 rows = 9; down: 4 * 2 = 8
        assert src.shape[0] == 17

    def test_grid_dimensions_validated(self):
        with pytest.raises(ValueError):
            grid_undirected_edges(0, 3)

    def test_road_graph_basicsanity(self):
        g = road_grid_graph(20, 20, rng=0)
        assert g.num_nodes == 400
        validate_graph(g)

    def test_keep_prob_thins_edges(self):
        full = road_grid_graph(30, 30, keep_prob=1.0, rng=1)
        thin = road_grid_graph(30, 30, keep_prob=0.5, rng=1)
        assert thin.num_edges < full.num_edges

    def test_keep_prob_validated(self):
        with pytest.raises(ValueError):
            road_grid_graph(5, 5, keep_prob=0.0)

    def test_large_diameter_vs_smallworld(self):
        g = road_grid_graph(40, 40, rng=2)
        diam = estimate_diameter(g, samples=6)
        assert diam > 2 * np.log2(1600)  # decidedly not small-world

    def test_mid_size_sccs_exist(self):
        g = road_grid_graph(50, 50, rng=3)
        sizes = np.bincount(scipy_scc_labels(g))
        mid = ((sizes >= 2) & (sizes < sizes.max())).sum()
        assert mid > 20  # the CA-road trait (Figure 9(9))


class TestCitationDag:
    def test_acyclic_by_construction(self):
        g = citation_dag(2000, 5.0, rng=0)
        src, dst = g.edge_array()
        assert np.all(dst < src)  # strictly backward in time

    def test_all_sccs_trivial(self):
        g = citation_dag(1000, 4.0, rng=1)
        sizes = np.bincount(scipy_scc_labels(g))
        assert sizes.max() == 1  # the Patents trait (Table 1)

    def test_first_node_cites_nothing(self):
        g = citation_dag(100, 5.0, rng=2)
        assert g.out_degree(0) == 0

    def test_indegree_skewed_to_old(self):
        g = citation_dag(5000, 5.0, recency_power=2.0, rng=3)
        ins = g.in_degrees()
        assert ins[:500].mean() > ins[2500:].mean()

    def test_avg_degree(self):
        g = citation_dag(5000, 6.0, rng=4)
        assert 4.0 < g.num_edges / 5000 < 6.5

    def test_n_validated(self):
        with pytest.raises(ValueError):
            citation_dag(0)

    def test_validates(self):
        validate_graph(citation_dag(300, 3.0, rng=5))
