"""Unit tests for the vectorized frontier expansion primitive."""

import numpy as np

from repro.graph import from_edge_list
from repro.traversal import expand_frontier
from tests.conftest import random_digraph


class TestExpandFrontier:
    def test_single_node(self):
        g = from_edge_list([(0, 1), (0, 2), (1, 2)], 3)
        t = expand_frontier(g.indptr, g.indices, np.array([0]))
        assert np.array_equal(t, [1, 2])

    def test_multiple_nodes_concatenated(self):
        g = from_edge_list([(0, 1), (0, 2), (1, 2), (2, 0)], 3)
        t = expand_frontier(g.indptr, g.indices, np.array([0, 2]))
        assert np.array_equal(t, [1, 2, 0])

    def test_with_sources(self):
        g = from_edge_list([(0, 1), (0, 2), (1, 2)], 3)
        t, s = expand_frontier(
            g.indptr, g.indices, np.array([0, 1]), return_sources=True
        )
        assert np.array_equal(t, [1, 2, 2])
        assert np.array_equal(s, [0, 0, 1])

    def test_empty_frontier(self):
        g = from_edge_list([(0, 1)], 2)
        t = expand_frontier(g.indptr, g.indices, np.array([], dtype=np.int64))
        assert t.size == 0

    def test_zero_degree_nodes(self):
        g = from_edge_list([(0, 1)], 3)
        t, s = expand_frontier(
            g.indptr, g.indices, np.array([1, 2]), return_sources=True
        )
        assert t.size == 0 and s.size == 0

    def test_duplicated_frontier_nodes(self):
        g = from_edge_list([(0, 1)], 2)
        t = expand_frontier(g.indptr, g.indices, np.array([0, 0]))
        assert np.array_equal(t, [1, 1])

    def test_matches_python_reference(self):
        g = random_digraph(80, 400, seed=11)
        rng = np.random.default_rng(0)
        frontier = rng.choice(80, size=25, replace=False)
        t, s = expand_frontier(
            g.indptr, g.indices, frontier, return_sources=True
        )
        ref_t, ref_s = [], []
        for u in frontier:
            for v in g.out_neighbors(int(u)):
                ref_t.append(int(v))
                ref_s.append(int(u))
        assert np.array_equal(t, ref_t)
        assert np.array_equal(s, ref_s)
