"""Unit tests for the vectorized frontier expansion primitive."""

import numpy as np

from repro.graph import from_edge_list
from repro.traversal import expand_frontier
from tests.conftest import random_digraph


class TestExpandFrontier:
    def test_single_node(self):
        g = from_edge_list([(0, 1), (0, 2), (1, 2)], 3)
        t = expand_frontier(g.indptr, g.indices, np.array([0]))
        assert np.array_equal(t, [1, 2])

    def test_multiple_nodes_concatenated(self):
        g = from_edge_list([(0, 1), (0, 2), (1, 2), (2, 0)], 3)
        t = expand_frontier(g.indptr, g.indices, np.array([0, 2]))
        assert np.array_equal(t, [1, 2, 0])

    def test_with_sources(self):
        g = from_edge_list([(0, 1), (0, 2), (1, 2)], 3)
        t, s = expand_frontier(
            g.indptr, g.indices, np.array([0, 1]), return_sources=True
        )
        assert np.array_equal(t, [1, 2, 2])
        assert np.array_equal(s, [0, 0, 1])

    def test_empty_frontier(self):
        g = from_edge_list([(0, 1)], 2)
        t = expand_frontier(g.indptr, g.indices, np.array([], dtype=np.int64))
        assert t.size == 0

    def test_zero_degree_nodes(self):
        g = from_edge_list([(0, 1)], 3)
        t, s = expand_frontier(
            g.indptr, g.indices, np.array([1, 2]), return_sources=True
        )
        assert t.size == 0 and s.size == 0

    def test_duplicated_frontier_nodes(self):
        g = from_edge_list([(0, 1)], 2)
        t = expand_frontier(g.indptr, g.indices, np.array([0, 0]))
        assert np.array_equal(t, [1, 1])

    def test_matches_python_reference(self):
        g = random_digraph(80, 400, seed=11)
        rng = np.random.default_rng(0)
        frontier = rng.choice(80, size=25, replace=False)
        t, s = expand_frontier(
            g.indptr, g.indices, frontier, return_sources=True
        )
        ref_t, ref_s = [], []
        for u in frontier:
            for v in g.out_neighbors(int(u)):
                ref_t.append(int(v))
                ref_s.append(int(u))
        assert np.array_equal(t, ref_t)
        assert np.array_equal(s, ref_s)


class TestContiguousFastPath:
    def test_full_range_matches_general_gather(self):
        g = random_digraph(60, 300, seed=5)
        frontier = np.arange(60, dtype=np.int64)
        fast = expand_frontier(g.indptr, g.indices, frontier)
        scattered = expand_frontier(
            g.indptr, g.indices, frontier[::2]
        )  # non-contiguous control uses the general path
        ref = g.indices.astype(np.int64)
        assert np.array_equal(fast, ref)
        assert scattered.size <= fast.size

    def test_subrange_matches_general_gather(self):
        g = random_digraph(60, 300, seed=6)
        lo, hi = 13, 41
        frontier = np.arange(lo, hi, dtype=np.int64)
        fast = expand_frontier(g.indptr, g.indices, frontier)
        ref = g.indices[g.indptr[lo] : g.indptr[hi]].astype(np.int64)
        assert np.array_equal(fast, ref)

    def test_fast_path_returns_a_copy(self):
        # The slice must be copied: callers recolour through the result
        # and must never alias the CSR adjacency array.
        g = from_edge_list([(0, 1), (1, 0)], 2)
        t = expand_frontier(g.indptr, g.indices, np.array([0, 1]))
        t[0] = 99
        assert g.indices[0] != 99

    def test_single_node_is_contiguous(self):
        g = from_edge_list([(0, 1), (0, 2)], 3)
        t = expand_frontier(g.indptr, g.indices, np.array([1]))
        assert t.size == 0


class TestUniqueOption:
    def test_unique_sorted_dedup(self):
        g = from_edge_list([(0, 2), (0, 1), (1, 1), (1, 2)], 3)
        t = expand_frontier(g.indptr, g.indices, np.array([0, 1]), unique=True)
        assert np.array_equal(t, [1, 2])

    def test_unique_dense_bitmap_equals_sparse_sort(self):
        # Both dedup representations must return the same array; force
        # the dense path with a frontier covering the whole graph.
        g = random_digraph(40, 400, seed=9)
        frontier = np.arange(40, dtype=np.int64)
        t = expand_frontier(g.indptr, g.indices, frontier, unique=True)
        ref = np.unique(expand_frontier(g.indptr, g.indices, frontier))
        assert np.array_equal(t, ref)

    def test_unique_with_sources_rejected(self):
        g = from_edge_list([(0, 1)], 2)
        import pytest

        with pytest.raises(ValueError):
            expand_frontier(
                g.indptr, g.indices, np.array([0]),
                return_sources=True, unique=True,
            )


class TestInt32OverflowRegression:
    """Regression: int32 CSR counts must be promoted before cumsum.

    A frontier covering > 2**31 adjacency entries cannot be allocated
    in a test, so the regression is pinned at the arithmetic level: the
    counts helper must return int64 for int32 input, making the cumsum
    (which previously inherited int32 and wrapped negative) exact.
    """

    def test_segment_counts_promotes_int32(self):
        from repro.kernels import segment_counts

        big = 2**30
        indptr = np.array([0, big, 2 * big, 3 * big], dtype=np.int64)
        # int64 holds the values; the dtype under test is the *counts*
        counts = segment_counts(
            indptr, np.array([0, 1, 2], dtype=np.int64)
        )
        assert counts.dtype == np.int64
        assert int(np.cumsum(counts)[-1]) == 3 * big

    def test_int32_indptr_counts_cumsum_exact(self):
        from repro.kernels import segment_counts

        # int32 indptr whose pairwise differences sum past int32 range
        # when accumulated naively.
        vals = [0, 2**30, 2**31 - 2]
        indptr = np.array(vals, dtype=np.int32)
        counts = segment_counts(indptr, np.array([0, 1], dtype=np.int64))
        assert counts.dtype == np.int64
        total = int(np.cumsum(counts)[-1])
        assert total == 2**31 - 2  # would wrap negative in int32
        naive = (indptr[1:] - indptr[:-1]).astype(np.int32)
        assert np.cumsum(naive + naive)[-1] < 0  # the bug being guarded

    def test_int32_csr_small_graph_roundtrip(self):
        g = from_edge_list([(0, 1), (0, 2), (1, 2), (2, 0)], 3)
        indptr32 = g.indptr.astype(np.int32)
        indices32 = g.indices.astype(np.int32)
        t, s = expand_frontier(
            indptr32, indices32, np.array([0, 2]), return_sources=True
        )
        assert t.dtype == np.int64
        assert np.array_equal(t, [1, 2, 0])
        assert np.array_equal(s, [0, 0, 2])
