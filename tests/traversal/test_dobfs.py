"""Unit tests for direction-optimizing BFS."""

import numpy as np
import pytest

from repro.graph import from_edge_list
from repro.runtime import WorkTrace
from repro.traversal import direction_optimizing_bfs
from repro.traversal.bfs import bfs_mask
from tests.conftest import random_digraph


class TestDirectionOptimizingBfs:
    @pytest.mark.parametrize("seed", range(5))
    def test_same_reachability_as_plain_bfs(self, seed):
        g = random_digraph(120, 900, seed=seed)
        ref, _ = bfs_mask(g, 0)
        mask, _ = direction_optimizing_bfs(g, 0)
        assert np.array_equal(mask, ref)

    def test_reverse_direction(self):
        g = random_digraph(80, 500, seed=7)
        ref, _ = bfs_mask(g, 3, direction="in")
        mask, _ = direction_optimizing_bfs(g, 3, direction="in")
        assert np.array_equal(mask, ref)

    def test_allowed_filter(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 3)], 4)
        allowed = np.array([True, True, False, True])
        ref, _ = bfs_mask(g, 0, allowed=allowed)
        mask, _ = direction_optimizing_bfs(g, 0, allowed=allowed)
        assert np.array_equal(mask, ref)

    def test_bottom_up_saves_edge_scans_on_dense_graph(self):
        # A dense small-world graph: bottom-up early exits should scan
        # fewer edges than top-down once the frontier saturates.
        g = random_digraph(400, 12000, seed=1)
        _, plain = bfs_mask(g, 0)
        _, hybrid = direction_optimizing_bfs(g, 0, alpha=5.0)
        assert hybrid.edges_scanned < plain.edges_scanned

    def test_alpha_extremes(self):
        g = random_digraph(100, 600, seed=2)
        ref, _ = bfs_mask(g, 0)
        # alpha=inf behaves top-down always; tiny alpha forces bottom-up
        m1, _ = direction_optimizing_bfs(g, 0, alpha=1e12)
        m2, _ = direction_optimizing_bfs(g, 0, alpha=1e-12)
        assert np.array_equal(m1, ref)
        assert np.array_equal(m2, ref)

    def test_trace_recorded(self):
        g = random_digraph(100, 600, seed=3)
        tr = WorkTrace()
        direction_optimizing_bfs(g, 0, trace=tr, phase="hyb")
        assert len(tr) > 0

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            direction_optimizing_bfs(
                from_edge_list([(0, 1)], 2), 0, direction="zig"
            )
