"""Unit tests for the sequential DFS kernels."""

import numpy as np
import pytest

from repro.graph import from_edge_list
from repro.traversal import dfs_collect_colored, dfs_reach_mask
from repro.traversal.bfs import bfs_mask
from tests.conftest import random_digraph


class TestDfsReachMask:
    def test_simple_reach(self):
        g = from_edge_list([(0, 1), (1, 2), (3, 0)], 4)
        mask, edges = dfs_reach_mask(g, 0)
        assert np.array_equal(mask, [True, True, True, False])
        assert edges == 2

    def test_reverse(self):
        g = from_edge_list([(0, 1), (1, 2)], 3)
        mask, _ = dfs_reach_mask(g, 2, direction="in")
        assert mask.all()

    def test_allowed_filter(self):
        g = from_edge_list([(0, 1), (1, 2)], 3)
        allowed = np.array([True, False, True])
        mask, _ = dfs_reach_mask(g, 0, allowed=allowed)
        assert np.array_equal(mask, [True, False, False])

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            dfs_reach_mask(from_edge_list([(0, 1)], 2), 0, direction="x")

    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_with_bfs(self, seed):
        g = random_digraph(70, 300, seed=seed)
        dfs_mask, _ = dfs_reach_mask(g, 0)
        bfs_m, _ = bfs_mask(g, 0)
        assert np.array_equal(dfs_mask, bfs_m)


class TestDfsCollectColored:
    def test_matches_bfs_color_transform(self):
        from repro.traversal import bfs_color_transform

        g = random_digraph(60, 240, seed=9)
        color_a = np.zeros(60, dtype=np.int64)
        color_b = np.zeros(60, dtype=np.int64)
        collected, _ = dfs_collect_colored(
            g.indptr, g.indices, 0, {0: 5}, color_a
        )
        bfs_color_transform(g, 0, {0: 5}, color_b)
        assert np.array_equal(color_a, color_b)
        assert set(collected[5]) == set(np.flatnonzero(color_a == 5).tolist())

    def test_two_transitions(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0), (3, 0)], 4)
        color = np.zeros(4, dtype=np.int64)
        dfs_collect_colored(g.indptr, g.indices, 0, {0: 5}, color)
        collected, _ = dfs_collect_colored(
            g.in_indptr, g.in_indices, 0, {0: 7, 5: 6}, color
        )
        assert set(collected[6]) == {0, 1, 2}
        assert set(collected[7]) == {3}

    def test_pivot_color_checked(self):
        g = from_edge_list([(0, 1)], 2)
        with pytest.raises(ValueError):
            dfs_collect_colored(
                g.indptr, g.indices, 0, {9: 5}, np.zeros(2, dtype=np.int64)
            )

    def test_edge_count(self):
        g = from_edge_list([(0, 1), (0, 2), (1, 2)], 3)
        _, edges = dfs_collect_colored(
            g.indptr, g.indices, 0, {0: 5}, np.zeros(3, dtype=np.int64)
        )
        assert edges == 3
