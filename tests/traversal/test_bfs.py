"""Unit tests for BFS kernels."""

import numpy as np
import pytest

from repro.graph import from_edge_list
from repro.runtime import WorkTrace
from repro.traversal import bfs_color_transform, bfs_levels, bfs_mask
from tests.conftest import random_digraph


def chain():
    return from_edge_list([(0, 1), (1, 2), (2, 3)], 4)


class TestBfsLevels:
    def test_distances(self):
        dist = bfs_levels(chain(), 0)
        assert np.array_equal(dist, [0, 1, 2, 3])

    def test_unreachable_minus_one(self):
        g = from_edge_list([(0, 1)], 3)
        dist = bfs_levels(g, 0)
        assert dist[2] == -1

    def test_reverse_direction(self):
        dist = bfs_levels(chain(), 3, direction="in")
        assert np.array_equal(dist, [3, 2, 1, 0])

    def test_matches_networkx(self):
        g = random_digraph(60, 250, seed=3)
        import networkx as nx

        nxg = g.to_networkx()
        dist = bfs_levels(g, 0)
        ref = nx.single_source_shortest_path_length(nxg, 0)
        for v in range(60):
            assert dist[v] == ref.get(v, -1)

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            bfs_levels(chain(), 0, direction="sideways")


class TestBfsMask:
    def test_reaches_everything_downstream(self):
        mask, res = bfs_mask(chain(), 0)
        assert mask.all()
        assert res.levels == 3
        assert res.nodes_visited == 4

    def test_allowed_gates_traversal(self):
        allowed = np.array([True, True, False, True])
        mask, _ = bfs_mask(chain(), 0, allowed=allowed)
        assert np.array_equal(mask, [True, True, False, False])

    def test_multi_source(self):
        g = from_edge_list([(0, 1), (2, 3)], 4)
        mask, _ = bfs_mask(g, np.array([0, 2]))
        assert mask.all()

    def test_trace_records_levels(self):
        tr = WorkTrace()
        bfs_mask(chain(), 0, trace=tr, phase="x")
        assert len(tr) >= 3
        assert all(r.phase == "x" for r in tr)

    def test_edge_scan_count(self):
        g = from_edge_list([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
        _, res = bfs_mask(g, 0)
        assert res.edges_scanned == 4


class TestBfsColorTransform:
    def test_fw_recolouring(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0), (2, 3)], 4)
        color = np.zeros(4, dtype=np.int64)
        res = bfs_color_transform(g, 0, {0: 5}, color)
        assert np.array_equal(color, [5, 5, 5, 5])
        assert set(res.recolored[5].tolist()) == {0, 1, 2, 3}

    def test_pruning_at_other_colors(self):
        g = from_edge_list([(0, 1), (1, 2)], 3)
        color = np.array([0, 7, 0], dtype=np.int64)
        res = bfs_color_transform(g, 0, {0: 5}, color)
        # node 1 has colour 7: pruned, so node 2 is never reached
        assert np.array_equal(color, [5, 7, 0])
        assert set(res.recolored[5].tolist()) == {0}

    def test_two_transition_bw_pass(self):
        # FW pass coloured {0,1,2} to cfw=5; BW pass from pivot 0 over
        # reverse edges must mark the cycle as cscc=6 and colour
        # remaining colour-0 ancestors as cbw=7.
        g = from_edge_list([(0, 1), (1, 2), (2, 0), (3, 0), (2, 4)], 5)
        color = np.zeros(5, dtype=np.int64)
        bfs_color_transform(g, 0, {0: 5}, color)
        assert color[3] == 0  # not forward-reachable
        res = bfs_color_transform(
            g, 0, {0: 7, 5: 6}, color, direction="in"
        )
        assert set(res.recolored[6].tolist()) == {0, 1, 2}
        assert set(res.recolored[7].tolist()) == {3}
        assert color[4] == 5  # fw-only, untouched by bw pass

    def test_pivot_color_must_match(self):
        g = from_edge_list([(0, 1)], 2)
        color = np.array([3, 0], dtype=np.int64)
        with pytest.raises(ValueError):
            bfs_color_transform(g, 0, {0: 5}, color)

    def test_levels_counted(self):
        color = np.zeros(4, dtype=np.int64)
        res = bfs_color_transform(chain(), 0, {0: 1}, color)
        assert res.levels == 3
