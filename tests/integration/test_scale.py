"""Larger-scale integration: correctness holds beyond toy sizes."""

import numpy as np
import pytest

from repro import strongly_connected_components
from repro.core import same_partition
from repro.generators import generate
from tests.conftest import scipy_scc_labels


@pytest.mark.parametrize("name", ["twitter", "friend"])
def test_method2_at_double_scale(name):
    b = generate(name, scale=2.0)
    g = b.graph
    assert g.num_nodes >= 100_000
    r = strongly_connected_components(g, "method2")
    oracle = (
        b.true_labels if b.true_labels is not None else scipy_scc_labels(g)
    )
    assert same_partition(r.labels, oracle)


def test_simulated_speedup_stable_across_scales():
    """The Figure 6 shapes are not a small-graph artifact: the
    32-thread speedup moves smoothly with surrogate scale."""
    from repro.bench import run_method, run_tarjan_baseline

    speedups = []
    for scale in (0.5, 1.0, 2.0):
        g = generate("twitter", scale=scale).graph
        _, t_seq = run_tarjan_baseline(g)
        r = run_method(g, "method2", thread_counts=(32,))
        speedups.append(t_seq / r.times[32])
    assert all(s > 10 for s in speedups)
    lo, hi = min(speedups), max(speedups)
    assert hi / lo < 2.0  # no wild scale dependence
