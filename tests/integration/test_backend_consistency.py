"""Cross-backend consistency: serial, threads and processes must all
produce the same SCC partition (labels may differ by renaming)."""

import numpy as np
import pytest

from repro import strongly_connected_components
from repro.core import same_partition
from repro.runtime.mp_backend import fork_available
from tests.conftest import random_digraph

BACKENDS = ["serial", "threads"] + (
    ["processes"] if fork_available() else []
)


@pytest.mark.parametrize("method", ["baseline", "method1", "method2", "fwbw"])
def test_backends_agree(method):
    g = random_digraph(250, 1000, seed=11)
    results = {
        backend: strongly_connected_components(
            g, method, backend=backend, num_threads=3
        )
        for backend in BACKENDS
    }
    ref = results["serial"]
    for backend, r in results.items():
        assert same_partition(r.labels, ref.labels), (method, backend)
        assert r.num_sccs == ref.num_sccs


def test_backends_agree_on_planted(planted_medium):
    for backend in BACKENDS:
        r = strongly_connected_components(
            planted_medium.graph, "method2", backend=backend, num_threads=3
        )
        assert same_partition(r.labels, planted_medium.labels), backend


@pytest.mark.parametrize("backend", BACKENDS)
def test_task_counts_close_across_backends(backend):
    """Different interleavings change pivots, but the amount of work
    (task count) stays in the same ballpark."""
    g = random_digraph(300, 1200, seed=4)
    serial = strongly_connected_components(g, "method2")
    other = strongly_connected_components(
        g, "method2", backend=backend, num_threads=3
    )
    a = serial.profile.counters["recur_tasks"]
    b = other.profile.counters["recur_tasks"]
    assert b <= 3 * a + 10
