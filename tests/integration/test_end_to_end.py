"""End-to-end correctness on every dataset surrogate."""

import numpy as np
import pytest

from repro import strongly_connected_components
from repro.core import same_partition
from repro.generators import dataset_names, generate
from tests.conftest import scipy_scc_labels


@pytest.fixture(scope="module", params=dataset_names())
def bundle(request):
    return generate(request.param, scale=0.15)


@pytest.fixture(scope="module")
def oracle(bundle):
    if bundle.true_labels is not None:
        return bundle.true_labels
    return scipy_scc_labels(bundle.graph)


@pytest.mark.parametrize(
    "method", ["tarjan", "kosaraju", "baseline", "method1", "method2"]
)
def test_method_correct_on_every_dataset(bundle, oracle, method):
    r = strongly_connected_components(bundle.graph, method)
    assert same_partition(r.labels, oracle)


def test_method2_threaded_on_dataset(bundle, oracle):
    r = strongly_connected_components(
        bundle.graph, "method2", backend="threads", num_threads=4
    )
    assert same_partition(r.labels, oracle)


def test_structure_summary_consistent(bundle, oracle):
    from repro.analysis import summarize_scc_structure

    r = strongly_connected_components(bundle.graph, "method2")
    summary = summarize_scc_structure(r.labels)
    assert summary.num_nodes == bundle.graph.num_nodes
    assert summary.num_sccs == r.num_sccs
    if bundle.spec.acyclic:
        assert summary.acyclic
