"""Smoke tests: every example script runs end to end.

Examples are documentation that executes; letting them rot is worse
than the ~15 s these take.  Each is run in-process via runpy with its
stdout captured and spot-checked.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "SCCs found:" in out
    assert "verified against Tarjan" in out
    assert "32 threads" in out


def test_web_graph_bowtie(capsys):
    out = run_example("web_graph_bowtie.py", capsys)
    assert "bow-tie decomposition" in out
    assert "small-world" in out


def test_social_scaling_study(capsys):
    out = run_example("social_scaling_study.py", capsys)
    assert "paper machine" in out
    assert "4-socket" in out


def test_road_network_limits(capsys):
    out = run_example("road_network_limits.py", capsys)
    assert "recommended: method2" in out
    assert "recommended: tarjan" in out


@pytest.mark.slow
def test_distributed_cluster(capsys):
    out = run_example("distributed_cluster.py", capsys)
    assert "distributed Method 1" in out
    assert "partitioner" in out
