"""Calibration shape tests: the paper's qualitative results must hold.

These are the guardrails for the simulated-machine substitution
(DESIGN.md §2): if a refactor or constant change breaks the Figure 6 /
Figure 7 / Section 3.3 shapes, these tests fail.  They intentionally
assert *orderings and ranges*, never exact times.
"""

import numpy as np
import pytest

from repro.bench import speedup_series, run_method, run_tarjan_baseline
from repro.generators import generate
from repro.runtime import Machine

SCALE = 0.4


@pytest.fixture(scope="module")
def machine():
    return Machine()


def series_for(name, machine, **kwargs):
    g = generate(name, scale=SCALE).graph
    series, runs = speedup_series(g, machine=machine, **kwargs)
    return {s.method: dict(zip(s.threads, s.speedups)) for s in series}, runs


@pytest.fixture(scope="module")
def livej(machine):
    return series_for("livej", machine)


@pytest.fixture(scope="module")
def flickr(machine):
    return series_for("flickr", machine)


@pytest.fixture(scope="module")
def twitter(machine):
    return series_for("twitter", machine)


@pytest.fixture(scope="module")
def caroad(machine):
    # ca-road's grid sits near its directed-percolation threshold and
    # is calibrated at base size (see generators.road); use scale 1.0.
    g = generate("ca-road", scale=1.0).graph
    series, runs = speedup_series(g, machine=machine)
    return {s.method: dict(zip(s.threads, s.speedups)) for s in series}, runs


@pytest.fixture(scope="module")
def patents(machine):
    return series_for("patents", machine)


class TestFigure6Shapes:
    def test_baseline_does_not_scale(self, livej, twitter):
        """Figure 6/7: the Baseline's recursive phase serializes on the
        giant SCC, so more threads barely help."""
        for sp, _ in (livej, twitter):
            assert sp["baseline"][32] < 2 * sp["baseline"][1]
            assert sp["baseline"][32] < 1.5

    def test_methods_scale_on_small_world(self, livej, twitter):
        for sp, _ in (livej, twitter):
            assert sp["method1"][32] > 3 * sp["method1"][1] / 2
            assert sp["method2"][32] > 4.0
            assert sp["method2"][32] > sp["baseline"][32]

    def test_twitter_is_a_top_performer(self, twitter):
        """Paper: Twitter shows the best speedup (29.41x); ours must at
        least land in the high-teens-plus band."""
        assert twitter[0]["method2"][32] > 15.0

    def test_method2_beats_method1_on_flickr(self, flickr):
        """Section 5: Flickr is a Method-2 showcase (WCC + Trim2)."""
        assert flickr[0]["method2"][32] > flickr[0]["method1"][32]

    def test_monotone_then_knees(self, twitter):
        """Speedups grow with threads; marginal gains shrink at the
        socket (8->16) and SMT (16->32) boundaries."""
        sp = twitter[0]["method2"]
        assert sp[1] < sp[2] < sp[4] < sp[8] < sp[16] <= sp[32] * 1.02
        gain_core = sp[8] / sp[4]
        gain_numa = sp[16] / sp[8]
        gain_smt = sp[32] / sp[16]
        assert gain_core > gain_numa > gain_smt

    def test_caroad_methods_lose_most_of_their_advantage(self, caroad):
        """Figure 6(i): the non-small-world counterexample.

        With this library's pointer-jumping WCC (O(log d) rounds) the
        Method 2 penalty is milder than published, so the default
        assertion is "far below the small-world speedups" rather than
        strictly < 1 — the strict paper shape is asserted below with
        the paper-faithful WCC (no compression).
        """
        sp = caroad[0]
        assert sp["baseline"][32] < 0.6
        assert sp["method1"][32] < 1.0
        assert sp["method2"][32] < 1.2
        assert sp["method2"][1] < 0.8  # penalized at 1 thread

    def test_caroad_paper_faithful_wcc_loses_to_tarjan(self, machine):
        """With Algorithm 7's convergence on high-diameter graphs (no
        pointer jumping: many more hook rounds), Method 2 falls below
        Tarjan at the full thread count — the published Figure 6(i)
        endpoint and the Section 5 explanation ('requires a large
        number of iterations for convergence')."""
        g = generate("ca-road", scale=1.0).graph
        series, runs = speedup_series(
            g, methods=("method2",), machine=machine, wcc_compress=False
        )
        sp = dict(zip(series[0].threads, series[0].speedups))
        assert sp[32] < 1.0
        iters = runs["method2"].result.profile.counters["wcc_iterations"]
        # far more rounds than the small-world graphs' handful
        assert iters > 20

    def test_patents_resolved_by_trim(self, patents):
        """Figure 8/9: a DAG is fully handled by the Trim phase and all
        methods scale about equally."""
        sp, runs = patents
        assert sp["method2"][32] > 8.0
        fr = runs["method2"].result.phase_fractions()
        assert fr["trim"] > 0.999


class TestFigure7Shapes:
    def test_parfwbw_phase_scales_down(self, livej):
        """Figure 7: Method 1's Par-FWBW segment shrinks with threads."""
        _, runs = livej
        run = runs["method1"]
        assert (
            run.phase_times[32]["par_fwbw"]
            < run.phase_times[1]["par_fwbw"] / 4
        )

    def test_baseline_recur_does_not_shrink(self, livej):
        _, runs = livej
        run = runs["baseline"]
        assert (
            run.phase_times[32]["recur_fwbw"]
            > 0.7 * run.phase_times[1]["recur_fwbw"]
        )

    def test_method2_recur_shrinks_on_flickr(self, flickr):
        """Section 5: 'the execution time of the recursive FW-BW phase
        now scales down in Method 2'."""
        _, runs = flickr
        m1 = runs["method1"]
        m2 = runs["method2"]
        m1_ratio = m1.phase_times[32]["recur_fwbw"] / m1.phase_times[1]["recur_fwbw"]
        m2_ratio = m2.phase_times[32]["recur_fwbw"] / m2.phase_times[1]["recur_fwbw"]
        assert m2_ratio < m1_ratio


class TestSection33QueueStarvation:
    def test_method1_queue_starves_method2_floods(self, machine):
        g = generate("flickr", scale=SCALE).graph
        m1 = run_method(g, "method1", machine=machine)
        m2 = run_method(g, "method2", machine=machine)
        sim1 = machine.simulate(m1.result.profile.trace, 1)
        sim2 = machine.simulate(m2.result.profile.trace, 1)
        q1 = sim1.queue_stats["recur_fwbw"]
        q2 = sim2.queue_stats["recur_fwbw"]
        # Method 1 seeds a handful of items; Method 2 one per WCC.
        assert q1.initial_items < 10
        assert q2.initial_items > 10 * q1.initial_items

    def test_task_log_shows_no_partitioning(self, machine):
        """The Section 3.3 listing: early Method-1 recur tasks find tiny
        SCCs and produce (near-)empty FW/BW partitions."""
        g = generate("flickr", scale=SCALE).graph
        m1 = run_method(g, "method1", machine=machine)
        log = m1.result.profile.task_log
        head = log[:5]
        assert len(head) == 5
        giant = g.num_nodes * 0.01
        for e in head:
            assert e.scc < giant
            assert e.fw + e.bw < e.remain
