"""Chaos suite: end-to-end recovery under injected faults.

Every scenario injects a fault (worker crash, task hang, in-task
exception, poisoned shared-memory write, or a simulated BSP rank
failure) into a full pipeline run and requires that the run
*completes* — via retry or degradation to the serial driver — leaks no
shared-memory segments, and produces SCC labels that both pass
:meth:`SCCState.check_invariants` and match the Tarjan baseline
exactly.

Excluded from the default (tier-1) selection; run with::

    PYTHONPATH=src python -m pytest -m chaos
"""

import glob

import numpy as np
import pytest

from repro import strongly_connected_components
from repro.core import SCCState, same_partition, tarjan_scc
from repro.core.recurfwbw import run_recur_phase
from repro.distributed import (
    CheckpointPolicy,
    Cluster,
    RankFailure,
    bfs_partition,
    distributed_method1,
    sweep_checkpoint_interval,
)
from repro.runtime import FaultPlan, FaultSpec, SupervisorConfig
from repro.runtime.mp_backend import fork_available
from tests.conftest import random_digraph

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(not fork_available(), reason="requires POSIX fork"),
]


def _shm_inventory() -> set:
    return set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/wnsm_*"))


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Every chaos scenario must unlink all its shared memory."""
    before = _shm_inventory()
    yield
    assert _shm_inventory() <= before, "leaked shared-memory segments"


def _supervised(plan, **kwargs):
    return SupervisorConfig(
        task_timeout=kwargs.pop("task_timeout", 2.0),
        grace=0.1,
        backoff_base=0.01,
        fault_plan=plan,
        **kwargs,
    )


class TestPhaseRecovery:
    """Direct phase-2 runs, one fault class per scenario."""

    def _check(self, plan, seed=7, **cfg):
        g = random_digraph(250, 1000, seed=seed)
        s = SCCState(g, seed=seed)
        run_recur_phase(
            s,
            [(0, np.arange(250))],
            backend="supervised",
            num_threads=2,
            supervisor=_supervised(plan, **cfg),
        )
        s.check_done()
        s.check_invariants(cross_check=True)
        assert same_partition(s.labels, tarjan_scc(g))
        return s

    @pytest.mark.parametrize("stage", ["pre", "mid", "post"])
    def test_worker_crash_every_stage(self, stage):
        s = self._check(
            FaultPlan([FaultSpec(kind="crash", index=1, stage=stage)])
        )
        assert s.profile.counters["supervisor_retries"] >= 1
        assert s.profile.counters["supervisor_pool_rebuilds"] >= 1

    def test_task_hang(self):
        plan = FaultPlan(
            [FaultSpec(kind="hang", index=2, stage="mid", hang_seconds=60)]
        )
        s = self._check(plan, task_timeout=0.5)
        assert s.profile.counters["supervisor_timeouts"] >= 1

    def test_in_task_exception(self):
        s = self._check(
            FaultPlan([FaultSpec(kind="raise", index=0, stage="mid")])
        )
        assert s.profile.counters["supervisor_task_errors"] == 1

    def test_poisoned_write(self):
        s = self._check(FaultPlan.single("poison", index=3))
        assert s.profile.counters["supervisor_degraded"] == 1

    def test_double_fault(self):
        plan = FaultPlan(
            [
                FaultSpec(kind="crash", index=1, stage="mid"),
                FaultSpec(kind="raise", index=4, stage="pre"),
            ]
        )
        self._check(plan)

    def test_retry_exhaustion_degrades(self):
        plan = FaultPlan([FaultSpec(kind="raise", index=0, times=99)])
        s = self._check(plan, max_task_retries=1)
        assert s.profile.counters["supervisor_degraded"] == 1

    def test_seeded_random_storm(self):
        # a seeded storm of mixed faults: deterministic, must converge
        plan = FaultPlan.random(
            2026, n_faults=4, max_index=10, kinds=("crash", "raise")
        )
        self._check(plan)


class TestPipelineRecovery:
    """Full method pipelines under the supervised backend."""

    @pytest.mark.parametrize("method", ["baseline", "method1", "method2"])
    def test_methods_survive_crash(self, method):
        g = random_digraph(300, 1300, seed=11)
        oracle = tarjan_scc(g)
        plan = FaultPlan([FaultSpec(kind="crash", index=0, stage="mid")])
        r = strongly_connected_components(
            g,
            method,
            backend="supervised",
            num_threads=2,
            supervisor=_supervised(plan),
        )
        assert same_partition(r.labels, oracle), method

    def test_method2_poison_recovers(self, planted_medium):
        # the planted graph leaves mid-size SCCs for phase 2, so the
        # poisoned task actually commits (a random digraph is often
        # fully resolved by phase 1, leaving nothing to poison)
        g = planted_medium.graph
        r = strongly_connected_components(
            g,
            "method2",
            backend="supervised",
            num_threads=2,
            supervisor=_supervised(FaultPlan.single("poison", index=0)),
        )
        assert same_partition(r.labels, tarjan_scc(g))
        assert len(r.profile.task_log) > 0  # phase 2 really ran
        assert r.profile.counters["supervisor_degraded"] == 1

    def test_planted_structure_hang(self, planted_medium):
        bundle = planted_medium
        g = bundle.graph
        plan = FaultPlan(
            [FaultSpec(kind="hang", index=1, hang_seconds=60)]
        )
        r = strongly_connected_components(
            g,
            "method2",
            backend="supervised",
            num_threads=2,
            supervisor=_supervised(plan, task_timeout=1.0),
        )
        assert same_partition(r.labels, tarjan_scc(g))


class TestRankFailureRecovery:
    """Simulated BSP rank loss with checkpointed replay."""

    def _trace(self):
        g = random_digraph(400, 1600, seed=3)
        part = bfs_partition(g, 4)
        return distributed_method1(g, part).dtrace

    def test_failure_recovery_completes_and_costs(self):
        trace = self._trace()
        cluster = Cluster()
        clean = cluster.simulate(trace)
        faulty = cluster.simulate_with_failures(
            trace,
            [RankFailure(superstep=min(5, len(trace.steps) - 1))],
            CheckpointPolicy(every=4),
        )
        assert faulty.failures == 1
        assert faulty.total_time > clean.total_time
        assert faulty.overhead >= 1.0
        assert faulty.recompute_time > 0

    def test_no_checkpoint_means_full_rerun(self):
        trace = self._trace()
        cluster = Cluster()
        s = len(trace.steps) - 1
        faulty = cluster.simulate_with_failures(
            trace, [RankFailure(superstep=s)], CheckpointPolicy(every=0)
        )
        # failing on the last superstep without checkpoints recomputes
        # the entire prefix: recovery == rerun
        base = cluster.simulate(trace).total_time
        assert faulty.recompute_time == pytest.approx(base)

    def test_checkpoint_interval_tradeoff(self):
        trace = self._trace()
        cluster = Cluster()
        mid = len(trace.steps) // 2
        sweep = sweep_checkpoint_interval(
            cluster,
            trace,
            [RankFailure(superstep=mid)],
            intervals=[0, 1, 4, 16],
        )
        # dense checkpointing minimises recompute but pays per-barrier
        # cost; no checkpointing pays the full prefix on failure
        assert sweep[1].recompute_time <= sweep[4].recompute_time
        assert sweep[4].recompute_time <= sweep[0].recompute_time
        assert sweep[1].checkpoint_time > sweep[16].checkpoint_time
        # the tuned operating point beats at least one extreme
        best = min(r.total_time for r in sweep.values())
        assert best < max(sweep[0].total_time, sweep[1].total_time)

    def test_failure_free_replay_matches_baseline(self):
        trace = self._trace()
        cluster = Cluster()
        faulty = cluster.simulate_with_failures(trace, [], CheckpointPolicy())
        assert faulty.total_time == pytest.approx(
            cluster.simulate(trace).total_time
        )
        assert faulty.overhead == pytest.approx(1.0)
