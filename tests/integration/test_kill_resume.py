"""Kill-then-resume integration: SIGKILL survival, bit-identical labels.

A child process runs a checkpointed Method 2 pipeline and SIGKILLs
*itself* at a deterministic point — a phase boundary before the
checkpoint is written, one after, or in the middle of the phase-2
task loop.  The parent then resumes from the surviving checkpoints and
requires labels bit-identical to an uninterrupted reference run, on
both kernel backends (``numpy`` and the ``numba`` registry entry,
which falls back to the tuned-NumPy fastpath when numba is absent).

Excluded from tier-1; run with ``pytest -m chaos``.
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

pytestmark = pytest.mark.chaos

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
)

CHILD = textwrap.dedent(
    """
    import os, signal, sys
    import numpy as np
    from repro.runtime.lifecycle import RunHarness
    from repro.graph import load_npz

    mode, ckpt_dir, out = sys.argv[1], sys.argv[2], sys.argv[3]
    g = load_npz(os.path.join(ckpt_dir, "graph.npz"))

    def die():
        os.kill(os.getpid(), signal.SIGKILL)

    if mode == "ref":
        res = RunHarness("method2", seed=9).run(g)
        np.save(out, res.labels)
    elif mode == "resume":
        h = RunHarness.from_checkpoint(ckpt_dir)
        res = h.resume(ckpt_dir)
        np.save(out, res.labels)
        sys.stderr.write(f"resumed at {h.report.resumed_phase}\\n")
    elif mode.startswith("kill-boundary:"):
        _, name, stage = mode.split(":")
        def hook(phase, st):
            if phase == name and st == stage:
                die()
        RunHarness(
            "method2", seed=9, checkpoint_dir=ckpt_dir, phase_hook=hook
        ).run(g)
        raise SystemExit("hook never fired")
    elif mode == "kill-mid-phase2":
        import repro.core.recurfwbw as rf
        real = rf.recur_fwbw_task
        count = [0]
        def lethal(state, item, **kw):
            count[0] += 1
            if count[0] == 5:   # mid-drain, after real SCC commits
                die()
            return real(state, item, **kw)
        rf.recur_fwbw_task = lethal
        RunHarness(
            "method2", seed=9, checkpoint_dir=ckpt_dir
        ).run(g)
        raise SystemExit("phase 2 drained before task 5")
    else:
        raise SystemExit(f"bad mode {mode}")
    """
)


def run_child(script_dir, mode, ckpt_dir, out, kernels):
    env = dict(os.environ, REPRO_KERNELS=kernels)
    env["PYTHONPATH"] = REPO_SRC
    return subprocess.run(
        [sys.executable, os.path.join(script_dir, "child.py"),
         mode, str(ckpt_dir), str(out)],
        env=env,
        capture_output=True,
        text=True,
        timeout=90,
    )


def ring_of_rings(k=20, sz=25, seed=3):
    """k size-sz cyclic SCCs chained by forward-only cross edges —
    trims and the giant-SCC step cannot resolve them, so the phase-2
    recur queue gets real work (the kill-mid-phase2 target)."""
    from repro.graph import from_edge_array

    rng = np.random.default_rng(seed)
    src, dst = [], []
    for r in range(k):
        base = r * sz
        for i in range(sz):
            src.append(base + i)
            dst.append(base + (i + 1) % sz)
        a = rng.integers(0, sz, 2 * sz)
        b = rng.integers(0, sz, 2 * sz)
        src += (base + a).tolist()
        dst += (base + b).tolist()
    for r in range(k - 1):
        for _ in range(3):
            src.append(r * sz + int(rng.integers(sz)))
            dst.append((r + 1) * sz + int(rng.integers(sz)))
    return from_edge_array(np.array(src), np.array(dst), k * sz)


@pytest.fixture
def arena(tmp_path):
    from repro.graph import save_npz

    (tmp_path / "child.py").write_text(CHILD)
    ckpt = tmp_path / "ckpts"
    ckpt.mkdir()
    save_npz(ring_of_rings(), ckpt / "graph.npz")
    return tmp_path


@pytest.mark.parametrize("kernels", ["numpy", "numba"])
@pytest.mark.parametrize(
    "kill_mode",
    [
        "kill-boundary:par_fwbw:mid",    # phase done, checkpoint not yet
        "kill-boundary:par_wcc:post",    # checkpoint just published
        "kill-mid-phase2",               # mid task-queue drain
    ],
)
def test_sigkill_then_resume_bit_identical(arena, kernels, kill_mode):
    ckpt = arena / "ckpts"
    ref = run_child(arena, "ref", ckpt, arena / "ref.npy", kernels)
    assert ref.returncode == 0, ref.stderr

    killed = run_child(arena, kill_mode, ckpt, arena / "x.npy", kernels)
    assert killed.returncode == -9, (
        f"child should die by SIGKILL, got rc={killed.returncode}: "
        f"{killed.stderr}"
    )
    survivors = [
        f for f in os.listdir(ckpt) if f.endswith(".ckpt.npz")
    ]
    assert survivors, "no checkpoint survived the kill"

    resumed = run_child(
        arena, "resume", ckpt, arena / "resumed.npy", kernels
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "resumed at" in resumed.stderr

    ref_labels = np.load(arena / "ref.npy")
    res_labels = np.load(arena / "resumed.npy")
    assert np.array_equal(res_labels, ref_labels), (
        f"labels diverged after {kill_mode} on kernels={kernels}"
    )


def test_torn_checkpoint_plus_resume(arena):
    """Kill mid-phase-2, corrupt the newest surviving checkpoint, and
    still recover bit-identically from the one before it."""
    ckpt = arena / "ckpts"
    ref = run_child(arena, "ref", ckpt, arena / "ref.npy", "numpy")
    assert ref.returncode == 0, ref.stderr
    killed = run_child(arena, "kill-mid-phase2", ckpt, arena / "x", "numpy")
    assert killed.returncode == -9
    names = sorted(
        f for f in os.listdir(ckpt) if f.endswith(".ckpt.npz")
    )
    path = ckpt / names[-1]
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))

    resumed = run_child(arena, "resume", ckpt, arena / "r.npy", "numpy")
    assert resumed.returncode == 0, resumed.stderr
    assert np.array_equal(
        np.load(arena / "r.npy"), np.load(arena / "ref.npy")
    )


@pytest.mark.slow
def test_streaming_reader_rss_is_bounded(tmp_path):
    """~10M-edge list parses with peak RSS far below what a
    read-everything-then-parse loader needs (the acceptance bound)."""
    rng = np.random.default_rng(0)
    block = rng.integers(0, 1_000_000, size=(1_000_000, 2))
    block_text = (
        "\n".join(f"{s} {d}" for s, d in block) + "\n"
    ).encode()
    big = tmp_path / "big.txt"
    with open(big, "wb") as f:
        for _ in range(10):
            f.write(block_text)

    script = textwrap.dedent(
        """
        import resource, sys
        from repro.graph import read_edge_list
        g = read_edge_list(sys.argv[1], dedup=False)
        peak_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
        print(f"{g.num_edges} {peak_mb:.0f}")
        """
    )
    (tmp_path / "reader.py").write_text(script)
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.run(
        [sys.executable, str(tmp_path / "reader.py"), str(big)],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    edges, peak_mb = proc.stdout.split()
    assert int(edges) == 10_000_000
    # 10M int64 edge pairs are ~160 MB; CSR build transients push the
    # floor up, but a loader that materialised all lines as Python
    # strings would need several GB.  1.5 GB is the regression fence.
    assert float(peak_mb) < 1500, f"peak RSS {peak_mb} MB"
