"""Determinism guards: identical inputs and seeds give identical
numbers, end to end — the property every bench and figure relies on."""

import numpy as np

from repro.bench import speedup_series
from repro.core import strongly_connected_components
from repro.distributed import Cluster, bfs_partition, distributed_method1
from repro.generators import generate
from repro.runtime import Machine


def test_fig6_pipeline_deterministic():
    g = generate("flickr", scale=0.2).graph
    runs = []
    for _ in range(2):
        series, _ = speedup_series(g, machine=Machine())
        runs.append(
            {s.method: tuple(s.speedups) for s in series}
        )
    assert runs[0] == runs[1]


def test_labels_deterministic_across_runs():
    g = generate("livej", scale=0.2).graph
    a = strongly_connected_components(g, "method2", seed=3)
    b = strongly_connected_components(g, "method2", seed=3)
    assert np.array_equal(a.labels, b.labels)
    assert a.profile.trace.total_work() == b.profile.trace.total_work()


def test_distributed_pipeline_deterministic():
    g = generate("baidu", scale=0.2).graph
    times = []
    for _ in range(2):
        res = distributed_method1(g, bfs_partition(g, 4))
        times.append(Cluster().simulate(res.dtrace).total_time)
    assert times[0] == times[1]


def test_dataset_generation_deterministic_across_processes():
    """Seeds are baked into the registry: no global-state leakage."""
    import subprocess
    import sys

    code = (
        "from repro.generators import generate;"
        "g = generate('twitter', scale=0.1).graph;"
        "print(g.num_edges, int(g.indices.sum()))"
    )
    outs = {
        subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        for _ in range(2)
    }
    assert len(outs) == 1
