"""Property gate for the integrity tier's detection guarantee.

Any single-bit flip driven into warm session structure (``indptr``,
``indices``) or run-local labels between phase boundaries must raise
:class:`~repro.errors.IntegrityError` before a result escapes — for
every corruptible stage, on both the reference-NumPy and the numba
kernel tiers.  The flip lands through the arrays' ultimate base (the
shape real rot takes: bytes change under every guard except the
checksum), with hypothesis choosing the graph, the target array, the
phase boundary and which bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.result import same_partition
from repro.engine.engine import Engine
from repro.errors import IntegrityError
from repro.kernels import use_backend
from repro.runtime.faults import FaultPlan, FaultSpec
from tests.conftest import random_digraph, scipy_scc_labels

KERNEL_BACKENDS = ("numpy", "numba")


@st.composite
def flip_cases(draw):
    """(graph, spec): a digraph with >=1 edge plus one seeded flip."""
    n = draw(st.integers(2, 64))
    m = draw(st.integers(2, 4 * n))
    seed = draw(st.integers(0, 2**20))
    g = random_digraph(n, m, seed=seed)
    if g.num_edges == 0:  # dedup/self-loop drop can empty tiny draws
        g = random_digraph(n, 4 * n, seed=seed + 1)
    spec = FaultSpec(
        kind="corrupt",
        site="phase",
        index=draw(st.integers(0, 1)),
        stage=draw(st.sampled_from(("pre", "mid", "post"))),
        array=draw(st.sampled_from(("indptr", "indices", "labels"))),
        bit_flips=1,
        flip_seed=draw(st.integers(0, 2**20)),
    )
    return g, spec


@pytest.mark.parametrize("kernel", KERNEL_BACKENDS)
@settings(max_examples=25, deadline=None)
@given(case=flip_cases())
def test_single_bit_flip_detected_before_response(kernel, case):
    g, spec = case
    with Engine(backend="serial", canonical=True, integrity=True) as eng:
        with use_backend(kernel):
            with pytest.raises(IntegrityError):
                eng.run(
                    g,
                    method="method2",
                    seed=0,
                    fault_plan=FaultPlan([spec]),
                )


@pytest.mark.parametrize("kernel", KERNEL_BACKENDS)
@settings(max_examples=25, deadline=None)
@given(case=flip_cases())
def test_no_false_positives_on_clean_runs(kernel, case):
    """The same graphs, unflipped, must certify cleanly: integrity
    verification never rejects an honest run."""
    g, _ = case
    with Engine(backend="serial", canonical=True, integrity=True) as eng:
        with use_backend(kernel):
            result = eng.run(g, method="method2", seed=0)
    assert same_partition(result.labels, scipy_scc_labels(g))
