"""Dynamic-SCC stream property: over every paper-shaped generator, a
random insert/delete stream maintained by :class:`DynamicSCC` must be
bit-identical (after canonicalization) to a from-scratch Method-2
recompute of the merged snapshot at every checkpoint — under both
kernel backends."""

from functools import lru_cache

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.api import strongly_connected_components
from repro.core.result import canonical_labels
from repro.engine.dynamic import DynamicSCC
from repro.generators import DATASETS, generate
from repro.graph.delta import DeltaCSR
from repro.kernels import use_backend

GENERATORS = sorted(DATASETS)  # the nine paper-shaped surrogates
BACKENDS = ("numpy", "numba")

#: small but structurally faithful instances (hundreds of nodes).
SCALE = 0.02


@lru_cache(maxsize=None)
def base_graph(name):
    return generate(name, scale=SCALE, seed=1234).graph


def method2_canonical(g):
    return canonical_labels(
        strongly_connected_components(g, "method2").labels
    )


@st.composite
def streams(draw, max_ops=24):
    k = draw(st.integers(min_value=1, max_value=max_ops))
    return draw(
        st.lists(
            st.tuples(
                st.booleans(),  # True = insert
                st.integers(0, 2**31 - 1),
                st.integers(0, 2**31 - 1),
            ),
            min_size=k,
            max_size=k,
        )
    )


@settings(max_examples=12, deadline=None)
@given(
    name=st.sampled_from(GENERATORS),
    backend=st.sampled_from(BACKENDS),
    stream=streams(),
)
def test_stream_matches_method2_at_every_checkpoint(
    name, backend, stream
):
    g = base_graph(name)
    n = g.num_nodes
    delta = DeltaCSR(g, compact_ratio=10.0)  # keep the log live
    with use_backend(backend):
        dyn = DynamicSCC(delta)
        for i, (ins, u, v) in enumerate(stream):
            u, v = u % n, v % n
            if ins:
                dyn.insert(u, v)
            else:
                dyn.delete(u, v)
            if i % 8 == 7:
                assert np.array_equal(
                    canonical_labels(np.asarray(dyn.labels)),
                    method2_canonical(delta.snapshot()),
                )
        assert np.array_equal(
            canonical_labels(np.asarray(dyn.labels)),
            method2_canonical(delta.snapshot()),
        )


@settings(max_examples=6, deadline=None)
@given(name=st.sampled_from(GENERATORS), stream=streams(max_ops=16))
def test_stream_survives_compaction(name, stream):
    """Compacting mid-stream must not disturb the maintained labels."""
    g = base_graph(name)
    n = g.num_nodes
    delta = DeltaCSR(g, compact_ratio=10.0)
    dyn = DynamicSCC(delta)
    for i, (ins, u, v) in enumerate(stream):
        u, v = u % n, v % n
        if ins:
            dyn.insert(u, v)
        else:
            dyn.delete(u, v)
        if i == len(stream) // 2:
            delta.compact()
    assert np.array_equal(
        canonical_labels(np.asarray(dyn.labels)),
        method2_canonical(delta.snapshot()),
    )


@settings(max_examples=6, deadline=None)
@given(
    name=st.sampled_from(GENERATORS),
    backend=st.sampled_from(BACKENDS),
    stream=streams(max_ops=16),
)
def test_backends_agree_on_maintained_labels(name, backend, stream):
    """The maintained array itself (not just the partition) is backend-
    independent: min-member representatives are deterministic."""
    g = base_graph(name)
    n = g.num_nodes
    results = []
    for b in ("numpy", backend):
        delta = DeltaCSR(g, compact_ratio=10.0)
        with use_backend(b):
            dyn = DynamicSCC(delta)
            for ins, u, v in stream:
                u, v = u % n, v % n
                (dyn.insert if ins else dyn.delete)(u, v)
        results.append(np.asarray(dyn.labels).copy())
    assert np.array_equal(results[0], results[1])
