"""Backend parity gates: the pipelines must not notice the backend.

The kernel layer's contract is stronger than "same SCCs": the backends
must produce *bit-identical* label arrays and *identical* recorded
traces (every work quantity, every task cost), because the simulated
scheduler figures are derived from the trace and may never depend on
which backend executed the kernels.  These tests pin that contract on
randomized graphs and on the full Method 1 / Method 2 pipelines.
"""

import numpy as np
from hypothesis import given, settings

from repro.core import SCCState, par_trim, par_trim2, par_wcc
from repro.core.api import strongly_connected_components
from repro.core.result import same_partition
from repro.kernels import use_backend
from tests.conftest import scipy_scc_labels
from tests.property.test_scc_properties import digraphs

BACKENDS = ("numpy", "numba")


def _run_method(g, method, backend):
    with use_backend(backend):
        return strongly_connected_components(g, method, seed=3)


@settings(max_examples=30, deadline=None)
@given(g=digraphs())
def test_method1_bit_identical_across_backends(g):
    base = _run_method(g, "method1", "numpy")
    assert same_partition(base.labels, scipy_scc_labels(g))
    other = _run_method(g, "method1", "numba")
    assert np.array_equal(base.labels, other.labels)
    assert base.profile.trace.records == other.profile.trace.records


@settings(max_examples=30, deadline=None)
@given(g=digraphs())
def test_method2_bit_identical_across_backends(g):
    base = _run_method(g, "method2", "numpy")
    assert same_partition(base.labels, scipy_scc_labels(g))
    other = _run_method(g, "method2", "numba")
    assert np.array_equal(base.labels, other.labels)
    assert base.profile.trace.records == other.profile.trace.records


@settings(max_examples=30, deadline=None)
@given(g=digraphs())
def test_phase1_kernels_state_parity(g):
    """Trim, Trim2 and WCC leave identical state under every backend."""
    outcomes = []
    for backend in BACKENDS:
        s = SCCState(g)
        with use_backend(backend):
            par_trim(s)
            par_trim2(s)
            items = par_wcc(s)
        outcomes.append((s, items))
    ref_state, ref_items = outcomes[0]
    for state, items in outcomes[1:]:
        assert np.array_equal(state.color, ref_state.color)
        assert np.array_equal(state.mark, ref_state.mark)
        assert np.array_equal(state.labels, ref_state.labels)
        assert state.trace.records == ref_state.trace.records
        assert len(items) == len(ref_items)
        for (c_a, n_a), (c_b, n_b) in zip(items, ref_items):
            assert c_a == c_b
            assert np.array_equal(n_a, n_b)
