"""Property gate for the bit-parallel phase-2 batch path.

On arbitrary randomly-coloured R-MAT / DAG / cycle graphs, draining
the phase-2 queue with 64-pivot batched peeling must be bit-identical
to the sequential per-pivot drain: same label array, and the same
total scanned-edge count.  Edge totals are read off the task trace
through a cost model that prices exactly one unit per DFS edge and
zero for everything else, so ``TaskDAGRecord.total_work`` *is* the
number of adjacency entries the phase charged — the attribution the
simulator depends on (DESIGN.md §13).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import SCCState
from repro.core.recurfwbw import run_recur_phase
from repro.core.result import same_partition
from repro.generators import rmat_graph
from repro.graph import from_edge_array
from repro.kernels import use_backend
from repro.runtime.cost import CostModel
from repro.runtime.trace import TaskDAGRecord
from tests.conftest import scipy_scc_labels

#: one work unit per scanned DFS edge, nothing else — task costs in
#: the trace become raw scanned-edge counts.
EDGE_COUNTING_COST = CostModel(
    stream_edge=0.0, stream_node=0.0, dfs_edge=1.0, dfs_node=0.0
)

KERNEL_BACKENDS = ("numpy", "numba")


@st.composite
def storm_graphs(draw):
    """(graph, colours): an R-MAT, DAG or cycle digraph, randomly
    partitioned into colour groups as phase 2 would receive it."""
    kind = draw(st.sampled_from(["rmat", "dag", "cycle"]))
    seed = draw(st.integers(0, 2**20))
    rng = np.random.default_rng(seed)
    if kind == "rmat":
        g = rmat_graph(draw(st.integers(4, 7)), 4.0, rng=rng)
    elif kind == "dag":
        n = draw(st.integers(2, 64))
        m = draw(st.integers(1, 4 * n))
        a = rng.integers(0, n, size=m)
        b = rng.integers(0, n, size=m)
        lo, hi = np.minimum(a, b), np.maximum(a, b)
        keep = lo != hi  # edges point up the node order: acyclic
        g = from_edge_array(lo[keep], hi[keep], n)
    else:
        n = draw(st.integers(3, 64))
        ring = np.arange(n, dtype=np.int64)
        chords = draw(st.integers(0, n))
        src = np.concatenate([ring, rng.integers(0, n, size=chords)])
        dst = np.concatenate(
            [np.roll(ring, -1), rng.integers(0, n, size=chords)]
        )
        g = from_edge_array(src, dst, n)
    n_colors = draw(st.integers(1, 8))
    return g, n_colors, seed


def _seed_queue(g, n_colors, seed):
    """Paint a random colouring and seed the queue with its groups."""
    s = SCCState(g, seed=17, cost=EDGE_COUNTING_COST)
    rng = np.random.default_rng(seed + 1)
    colors = s.new_colors(n_colors)
    paint = colors[rng.integers(0, n_colors, size=g.num_nodes)]
    s.color[:] = paint
    items = [
        (int(c), np.flatnonzero(paint == c))
        for c in colors.tolist()
    ]
    return s, [(c, nd) for c, nd in items if nd.size]


def _scanned_edges(state):
    return sum(
        rec.total_work
        for rec in state.trace.records
        if isinstance(rec, TaskDAGRecord)
    )


def _drain(g, n_colors, seed, *, kernel, executor="serial", batch):
    s, items = _seed_queue(g, n_colors, seed)
    with use_backend(kernel):
        run_recur_phase(
            s, items, backend=executor, num_threads=1,
            phase2_batch=batch,
        )
    return s


@settings(max_examples=40, deadline=None)
@given(gc=storm_graphs())
def test_batched_bit_identical_serial_all_backends(gc):
    g, n_colors, seed = gc
    base = _drain(g, n_colors, seed, kernel="numpy", batch=False)
    for kernel in KERNEL_BACKENDS:
        batched = _drain(g, n_colors, seed, kernel=kernel, batch=True)
        assert np.array_equal(base.labels, batched.labels), kernel
        assert _scanned_edges(batched) == _scanned_edges(base), kernel
        assert base.trace.records == batched.trace.records, kernel


@settings(max_examples=40, deadline=None)
@given(gc=storm_graphs())
def test_single_color_queue_matches_oracle(gc):
    # degenerate storm: the whole graph as one partition — the
    # batched drain must still peel every SCC correctly.
    g, _, seed = gc
    s = SCCState(g, seed=17)
    items = [(0, np.arange(g.num_nodes, dtype=np.int64))]
    run_recur_phase(s, items, phase2_batch=True)
    assert same_partition(s.labels, scipy_scc_labels(g))


@settings(max_examples=6, deadline=None)
@given(gc=storm_graphs())
def test_batched_bit_identical_process_pools(gc):
    g, n_colors, seed = gc
    for executor in ("processes", "supervised"):
        base = _drain(
            g, n_colors, seed,
            kernel="numba", executor=executor, batch=False,
        )
        batched = _drain(
            g, n_colors, seed,
            kernel="numba", executor=executor, batch=True,
        )
        assert np.array_equal(base.labels, batched.labels), executor
        assert _scanned_edges(batched) == _scanned_edges(base), (
            executor
        )
