"""Property-based tests: every algorithm agrees with the oracle on
arbitrary digraphs, and SCC partitions satisfy their defining laws."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import strongly_connected_components
from repro.core import same_partition, tarjan_scc
from repro.graph import from_edge_array
from tests.conftest import scipy_scc_labels


@st.composite
def digraphs(draw, max_nodes=40, max_edges=160):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            min_size=m,
            max_size=m,
        )
    )
    if edges:
        arr = np.array(edges, dtype=np.int64)
        src, dst = arr[:, 0], arr[:, 1]
    else:
        src = dst = np.empty(0, dtype=np.int64)
    return from_edge_array(src, dst, n)


@settings(max_examples=60, deadline=None)
@given(g=digraphs(), method=st.sampled_from(
    ["tarjan", "kosaraju", "baseline", "method1", "method2"]
))
def test_all_methods_match_oracle(g, method):
    r = strongly_connected_components(g, method)
    assert same_partition(r.labels, scipy_scc_labels(g))


@settings(max_examples=40, deadline=None)
@given(g=digraphs())
def test_scc_members_mutually_reachable(g):
    """Definition check: nodes share a label iff mutually reachable."""
    from repro.traversal.dfs import dfs_reach_mask

    labels = tarjan_scc(g)
    for u in range(min(g.num_nodes, 8)):  # spot-check a prefix of nodes
        fw, _ = dfs_reach_mask(g, u)
        bw, _ = dfs_reach_mask(g, u, direction="in")
        scc_mask = labels == labels[u]
        assert np.array_equal(scc_mask, fw & bw)


@settings(max_examples=40, deadline=None)
@given(g=digraphs())
def test_condensation_is_acyclic(g):
    """Contracting SCCs must yield a DAG (the fundamental SCC law)."""
    labels = tarjan_scc(g)
    src, dst = g.edge_array()
    cs, cd = labels[src], labels[dst]
    inter = cs != cd
    if not inter.any():
        return
    cond = from_edge_array(cs[inter], cd[inter], int(labels.max()) + 1)
    cond_labels = scipy_scc_labels(cond)
    sizes = np.bincount(cond_labels)
    assert sizes.max() == 1  # no cycles among contracted components


@settings(max_examples=40, deadline=None)
@given(g=digraphs(), seed=st.integers(0, 2**16))
def test_methods_insensitive_to_pivot_seed(g, seed):
    """The partition must not depend on pivot randomness."""
    a = strongly_connected_components(g, "method2", seed=seed)
    b = strongly_connected_components(g, "method2", seed=seed + 1)
    assert same_partition(a.labels, b.labels)


@settings(max_examples=30, deadline=None)
@given(g=digraphs())
def test_labels_are_dense_and_complete(g):
    r = strongly_connected_components(g, "method2")
    assert r.labels.min() >= 0
    # labels form a dense 0..k-1 range
    assert np.array_equal(
        np.unique(r.labels), np.arange(r.num_sccs)
    )
    assert int(r.sizes().sum()) == g.num_nodes
