"""DeltaCSR compaction property: interleaved add/remove of the *same*
edges across ``maybe_compact()`` boundaries must keep every view of the
delta (membership, neighbors, snapshot) bit-identical to a fresh CSR
built from the surviving edge set.

This is the invariant the streaming tier leans on: a feed that keeps
flipping one edge (add, remove, add, ...) crosses compaction
boundaries at arbitrary points — a fold that loses a tombstone or
resurrects a folded add would silently corrupt every SCC answer after
it."""

from functools import lru_cache

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.generators import generate
from repro.graph.build import from_edge_array
from repro.graph.delta import DeltaCSR

SCALE = 0.02
GRAPH = "wiki"


@lru_cache(maxsize=None)
def base_graph():
    return generate(GRAPH, scale=SCALE, seed=77).graph


def model_edge_set(g):
    src, dst = g.edge_array()
    return set(zip(src.tolist(), dst.tolist()))


@st.composite
def interleavings(draw, max_ops=40):
    """Op sequences biased to flip the same few edges repeatedly,
    with explicit compaction points between ops."""
    g = base_graph()
    n = g.num_nodes
    # a small pool so add/remove of the same edge interleaves often
    pool_size = draw(st.integers(min_value=1, max_value=6))
    pool = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
        )
        for _ in range(pool_size)
    ]
    # include some existing base edges: removing a *base* edge needs a
    # tombstone, the state a bad fold would lose.
    src, dst = g.edge_array()
    for i in draw(
        st.lists(
            st.integers(min_value=0, max_value=src.shape[0] - 1),
            max_size=3,
        )
    ):
        pool.append((int(src[i]), int(dst[i])))
    k = draw(st.integers(min_value=1, max_value=max_ops))
    ops = []
    for _ in range(k):
        edge = pool[draw(st.integers(min_value=0, max_value=len(pool) - 1))]
        kind = draw(st.sampled_from(["add", "remove"]))
        compact_here = draw(
            st.sampled_from([False, False, False, True])
        )
        ops.append((kind, edge, compact_here))
    return ops


def check_parity(delta, model):
    g = base_graph()
    want = from_edge_array(
        np.array([u for u, v in sorted(model)], dtype=np.int64),
        np.array([v for u, v in sorted(model)], dtype=np.int64),
        g.num_nodes,
    )
    snap = delta.snapshot()
    assert snap.num_nodes == want.num_nodes
    assert snap.num_edges == want.num_edges == len(model)
    np.testing.assert_array_equal(snap.indptr, want.indptr)
    # CSR adjacency is order-insensitive: compare sorted rows
    for u in range(g.num_nodes):
        np.testing.assert_array_equal(
            np.sort(snap.indices[snap.indptr[u]:snap.indptr[u + 1]]),
            np.sort(want.indices[want.indptr[u]:want.indptr[u + 1]]),
        )
    # membership and per-node neighbor queries agree with the model
    for u, v in model:
        assert delta.has_edge(u, v)
        assert v in delta.out_neighbors(u).tolist()
        assert u in delta.in_neighbors(v).tolist()


@settings(max_examples=60, deadline=None)
@given(ops=interleavings())
def test_interleaved_flips_across_compactions_match_fresh_csr(ops):
    g = base_graph()
    # tiny ratio: maybe_compact() folds eagerly, so op sequences cross
    # compaction boundaries mid-interleaving
    delta = DeltaCSR(g, compact_ratio=1e-9)
    model = model_edge_set(g)
    for kind, (u, v), compact_here in ops:
        if kind == "add":
            delta.add_edge(u, v)
            model.add((u, v))
        else:
            delta.remove_edge(u, v)
            model.discard((u, v))
        if compact_here:
            delta.maybe_compact()
            assert delta.log_size == 0
    check_parity(delta, model)


@settings(max_examples=30, deadline=None)
@given(ops=interleavings())
def test_explicit_compact_is_idempotent_and_lossless(ops):
    g = base_graph()
    delta = DeltaCSR(g)  # default ratio: folds rarely
    model = model_edge_set(g)
    for kind, (u, v), compact_here in ops:
        if kind == "add":
            delta.add_edge(u, v)
            model.add((u, v))
        else:
            delta.remove_edge(u, v)
            model.discard((u, v))
        if compact_here:
            delta.compact()
            delta.compact()  # second fold must be a no-op
            assert delta.log_size == 0
    check_parity(delta, model)


def test_same_edge_flip_storm_across_boundaries():
    """Deterministic worst case: one edge added and removed across
    every compaction boundary, ending in each terminal state."""
    g = base_graph()
    u, v = 1, 2
    base_has = (u, v) in model_edge_set(g)
    for end_present in (True, False):
        delta = DeltaCSR(g, compact_ratio=1e-9)
        present = base_has
        for i in range(12):
            if present:
                delta.remove_edge(u, v)
            else:
                delta.add_edge(u, v)
            present = not present
            delta.maybe_compact()
        if present != end_present:
            if present:
                delta.remove_edge(u, v)
            else:
                delta.add_edge(u, v)
            present = end_present
        assert delta.has_edge(u, v) == end_present
        model = model_edge_set(g)
        if end_present:
            model.add((u, v))
        else:
            model.discard((u, v))
        assert delta.num_edges == len(model)
        check_parity(delta, model)
