"""Property-based tests for the runtime simulator's invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.runtime import (
    Machine,
    MachineConfig,
    Task,
    TaskDAGRecord,
    WorkTrace,
    simulate_task_dag,
)


@st.composite
def task_dags(draw, max_tasks=40):
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    tasks = []
    for i in range(n):
        parent = draw(st.integers(min_value=-1, max_value=i - 1))
        cost = draw(st.floats(min_value=0.0, max_value=1000.0))
        tasks.append(Task(cost=cost, parent=parent))
    if all(t.parent != -1 for t in tasks):
        tasks[0] = Task(cost=tasks[0].cost, parent=-1)
    k = draw(st.sampled_from([1, 2, 8]))
    return TaskDAGRecord(phase="t", tasks=tuple(tasks), queue_k=k)


CFG = MachineConfig()


@settings(max_examples=80, deadline=None)
@given(dag=task_dags(), workers=st.sampled_from([1, 2, 7, 32]))
def test_all_tasks_complete_and_bounds_hold(dag, workers):
    makespan, stats = simulate_task_dag(dag, workers, CFG)
    assert stats.tasks == len(dag.tasks)
    # makespan at least the critical path of raw costs / fastest worker
    assert makespan >= max((t.cost for t in dag.tasks), default=0.0)
    # and at most sequential execution of everything plus overheads:
    # each task may cause one fetch, one spill and one spawn charge.
    n = len(dag.tasks)
    upper = sum(t.cost for t in dag.tasks) / CFG.smt_eff + n * (
        2 * CFG.queue_global_access + CFG.queue_local_op + CFG.task_spawn
    )
    assert makespan <= upper + 1e-6


@settings(max_examples=60, deadline=None)
@given(dag=task_dags())
def test_single_worker_time_is_total_work_plus_overhead(dag):
    makespan, _ = simulate_task_dag(dag, 1, CFG)
    assert makespan >= dag.total_work


@settings(max_examples=60, deadline=None)
@given(
    work=st.floats(min_value=0.0, max_value=1e7),
    items=st.integers(min_value=0, max_value=100000),
    p=st.sampled_from([1, 2, 8, 16, 32]),
)
def test_parallel_for_time_bounds(work, items, p):
    tr = WorkTrace()
    tr.parallel_for("x", work=work, items=items)
    t = Machine().simulate(tr, p).total_time
    # can never beat perfect scaling; never worse than serial + sync
    assert t >= work / CFG.throughput(min(max(items, 1), p)) - 1e-9
    assert t <= work + CFG.sync_cost(p) + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    works=st.lists(
        st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=20
    )
)
def test_simulation_additive_over_records(works):
    tr = WorkTrace()
    for w in works:
        tr.sequential("s", work=w)
    t = Machine().simulate(tr, 8).total_time
    assert t == sum(works)


@settings(max_examples=40, deadline=None)
@given(dag=task_dags())
def test_monotone_in_workers_roughly(dag):
    """More workers never hurts by more than queue-overhead noise."""
    t1, _ = simulate_task_dag(dag, 1, CFG)
    t8, _ = simulate_task_dag(dag, 8, CFG)
    overhead_slack = len(dag.tasks) * CFG.queue_global_access + 1e-6
    assert t8 <= t1 / CFG.numa_eff + overhead_slack
