"""Property-based tests for the building-block kernels."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import SCCState, par_trim, par_trim2, par_wcc, par_trim_rescan
from repro.graph import from_edge_array
from repro.traversal import expand_frontier
from tests.conftest import scipy_scc_labels, scipy_wcc_labels
from tests.property.test_scc_properties import digraphs


@settings(max_examples=50, deadline=None)
@given(g=digraphs())
def test_trim_marks_only_trivial_sccs(g):
    s = SCCState(g)
    par_trim(s)
    oracle = scipy_scc_labels(g)
    sizes = np.bincount(oracle)
    marked = np.flatnonzero(s.mark)
    assert all(sizes[oracle[v]] == 1 for v in marked)


@settings(max_examples=50, deadline=None)
@given(g=digraphs())
def test_trim_incremental_equals_rescan(g):
    s1, s2 = SCCState(g), SCCState(g)
    par_trim(s1)
    par_trim_rescan(s2)
    assert np.array_equal(s1.mark, s2.mark)


@settings(max_examples=50, deadline=None)
@given(g=digraphs())
def test_trim2_marks_only_true_small_sccs(g):
    s = SCCState(g)
    par_trim2(s)
    oracle = scipy_scc_labels(g)
    for v in np.flatnonzero(s.mark):
        mine = np.flatnonzero(s.labels == s.labels[v])
        theirs = np.flatnonzero(oracle == oracle[v])
        assert np.array_equal(mine, theirs)


@settings(max_examples=50, deadline=None)
@given(g=digraphs())
def test_wcc_matches_oracle(g):
    s = SCCState(g)
    items = par_wcc(s)
    oracle = scipy_wcc_labels(g)
    mine = {frozenset(nodes.tolist()) for _, nodes in items}
    theirs: dict[int, set[int]] = {}
    for v, lab in enumerate(oracle):
        theirs.setdefault(int(lab), set()).add(v)
    assert mine == {frozenset(v) for v in theirs.values()}


@settings(max_examples=50, deadline=None)
@given(g=digraphs(), data=st.data())
def test_expand_frontier_matches_reference(g, data):
    if g.num_nodes == 0:
        return
    frontier = data.draw(
        st.lists(
            st.integers(0, g.num_nodes - 1), min_size=0, max_size=10
        )
    )
    frontier = np.array(sorted(set(frontier)), dtype=np.int64)
    t, s = expand_frontier(
        g.indptr, g.indices, frontier, return_sources=True
    )
    ref = [
        (int(u), int(v))
        for u in frontier
        for v in g.out_neighbors(int(u))
    ]
    assert list(zip(s.tolist(), t.tolist())) == ref


@settings(max_examples=50, deadline=None)
@given(g=digraphs())
def test_transpose_involution(g):
    assert g.reverse().reverse() == g


@settings(max_examples=50, deadline=None)
@given(g=digraphs())
def test_degree_sums_equal_edges(g):
    assert int(g.out_degrees().sum()) == g.num_edges
    assert int(g.in_degrees().sum()) == g.num_edges
