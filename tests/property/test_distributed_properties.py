"""Property-based tests for the distributed substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import same_partition
from repro.distributed import (
    Cluster,
    ClusterConfig,
    Partition,
    block_partition,
    distributed_method1,
    edge_cut,
    hash_partition,
)
from tests.conftest import scipy_scc_labels
from tests.property.test_scc_properties import digraphs


@settings(max_examples=25, deadline=None)
@given(
    g=digraphs(max_nodes=30, max_edges=120),
    ranks=st.integers(1, 6),
    seed=st.integers(0, 100),
)
def test_distributed_correct_under_any_partition(g, ranks, seed):
    part = hash_partition(g.num_nodes, ranks, rng=seed)
    res = distributed_method1(g, part)
    assert same_partition(res.labels, scipy_scc_labels(g))


@settings(max_examples=30, deadline=None)
@given(g=digraphs(max_nodes=40, max_edges=160), ranks=st.integers(1, 8))
def test_edge_cut_bounds(g, ranks):
    part = hash_partition(g.num_nodes, ranks, rng=1)
    cut = edge_cut(g, part)
    assert 0 <= cut <= g.num_edges
    if ranks == 1:
        assert cut == 0


@settings(max_examples=30, deadline=None)
@given(g=digraphs(max_nodes=40, max_edges=160))
def test_total_work_partition_invariant(g):
    """Recorded compute must not depend on who owns which node."""
    w_block = distributed_method1(
        g, block_partition(g.num_nodes, 4)
    ).dtrace.total_work()
    w_hash = distributed_method1(
        g, hash_partition(g.num_nodes, 4, rng=3)
    ).dtrace.total_work()
    assert w_block == w_hash


@settings(max_examples=40, deadline=None)
@given(
    works=st.lists(
        st.lists(
            st.floats(min_value=0, max_value=1e5),
            min_size=3,
            max_size=3,
        ),
        min_size=1,
        max_size=10,
    ),
    sents=st.lists(
        st.lists(
            st.floats(min_value=0, max_value=1e4),
            min_size=3,
            max_size=3,
        ),
        min_size=1,
        max_size=10,
    ),
)
def test_cluster_time_decomposition(works, sents):
    """total == compute + comm, each non-negative, alpha floors comm."""
    from repro.distributed import DistTrace

    n = min(len(works), len(sents))
    trace = DistTrace(3)
    for w, s in zip(works[:n], sents[:n]):
        trace.superstep("x", w, s)
    cfg = ClusterConfig()
    sim = Cluster(cfg).simulate(trace)
    import pytest

    assert sim.total_time == pytest.approx(
        sim.compute_time + sim.comm_time
    )
    assert sim.comm_time >= n * cfg.alpha
