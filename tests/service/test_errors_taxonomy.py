"""Table-driven guard over the ReproError taxonomy.

Every deliberate failure class must carry a *unique* process exit code
and be documented in the :mod:`repro.errors` table — operators branch
on ``$?`` alone, so a colliding or undocumented code is a contract
break, not a style nit.
"""

import re

import pytest

import repro.errors as errors_mod
from repro.errors import ReproError, exit_code_for

# Importing these registers every subclass defined outside errors.py.
import repro.core.state  # noqa: F401  (StateInvariantError)
import repro.runtime.supervisor  # noqa: F401  (PoolBrokenError)
import repro.service  # noqa: F401


def all_error_classes():
    """The full ReproError subclass tree, the taxonomy under test."""
    seen = []
    frontier = [ReproError]
    while frontier:
        cls = frontier.pop()
        seen.append(cls)
        frontier.extend(cls.__subclasses__())
    return sorted(set(seen), key=lambda c: c.__name__)


def documented_codes():
    """``{class_name: exit_code}`` parsed from the errors.py table."""
    table = {}
    for line in errors_mod.__doc__.splitlines():
        m = re.match(r"``(\w+)``\s+(\d+)\s+\S", line)
        if m:
            table[m.group(1)] = int(m.group(2))
    return table


class TestTaxonomy:
    def test_tree_is_nontrivial(self):
        names = {c.__name__ for c in all_error_classes()}
        assert {
            "ReproError",
            "GraphIngestError",
            "GraphValidationError",
            "CheckpointError",
            "PhaseTimeoutError",
            "StateInvariantError",
            "PoolBrokenError",
            "ServiceOverloadError",
            "MemoryBudgetError",
        } <= names

    def test_every_class_has_a_unique_exit_code(self):
        codes = {}
        for cls in all_error_classes():
            code = cls.exit_code
            assert isinstance(code, int) and code >= 10, (
                f"{cls.__name__} exit code {code!r} collides with "
                "generic-failure codes (< 10)"
            )
            assert code not in codes, (
                f"{cls.__name__} and {codes[code]} share exit "
                f"code {code}"
            )
            codes[code] = cls.__name__

    def test_every_class_is_documented_with_its_code(self):
        table = documented_codes()
        assert table, "errors.py docstring table did not parse"
        for cls in all_error_classes():
            assert cls.__name__ in table, (
                f"{cls.__name__} is missing from the errors.py "
                "docstring table"
            )
            assert table[cls.__name__] == cls.exit_code, (
                f"{cls.__name__} documents exit "
                f"{table[cls.__name__]} but carries {cls.exit_code}"
            )

    def test_no_stale_documentation_rows(self):
        names = {c.__name__ for c in all_error_classes()}
        for doc_name in documented_codes():
            assert doc_name in names, (
                f"errors.py documents {doc_name} but no such class "
                "exists"
            )

    @pytest.mark.parametrize(
        "name,code",
        [
            ("ServiceOverloadError", 17),
            ("MemoryBudgetError", 18),
            ("WorkerLostError", 19),
            ("IntegrityError", 20),
        ],
    )
    def test_service_codes_pinned(self, name, code):
        cls = next(
            c for c in all_error_classes() if c.__name__ == name
        )
        assert cls.exit_code == code
        assert exit_code_for(cls("x")) == code

    def test_exit_code_for_untyped_is_one(self):
        assert exit_code_for(RuntimeError("boom")) == 1
