"""Tests for admission control: queue bounds, shedding, memory gate."""

import gzip

import pytest

from repro.errors import MemoryBudgetError, ServiceOverloadError
from repro.service.govern import (
    AdmissionConfig,
    AdmissionController,
    estimate_edge_list_size,
)


class TestAdmissionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue=0)
        with pytest.raises(ValueError):
            AdmissionConfig(memory_budget_bytes=0)


class TestQueueBound:
    def test_admit_and_release_cycles(self):
        ctl = AdmissionController(AdmissionConfig(max_queue=2))
        with ctl.admit():
            assert ctl.depth == 1
            with ctl.admit():
                assert ctl.depth == 2
        assert ctl.depth == 0
        assert ctl.admitted == 2
        assert ctl.peak_depth == 2

    def test_overload_sheds_typed(self):
        ctl = AdmissionController(AdmissionConfig(max_queue=1))
        ticket = ctl.admit()
        with pytest.raises(ServiceOverloadError) as info:
            ctl.admit()
        assert info.value.reason == "overload"
        assert info.value.exit_code == 17
        assert ctl.shed == 1
        ticket.release()
        # the slot is free again.
        with ctl.admit():
            pass

    def test_ticket_release_is_idempotent(self):
        ctl = AdmissionController(AdmissionConfig(max_queue=4))
        ticket = ctl.admit()
        ticket.release()
        ticket.release()
        assert ctl.depth == 0

    def test_release_on_exception_path(self):
        ctl = AdmissionController(AdmissionConfig(max_queue=1))
        with pytest.raises(RuntimeError):
            with ctl.admit():
                raise RuntimeError("work blew up")
        assert ctl.depth == 0


class TestDraining:
    def test_drain_sheds_new_requests(self):
        ctl = AdmissionController()
        assert not ctl.draining
        ctl.drain()
        assert ctl.draining
        with pytest.raises(ServiceOverloadError) as info:
            ctl.admit()
        assert info.value.reason == "draining"

    def test_in_flight_ticket_survives_drain(self):
        ctl = AdmissionController()
        ticket = ctl.admit()
        ctl.drain()
        assert ctl.depth == 1  # in-flight work is not revoked
        ticket.release()
        assert ctl.depth == 0


class TestMemoryGate:
    def config(self, budget):
        return AdmissionConfig(max_queue=8, memory_budget_bytes=budget)

    def test_oversized_graph_refused_typed(self):
        ctl = AdmissionController(self.config(budget=10_000_000))
        with pytest.raises(MemoryBudgetError) as info:
            ctl.admit(nodes=10_000_000, edges=100_000_000)
        assert info.value.exit_code == 18
        assert info.value.required_bytes > info.value.budget_bytes
        assert ctl.rejected_memory == 1
        assert ctl.depth == 0  # no slot leaked

    def test_fitting_graph_admitted(self):
        ctl = AdmissionController(self.config(budget=1_000_000_000))
        with ctl.admit(nodes=1000, edges=10_000):
            pass
        assert ctl.admitted == 1

    def test_unknown_size_admits(self):
        # No estimate -> the RSS governor is the backstop, not a guess.
        ctl = AdmissionController(self.config(budget=1))
        with ctl.admit(nodes=None, edges=None):
            pass

    def test_process_backend_costs_more(self):
        from repro.runtime.cost import DEFAULT_MEMORY_MODEL

        serial = DEFAULT_MEMORY_MODEL.run_bytes(10_000, 100_000)
        procs = DEFAULT_MEMORY_MODEL.run_bytes(
            10_000, 100_000, backend="processes", num_workers=4
        )
        assert procs > serial

    def test_refusal_hook_vetoes_first(self):
        ctl = AdmissionController(
            AdmissionConfig(max_queue=8),
            refusal_hook=lambda: "over the hard memory limit",
        )
        with pytest.raises(ServiceOverloadError) as info:
            ctl.admit()
        assert info.value.reason == "governor"
        assert "hard memory limit" in str(info.value)


class TestEdgeListEstimate:
    def test_plain_file(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("".join(f"{i} {i + 1}\n" for i in range(1000)))
        nodes, edges = estimate_edge_list_size(path)
        # byte-size heuristic: right order of magnitude, not exact.
        assert 200 <= edges <= 5000
        assert nodes == edges

    def test_gzip_inflates_estimate(self, tmp_path):
        raw = "".join(f"{i} {i + 1}\n" for i in range(1000)).encode()
        path = tmp_path / "edges.txt.gz"
        path.write_bytes(gzip.compress(raw))
        _, edges = estimate_edge_list_size(path)
        assert edges >= 100

    def test_missing_file_returns_none(self, tmp_path):
        assert estimate_edge_list_size(tmp_path / "nope.txt") is None

    def test_stats_roundtrip(self):
        ctl = AdmissionController(AdmissionConfig(max_queue=3))
        with ctl.admit():
            d = ctl.to_dict()
        assert d["depth"] == 1 and d["max_queue"] == 3
        assert d["admitted"] == 1 and not d["draining"]
