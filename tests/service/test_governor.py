"""Tests for the RSS memory governor (synthetic pressure, no real GBs)."""

import pytest

from repro.engine import Engine
from repro.service.governor import (
    GovernorConfig,
    MemoryGovernor,
    rss_bytes,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def warm_engine(sources=("wiki", "flickr")):
    eng = Engine(max_sessions=8)
    for src in sources:
        eng.load(src, scale=0.05).warmup()
    return eng


class TestRssSampling:
    def test_real_rss_is_positive(self):
        # a live Python process is tens of MB resident at minimum.
        assert rss_bytes() > 10_000_000

    def test_statm_path_fake(self, tmp_path):
        # field 2 of statm is resident pages; the reader multiplies by
        # the page size.
        import os

        page = os.sysconf("SC_PAGE_SIZE")
        statm = tmp_path / "statm"
        statm.write_text("999 123 45 1 0 67 0\n")
        assert rss_bytes(statm_path=str(statm)) == 123 * page

    def test_missing_statm_falls_back_to_getrusage(self, tmp_path):
        # no /proc on this "platform": getrusage's peak-RSS tier still
        # returns a sane positive number instead of raising.
        missing = tmp_path / "no" / "statm"
        got = rss_bytes(statm_path=str(missing))
        assert got > 10_000_000

    def test_malformed_statm_falls_back(self, tmp_path):
        statm = tmp_path / "statm"
        statm.write_text("not numbers\n")
        assert rss_bytes(statm_path=str(statm)) > 10_000_000

    def test_foreign_pid_without_statm_is_zero(self, tmp_path):
        # getrusage cannot see another process, so a dead/foreign pid
        # with no proc entry reports 0 rather than this process's RSS.
        missing = tmp_path / "gone" / "statm"
        assert rss_bytes(pid=2**22 - 1, statm_path=str(missing)) == 0

    def test_ioutil_reader_returns_none_on_failure(self, tmp_path):
        from repro.ioutil import process_rss_bytes

        assert (
            process_rss_bytes(statm_path=str(tmp_path / "absent"))
            is None
        )
        assert process_rss_bytes() > 0  # /proc/self on Linux CI

    def test_ioutil_reader_sees_the_named_child_process(self):
        # regression: a foreign pid must read /proc/<pid>/statm, not
        # silently report the *calling* process.  A bare interpreter
        # child is an order of magnitude smaller than this test runner
        # (numpy + scipy resident), so echoing self would fail loudly.
        import subprocess
        import sys

        from repro.ioutil import process_rss_bytes

        child = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(30)"]
        )
        try:
            child_rss = process_rss_bytes(child.pid)
            assert child_rss is not None and child_rss > 0
            assert child_rss < process_rss_bytes()
        finally:
            child.kill()
            child.wait()
        # a reaped pid has no /proc entry: None, never a fallback.
        assert process_rss_bytes(child.pid) is None

    def test_config_validation(self):
        with pytest.raises(ValueError, match="hard limit"):
            GovernorConfig(soft_limit_bytes=100, hard_limit_bytes=50)
        with pytest.raises(ValueError, match="min_sessions"):
            GovernorConfig(min_sessions=-1)

    def test_sample_rate_limited(self):
        clock = FakeClock()
        calls = []

        def fake_rss():
            calls.append(1)
            return 100

        with Engine() as eng:
            gov = MemoryGovernor(
                eng,
                GovernorConfig(sample_interval=1.0),
                rss_fn=fake_rss,
                clock=clock,
            )
            gov.sample()
            gov.sample()  # within the interval: cached
            assert len(calls) == 1
            clock.now = 1.0
            gov.sample()
            assert len(calls) == 2
            gov.sample(force=True)  # force bypasses the limiter
            assert len(calls) == 3


class TestPressureRelief:
    def test_below_soft_limit_is_a_no_op(self):
        with warm_engine() as eng:
            gov = MemoryGovernor(
                eng,
                GovernorConfig(soft_limit_bytes=10**12),
                rss_fn=lambda: 100,
            )
            assert gov.relieve() == 0
            assert len(eng.sessions) == 2

    def test_pressure_evicts_lru_sessions(self):
        with warm_engine() as eng:
            first_fp = eng.sessions[0].fingerprint
            # overshoot far beyond what one session frees: everything
            # down to min_sessions goes.
            gov = MemoryGovernor(
                eng,
                GovernorConfig(soft_limit_bytes=1, min_sessions=1),
                rss_fn=lambda: 10**12,
            )
            released = gov.relieve()
            assert released > 0
            assert gov.sessions_evicted == 1
            assert len(eng.sessions) == 1
            # LRU went first; the most recent session survived.
            assert eng.sessions[0].fingerprint != first_fp

    def test_min_sessions_floor_respected(self):
        with warm_engine() as eng:
            gov = MemoryGovernor(
                eng,
                GovernorConfig(soft_limit_bytes=1, min_sessions=2),
                rss_fn=lambda: 10**12,
            )
            gov.relieve()
            assert len(eng.sessions) == 2  # nothing below the floor

    def test_small_overshoot_stops_early(self):
        with warm_engine() as eng:
            one_session = eng.sessions[0].estimated_bytes()
            gov = MemoryGovernor(
                eng,
                GovernorConfig(soft_limit_bytes=10**9, min_sessions=0),
                # tiny overshoot: evicting the LRU session covers it.
                rss_fn=lambda: 10**9 + max(one_session // 2, 1),
            )
            gov.relieve()
            assert len(eng.sessions) == 1  # stopped after one eviction

    def test_pools_released_before_sessions(self):
        from repro.engine.pool import fork_available

        if not fork_available():  # pragma: no cover - non-fork platforms
            pytest.skip("fork needed for warm pools")
        with Engine() as eng:
            sess = eng.load("wiki", scale=0.05)
            sess.executor_resources(num_workers=2)
            assert sess.pool is not None
            pool_cost = sess.estimated_bytes()
            gov = MemoryGovernor(
                eng,
                # overshoot small enough that dropping the pool covers
                # it: the session itself must survive.
                GovernorConfig(soft_limit_bytes=10**9, min_sessions=0),
                rss_fn=lambda: 10**9 + 1,
            )
            gov.relieve()
            assert gov.pools_released == 1
            assert sess.pool is None
            assert len(eng.sessions) == 1  # session kept, only the
            assert sess.estimated_bytes() < pool_cost  # pool went


class TestAdmissionVeto:
    def test_no_hard_limit_never_refuses(self):
        with warm_engine(("wiki",)) as eng:
            gov = MemoryGovernor(
                eng, GovernorConfig(), rss_fn=lambda: 10**12
            )
            assert gov.refusal() is None

    def test_under_hard_limit_admits(self):
        with warm_engine(("wiki",)) as eng:
            gov = MemoryGovernor(
                eng,
                GovernorConfig(hard_limit_bytes=1000),
                rss_fn=lambda: 500,
            )
            assert gov.refusal() is None
            assert gov.refusals == 0

    def test_over_hard_limit_relieves_then_refuses(self):
        with warm_engine() as eng:
            gov = MemoryGovernor(
                eng,
                GovernorConfig(
                    soft_limit_bytes=1000, hard_limit_bytes=1000
                ),
                rss_fn=lambda: 10**12,  # pressure never goes away
            )
            reason = gov.refusal()
            assert reason is not None and "hard limit" in reason
            assert gov.refusals == 1
            # it tried eviction before giving up.
            assert gov.sessions_evicted > 0

    def test_relief_that_works_avoids_refusal(self):
        with warm_engine(("wiki",)) as eng:
            rss = {"value": 2000}

            def fake_rss():
                return rss["value"]

            gov = MemoryGovernor(
                eng,
                GovernorConfig(
                    soft_limit_bytes=1000, hard_limit_bytes=1500
                ),
                rss_fn=fake_rss,
            )
            # relief drops RSS below the hard limit before the final
            # re-sample -> no refusal.
            orig_relieve = gov.relieve

            def relieving():
                released = orig_relieve()
                rss["value"] = 900
                return released

            gov.relieve = relieving
            assert gov.refusal() is None
            assert gov.refusals == 0

    def test_to_dict_carries_counters(self):
        with warm_engine(("wiki",)) as eng:
            gov = MemoryGovernor(
                eng,
                GovernorConfig(soft_limit_bytes=1, hard_limit_bytes=1),
                rss_fn=lambda: 10**12,
            )
            gov.refusal()
            d = gov.to_dict()
            assert d["refusals"] == 1
            assert d["peak_rss_bytes"] == 10**12
            assert d["hard_limit_bytes"] == 1
