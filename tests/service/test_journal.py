"""Tests for the crash-safe request journal: atomic appends, the
accepted = completed + shed ledger, and torn-tail recovery."""

import json
import threading

from repro.service.journal import (
    JournalRecovery,
    RequestJournal,
    scan_journal,
)


class TestRequestJournal:
    def test_full_lifecycle_reconciles(self, tmp_path):
        path = tmp_path / "requests.ndjson"
        with RequestJournal(path) as j:
            j.accepted(0, {"graph": "wiki"})
            j.dispatched(0, worker=1)
            j.completed(0, ok=True, labels_crc32=42)
            j.accepted(1, {"graph": "wiki"})
            j.shed(1, reason="draining")
            rec = j.reconcile()
        assert rec["accepted"] == 2
        assert rec["completed"] == 1
        assert rec["shed"] == 1
        assert rec["open"] == 0
        assert rec["balanced"] is True

    def test_open_requests_unbalance_the_ledger(self, tmp_path):
        with RequestJournal(tmp_path / "j.ndjson") as j:
            j.accepted(7, {"graph": "g"})
            rec = j.reconcile()
        assert rec["open"] == 1
        assert rec["balanced"] is False

    def test_closed_journal_drops_appends_silently(self, tmp_path):
        j = RequestJournal(tmp_path / "j.ndjson")
        j.accepted(0, {})
        j.close()
        j.completed(0, ok=True)  # must not raise on shutdown races
        rec = scan_journal(j.path)
        assert rec.accepted == 1
        assert rec.completed == 0

    def test_records_are_one_json_line_each(self, tmp_path):
        path = tmp_path / "j.ndjson"
        with RequestJournal(path) as j:
            j.accepted(0, {"graph": "wiki", "scale": 0.05})
            j.completed(0, ok=False, error_type="ValueError")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["event"] == "accepted"
        assert json.loads(lines[1])["error_type"] == "ValueError"

    def test_concurrent_appends_never_interleave(self, tmp_path):
        path = tmp_path / "j.ndjson"
        j = RequestJournal(path, fsync=False)

        def pump(base):
            for i in range(50):
                seq = base + i
                j.accepted(seq, {"graph": "x" * 100})
                j.completed(seq, ok=True, labels_crc32=seq)

        threads = [
            threading.Thread(target=pump, args=(k * 1000,))
            for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        j.close()
        rec = scan_journal(path)
        assert rec.torn_lines == 0
        assert rec.accepted == rec.completed == 200
        assert rec.balanced


class TestScanJournal:
    def test_missing_file_is_empty_recovery(self, tmp_path):
        rec = scan_journal(tmp_path / "never-written.ndjson")
        assert isinstance(rec, JournalRecovery)
        assert rec.accepted == 0
        assert rec.balanced

    def test_pending_and_crcs_recovered(self, tmp_path):
        path = tmp_path / "j.ndjson"
        with RequestJournal(path) as j:
            j.accepted(0, {"graph": "wiki", "id": "done"})
            j.dispatched(0, worker=2)
            j.completed(0, ok=True, labels_crc32=123)
            j.accepted(1, {"graph": "wiki", "id": "lost"})
            j.dispatched(1, worker=0)
            j.replayed(1, worker=1, reason="worker-died")
            # crash here: seq 1 never completed.
        rec = scan_journal(path)
        assert rec.crcs == {0: 123}
        assert list(rec.pending) == [1]
        assert rec.pending[1]["id"] == "lost"
        assert rec.replays == [(1, 1, "worker-died")]
        assert not rec.balanced

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        path = tmp_path / "j.ndjson"
        with RequestJournal(path) as j:
            j.accepted(0, {"graph": "wiki"})
            j.completed(0, ok=True, labels_crc32=9)
        with open(path, "a") as fh:
            fh.write('{"event": "accepted", "seq": 1, "req')  # torn
        rec = scan_journal(path)
        assert rec.torn_lines == 1
        assert rec.accepted == 1
        assert rec.balanced

    def test_unknown_event_counts_as_torn(self, tmp_path):
        path = tmp_path / "j.ndjson"
        with open(path, "w") as fh:
            fh.write('{"event": "mystery", "seq": 0}\n')
        assert scan_journal(path).torn_lines == 1
