"""The ``stream`` and ``analysis`` request types: attach/status/detach
lifecycle, journal stamps for streamed batches, analysis over the live
mutable session."""

import time

import numpy as np
import pytest

from repro.core.result import canonical_labels
from repro.core.tarjan import tarjan_scc
from repro.generators import generate
from repro.graph.delta import DeltaCSR
from repro.ioutil import crc32_chunks
from repro.service.journal import scan_journal
from repro.service.server import SCCService, ServiceConfig

GRAPH, SCALE = "wiki", 0.05


def in_process_service(**kwargs):
    return SCCService(ServiceConfig(worker_processes=0, **kwargs))


def write_feed(path, edits, end=True):
    with open(path, "w") as f:
        for kind, u, v in edits:
            f.write(f"{'+' if kind == 'add' else '-'} {u} {v}\n")
        if end:
            f.write('{"end": true}\n')


def make_edits(n, seed=11):
    rng = np.random.default_rng(seed)
    g = generate(GRAPH, scale=SCALE, seed=None).graph
    return [
        ("add", int(u), int(v))
        for u, v in rng.integers(0, g.num_nodes, (n, 2))
    ]


def oracle_crc(edits):
    delta = DeltaCSR(generate(GRAPH, scale=SCALE, seed=None).graph)
    for kind, u, v in edits:
        (delta.add_edge if kind == "add" else delta.remove_edge)(u, v)
    labels = canonical_labels(tarjan_scc(delta.snapshot()))
    return crc32_chunks(labels.tobytes())


def attach_request(source, **extra):
    req = {
        "op": "stream",
        "action": "attach",
        "graph": GRAPH,
        "scale": SCALE,
        "source": source,
        "batch_edges": 16,
        "batch_age": 0.05,
    }
    req.update(extra)
    return req


def wait_drained(svc, name, timeout=30.0):
    """Poll status until the feed's consumer thread finishes."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        resp = svc.handle(
            {"op": "stream", "action": "status", "name": name}
        )
        assert resp["ok"], resp
        if not resp["alive"]:
            return resp
        time.sleep(0.05)
    raise AssertionError(f"stream {name!r} did not drain in {timeout}s")


class TestStreamLifecycle:
    def test_attach_drain_detach_matches_oracle(self, tmp_path):
        edits = make_edits(40)
        feed = tmp_path / "feed.txt"
        write_feed(feed, edits)
        svc = in_process_service()
        try:
            resp = svc.handle(attach_request(f"tail-once:{feed}"))
            assert resp["ok"], resp
            assert resp["name"] == GRAPH
            assert not resp["resumed"]
            status = wait_drained(svc, GRAPH)
            assert status["error"] is None
            assert status["stats"]["ended"]
            assert status["stats"]["records_applied"] == len(edits)
            final = svc.handle(
                {"op": "stream", "action": "detach", "name": GRAPH}
            )
            assert final["ok"]
            assert final["stats"]["labels_crc32"] == oracle_crc(edits)
        finally:
            svc.close()

    def test_streamed_batches_pay_journal_stamps(self, tmp_path):
        edits = make_edits(24)
        feed = tmp_path / "feed.txt"
        write_feed(feed, edits)
        journal_path = tmp_path / "journal.ndjson"
        svc = in_process_service(journal_path=str(journal_path))
        try:
            svc.handle(attach_request(f"tail-once:{feed}"))
            status = wait_drained(svc, GRAPH)
            batches = status["stats"]["batches"]
            assert batches >= 1
        finally:
            svc.close()
        scan = scan_journal(str(journal_path))
        assert scan.balanced
        assert scan.completed >= batches

    def test_attach_duplicate_name_rejected(self, tmp_path):
        feed = tmp_path / "feed.txt"
        write_feed(feed, make_edits(4), end=False)  # keeps tailing
        svc = in_process_service()
        try:
            assert svc.handle(
                attach_request(f"tail:{feed}", name="live")
            )["ok"]
            dup = svc.handle(
                attach_request(f"tail:{feed}", name="live")
            )
            assert not dup["ok"]
            assert "already attached" in dup["error"]
        finally:
            svc.close()

    def test_attach_requires_graph_and_source(self):
        svc = in_process_service()
        try:
            resp = svc.handle(
                {"op": "stream", "action": "attach", "graph": GRAPH}
            )
            assert not resp["ok"] and "source" in resp["error"]
            resp = svc.handle(
                {
                    "op": "stream",
                    "action": "attach",
                    "source": "tail:/dev/null",
                }
            )
            assert not resp["ok"] and "graph" in resp["error"]
        finally:
            svc.close()

    def test_unknown_action_and_keys_rejected(self):
        svc = in_process_service()
        try:
            resp = svc.handle(
                {"op": "stream", "action": "explode", "name": "x"}
            )
            assert not resp["ok"] and "explode" in resp["error"]
            resp = svc.handle(
                {"op": "stream", "action": "status", "bogus": 1}
            )
            assert not resp["ok"] and "bogus" in resp["error"]
        finally:
            svc.close()

    def test_status_of_unknown_stream_lists_attached(self):
        svc = in_process_service()
        try:
            resp = svc.handle(
                {"op": "stream", "action": "status", "name": "ghost"}
            )
            assert not resp["ok"]
            assert "no attached stream" in resp["error"]
        finally:
            svc.close()

    def test_close_stops_live_feeds(self, tmp_path):
        feed = tmp_path / "feed.txt"
        write_feed(feed, make_edits(4), end=False)
        svc = in_process_service()
        resp = svc.handle(attach_request(f"tail:{feed}", name="live"))
        assert resp["ok"]
        feed_obj = svc.streams["live"]
        svc.close()  # must stop and join the consumer thread
        assert not feed_obj.thread.is_alive()

    def test_stats_exposes_streams(self, tmp_path):
        feed = tmp_path / "feed.txt"
        write_feed(feed, make_edits(8))
        svc = in_process_service()
        try:
            svc.handle(attach_request(f"tail-once:{feed}", name="live"))
            wait_drained(svc, "live")
            stats = svc.stats()
            assert "live" in stats["streams"]
            assert "records_applied" in stats["streams"]["live"]["stats"]
        finally:
            svc.close()


class TestAnalysisRequests:
    def test_analysis_kinds_over_streamed_session(self, tmp_path):
        edits = make_edits(30)
        feed = tmp_path / "feed.txt"
        write_feed(feed, edits)
        svc = in_process_service()
        try:
            svc.handle(attach_request(f"tail-once:{feed}"))
            status = wait_drained(svc, GRAPH)
            version = status["stats"]["graph_version"]
            for kind in ("summary", "histogram", "bowtie", "clustering"):
                resp = svc.handle(
                    {
                        "op": "analysis",
                        "graph": GRAPH,
                        "scale": SCALE,
                        "kind": kind,
                    }
                )
                assert resp["ok"], resp
                # the analysis names the live update epoch it describes
                assert resp["graph_version"] == version
            summary = svc.handle(
                {
                    "op": "analysis",
                    "graph": GRAPH,
                    "scale": SCALE,
                    "kind": "summary",
                }
            )
            assert summary["num_sccs"] >= 1
            assert summary["result"]["num_sccs"] == summary["num_sccs"]
        finally:
            svc.close()

    def test_analysis_on_cold_session_runs_detection(self):
        svc = in_process_service()
        try:
            resp = svc.handle(
                {
                    "op": "analysis",
                    "graph": GRAPH,
                    "scale": SCALE,
                    "kind": "histogram",
                }
            )
            assert resp["ok"], resp
            assert resp["num_sccs"] >= 1
            assert resp["result"]["giant_fraction"] > 0
        finally:
            svc.close()

    def test_analysis_validation(self):
        svc = in_process_service()
        try:
            resp = svc.handle({"op": "analysis", "kind": "summary"})
            assert not resp["ok"] and "graph" in resp["error"]
            resp = svc.handle(
                {"op": "analysis", "graph": GRAPH, "kind": "vibes"}
            )
            assert not resp["ok"] and "vibes" in resp["error"]
            resp = svc.handle(
                {"op": "analysis", "graph": GRAPH, "nope": 1}
            )
            assert not resp["ok"] and "nope" in resp["error"]
        finally:
            svc.close()
