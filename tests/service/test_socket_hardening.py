"""Socket-transport hardening: slow-loris read deadlines and the
request-line byte cap.  A hostile client may pin one handler thread for
one deadline at most — never the accept loop — and every refusal is
counted in ``transport_errors``."""

import json
import os
import socket
import threading
import time

from repro.service.server import SCCService, ServiceConfig, serve_socket

GRAPH, SCALE = "wiki", 0.05


def start_server(tmp_path, *, max_requests, **kwargs):
    svc = SCCService(ServiceConfig(worker_processes=0))
    sock_path = str(tmp_path / "svc.sock")
    t = threading.Thread(
        target=serve_socket,
        args=(svc, sock_path),
        kwargs=dict(max_requests=max_requests, **kwargs),
        daemon=True,
    )
    t.start()
    deadline = time.monotonic() + 10
    while not os.path.exists(sock_path):
        assert time.monotonic() < deadline, "socket never appeared"
        time.sleep(0.02)
    return svc, sock_path, t


def roundtrip(sock_path, request, timeout=30.0):
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(timeout)
        s.connect(sock_path)
        s.sendall((json.dumps(request) + "\n").encode())
        buf = b""
        while b"\n" not in buf:
            chunk = s.recv(1 << 16)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf.decode()) if buf else None


def test_slow_loris_dropped_at_read_deadline(tmp_path):
    svc, sock_path, t = start_server(
        tmp_path, max_requests=2, read_deadline=0.3
    )
    t0 = time.monotonic()
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as loris:
        loris.settimeout(10.0)
        loris.connect(sock_path)
        loris.sendall(b'{"op": "stat')  # dribble, never a newline
        # the server must hang up on us, not wait forever
        got = loris.recv(4096)
    elapsed = time.monotonic() - t0
    assert got == b""  # dropped without a response
    assert elapsed < 5.0  # deadline, not a 30s default or forever
    # a well-behaved request right after is served normally
    resp = roundtrip(sock_path, {"op": "stats"})
    assert resp["ok"]
    assert resp["transport_errors"] == 1
    t.join(timeout=30)


def test_overlong_request_line_refused_typed(tmp_path):
    svc, sock_path, t = start_server(
        tmp_path, max_requests=2, max_line_bytes=1024
    )
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(30.0)
        s.connect(sock_path)
        s.sendall(b"x" * 8192)  # no newline within the cap
        buf = b""
        while b"\n" not in buf:
            chunk = s.recv(1 << 16)
            if not chunk:
                break
            buf += chunk
    resp = json.loads(buf.decode())
    assert not resp["ok"]
    assert resp["error_type"] == "ValueError"
    assert "exceeds 1024 bytes" in resp["error"]
    resp = roundtrip(sock_path, {"op": "stats"})
    assert resp["ok"]
    assert resp["transport_errors"] == 1
    t.join(timeout=30)


def test_client_closing_early_is_counted_not_fatal(tmp_path):
    svc, sock_path, t = start_server(tmp_path, max_requests=2)
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.connect(sock_path)
        s.sendall(b'{"op": "stats"')  # no newline
    # connection closed before the newline: refused and counted
    resp = roundtrip(sock_path, {"op": "stats"})
    assert resp["ok"]
    assert resp["transport_errors"] == 1
    t.join(timeout=30)


def test_normal_requests_unaffected_by_hardening(tmp_path):
    svc, sock_path, t = start_server(
        tmp_path, max_requests=2, read_deadline=5.0, max_line_bytes=4096
    )
    resp = roundtrip(
        sock_path,
        {"op": "run", "graph": GRAPH, "scale": SCALE},
    )
    assert resp["ok"], resp
    resp = roundtrip(sock_path, {"op": "stats"})
    assert resp["ok"]
    assert resp["transport_errors"] == 0
    t.join(timeout=60)
