"""Chaos drills for ``repro serve``: real subprocesses, injected
faults, saturating bursts — asserting the daemon sheds typed, retries
transient failures, degrades through the breaker, and that every
accepted request returns labels bit-identical to a cold serial run.

Excluded from tier-1 (``-m 'not chaos'``); run with ``pytest -m chaos``.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.api import strongly_connected_components
from repro.core.result import canonical_labels
from repro.generators import generate
from repro.ioutil import crc32_chunks

pytestmark = pytest.mark.chaos

GRAPH, SCALE = "wiki", 0.05


def expected_crc():
    g = generate(GRAPH, scale=SCALE, seed=None).graph
    labels = canonical_labels(
        strongly_connected_components(g, "tarjan").labels
    )
    return crc32_chunks(labels.tobytes())


def serve(args, requests, *, timeout=90):
    """Run ``repro serve`` over a stdin pipe; returns parsed responses."""
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
    payload = "".join(json.dumps(r) + "\n" for r in requests)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", *args],
        input=payload,
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return [
        json.loads(line)
        for line in proc.stdout.splitlines()
        if line.strip()
    ]


class TestChaosServe:
    def test_pool_crash_mid_request_recovers_with_correct_labels(self):
        """A request whose fault plan kills a worker mid-run still
        answers ok: the supervised backend rebuilds the pool and the
        labels match the cold serial oracle bit-for-bit."""
        responses = serve(
            ["--backend-workers", "2"],
            [
                {
                    "op": "run",
                    "graph": GRAPH,
                    "scale": SCALE,
                    "id": "crash",
                    "fault_plan": "crash@0",
                },
                {"op": "shutdown"},
            ],
        )
        (run,) = [r for r in responses if r.get("id") == "crash"]
        assert run["ok"], run
        assert run["backend_used"] == "supervised"
        assert run["labels_crc32"] == expected_crc()

    def test_breaker_trips_into_degraded_backend(self):
        """Service-level request faults trip the breaker; the retry
        lands on the degraded backend and the answer stays correct."""
        report = "/tmp/chaos_breaker_report.json"
        responses = serve(
            [
                "--breaker-threshold",
                "1",
                "--retries",
                "3",
                "--backoff",
                "0.0",
                "--fault-plan",
                "raise@0:pre",
                "--report",
                report,
            ],
            [
                {
                    "op": "run",
                    "graph": GRAPH,
                    "scale": SCALE,
                    "id": "r0",
                    "backend": "threads",
                },
                {"op": "shutdown"},
            ],
        )
        (run,) = [r for r in responses if r.get("id") == "r0"]
        assert run["ok"], run
        assert run["attempts"] >= 2  # the injected fault burned one
        assert run["backend_requested"] == "threads"
        assert run["backend_used"] == "serial"  # breaker rerouted it
        assert run["labels_crc32"] == expected_crc()
        stats = json.load(open(report))
        assert stats["breakers"]["threads"]["trips"] == 1
        assert stats["degraded_runs"] == 1

    def test_saturating_burst_sheds_typed_and_serves_the_rest(self):
        """A burst beyond max_queue: the daemon answers every request,
        shedding the overflow with exit code 17 and serving the rest
        with bit-identical labels."""
        n = 10
        responses = serve(
            ["--max-queue", "2"],
            [
                {
                    "op": "run",
                    "graph": GRAPH,
                    "scale": SCALE,
                    "id": str(i),
                }
                for i in range(n)
            ]
            + [{"op": "shutdown"}],
        )
        runs = [r for r in responses if r.get("op") == "run"]
        assert len(runs) == n  # every request answered
        ok = [r for r in runs if r["ok"]]
        shed = [r for r in runs if r.get("shed")]
        assert ok, "burst starved every request"
        # admitted requests hold their slot while queued for the
        # engine, so a 10-deep instant burst against max_queue=2 must
        # shed (the reader dispatches in microseconds, runs take ms).
        assert shed, "burst never overflowed the queue"
        want = expected_crc()
        assert all(r["labels_crc32"] == want for r in ok)
        # whatever wasn't served was shed typed, nothing dropped.
        assert len(ok) + len(shed) == n
        assert all(r["exit_code"] == 17 for r in shed)

    def test_sigterm_graceful_drain_writes_report(self, tmp_path):
        """SIGTERM mid-stream: the daemon finishes in-flight work,
        sheds the rest, writes the final report atomically, exits 0."""
        report = tmp_path / "drain_report.json"
        src = os.path.join(
            os.path.dirname(__file__), "..", "..", "src"
        )
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--report",
                str(report),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        req = json.dumps(
            {"op": "run", "graph": GRAPH, "scale": SCALE, "id": "a"}
        )
        proc.stdin.write(req + "\n")
        proc.stdin.flush()
        # wait for the first response so work is genuinely in flight
        # history before the signal lands.
        first = json.loads(proc.stdout.readline())
        assert first["ok"], first
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        deadline = time.time() + 10
        while not report.exists() and time.time() < deadline:
            time.sleep(0.05)
        stats = json.loads(report.read_text())
        assert stats["completed"] == 1
        assert stats["admission"]["draining"] is True
