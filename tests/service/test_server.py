"""Tests for the SCCService core and the stdin transport (in-process)."""

import io
import json
import threading

import numpy as np
import pytest

from repro.core.api import strongly_connected_components
from repro.core.result import canonical_labels
from repro.generators import generate
from repro.ioutil import crc32_chunks
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.service import (
    AdmissionConfig,
    GovernorConfig,
    RetryPolicy,
    SCCService,
    ServiceConfig,
)
from repro.service.server import serve_stdin


def run_request(graph="wiki", scale=0.05, **extra):
    req = {"op": "run", "graph": graph, "scale": scale}
    req.update(extra)
    return req


def tarjan_crc(graph="wiki", scale=0.05):
    g = generate(graph, scale=scale, seed=None).graph
    labels = canonical_labels(
        strongly_connected_components(g, "tarjan").labels
    )
    return crc32_chunks(labels.tobytes())


def request_faults(*specs):
    """Pin fault specs to the service's 'request' site."""
    return FaultPlan(
        FaultSpec(site="request", **spec) for spec in specs
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestRunRequests:
    def test_labels_match_cold_tarjan(self):
        with SCCService() as svc:
            resp = svc.handle(run_request(id="r1"))
        assert resp["ok"], resp
        assert resp["id"] == "r1"
        assert resp["labels_crc32"] == tarjan_crc()
        assert resp["attempts"] == 1
        assert resp["backend_used"] == "serial"

    def test_second_request_rides_warm(self):
        with SCCService() as svc:
            first = svc.handle(run_request())
            second = svc.handle(run_request())
        assert not first["warm"] and second["warm"]
        assert first["labels_crc32"] == second["labels_crc32"]
        assert (
            first["session_fingerprint"] == second["session_fingerprint"]
        )

    def test_methods_agree(self):
        with SCCService() as svc:
            crcs = {
                svc.handle(run_request(method=m))["labels_crc32"]
                for m in ("method1", "method2", "tarjan")
            }
        assert len(crcs) == 1

    def test_unknown_op_is_an_error_response(self):
        with SCCService() as svc:
            resp = svc.handle({"op": "nope"})
        assert not resp["ok"]
        assert "unknown op" in resp["error"]

    def test_missing_graph_is_an_error_response(self):
        with SCCService() as svc:
            resp = svc.handle({"op": "run"})
        assert not resp["ok"]
        assert "graph" in resp["error"]

    def test_unknown_request_key_rejected(self):
        with SCCService() as svc:
            resp = svc.handle(run_request(tmieout=3))
        assert not resp["ok"]
        assert "tmieout" in resp["error"]

    def test_bad_graph_fails_fast_no_retry(self):
        with SCCService() as svc:
            resp = svc.handle(run_request(graph="/no/such/file.txt"))
        assert not resp["ok"]
        assert resp["attempts"] == 1  # permanent: no retry burn


class TestDeadlines:
    def test_expired_deadline_fails_typed(self):
        config = ServiceConfig(
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0)
        )
        with SCCService(config) as svc:
            resp = svc.handle(run_request(deadline=1e-7))
        assert not resp["ok"]
        assert resp["error_type"] == "PhaseTimeoutError"
        assert resp["exit_code"] == 14
        # timeouts are transient: the whole budget was spent trying.
        assert resp["attempts"] == 2

    def test_generous_deadline_succeeds(self):
        with SCCService() as svc:
            resp = svc.handle(run_request(deadline=60.0))
        assert resp["ok"], resp


class TestOverloadShedding:
    def test_saturated_queue_sheds_typed(self):
        config = ServiceConfig(
            admission=AdmissionConfig(max_queue=1),
        )
        with SCCService(config) as svc:
            ticket = svc.admission.admit()  # occupy the only slot
            resp = svc.handle(run_request())
            ticket.release()
        assert not resp["ok"]
        assert resp["shed"]
        assert resp["error_type"] == "ServiceOverloadError"
        assert resp["exit_code"] == 17
        stats = svc.stats()
        assert stats["shed"] == 1 and stats["completed"] == 0

    def test_memory_budget_refusal(self):
        config = ServiceConfig(
            admission=AdmissionConfig(
                max_queue=4, memory_budget_bytes=1000
            ),
        )
        with SCCService(config) as svc:
            resp = svc.handle(
                run_request(nodes=10_000_000, edges=100_000_000)
            )
        assert not resp["ok"]
        assert resp["error_type"] == "MemoryBudgetError"
        assert resp["exit_code"] == 18

    def test_governor_veto_sheds(self):
        config = ServiceConfig(
            governor=GovernorConfig(
                soft_limit_bytes=1, hard_limit_bytes=1
            ),
        )
        with SCCService(config) as svc:
            svc.governor._rss_fn = lambda: 10**12
            resp = svc.handle(run_request())
        assert not resp["ok"]
        assert resp["error_type"] == "ServiceOverloadError"
        assert "hard limit" in resp["error"]


class TestRetryAndBreaker:
    def test_transient_request_fault_retried_to_success(self):
        config = ServiceConfig(
            retry=RetryPolicy(
                max_attempts=3, backoff_base=0.0, jitter=0.0
            ),
        )
        plan = request_faults({"kind": "raise", "index": 0, "times": 1})
        with SCCService(config, fault_plan=plan) as svc:
            resp = svc.handle(run_request())
        assert resp["ok"], resp
        assert resp["attempts"] == 2
        assert resp["retried_errors"] and "FaultInjected" in str(
            resp["retried_errors"][0]
        )
        assert resp["labels_crc32"] == tarjan_crc()
        assert svc.stats()["retried"] == 1

    def test_breaker_trips_and_degrades_backend(self):
        clock = FakeClock()
        config = ServiceConfig(
            retry=RetryPolicy(
                max_attempts=3, backoff_base=0.0, jitter=0.0
            ),
            breaker_threshold=1,
            breaker_cooldown=60.0,
        )
        # the first attempt (on the requested backend) fails; the
        # tripped breaker must route the retry down the ladder.
        plan = request_faults({"kind": "raise", "index": 0, "times": 1})
        with SCCService(config, fault_plan=plan, clock=clock) as svc:
            resp = svc.handle(run_request(backend="threads"))
            assert resp["ok"], resp
            assert resp["backend_requested"] == "threads"
            assert resp["backend_used"] == "serial"
            assert svc.stats()["degraded_runs"] == 1
            assert svc.breakers.breaker("threads").state == "open"
            # later requests skip the broken backend outright.
            resp2 = svc.handle(run_request(backend="threads"))
            assert resp2["ok"] and resp2["backend_used"] == "serial"
            # cooldown heals: the probe goes back to the real backend.
            clock.now = 60.0
            resp3 = svc.handle(run_request(backend="threads"))
            assert resp3["ok"] and resp3["backend_used"] == "threads"
            assert svc.breakers.breaker("threads").state == "closed"
        assert (
            resp["labels_crc32"]
            == resp2["labels_crc32"]
            == resp3["labels_crc32"]
            == tarjan_crc()
        )

    def test_permanent_failure_does_not_trip_breaker(self):
        config = ServiceConfig(breaker_threshold=1)
        with SCCService(config) as svc:
            svc.handle(run_request(graph="/no/such/file.txt"))
            assert svc.breakers.to_dict() == {}  # nothing recorded


class TestDrainAndStats:
    def test_drain_sheds_new_requests(self):
        with SCCService() as svc:
            ok = svc.handle(run_request())
            svc.drain()
            after = svc.handle(run_request())
        assert ok["ok"]
        assert not after["ok"] and after["shed"]
        assert svc.handle({"op": "health"})["status"] == "draining"

    def test_shutdown_op_drains(self):
        with SCCService() as svc:
            resp = svc.handle({"op": "shutdown"})
            assert resp["ok"] and resp["draining"]
            assert svc.draining

    def test_health_and_stats_shapes(self):
        with SCCService() as svc:
            svc.handle(run_request())
            health = svc.handle({"op": "health"})
            stats = svc.handle({"op": "stats"})
        assert health["ok"] and health["status"] == "serving"
        assert health["sessions"] == 1
        assert stats["requests"] == 1 and stats["completed"] == 1
        assert stats["admission"]["admitted"] == 1
        (sess,) = stats["sessions"].values()
        assert sess["runs"] == 1
        assert sess["estimated_bytes"] > 0


class TestStdinTransport:
    def run_lines(self, svc, lines, **kwargs):
        out = io.StringIO()
        code = serve_stdin(
            svc,
            in_stream=io.StringIO("\n".join(lines) + "\n"),
            out_stream=out,
            **kwargs,
        )
        responses = [
            json.loads(line) for line in out.getvalue().splitlines()
        ]
        return code, responses

    def test_requests_answered_and_report_written(self, tmp_path):
        report = tmp_path / "svc.json"
        with SCCService() as svc:
            code, responses = self.run_lines(
                svc,
                [
                    json.dumps(run_request(id="a")),
                    json.dumps({"op": "health", "id": "h"}),
                    json.dumps({"op": "shutdown", "id": "s"}),
                ],
                report_path=report,
            )
        assert code == 0
        by_id = {r.get("id"): r for r in responses}
        assert by_id["a"]["ok"] and by_id["a"]["labels_crc32"]
        assert by_id["h"]["ok"]
        assert by_id["s"]["draining"]
        data = json.loads(report.read_text())
        assert data["requests"] == 1 and data["completed"] == 1

    def test_bad_json_line_answered_not_fatal(self):
        with SCCService() as svc:
            code, responses = self.run_lines(
                svc,
                ["{not json", json.dumps(run_request(id="good"))],
            )
        assert code == 0
        bad = [r for r in responses if not r.get("ok")]
        good = [r for r in responses if r.get("ok")]
        assert bad and "bad request JSON" in bad[0]["error"]
        assert good and good[0]["id"] == "good"

    def test_max_requests_drains_after_n(self):
        with SCCService() as svc:
            code, responses = self.run_lines(
                svc,
                [json.dumps(run_request(id=str(i))) for i in range(4)],
                max_requests=2,
            )
        assert code == 0
        ok = [r for r in responses if r.get("ok")]
        shed = [r for r in responses if r.get("shed")]
        assert len(ok) == 2
        # the two requests past the cap were shed typed, not dropped.
        assert len(shed) == 2
        assert all(r["exit_code"] == 17 for r in shed)

    def test_lines_buffered_at_drain_get_typed_responses(self):
        """Every line on the wire gets an answer even when the service
        drains before reading it (the SIGTERM contract)."""
        with SCCService() as svc:
            svc.drain()
            code, responses = self.run_lines(
                svc, [json.dumps(run_request(id="late"))]
            )
        assert code == 0
        assert len(responses) == 1
        assert responses[0]["shed"]


class TestConcurrentRequests:
    def test_parallel_callers_all_answered_correctly(self):
        expected = tarjan_crc()
        config = ServiceConfig(admission=AdmissionConfig(max_queue=8))
        results = []
        with SCCService(config) as svc:
            svc.handle(run_request())  # warm the session first

            def call(i):
                results.append(svc.handle(run_request(id=str(i))))

            threads = [
                threading.Thread(target=call, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert all(r["ok"] for r in results), results
        assert {r["labels_crc32"] for r in results} == {expected}
