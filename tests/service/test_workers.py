"""Tests for the sharded serving tier: consistent-hash routing, the
worker fleet end-to-end, budget sharding, and drain semantics.

Crash/SIGKILL drills live in test_chaos_workers.py (``-m chaos``);
everything here runs in tier-1 and keeps the fleets small and the
graphs tiny.
"""

import dataclasses

import pytest

from repro.core.api import strongly_connected_components
from repro.core.result import canonical_labels
from repro.engine import Engine
from repro.errors import ServiceOverloadError, WorkerLostError
from repro.generators import generate
from repro.ioutil import crc32_chunks
from repro.service.governor import GovernorConfig
from repro.service.retry import classify_failure
from repro.service.server import SCCService, ServiceConfig
from repro.service.workers import (
    HashRing,
    RemoteRequestError,
    WorkerTierConfig,
    routing_fingerprint,
)

GRAPH, SCALE = "wiki", 0.05


def oracle_crc():
    g = generate(GRAPH, scale=SCALE, seed=None).graph
    labels = canonical_labels(
        strongly_connected_components(g, "tarjan").labels
    )
    return crc32_chunks(labels.tobytes())


class TestHashRing:
    def test_lookup_returns_distinct_slots_in_order(self):
        ring = HashRing(4)
        got = ring.lookup(12345, count=4)
        assert sorted(got) == [0, 1, 2, 3]
        # prefixes agree: the primary never changes as count grows.
        assert ring.lookup(12345, count=1) == got[:1]
        assert ring.lookup(12345, count=2) == got[:2]

    def test_count_clamped_to_slots(self):
        ring = HashRing(2)
        assert len(ring.lookup(7, count=10)) == 2
        assert len(ring.lookup(7, count=0)) == 1

    def test_deterministic_across_instances(self):
        a, b = HashRing(5), HashRing(5)
        for key in (0, 1, 999, 2**31):
            assert a.lookup(key, 3) == b.lookup(key, 3)

    def test_spreads_keys_over_slots(self):
        import zlib

        ring = HashRing(4, virtual_nodes=64)
        owners = {
            ring.lookup(zlib.crc32(str(k).encode()))[0]
            for k in range(200)
        }
        assert owners == {0, 1, 2, 3}

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, virtual_nodes=0)


class TestRoutingFingerprint:
    def test_same_graph_identity_same_key(self):
        a = {"graph": "wiki", "scale": 0.05, "id": "x", "seed": 1}
        b = {"graph": "wiki", "scale": 0.05, "id": "y", "seed": 1}
        assert routing_fingerprint(a) == routing_fingerprint(b)

    def test_different_identity_different_key(self):
        base = {"graph": "wiki", "scale": 0.05}
        assert routing_fingerprint(base) != routing_fingerprint(
            dict(base, scale=0.1)
        )
        assert routing_fingerprint(base) != routing_fingerprint(
            dict(base, graph="flickr")
        )


class TestTierConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerTierConfig(num_workers=0)
        with pytest.raises(ValueError):
            WorkerTierConfig(heartbeat_interval=0)
        with pytest.raises(ValueError):
            WorkerTierConfig(max_replays=-1)

    def test_shard_divides_budgets(self):
        cfg = ServiceConfig(
            worker_processes=4,
            max_sessions=8,
            journal_path="/tmp/x.ndjson",
            governor=GovernorConfig(
                soft_limit_bytes=400, hard_limit_bytes=800
            ),
        )
        shard = cfg.shard()
        assert shard.worker_processes == 1
        assert shard.journal_path is None
        assert shard.max_sessions == 2
        assert shard.governor.soft_limit_bytes == 100
        assert shard.governor.hard_limit_bytes == 200

    def test_shard_without_governor(self):
        shard = ServiceConfig(worker_processes=3, max_sessions=2).shard()
        assert shard.governor is None
        assert shard.max_sessions == 1  # floor, never 0


class TestFailureClassification:
    def test_worker_lost_is_transient(self):
        assert classify_failure(WorkerLostError("gone")) == "transient"
        assert WorkerLostError("x", worker=2).exit_code == 19

    def test_remote_error_carries_worker_verdict(self):
        transient = RemoteRequestError(
            {"error_type": "PhaseTimeoutError", "exit_code": 14,
             "error": "deadline", "transient": True}
        )
        permanent = RemoteRequestError(
            {"error_type": "GraphIngestError", "exit_code": 11,
             "error": "bad file", "transient": False}
        )
        assert classify_failure(transient) == "transient"
        assert classify_failure(permanent) == "permanent"
        assert permanent.exit_code == 11
        assert "GraphIngestError" in str(permanent)


class TestEngineRebalance:
    def test_set_max_sessions_shrink_evicts_lru(self):
        with Engine(max_sessions=4) as eng:
            for scale in (0.03, 0.05, 0.08):
                eng.load(GRAPH, scale=scale)
            assert len(eng.sessions) == 3
            assert eng.set_max_sessions(1) == 2
            assert len(eng.sessions) == 1
            # the survivor is the most recently used.
            assert eng.sessions[0].graph.num_nodes > 0
            with pytest.raises(ValueError):
                eng.set_max_sessions(0)

    def test_set_max_sessions_grow_is_noop_eviction(self):
        with Engine(max_sessions=1) as eng:
            eng.load(GRAPH, scale=SCALE)
            assert eng.set_max_sessions(8) == 0
            assert eng.max_sessions == 8


class TestShardedService:
    @pytest.fixture()
    def service(self, tmp_path):
        cfg = ServiceConfig(
            worker_processes=2,
            heartbeat_interval=0.2,
            journal_path=str(tmp_path / "requests.ndjson"),
        )
        svc = SCCService(cfg)
        yield svc
        svc.drain()
        svc.close()

    def test_end_to_end_matches_oracle(self, service):
        want = oracle_crc()
        first = service.handle(
            {"op": "run", "graph": GRAPH, "scale": SCALE, "id": "a"}
        )
        assert first["ok"], first
        assert first["labels_crc32"] == want
        assert first["worker"] in (0, 1)
        assert first["replays"] == 0
        # same graph identity: same worker, warm session this time.
        second = service.handle(
            {"op": "run", "graph": GRAPH, "scale": SCALE, "id": "b"}
        )
        assert second["ok"]
        assert second["worker"] == first["worker"]
        assert second["warm"] is True
        assert second["labels_crc32"] == want

    def test_worker_failure_surfaces_original_taxonomy(
        self, service, tmp_path
    ):
        bad = tmp_path / "bad.txt"
        bad.write_text("0 1\nnot an edge\n")
        resp = service.handle(
            {"op": "run", "graph": str(bad), "id": "bad"}
        )
        assert resp["ok"] is False
        assert resp["error_type"] == "GraphIngestError"
        assert resp["exit_code"] == 11
        assert resp["transient"] is False

    def test_stats_merge_fleet_and_journal(self, service):
        service.handle(
            {"op": "run", "graph": GRAPH, "scale": SCALE, "id": "a"}
        )
        service.supervisor.collect_stats()
        stats = service.stats()
        fleet = stats["workers"]
        assert fleet["num_workers"] == 2
        assert fleet["live_workers"] == 2
        assert fleet["deaths"] == 0
        assert set(fleet["workers"]) == {"0", "1"}
        worker_stats = [
            w["stats"]
            for w in fleet["workers"].values()
            if w["stats"] is not None
        ]
        assert sum(s["completed"] for s in worker_stats) == 1
        assert stats["journal"]["balanced"] is True
        assert stats["journal"]["accepted"] == 1

    def test_drain_refuses_new_work_typed(self, service):
        service.drain()
        resp = service.handle(
            {"op": "run", "graph": GRAPH, "scale": SCALE, "id": "late"}
        )
        assert resp["ok"] is False
        assert resp["shed"] is True
        assert resp["exit_code"] == 17
        assert service.journal.reconcile()["balanced"] is True

    def test_supervisor_execute_after_drain_raises(self, service):
        service.supervisor.begin_drain()
        with pytest.raises(ServiceOverloadError):
            service.supervisor.execute(
                {"graph": GRAPH, "scale": SCALE}, seq=99
            )

    def test_report_includes_every_shard(self, service, tmp_path):
        service.handle(
            {"op": "run", "graph": GRAPH, "scale": SCALE, "id": "a"}
        )
        report = tmp_path / "report.json"
        service.write_report(report)
        import json

        data = json.loads(report.read_text())
        assert data["workers"]["num_workers"] == 2
        assert data["journal"]["accepted"] == 1


class TestDegradedTopology:
    def test_single_worker_stays_in_process(self):
        cfg = ServiceConfig(worker_processes=1)
        with SCCService(cfg) as svc:
            assert svc.supervisor is None
            resp = svc.handle(
                {"op": "run", "graph": GRAPH, "scale": SCALE}
            )
            assert resp["ok"]
            assert "worker" not in resp

    def test_lost_fleet_falls_back_to_local_engine(self, tmp_path):
        cfg = ServiceConfig(
            worker_processes=2,
            heartbeat_interval=0.2,
            journal_path=str(tmp_path / "j.ndjson"),
        )
        with SCCService(cfg) as svc:
            # simulate the whole fleet lost for good.
            svc.supervisor.stop()
            for h in svc.supervisor._handles:
                h.state = "lost"
            assert svc.supervisor.available is False
            resp = svc.handle(
                {"op": "run", "graph": GRAPH, "scale": SCALE}
            )
            assert resp["ok"], resp
            assert resp["labels_crc32"] == oracle_crc()
            assert svc.journal.reconcile()["balanced"] is True
