"""Chaos drills for the live edge-stream ingestion tier.

Two drills, both excluded from tier-1 (``-m 'not chaos'``) and run by
the CI ``stream-ingest`` job with ``pytest -m chaos``:

* **Fault gauntlet** — one consumer rides out every seeded network
  fault kind (disconnect, stall, garbage, dup) in a single pass and
  still converges to the labels an offline oracle computes over the
  *same* (deterministically garbled) byte stream.
* **SIGKILL resume** — a ``repro stream --connect`` consumer feeding a
  serve daemon is SIGKILLed twice mid-stream and the feed is dropped
  twice on top; each restart resumes from the CRC-guarded watermark,
  re-applies nothing that was committed, and the daemon's final labels
  are bit-identical to a from-scratch application of every edit.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.result import canonical_labels
from repro.core.tarjan import tarjan_scc
from repro.engine import Engine
from repro.generators import generate
from repro.graph.delta import DeltaCSR
from repro.ingest.checkpoint import StreamCheckpoint
from repro.ingest.consumer import EngineApplier, StreamConsumer
from repro.ingest.parser import RecordParser
from repro.ingest.sources import (
    DEFAULT_CHUNK_BYTES,
    FileTailSource,
    _garble,
)
from repro.ioutil import crc32_chunks
from repro.kernels import use_backend
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.service.journal import scan_journal
from repro.service.server import SCCService, ServiceConfig, serve_socket

pytestmark = pytest.mark.chaos

GRAPH, SCALE = "wiki", 0.05
BACKENDS = ("numpy", "numba")


def make_edits(n, seed=1234):
    g = generate(GRAPH, scale=SCALE, seed=None).graph
    rng = np.random.default_rng(seed)
    edits = []
    for u, v in rng.integers(0, g.num_nodes, (n, 2)):
        kind = "add" if rng.random() < 0.75 else "remove"
        edits.append((kind, int(u), int(v)))
    return edits


def write_feed(path, edits, *, garbage_every=None, end=True):
    """Write a text-dialect feed; optionally salt it with garbage
    lines (binary junk and non-edge tokens) the skip policy must eat."""
    with open(path, "wb") as f:
        for i, (kind, u, v) in enumerate(edits):
            if garbage_every and i and i % garbage_every == 0:
                f.write(b"?? not an edge\n")
                f.write(b"+ \xfe\xfe 12\n")
            op = b"+" if kind == "add" else b"-"
            f.write(op + b" %d %d\n" % (u, v))
        if end:
            f.write(b'{"end": true}\n')


def oracle_crc_from_bytes(data):
    """From-scratch oracle over the exact bytes the consumer saw:
    parse with the same skip policy, apply each record in order to a
    fresh delta, then label the snapshot."""
    parser = RecordParser(on_error="skip")
    records = list(parser.feed(data)) + list(parser.flush())
    delta = DeltaCSR(generate(GRAPH, scale=SCALE, seed=None).graph)
    applied = 0
    for rec in records:
        if rec.kind == "end":
            continue
        (delta.add_edge if rec.kind == "add" else delta.remove_edge)(
            rec.u, rec.v
        )
        applied += 1
    labels = canonical_labels(tarjan_scc(delta.snapshot()))
    return crc32_chunks(labels.tobytes()), applied


class TestFaultGauntlet:
    """All four network fault kinds in one pass, on both kernel
    backends (numba falls back to numpy where it is not installed)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_fault_kinds_converge_to_oracle(self, tmp_path, backend):
        C = DEFAULT_CHUNK_BYTES
        edits = make_edits(9000)
        feed = tmp_path / "feed.txt"
        write_feed(feed, edits)
        raw = feed.read_bytes()
        assert len(raw) > 4 * C, "feed must span the garbled chunk"

        garble_spec = FaultSpec(
            kind="garbage", site="stream", index=3,
            bit_flips=64, flip_seed=7,
        )
        # read 0 -> [0,C); 1 -> disconnect, redial, [C,2C); 2 -> stall
        # then [2C,3C); 3 -> garbage over [3C,4C); 4 -> dup of the
        # garbled chunk (overlap-trimmed); 5.. -> the rest.  Only the
        # garbage fault changes content, so the oracle re-garbles
        # exactly chunk [3C,4C) and parses the same byte stream.
        plan = FaultPlan([
            FaultSpec(kind="disconnect", site="stream", index=1),
            FaultSpec(kind="stall", site="stream", index=2,
                      hang_seconds=0.05),
            garble_spec,
            FaultSpec(kind="dup", site="stream", index=4),
        ])
        garbled = raw[:3 * C] + _garble(raw[3 * C:4 * C], garble_spec) \
            + raw[4 * C:]
        want_crc, want_applied = oracle_crc_from_bytes(garbled)

        with use_backend(backend):
            eng = Engine(backend="serial")
            try:
                session = eng.load(GRAPH, scale=SCALE)
                source = FileTailSource(
                    str(feed), follow=False, fault_plan=plan
                )
                consumer = StreamConsumer(
                    source,
                    EngineApplier(eng, session),
                    batch_edges=64,
                    batch_age=0.05,
                )
                consumer.run()
            finally:
                eng.close()

        faults = source.stats()["faults"]
        for kind in ("disconnect", "stall", "garbage", "dup"):
            assert faults[kind] == 1, faults
        # no kill in this drill: every surviving record applies exactly
        # once — the dup'd chunk is absorbed byte-exactly upstream
        assert consumer.records_applied == want_applied
        assert consumer.labels_crc32 == want_crc


def _free_port_path(tmp_path, name):
    return str(tmp_path / name)


def start_daemon(tmp_path):
    svc = SCCService(ServiceConfig(
        worker_processes=0,
        journal_path=str(tmp_path / "journal.ndjson"),
    ))
    sock_path = _free_port_path(tmp_path, "svc.sock")
    t = threading.Thread(
        target=serve_socket,
        args=(svc, sock_path),
        daemon=True,
    )
    t.start()
    deadline = time.monotonic() + 10
    while not os.path.exists(sock_path):
        assert time.monotonic() < deadline, "daemon socket never appeared"
        time.sleep(0.02)
    return svc, sock_path, t


def daemon_request(sock_path, request, timeout=60.0):
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(timeout)
        s.connect(sock_path)
        s.sendall((json.dumps(request) + "\n").encode())
        buf = b""
        while b"\n" not in buf:
            chunk = s.recv(1 << 16)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf.decode())


def consumer_cmd(feed, sock_path, ckpt, report, fault_plan,
                 stall_seconds):
    cmd = [
        sys.executable, "-m", "repro", "stream", GRAPH,
        "--scale", str(SCALE),
        "--source", f"tail-once:{feed}",
        "--connect", sock_path,
        "--checkpoint", str(ckpt),
        "--batch-edges", "32",
        "--batch-age", "0.05",
        "--report", str(report),
    ]
    if fault_plan:
        cmd += ["--fault-plan", fault_plan]
    if stall_seconds is not None:
        cmd += ["--stall-seconds", str(stall_seconds)]
    return cmd


def spawn_consumer(*args):
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).parents[1])
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        consumer_cmd(*args),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def kill_when_offset_past(proc, ckpt, floor, timeout=60.0):
    """SIGKILL the consumer once its committed watermark passes
    ``floor`` — i.e. genuinely mid-stream, with progress on disk."""
    cp = StreamCheckpoint(str(ckpt))
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        wm = cp.load()
        if wm is not None and wm.offset > floor:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            assert proc.returncode == -signal.SIGKILL
            return wm.offset
        if proc.poll() is not None:
            raise AssertionError(
                f"consumer exited rc={proc.returncode} before the "
                f"kill window (offset floor {floor})"
            )
        time.sleep(0.002)
    raise AssertionError("watermark never passed the kill floor")


class TestSigkillResumeDrill:
    def test_killed_twice_dropped_twice_resumes_bit_identical(
        self, tmp_path
    ):
        edits = make_edits(6000, seed=4321)
        feed = tmp_path / "feed.txt"
        # salt the feed itself with garbage records: resume must not
        # depend on every line being clean
        write_feed(feed, edits, garbage_every=500)
        want_crc, want_applied = oracle_crc_from_bytes(feed.read_bytes())

        ckpt = tmp_path / "stream.ckpt"
        svc, sock_path, t = start_daemon(tmp_path)
        try:
            # runs 1 and 2: stall@1 holds the consumer mid-stream for
            # a wide kill window; disconnect@2 drops the feed if the
            # kill lands late.  SIGKILL as soon as progress commits.
            p1 = spawn_consumer(
                feed, sock_path, ckpt, tmp_path / "r1.json",
                "stall@1,disconnect@2", 3.0,
            )
            off1 = kill_when_offset_past(p1, ckpt, 0)
            assert off1 > 0

            p2 = spawn_consumer(
                feed, sock_path, ckpt, tmp_path / "r2.json",
                "stall@1,disconnect@2", 3.0,
            )
            off2 = kill_when_offset_past(p2, ckpt, off1)
            assert off2 > off1

            # run 3: two more feed drops plus a dup and a short stall,
            # then drain to the end marker
            report3 = tmp_path / "r3.json"
            p3 = spawn_consumer(
                feed, sock_path, ckpt, report3,
                "disconnect@1,dup@2,stall@3,disconnect@4", 0.1,
            )
            assert p3.wait(timeout=240) == 0
            stats = json.loads(report3.read_text())
            assert stats["ended"] is True
            # the final run resumed from the committed watermark (a
            # seekable source skips the prefix by seeking, so nothing
            # before the watermark is even re-read)
            assert stats["resumed"] is True
            assert stats["committed_offset"] > off2
            # the dup fault re-delivered a chunk and the overlap trim
            # absorbed it byte-exactly
            assert stats["parser"]["overlap_bytes"] > 0
            # at-least-once: a batch applied but not yet committed at
            # SIGKILL time may be re-sent (idempotent), never lost
            assert stats["records_applied"] >= want_applied
            # the feed was dropped twice in this run alone (an instant
            # reopen succeeds on the first dial, so only the fault
            # counter records the drop)
            assert stats["source"]["faults"]["disconnect"] == 2
            assert stats["source"]["faults"]["dup"] == 1
            assert stats["source"]["faults"]["stall"] == 1

            # the daemon's live session is bit-identical to the
            # from-scratch oracle over every surviving record
            final = daemon_request(sock_path, {
                "op": "update", "graph": GRAPH, "scale": SCALE,
                "inserts": [], "deletes": [],
            })
            assert final["ok"], final
            assert final["labels_crc32"] == want_crc
            assert final["graph_version"] >= 1

            daemon_request(sock_path, {"op": "shutdown"})
            t.join(timeout=30)
        finally:
            svc.close()
        rec = scan_journal(str(tmp_path / "journal.ndjson"))
        assert rec.balanced
