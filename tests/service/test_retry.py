"""Tests for the retry policy, failure taxonomy and circuit breakers."""

import pytest

from repro.errors import (
    GraphIngestError,
    GraphValidationError,
    MemoryBudgetError,
    PhaseTimeoutError,
    ServiceOverloadError,
)
from repro.runtime.faults import FaultInjected
from repro.runtime.lifecycle import DEGRADE_CHAIN
from repro.runtime.supervisor import PoolBrokenError
from repro.service.retry import (
    BackendBreakers,
    CircuitBreaker,
    RetryPolicy,
    classify_failure,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestClassifyFailure:
    @pytest.mark.parametrize(
        "exc",
        [
            PoolBrokenError("pool died"),
            PhaseTimeoutError("fwbw", 1.0),
            FaultInjected("injected"),
            TimeoutError("slow"),
            ConnectionError("gone"),
            OSError("fork failed"),
        ],
    )
    def test_transient(self, exc):
        assert classify_failure(exc) == "transient"

    @pytest.mark.parametrize(
        "exc",
        [
            GraphIngestError("bad line"),
            GraphValidationError("bad csr"),
            MemoryBudgetError("too big"),
            ServiceOverloadError(),
            ValueError("nope"),
            TypeError("nope"),
            KeyError("nope"),
            FileNotFoundError("no such graph file"),
            PermissionError("unreadable graph file"),
            RuntimeError("unknown failures fail fast"),
        ],
    )
    def test_permanent(self, exc):
        assert classify_failure(exc) == "permanent"

    def test_specific_permanent_beats_transient_base(self):
        # GraphIngestError IS-A ValueError; PhaseTimeoutError IS-A
        # TimeoutError — the taxonomy must pick the right side of both.
        assert issubclass(GraphIngestError, ValueError)
        assert issubclass(PhaseTimeoutError, TimeoutError)
        assert classify_failure(GraphIngestError("x")) == "permanent"
        assert classify_failure(PhaseTimeoutError("p", 1.0)) == "transient"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1)

    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5, jitter=0.1
        )
        delays_a = [policy.delay(a, key=7) for a in range(6)]
        delays_b = [policy.delay(a, key=7) for a in range(6)]
        assert delays_a == delays_b  # same (seed, key, attempt) -> same
        for attempt, d in enumerate(delays_a):
            base = min(0.1 * 2.0 ** attempt, 0.5)
            assert base * 0.9 <= d <= base * 1.1
        # a different key jitters differently somewhere.
        other = [policy.delay(a, key=8) for a in range(6)]
        assert other != delays_a

    def test_zero_jitter_exact_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.0, backoff_max=10.0)
        assert [policy.delay(a) for a in range(3)] == [0.1, 0.2, 0.4]

    def test_first_try_success_no_sleep(self):
        slept = []
        outcome = RetryPolicy(max_attempts=3).execute(
            lambda attempt: "ok", sleep=slept.append
        )
        assert outcome.ok and outcome.value == "ok"
        assert outcome.attempts == 1
        assert slept == [] and outcome.backoff_seconds == 0.0

    def test_transient_retries_then_succeeds(self):
        slept = []

        def fn(attempt):
            if attempt < 2:
                raise PoolBrokenError("pool died")
            return attempt

        outcome = RetryPolicy(max_attempts=3, jitter=0.0).execute(
            fn, sleep=slept.append
        )
        assert outcome.ok and outcome.value == 2
        assert outcome.attempts == 3
        assert len(outcome.errors) == 2
        assert len(slept) == 2
        assert outcome.backoff_seconds == pytest.approx(sum(slept))

    def test_permanent_fails_fast(self):
        calls = []

        def fn(attempt):
            calls.append(attempt)
            raise GraphIngestError("bad input")

        with pytest.raises(GraphIngestError) as info:
            RetryPolicy(max_attempts=5).execute(fn, sleep=lambda s: None)
        assert calls == [0]  # no second attempt
        assert info.value.__retry_outcome__.attempts == 1

    def test_budget_exhaustion_reraises_last(self):
        def fn(attempt):
            raise PoolBrokenError(f"attempt {attempt}")

        with pytest.raises(PoolBrokenError, match="attempt 2") as info:
            RetryPolicy(max_attempts=3, jitter=0.0).execute(
                fn, sleep=lambda s: None
            )
        outcome = info.value.__retry_outcome__
        assert outcome.attempts == 3 and not outcome.ok
        assert len(outcome.errors) == 3

    def test_on_failure_hook_sees_every_failure(self):
        seen = []

        def fn(attempt):
            if attempt == 0:
                raise TimeoutError("slow")
            return "fine"

        RetryPolicy(max_attempts=2, jitter=0.0).execute(
            fn,
            sleep=lambda s: None,
            on_failure=lambda exc, attempt: seen.append(
                (type(exc).__name__, attempt)
            ),
        )
        assert seen == [("TimeoutError", 0)]


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)
        assert br.state == "closed" and br.allows
        br.record(False)
        br.record(False)
        assert br.state == "closed"  # 2 < threshold
        br.record(False)
        assert br.state == "open" and not br.allows
        assert br.trips == 1

    def test_success_resets_the_streak(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=2, cooldown=10.0, clock=clock)
        br.record(False)
        br.record(True)
        br.record(False)
        assert br.state == "closed"  # never 2 consecutive

    def test_cooldown_half_open_then_heal(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        br.record(False)
        assert br.state == "open"
        clock.advance(5.0)
        assert br.state == "half-open" and br.allows
        br.record(True)  # probe succeeds
        assert br.state == "closed"

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        br.record(False)
        clock.advance(5.0)
        assert br.state == "half-open"
        br.record(False)  # probe fails
        assert br.state == "open"
        clock.advance(4.9)
        assert br.state == "open"  # full fresh cooldown
        clock.advance(0.1)
        assert br.state == "half-open"


class TestBackendBreakers:
    def test_resolve_walks_the_degradation_ladder(self):
        clock = FakeClock()
        brs = BackendBreakers(threshold=1, cooldown=60.0, clock=clock)
        assert brs.resolve("supervised") == "supervised"
        brs.record("supervised", False)
        assert brs.resolve("supervised") == "processes"
        brs.record("processes", False)
        assert brs.resolve("supervised") == "serial"
        # serial is the floor: its breaker never routes traffic away.
        brs.record("serial", False)
        assert brs.resolve("serial") == "serial"

    def test_chain_matches_the_lifecycle_ladder(self):
        brs = BackendBreakers()
        assert brs.chain == dict(DEGRADE_CHAIN)

    def test_heal_restores_the_requested_backend(self):
        clock = FakeClock()
        brs = BackendBreakers(threshold=1, cooldown=5.0, clock=clock)
        brs.record("processes", False)
        assert brs.resolve("processes") == "serial"
        clock.advance(5.0)  # half-open: probe allowed through
        assert brs.resolve("processes") == "processes"
        brs.record("processes", True)
        assert brs.resolve("processes") == "processes"

    def test_to_dict_reports_states(self):
        brs = BackendBreakers(threshold=1)
        brs.record("processes", False)
        d = brs.to_dict()
        assert d["processes"]["state"] == "open"
        assert d["processes"]["trips"] == 1
