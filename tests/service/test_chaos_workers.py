"""Chaos drills for the sharded serving tier: workers SIGKILLed
mid-request under a saturating mixed-graph burst, in-flight requests
replayed from the journal onto survivors with bit-identical labels,
dead workers respawned within the heartbeat budget.

Excluded from tier-1 (``-m 'not chaos'``); run with ``pytest -m chaos``.
This is the drill the CI ``serve-workers`` job runs.
"""

import os
import signal
import threading
import time

import pytest

from repro.core.api import strongly_connected_components
from repro.core.result import canonical_labels
from repro.generators import generate
from repro.ioutil import crc32_chunks
from repro.kernels import numba_available, use_backend
from repro.service.journal import scan_journal
from repro.service.server import SCCService, ServiceConfig

pytestmark = pytest.mark.chaos

HEARTBEAT = 0.2
#: respawn must land within this after the kill: detection (one pump
#: tick) + the first restart backoff + the fork itself.
RESPAWN_BUDGET = HEARTBEAT * 10


def oracle_crc(graph, scale):
    g = generate(graph, scale=scale, seed=None).graph
    labels = canonical_labels(
        strongly_connected_components(g, "tarjan").labels
    )
    return crc32_chunks(labels.tobytes())


def busy_worker(supervisor, timeout=15.0):
    """Wait until some worker is carrying in-flight requests."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        with supervisor._lock:
            busy = [
                h
                for h in supervisor._handles
                if h.busy and h.routable and h.pid
            ]
        if busy:
            return busy[0]
        time.sleep(0.002)
    raise AssertionError("no worker ever got busy")


def drive(service, requests):
    """Run ``requests`` through ``service.handle`` concurrently."""
    results = {}

    def run(i, req):
        results[i] = service.handle(req)

    threads = [
        threading.Thread(target=run, args=(i, r))
        for i, r in enumerate(requests)
    ]
    for t in threads:
        t.start()
    return threads, results


class TestWorkerCrashFailover:
    def test_sigkill_mid_burst_loses_nothing(self, tmp_path):
        """The acceptance drill: N=3 workers, a saturating mixed-graph
        burst, one worker SIGKILLed while carrying requests.  Zero
        accepted requests are lost — every one answers ok with the
        oracle's CRC (replays included), the victim respawns within
        the heartbeat budget, and the final ledger reconciles."""
        journal = tmp_path / "requests.ndjson"
        cfg = ServiceConfig(
            worker_processes=3,
            heartbeat_interval=HEARTBEAT,
            journal_path=str(journal),
        )
        mix = [("wiki", 0.05), ("wiki", 0.08), ("flickr", 0.05)]
        oracles = {m: oracle_crc(*m) for m in mix}
        svc = SCCService(cfg)
        try:
            requests = [
                {
                    "op": "run",
                    "graph": g,
                    "scale": s,
                    "id": str(i),
                }
                for i, (g, s) in enumerate(mix * 4)
            ]
            threads, results = drive(svc, requests)
            victim = busy_worker(svc.supervisor)
            os.kill(victim.pid, signal.SIGKILL)
            killed_at = time.time()
            for t in threads:
                t.join()
            # zero lost: every accepted request answered ok, and every
            # answer (replayed or not) matches the cold serial oracle.
            assert len(results) == len(requests)
            for i, resp in results.items():
                assert resp["ok"], resp
                key = mix[i % len(mix)]
                assert resp["labels_crc32"] == oracles[key], resp
            assert svc.supervisor.deaths >= 1
            # the victim comes back within the heartbeat budget.
            deadline = killed_at + RESPAWN_BUDGET
            while time.time() < deadline:
                with svc.supervisor._lock:
                    if victim.state == "live":
                        break
                time.sleep(0.01)
            assert victim.state == "live", (
                f"worker {victim.index} not respawned within "
                f"{RESPAWN_BUDGET:.1f}s (state={victim.state})"
            )
            assert victim.restarts >= 1
            live = svc.stats()["journal"]
            assert live["accepted"] == len(requests)
            assert live["balanced"] is True
        finally:
            svc.drain()
            svc.close()
        # the on-disk ledger agrees after the fact: accepted =
        # completed + shed, and the in-flight requests the victim was
        # carrying were journaled as replayed before they answered.
        rec = scan_journal(journal)
        assert rec.balanced
        assert rec.accepted == len(requests)
        assert rec.shed == 0
        assert rec.replayed >= 1
        assert set(rec.crcs.values()) == set(oracles.values())

    def test_drain_mid_burst_reconciles(self, tmp_path):
        """SIGTERM-style two-phase drain while a burst is in flight:
        whatever was accepted either completes or sheds typed, never
        vanishes."""
        journal = tmp_path / "requests.ndjson"
        cfg = ServiceConfig(
            worker_processes=2,
            heartbeat_interval=HEARTBEAT,
            journal_path=str(journal),
        )
        svc = SCCService(cfg)
        try:
            requests = [
                {"op": "run", "graph": "wiki", "scale": 0.05, "id": str(i)}
                for i in range(8)
            ]
            threads, results = drive(svc, requests)
            busy_worker(svc.supervisor)
            svc.drain()  # phase 1: stop intake
            for t in threads:
                t.join()
            svc.close()  # phase 2: drain fleet, merge stats
        finally:
            svc.close()
        rec = scan_journal(journal)
        assert rec.balanced
        assert rec.accepted == rec.completed + rec.shed
        answered = sum(1 for r in results.values() if r["ok"])
        shed = sum(
            1
            for r in results.values()
            if not r["ok"] and r.get("shed")
        )
        # responses mirror the ledger: ok responses are the completed-
        # ok records, everything else shed typed (exit 17).
        assert answered == len(rec.crcs)
        assert answered + shed == len(requests)


@pytest.mark.parametrize(
    "kernel",
    [
        "numpy",
        pytest.param(
            "numba",
            marks=pytest.mark.skipif(
                not numba_available(), reason="numba not installed"
            ),
        ),
    ],
)
class TestReplayDeterminism:
    def test_replayed_request_crc_is_bit_identical(
        self, tmp_path, kernel
    ):
        """The replay contract, per kernel backend: a journaled request
        re-driven on a *different* worker after its first worker is
        SIGKILLed yields the same canonical ``labels_crc32`` the
        original worker would have produced."""
        journal = tmp_path / "requests.ndjson"
        with use_backend(kernel):
            # workers fork under the override and inherit it.
            cfg = ServiceConfig(
                worker_processes=2,
                heartbeat_interval=HEARTBEAT,
                journal_path=str(journal),
            )
            svc = SCCService(cfg)
            try:
                requests = [
                    {
                        "op": "run",
                        "graph": "wiki",
                        "scale": 0.08,
                        "id": str(i),
                    }
                    for i in range(4)
                ]
                threads, results = drive(svc, requests)
                victim = busy_worker(svc.supervisor)
                os.kill(victim.pid, signal.SIGKILL)
                for t in threads:
                    t.join()
            finally:
                svc.drain()
                svc.close()
        want = oracle_crc("wiki", 0.08)
        replayed = [
            r for r in results.values() if r["ok"] and r["replays"]
        ]
        assert replayed, "the kill never orphaned an in-flight request"
        for resp in results.values():
            assert resp["ok"], resp
            assert resp["labels_crc32"] == want
        rec = scan_journal(journal)
        assert rec.replayed >= len(replayed)
        assert set(rec.crcs.values()) == {want}
        assert rec.balanced
