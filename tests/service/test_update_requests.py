"""The ``update`` request type: validation, version monotonicity, CRC
agreement with full runs, journal version stamps, config plumbing."""

import numpy as np
import pytest

from repro.core.result import canonical_labels
from repro.core.tarjan import tarjan_scc
from repro.engine.dynamic import DynamicSCC
from repro.generators import generate
from repro.graph.delta import DeltaCSR
from repro.ioutil import crc32_chunks
from repro.service.journal import scan_journal
from repro.service.server import SCCService, ServiceConfig

GRAPH, SCALE = "wiki", 0.05


def in_process_service(**kwargs):
    return SCCService(
        ServiceConfig(worker_processes=0, **kwargs)
    )


def oracle_crc(edits):
    """CRC of canonical labels after applying ``edits`` from scratch."""
    g = generate(GRAPH, scale=SCALE, seed=None).graph
    delta = DeltaCSR(g)
    for ins, u, v in edits:
        (delta.add_edge if ins else delta.remove_edge)(u, v)
    labels = canonical_labels(tarjan_scc(delta.snapshot()))
    return crc32_chunks(labels.tobytes())


def update_request(inserts=(), deletes=(), **extra):
    req = {
        "op": "update",
        "graph": GRAPH,
        "scale": SCALE,
        "inserts": [list(e) for e in inserts],
        "deletes": [list(e) for e in deletes],
    }
    req.update(extra)
    return req


class TestValidation:
    def test_unknown_key_rejected(self):
        svc = in_process_service()
        try:
            resp = svc.handle(update_request(bogus=1))
            assert not resp["ok"]
            assert "bogus" in resp["error"]
        finally:
            svc.close()

    def test_graph_required(self):
        svc = in_process_service()
        try:
            req = update_request()
            del req["graph"]
            resp = svc.handle(req)
            assert not resp["ok"]
            assert "graph" in resp["error"]
        finally:
            svc.close()

    def test_malformed_pairs_rejected(self):
        svc = in_process_service()
        try:
            for bad in ([[1]], [[1, 2, 3]], [["a", "b"]], "nope", [1]):
                resp = svc.handle(
                    {"op": "update", "graph": GRAPH, "inserts": bad}
                )
                assert not resp["ok"], bad
        finally:
            svc.close()


class TestUpdateSemantics:
    def test_version_monotone_and_crc_matches_run(self, tmp_path):
        journal = tmp_path / "requests.ndjson"
        svc = in_process_service(journal_path=str(journal))
        edits = []
        try:
            run0 = svc.handle(
                {"op": "run", "graph": GRAPH, "scale": SCALE}
            )
            assert run0["ok"]
            assert run0["graph_version"] == 0
            rng = np.random.default_rng(5)
            n = 0
            versions = []
            for _ in range(4):
                ins = [
                    [int(a), int(b)]
                    for a, b in rng.integers(0, 2000, (6, 2))
                ]
                dels = [
                    [int(a), int(b)]
                    for a, b in rng.integers(0, 2000, (3, 2))
                ]
                resp = svc.handle(
                    update_request(inserts=ins, deletes=dels)
                )
                assert resp["ok"], resp
                versions.append(resp["graph_version"])
                edits.extend((True, u, v) for u, v in ins)
                edits.extend((False, u, v) for u, v in dels)
            assert versions == sorted(versions)
            assert versions[-1] >= 1
            # the update CRC is the run CRC is the oracle CRC
            want = oracle_crc(edits)
            assert resp["labels_crc32"] == want
            run1 = svc.handle(
                {"op": "run", "graph": GRAPH, "scale": SCALE}
            )
            assert run1["ok"]
            assert run1["labels_crc32"] == want
            assert run1["graph_version"] == versions[-1]
            # certified runs carry the graph epoch they labelled
            cert = run1.get("certificate")
            if cert is not None:
                assert cert["graph_version"] == versions[-1]
            stats = svc.stats()
            assert stats["updates"] == 4
            assert stats["updates_applied"] >= 1
        finally:
            svc.drain()
            svc.close()
        rec = scan_journal(journal)
        assert rec.balanced
        stamped = [rec.versions[s] for s in sorted(rec.versions)]
        assert stamped == versions

    def test_idempotent_replay_does_not_bump_version(self):
        svc = in_process_service()
        try:
            first = svc.handle(update_request(inserts=[(1, 2)]))
            assert first["ok"] and first["applied"]
            v = first["graph_version"]
            again = svc.handle(update_request(inserts=[(1, 2)]))
            assert again["ok"]
            assert not again["applied"]
            assert again["graph_version"] == v
            assert again["labels_crc32"] == first["labels_crc32"]
        finally:
            svc.close()

    def test_update_response_shape(self):
        svc = in_process_service()
        try:
            resp = svc.handle(update_request(inserts=[(0, 1)]))
            assert resp["ok"]
            for key in (
                "graph_version",
                "applied",
                "changed",
                "compacted",
                "inserts",
                "deletes",
                "num_sccs",
                "labels_crc32",
                "session_fingerprint",
                "stats",
                "seconds",
            ):
                assert key in resp, key
            assert resp["stats"]["inserts"] == 1
        finally:
            svc.close()

    def test_config_knobs_reach_the_engine(self):
        svc = in_process_service(
            compact_ratio=1e-9, damage_threshold=1.0
        )
        try:
            resp = svc.handle(
                update_request(inserts=[(1, 2), (2, 1)])
            )
            assert resp["ok"]
            # a vanishing compact ratio forces compaction every batch
            assert resp["compacted"]
            session = svc.engine.load(GRAPH, scale=SCALE, seed=None)
            assert session.dynamic.damage_threshold == 1.0
            assert session.delta.log_size == 0
        finally:
            svc.close()

    def test_per_request_knob_overrides_config(self):
        svc = in_process_service()
        try:
            resp = svc.handle(
                update_request(
                    inserts=[(3, 4)], damage_threshold=0.25
                )
            )
            assert resp["ok"]
            session = svc.engine.load(GRAPH, scale=SCALE, seed=None)
            assert session.dynamic.damage_threshold == 0.25
        finally:
            svc.close()


class TestMutableSessionIntegrity:
    def test_updates_keep_checksums_fresh(self):
        """Every update re-seals the delta arrays; a subsequent borrow
        must verify clean rather than tripping on stale sidecars."""
        svc = in_process_service()
        try:
            for i in range(5):
                resp = svc.handle(
                    update_request(inserts=[(i, i + 1)])
                )
                assert resp["ok"], resp
            run = svc.handle(
                {"op": "run", "graph": GRAPH, "scale": SCALE}
            )
            assert run["ok"]
            assert svc.stats()["integrity"]["detected"] == 0
        finally:
            svc.close()

    def test_dynamic_session_agrees_with_maintainer(self):
        svc = in_process_service()
        try:
            resp = svc.handle(
                update_request(inserts=[(10, 20), (20, 10)])
            )
            assert resp["ok"]
            session = svc.engine.load(GRAPH, scale=SCALE, seed=None)
            assert isinstance(session.dynamic, DynamicSCC)
            session.dynamic.verify()
            assert session.version == resp["graph_version"]
        finally:
            svc.close()
