"""Chaos drills for streaming updates on the sharded tier: the mutable
session is pinned to one worker; SIGKILLing that worker mid-stream must
replay the committed update history onto the respawned worker so the
stream converges to the same labels a from-scratch application of every
edit produces.

Excluded from tier-1 (``-m 'not chaos'``); run with ``pytest -m chaos``.
This is the drill the CI ``dynamic-scc`` job runs.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.result import canonical_labels
from repro.core.tarjan import tarjan_scc
from repro.generators import generate
from repro.graph.delta import DeltaCSR
from repro.ioutil import crc32_chunks
from repro.service.journal import scan_journal
from repro.service.server import SCCService, ServiceConfig
from repro.service.workers import mutable_route_token

pytestmark = pytest.mark.chaos

HEARTBEAT = 0.2
GRAPH, SCALE = "wiki", 0.08


def make_batches(num_batches, node_range=500, seed=99):
    """Deterministic mixed insert/delete batches and the flat edit
    list an oracle can re-apply from scratch."""
    rng = np.random.default_rng(seed)
    batches, edits = [], []
    for _ in range(num_batches):
        ins = [
            [int(u), int(v)]
            for u, v in rng.integers(0, node_range, (8, 2))
        ]
        dels = [
            [int(u), int(v)]
            for u, v in rng.integers(0, node_range, (4, 2))
        ]
        batches.append((ins, dels))
        edits.extend((True, u, v) for u, v in ins)
        edits.extend((False, u, v) for u, v in dels)
    return batches, edits


def oracle_crc(edits):
    g = generate(GRAPH, scale=SCALE, seed=None).graph
    delta = DeltaCSR(g)
    for ins, u, v in edits:
        (delta.add_edge if ins else delta.remove_edge)(u, v)
    labels = canonical_labels(tarjan_scc(delta.snapshot()))
    return crc32_chunks(labels.tobytes())


def update_request(ins, dels, i):
    return {
        "op": "update",
        "id": str(i),
        "graph": GRAPH,
        "scale": SCALE,
        "inserts": ins,
        "deletes": dels,
    }


class TestMutableSessionPinning:
    def test_stream_pins_to_one_worker(self, tmp_path):
        """Without any faults: every update of a stream lands on the
        same worker, versions step monotonically, and the final state
        matches the from-scratch oracle."""
        cfg = ServiceConfig(
            worker_processes=2,
            heartbeat_interval=HEARTBEAT,
            journal_path=str(tmp_path / "requests.ndjson"),
        )
        batches, edits = make_batches(6)
        svc = SCCService(cfg)
        try:
            responses = [
                svc.handle(update_request(ins, dels, i))
                for i, (ins, dels) in enumerate(batches)
            ]
            assert all(r["ok"] for r in responses)
            workers = {r["worker"] for r in responses}
            assert len(workers) == 1
            versions = [r["graph_version"] for r in responses]
            assert versions == sorted(versions)
            assert versions[0] >= 1 and versions[-1] <= len(batches)
            assert responses[-1]["labels_crc32"] == oracle_crc(edits)
            # a pinned run request also routes to the session's worker
            run = svc.handle(
                {"op": "run", "graph": GRAPH, "scale": SCALE}
            )
            assert run["ok"]
            assert run["worker"] in workers
            assert run["labels_crc32"] == oracle_crc(edits)
            stats = svc.supervisor.to_dict()
            assert stats["mutable_keys"] == 1
            assert stats["update_history_entries"] == len(batches)
        finally:
            svc.drain()
            svc.close()

    def test_route_token_ignores_seed(self):
        a = mutable_route_token(
            {"op": "update", "graph": "wiki", "scale": 0.1, "seed": 1}
        )
        b = mutable_route_token(
            {"op": "run", "graph": "wiki", "scale": 0.1, "seed": 2}
        )
        assert a == b
        c = mutable_route_token({"op": "run", "graph": "wiki", "scale": 0.2})
        assert a != c


class TestCrashReplayConvergence:
    def test_sigkill_mid_stream_converges_to_oracle(self, tmp_path):
        """The acceptance drill: SIGKILL the pinned worker mid-update-
        stream.  The supervisor replays the committed update history
        into the respawned worker before the next update runs, so the
        stream's final labels are bit-identical to the oracle and the
        journal's version stamps stay monotone."""
        journal = tmp_path / "requests.ndjson"
        cfg = ServiceConfig(
            worker_processes=2,
            heartbeat_interval=HEARTBEAT,
            journal_path=str(journal),
        )
        batches, edits = make_batches(12)
        kill_after = 5
        svc = SCCService(cfg)
        try:
            responses = []
            for i, (ins, dels) in enumerate(batches):
                responses.append(
                    svc.handle(update_request(ins, dels, i))
                )
                assert responses[-1]["ok"], responses[-1]
                if i == kill_after:
                    victim_index = responses[-1]["worker"]
                    with svc.supervisor._lock:
                        victim = svc.supervisor._handles[victim_index]
                        pid = victim.pid
                    os.kill(pid, signal.SIGKILL)
                    # let the heartbeat notice before the next update
                    deadline = time.time() + HEARTBEAT * 20
                    while time.time() < deadline:
                        with svc.supervisor._lock:
                            if victim.state != "live" or victim.pid != pid:
                                break
                        time.sleep(0.01)
            versions = [r["graph_version"] for r in responses]
            assert versions == sorted(versions)
            assert versions[-1] <= len(batches)
            want = oracle_crc(edits)
            assert responses[-1]["labels_crc32"] == want
            assert svc.supervisor.deaths >= 1
            # a fresh run against the replayed session agrees too
            run = svc.handle(
                {"op": "run", "graph": GRAPH, "scale": SCALE}
            )
            assert run["ok"]
            assert run["labels_crc32"] == want
            live = svc.stats()["journal"]
            assert live["balanced"] is True
        finally:
            svc.drain()
            svc.close()
        rec = scan_journal(journal)
        assert rec.balanced
        assert rec.accepted == len(batches) + 1
        stamped = [rec.versions[s] for s in sorted(rec.versions)]
        assert stamped == versions
