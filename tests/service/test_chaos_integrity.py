"""Silent-data-corruption chaos drills for ``repro serve``.

Seeded bit flips rot warm session arrays mid-request; the integrity
tier must detect before any response escapes, quarantine the rotten
session, rebuild from source, and answer with labels bit-identical to
a cold serial reference — in-process and across a ``--workers N``
sharded front.  ``--on-corruption fail`` converts the same rot into a
typed exit-20 answer with no retry.

Excluded from tier-1 (``-m 'not chaos'``); run with ``pytest -m chaos``.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.api import strongly_connected_components
from repro.core.result import canonical_labels
from repro.generators import generate
from repro.ioutil import crc32_chunks

pytestmark = pytest.mark.chaos

GRAPH, SCALE = "wiki", 0.05


def expected_crc():
    g = generate(GRAPH, scale=SCALE, seed=None).graph
    labels = canonical_labels(
        strongly_connected_components(g, "tarjan").labels
    )
    return crc32_chunks(labels.tobytes())


def serve(args, requests, *, timeout=120):
    """Run ``repro serve`` interactively: write one request, read its
    response, then the next.  The lockstep matters here — piping the
    whole payload at once races the trailing ``shutdown`` (which
    drains and sheds queued work) against the drills' detect-and-retry
    attempts, which hold the engine for real work."""
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *args],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    responses = []
    try:
        for req in requests:
            proc.stdin.write(json.dumps(req) + "\n")
            proc.stdin.flush()
            line = proc.stdout.readline()
            assert line, proc.stderr.read()
            responses.append(json.loads(line))
        _, err = proc.communicate(timeout=timeout)
    except BaseException:
        proc.kill()
        proc.wait()
        raise
    assert proc.returncode == 0, err
    return responses


def run_request(ident, **extra):
    req = {"op": "run", "graph": GRAPH, "scale": SCALE, "id": ident}
    req.update(extra)
    return req


class TestSDCDrills:
    def test_in_process_detect_quarantine_recover(self, tmp_path):
        """Rot the warm CSR on the first attempt: detection must force
        a retry off a rebuilt session and the certified answer must be
        bit-identical to the cold reference."""
        report = tmp_path / "sdc_report.json"
        responses = serve(
            ["--report", str(report), "--audit-rate", "1.0"],
            [
                run_request(
                    "rot",
                    fault_plan="corrupt.indices@0",
                    certify="full",
                ),
                run_request("clean"),
                {"op": "shutdown"},
            ],
        )
        want = expected_crc()
        by_id = {r.get("id"): r for r in responses if "id" in r}
        rot = by_id["rot"]
        assert rot["ok"], rot
        assert rot["attempts"] >= 2  # first attempt served rot
        assert rot["labels_crc32"] == want
        assert rot["certificate"]["ok"]
        assert by_id["clean"]["ok"]
        assert by_id["clean"]["labels_crc32"] == want

        stats = json.loads(report.read_text())
        integ = stats["integrity"]
        assert integ["checksums"] is True
        assert integ["detected"] >= 1
        assert integ["quarantines"] >= 1
        assert integ["engine_quarantines"] >= 1
        assert integ["certificates_issued"] == 1
        audit = integ["audit"]
        assert audit["audits_run"] == audit["sampled"] >= 1
        assert audit["mismatches"] == 0

    def test_phase_boundary_rot_is_also_caught(self):
        """A flip landing *between* phases (post-stage at the phase
        site) is caught at the next boundary, not served."""
        responses = serve(
            [],
            [
                run_request(
                    "mid",
                    fault_plan=json.dumps(
                        [
                            {
                                "kind": "corrupt",
                                "site": "phase",
                                "index": 1,
                                "stage": "post",
                                "array": "labels",
                            }
                        ]
                    ),
                ),
                {"op": "shutdown"},
            ],
        )
        (run,) = [r for r in responses if r.get("id") == "mid"]
        assert run["ok"], run
        assert run["attempts"] >= 2
        assert run["labels_crc32"] == expected_crc()

    def test_on_corruption_fail_answers_exit_20(self):
        responses = serve(
            ["--on-corruption", "fail", "--retries", "3"],
            [
                run_request("rot", fault_plan="corrupt.indptr@0"),
                {"op": "shutdown"},
            ],
        )
        (run,) = [r for r in responses if r.get("id") == "rot"]
        assert not run["ok"]
        assert run["exit_code"] == 20
        assert run["error_type"] == "IntegrityError"
        assert run["attempts"] == 1  # loud mode never retries rot

    def test_no_checksums_serves_blind(self):
        """The control arm: with sidecars off the same drill is not
        detected (labels may rot silently) — proving the detection in
        the other drills comes from the integrity tier, not luck.  The
        flip lands in run-local labels so the kernels stay in-bounds."""
        responses = serve(
            ["--no-checksums", "--retries", "1"],
            [
                run_request(
                    "blind",
                    fault_plan=json.dumps(
                        [
                            {
                                "kind": "corrupt",
                                "site": "phase",
                                "index": 0,
                                "stage": "post",
                                "array": "labels",
                                "flip_seed": 3,
                            }
                        ]
                    ),
                ),
                {"op": "shutdown"},
            ],
        )
        (run,) = [r for r in responses if r.get("id") == "blind"]
        assert run["attempts"] == 1  # nothing noticed, nothing retried


class TestShardedSDC:
    def test_sharded_front_detects_and_recovers(self, tmp_path):
        """Same drill across a 3-worker sharded front: the worker
        detects and retries internally; the front's end-to-end answer
        is certified and bit-identical to the cold reference."""
        report = tmp_path / "sdc_shard_report.json"
        responses = serve(
            [
                "--workers",
                "3",
                "--report",
                str(report),
                "--audit-rate",
                "1.0",
            ],
            [
                run_request(
                    "rot",
                    fault_plan="corrupt.indices@0",
                    certify="sample",
                ),
                run_request("clean"),
                {"op": "shutdown"},
            ],
            timeout=180,
        )
        want = expected_crc()
        by_id = {r.get("id"): r for r in responses if "id" in r}
        rot = by_id["rot"]
        assert rot["ok"], rot
        assert rot["attempts"] >= 2  # worker-internal detection+retry
        assert rot["labels_crc32"] == want
        assert rot["certificate"]["ok"]
        assert by_id["clean"]["labels_crc32"] == want

        stats = json.loads(report.read_text())
        audit = stats["integrity"]["audit"]
        assert audit["audits_run"] >= 1
        assert audit["mismatches"] == 0
