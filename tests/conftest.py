"""Shared fixtures and oracles for the test suite."""

from __future__ import annotations

import faulthandler
import signal
import threading

import numpy as np
import pytest

from repro.graph import CSRGraph, from_edge_list

# ---------------------------------------------------------------------------
# Deadlock protection: this suite exercises real worker pools and fault
# injection, so a regression that reintroduces an unbounded wait (e.g. a
# bare fut.get()) must fail CI rather than hang it.  faulthandler gives a
# C-level traceback dump on SIGABRT etc.; the autouse alarm below turns a
# wedged test into a TimeoutError with a Python traceback.
# ---------------------------------------------------------------------------
faulthandler.enable()

#: per-test wall-clock budget (seconds); generous — the whole suite runs
#: in well under a minute, so only a genuine deadlock ever trips this.
TEST_TIMEOUT_SECONDS = 120


@pytest.fixture(autouse=True)
def _global_test_timeout(request):
    """Abort any single test that runs longer than the global budget."""
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):  # pragma: no cover - non-POSIX / nested runners
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"test exceeded the global {TEST_TIMEOUT_SECONDS}s deadlock "
            f"guard: {request.node.nodeid}"
        )

    old = signal.signal(signal.SIGALRM, _timed_out)
    signal.setitimer(signal.ITIMER_REAL, TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old)


def scipy_scc_labels(g: CSRGraph) -> np.ndarray:
    """Independent SCC oracle via scipy.sparse.csgraph."""
    import scipy.sparse as sp
    from scipy.sparse.csgraph import connected_components

    n = g.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    mat = sp.csr_matrix(
        (np.ones(g.num_edges), g.indices, g.indptr), shape=(n, n)
    )
    _, labels = connected_components(mat, directed=True, connection="strong")
    return labels.astype(np.int64)


def scipy_wcc_labels(g: CSRGraph) -> np.ndarray:
    """Independent WCC oracle via scipy.sparse.csgraph."""
    import scipy.sparse as sp
    from scipy.sparse.csgraph import connected_components

    n = g.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    mat = sp.csr_matrix(
        (np.ones(g.num_edges), g.indices, g.indptr), shape=(n, n)
    )
    _, labels = connected_components(mat, directed=False)
    return labels.astype(np.int64)


def random_digraph(
    n: int, m: int, seed: int = 0, *, self_loops: bool = False
) -> CSRGraph:
    """Uniform random digraph for fuzz-style tests."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    from repro.graph import from_edge_array

    return from_edge_array(
        src, dst, n, dedup=True, drop_self_loops=not self_loops
    )


# ---------------------------------------------------------------------------
# Canonical small graphs (name -> edge list, num_nodes)
# ---------------------------------------------------------------------------
SMALL_GRAPHS: dict[str, tuple[list[tuple[int, int]], int]] = {
    "empty": ([], 0),
    "single": ([], 1),
    "isolated3": ([], 3),
    "self_loop": ([(0, 0)], 1),
    "edge": ([(0, 1)], 2),
    "two_cycle": ([(0, 1), (1, 0)], 2),
    "chain4": ([(0, 1), (1, 2), (2, 3)], 4),
    "cycle4": ([(0, 1), (1, 2), (2, 3), (3, 0)], 4),
    "two_cycles_bridge": (
        [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)],
        4,
    ),
    "figure1b": (
        # Fig. 1(b) of the paper: cascading trim a <- b <- c; d, e leaves
        [(0, 1), (1, 2), (2, 3), (2, 4)],
        5,
    ),
    "diamond_dag": ([(0, 1), (0, 2), (1, 3), (2, 3)], 4),
    "scc_with_tail": (
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)],
        5,
    ),
    "two_cycle_pattern_a": (
        # Trim2 Fig. 4(a): A<->B with an extra incoming edge.
        [(0, 1), (1, 0), (2, 0)],
        3,
    ),
    "two_cycle_pattern_b": (
        # Trim2 Fig. 4(b): A<->B with an extra outgoing edge.
        [(0, 1), (1, 0), (0, 2)],
        3,
    ),
    "complete4": (
        [(i, j) for i in range(4) for j in range(4) if i != j],
        4,
    ),
    "star_out": ([(0, i) for i in range(1, 6)], 6),
    "star_in": ([(i, 0) for i in range(1, 6)], 6),
    "nested_sccs": (
        # big cycle 0-1-2-3 plus inner chord cycle and a pendant 2-cycle
        [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (1, 0),
            (3, 4),
            (4, 5),
            (5, 4),
        ],
        6,
    ),
}


@pytest.fixture(params=sorted(SMALL_GRAPHS))
def small_graph(request) -> tuple[str, CSRGraph]:
    name = request.param
    edges, n = SMALL_GRAPHS[name]
    return name, from_edge_list(edges, n)


@pytest.fixture()
def planted_medium():
    """A mid-sized planted graph with known SCC structure."""
    from repro.generators import SCCStructureSpec, scc_structured_graph

    spec = SCCStructureSpec(
        n=4000,
        giant_frac=0.55,
        trivial_frac=0.6,
        alpha=2.1,
        chain2_pairs=60,
    )
    return scc_structured_graph(spec, rng=np.random.default_rng(777))
