"""Resilient-ingestion tests: the corruption matrix.

Every corrupt-input fixture must surface as a typed
:class:`~repro.errors.GraphIngestError` carrying location information
(file, and line for text formats) under ``strict``, and as a counted,
sampled :class:`~repro.graph.IngestReport` entry under
``repair``/``skip`` — never as a bare numpy/zipfile traceback.
"""

import gzip
import os

import numpy as np
import pytest

from repro.errors import GraphIngestError, GraphValidationError
from repro.graph import (
    CSRGraph,
    IngestReport,
    from_edge_list,
    load_npz,
    read_edge_list,
    read_matrix_market,
    save_npz,
    write_edge_list,
    write_matrix_market,
)
from repro.ioutil import atomic_write


def sample():
    return from_edge_list([(0, 1), (1, 2), (2, 0), (3, 1)], 5)


def write(tmp_path, text, name="g.txt"):
    path = tmp_path / name
    if name.endswith(".gz"):
        with gzip.open(path, "wt", encoding="utf-8") as f:
            f.write(text)
    else:
        path.write_text(text)
    return path


# ---------------------------------------------------------------------------
# Edge lists: strict diagnostics
# ---------------------------------------------------------------------------
class TestEdgeListStrict:
    def test_malformed_token_locates_line(self, tmp_path):
        path = write(tmp_path, "0 1\n1 2\nnot an edge\n2 0\n")
        with pytest.raises(GraphIngestError) as err:
            read_edge_list(path)
        assert err.value.line == 3
        assert str(path) in str(err.value)
        assert ":3:" in str(err.value)

    def test_float_ids_rejected_with_line(self, tmp_path):
        path = write(tmp_path, "0 1\n1.5 2\n")
        with pytest.raises(GraphIngestError) as err:
            read_edge_list(path)
        assert err.value.line == 2
        assert "float" in str(err.value)

    def test_negative_ids_rejected(self, tmp_path):
        path = write(tmp_path, "0 1\n-3 2\n")
        with pytest.raises(GraphIngestError) as err:
            read_edge_list(path)
        assert err.value.line == 2

    def test_int64_overflow_ids_rejected(self, tmp_path):
        path = write(tmp_path, f"0 1\n{2**70} 2\n")
        with pytest.raises(GraphIngestError) as err:
            read_edge_list(path)
        assert err.value.line == 2

    def test_out_of_range_vs_num_nodes(self, tmp_path):
        path = write(tmp_path, "0 1\n9 2\n")
        with pytest.raises(GraphIngestError) as err:
            read_edge_list(path, num_nodes=5)
        assert err.value.line == 2

    def test_missing_file_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_edge_list(tmp_path / "absent.txt")

    def test_bad_policy_rejected(self, tmp_path):
        path = write(tmp_path, "0 1\n")
        with pytest.raises(ValueError):
            read_edge_list(path, on_error="ignore")

    def test_exception_is_a_value_error(self, tmp_path):
        # callers that predate the taxonomy catch ValueError
        path = write(tmp_path, "x y\n")
        with pytest.raises(ValueError):
            read_edge_list(path)


# ---------------------------------------------------------------------------
# Edge lists: repair / skip policies and the report
# ---------------------------------------------------------------------------
class TestEdgeListLenient:
    DIRTY = (
        "# header\n"
        "0 1\n"
        "garbage line\n"
        "2.0 3\n"      # integral float: repairable
        "-1 4\n"       # negative: never repairable
        "1 2 77 88\n"  # extra columns: ignored, not an error
        "\n"
        "3 0\n"
    )

    def test_repair_coerces_and_drops(self, tmp_path):
        path = write(tmp_path, self.DIRTY)
        g, rep = read_edge_list(path, on_error="repair", return_report=True)
        # accepted: (0,1), (2,3) repaired, (1,2), (3,0)
        assert rep.edges == 4
        assert rep.repaired == 1
        assert rep.dropped == 2
        assert rep.malformed == 1
        assert rep.negative_ids == 1
        assert rep.extra_columns == 1
        assert rep.comments == 1 and rep.blanks == 1
        assert not rep.clean
        assert g.has_edge(2, 3)

    def test_skip_drops_repairables_too(self, tmp_path):
        path = write(tmp_path, self.DIRTY)
        g, rep = read_edge_list(path, on_error="skip", return_report=True)
        assert rep.edges == 3
        assert rep.repaired == 0
        assert rep.dropped == 3
        assert not g.has_edge(2, 3)

    def test_samples_are_located_and_bounded(self, tmp_path):
        lines = "\n".join(f"bad{i}" for i in range(20))
        path = write(tmp_path, lines + "\n0 1\n")
        _, rep = read_edge_list(
            path, on_error="skip", return_report=True, max_samples=4
        )
        assert rep.dropped == 20
        assert len(rep.samples) == 4
        where, excerpt, reason = rep.samples[0]
        assert "1" in where  # line number of the first bad record
        assert "bad0" in excerpt

    def test_clean_file_report_is_clean(self, tmp_path):
        path = write(tmp_path, "0 1\n1 0\n")
        _, rep = read_edge_list(path, return_report=True)
        assert rep.clean
        assert rep.edges == 2
        assert "2 edges" in rep.summary()
        assert rep.to_dict()["edges"] == 2

    def test_chunked_parse_matches_one_shot(self, tmp_path):
        rng = np.random.default_rng(0)
        e = rng.integers(0, 50, size=(500, 2))
        text = "".join(f"{s} {d}\n" for s, d in e)
        path = write(tmp_path, text)
        g1 = read_edge_list(path)
        g2 = read_edge_list(path, chunk_lines=7)
        assert g1 == g2

    def test_duplicates_and_self_loops_counted_not_errors(self, tmp_path):
        path = write(tmp_path, "0 1\n0 1\n2 2\n")
        g, rep = read_edge_list(path, return_report=True)  # strict!
        assert rep.duplicates == 1
        assert rep.self_loops == 1
        assert rep.clean  # structural quirks, not policy violations
        assert g.num_edges == 2


# ---------------------------------------------------------------------------
# Edge lists: edge-shaped fixtures from the acceptance matrix
# ---------------------------------------------------------------------------
class TestEdgeListShapes:
    def test_empty_file(self, tmp_path):
        path = write(tmp_path, "")
        g, rep = read_edge_list(path, return_report=True)
        assert g.num_nodes == 0 and g.num_edges == 0
        assert rep.clean and rep.lines == 0

    def test_comments_only(self, tmp_path):
        path = write(tmp_path, "# a\n# b\n")
        g = read_edge_list(path, num_nodes=3)
        assert g.num_nodes == 3 and g.num_edges == 0

    def test_single_node_self_loop(self, tmp_path):
        path = write(tmp_path, "0 0\n")
        g = read_edge_list(path)
        assert g.num_nodes == 1 and g.num_edges == 1

    def test_gzip_roundtrip(self, tmp_path):
        g = sample()
        path = tmp_path / "g.txt.gz"
        write_edge_list(g, path)
        assert read_edge_list(path, num_nodes=5) == g

    def test_gzip_with_dirty_lines(self, tmp_path):
        path = write(tmp_path, "0 1\nbroken\n1 0\n", name="g.txt.gz")
        with pytest.raises(GraphIngestError) as err:
            read_edge_list(path)
        assert err.value.line == 2
        g, rep = read_edge_list(path, on_error="skip", return_report=True)
        assert g.num_edges == 2 and rep.dropped == 1

    def test_truncated_gzip_is_typed(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt") as f:
            f.write("".join(f"{i} {i+1}\n" for i in range(1000)))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(GraphIngestError) as err:
            read_edge_list(path)
        assert "unreadable" in str(err.value)

    def test_not_gzip_despite_suffix(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        path.write_bytes(b"0 1\n1 0\n")  # plain text, lying suffix
        with pytest.raises(GraphIngestError):
            read_edge_list(path)

    def test_ids_beyond_int32_do_not_wrap(self, tmp_path):
        # An id past 2^31 must be seen at its true value (int64 path),
        # not wrapped negative: with a num_nodes bound it is reported
        # out-of-range, quoting the unwrapped id.
        big = 3_000_000_000
        path = write(tmp_path, f"0 1\n0 {big}\n")
        with pytest.raises(GraphIngestError) as err:
            read_edge_list(path, num_nodes=10)
        assert str(big) in str(err.value)
        assert err.value.line == 2
        g, rep = read_edge_list(
            path, num_nodes=10, on_error="skip", return_report=True
        )
        assert g.num_edges == 1
        assert rep.out_of_range == 1
        assert rep.negative_ids == 0  # would betray an int32 wrap

    def test_validate_gate(self, tmp_path):
        path = write(tmp_path, "0 1\n1 0\n")
        g = read_edge_list(path, validate=True)
        assert g.num_edges == 2


# ---------------------------------------------------------------------------
# Edge lists: byte-exact framing (shared with the stream parser)
# ---------------------------------------------------------------------------
class TestEdgeListFraming:
    def test_final_record_without_newline_is_parsed(self, tmp_path):
        path = write(tmp_path, "0 1\n1 2\n2 0")  # writer died mid-append
        g, rep = read_edge_list(path, return_report=True)
        assert g.num_edges == 3
        assert g.has_edge(2, 0)
        assert rep.lines == 3

    def test_final_record_without_newline_chunked(self, tmp_path):
        # the chunked slow path must agree with the one-shot fast path
        path = write(tmp_path, "0 1\n1 2\n2 0")
        assert read_edge_list(path, chunk_lines=1) == read_edge_list(path)

    def test_final_record_without_newline_gzip(self, tmp_path):
        path = write(tmp_path, "0 1\n1 2\n2 0", name="g.txt.gz")
        g = read_edge_list(path)
        assert g.num_edges == 3 and g.has_edge(2, 0)

    def test_crlf_line_endings(self, tmp_path):
        path = write(tmp_path, "0 1\r\n1 2\r\n2 0\r\n")
        g, rep = read_edge_list(path, return_report=True)
        assert g.num_edges == 3
        assert rep.clean

    def test_crlf_chunked_matches_lf(self, tmp_path):
        crlf = write(tmp_path, "0 1\r\n1 2\r\n2 0\r\n", name="crlf.txt")
        lf = write(tmp_path, "0 1\n1 2\n2 0\n", name="lf.txt")
        assert read_edge_list(crlf, chunk_lines=2) == read_edge_list(lf)

    def test_crlf_final_record_no_newline(self, tmp_path):
        path = write(tmp_path, "0 1\r\n2 0\r")  # lone CR tail
        g = read_edge_list(path)
        assert g.num_edges == 2 and g.has_edge(2, 0)

    def test_truncated_gzip_lenient_keeps_parsed_prefix(self, tmp_path):
        # strict raises (see test_truncated_gzip_is_typed); the lenient
        # policies must keep everything framed before the stream broke
        # and note the torn tail in the report.
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt") as f:
            f.write("".join(f"{i} {i+1}\n" for i in range(1000)))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        g, rep = read_edge_list(
            path, on_error="skip", return_report=True
        )
        assert 0 < g.num_edges < 1000
        assert not rep.clean
        assert any(
            "unreadable tail" in reason or "stream broke" in reason
            for _, _, reason in rep.samples
        )

    def test_truncated_gzip_strict_message_locates(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt") as f:
            f.write("".join(f"{i} {i+1}\n" for i in range(1000)))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(GraphIngestError) as err:
            read_edge_list(path)
        assert "near line" in str(err.value)


# ---------------------------------------------------------------------------
# npz
# ---------------------------------------------------------------------------
class TestNpzResilience:
    def test_roundtrip(self, tmp_path):
        g = sample()
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path) == g

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "g.npz"
        path.write_bytes(b"this is not a zip file")
        with pytest.raises(GraphIngestError) as err:
            load_npz(path)
        assert str(path) in str(err.value)

    def test_truncated_archive(self, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(sample(), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(GraphIngestError):
            load_npz(path)

    def test_missing_arrays_listed(self, tmp_path):
        path = tmp_path / "g.npz"
        np.savez(path, indptr=np.zeros(3, np.int64))
        with pytest.raises(GraphIngestError) as err:
            load_npz(path)
        assert "indices" in str(err.value)

    def test_float_dtype_strict_vs_repair(self, tmp_path):
        g = sample()
        path = tmp_path / "g.npz"
        np.savez(
            path,
            indptr=g.indptr.astype(np.float64),
            indices=g.indices.astype(np.float64),
        )
        with pytest.raises(GraphIngestError):
            load_npz(path)
        g2, rep = load_npz(path, on_error="repair", return_report=True)
        assert g2 == g
        assert rep.repaired >= 1

    def test_non_monotone_indptr(self, tmp_path):
        path = tmp_path / "g.npz"
        np.savez(
            path,
            indptr=np.array([0, 3, 1], np.int64),
            indices=np.array([0, 1, 0], np.int64),
        )
        with pytest.raises(GraphIngestError) as err:
            load_npz(path)
        assert "monotone" in str(err.value)

    def test_edge_count_disagreement(self, tmp_path):
        path = tmp_path / "g.npz"
        np.savez(
            path,
            indptr=np.array([0, 2, 4], np.int64),
            indices=np.array([0, 1], np.int64),  # claims 4, stores 2
        )
        with pytest.raises(GraphIngestError) as err:
            load_npz(path)
        assert "truncated" in str(err.value)

    def test_overlong_indices_trimmed_under_repair(self, tmp_path):
        path = tmp_path / "g.npz"
        np.savez(
            path,
            indptr=np.array([0, 1, 2], np.int64),
            indices=np.array([1, 0, 0, 0], np.int64),
        )
        with pytest.raises(GraphIngestError):
            load_npz(path)
        g, rep = load_npz(path, on_error="repair", return_report=True)
        assert g.num_edges == 2 and rep.dropped == 1

    def test_out_of_range_destinations(self, tmp_path):
        path = tmp_path / "g.npz"
        np.savez(
            path,
            indptr=np.array([0, 2, 2], np.int64),
            indices=np.array([1, 99], np.int64),
        )
        with pytest.raises(GraphIngestError) as err:
            load_npz(path)
        assert "out of range" in str(err.value)
        g, rep = load_npz(path, on_error="skip", return_report=True)
        assert g.num_edges == 1 and rep.out_of_range == 1


# ---------------------------------------------------------------------------
# MatrixMarket
# ---------------------------------------------------------------------------
class TestMtxResilience:
    def test_bad_header(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("%%NotMatrixMarket nonsense\n1 1 0\n")
        with pytest.raises(GraphIngestError) as err:
            read_matrix_market(path)
        assert str(path) in str(err.value)

    def test_truncated_body(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "3 3 4\n1 2\n2 3\n"  # header promises 4 entries
        )
        with pytest.raises(GraphIngestError):
            read_matrix_market(path)

    def test_non_square_repaired(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 4 2\n1 4\n2 1\n"
        )
        with pytest.raises(GraphIngestError):
            read_matrix_market(path)
        g, rep = read_matrix_market(
            path, on_error="repair", return_report=True
        )
        assert g.num_nodes == 4
        assert rep.repaired == 1

    def test_atomic_write_roundtrip(self, tmp_path):
        g = sample()
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        assert read_matrix_market(path) == g


# ---------------------------------------------------------------------------
# Atomic publication: readers never observe partial writes
# ---------------------------------------------------------------------------
class TestAtomicWrites:
    def test_failed_write_preserves_original(self, tmp_path, monkeypatch):
        g = sample()
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        before = path.read_bytes()

        def boom(*a, **k):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savetxt", boom)
        with pytest.raises(OSError):
            write_edge_list(from_edge_list([(0, 1)], 2), path)
        assert path.read_bytes() == before  # old file intact
        # and the temp file was cleaned up
        assert os.listdir(tmp_path) == ["g.txt"]

    def test_failed_npz_write_preserves_original(
        self, tmp_path, monkeypatch
    ):
        g = sample()
        path = tmp_path / "g.npz"
        save_npz(g, path)
        before = path.read_bytes()
        monkeypatch.setattr(
            np, "savez_compressed",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")),
        )
        with pytest.raises(OSError):
            save_npz(g, path)
        assert path.read_bytes() == before
        assert os.listdir(tmp_path) == ["g.npz"]

    def test_atomic_write_replaces_not_appends(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("old content that is long")
        with atomic_write(path) as f:
            f.write("new")
        assert path.read_text() == "new"
