"""CSRGraph edge membership: ``has_edge`` (binary search on one sorted
row) and its vectorized batch twin ``has_edges`` (one global
searchsorted over composite keys) against a linear-scan oracle."""

import numpy as np
import pytest

from repro.graph import from_edge_array
from tests.conftest import SMALL_GRAPHS, random_digraph


def build_small(name):
    edges, n = SMALL_GRAPHS[name]
    if edges:
        arr = np.array(edges, dtype=np.int64)
        src, dst = arr[:, 0], arr[:, 1]
    else:
        src = dst = np.empty(0, dtype=np.int64)
    return from_edge_array(src, dst, n), set(edges)


@pytest.mark.parametrize("name", sorted(SMALL_GRAPHS))
def test_has_edge_exhaustive_on_small_graphs(name):
    g, edges = build_small(name)
    for u in range(g.num_nodes):
        for v in range(g.num_nodes):
            assert g.has_edge(u, v) == ((u, v) in edges)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_has_edge_matches_linear_scan(seed):
    g = random_digraph(60, 240, seed=seed, self_loops=True)
    rng = np.random.default_rng(seed + 10)
    for _ in range(200):
        u = int(rng.integers(0, g.num_nodes))
        v = int(rng.integers(0, g.num_nodes))
        linear = bool(np.any(g.out_neighbors(u) == v))
        assert g.has_edge(u, v) == linear


class TestHasEdgesBatch:
    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_matches_per_edge_has_edge(self, seed):
        g = random_digraph(80, 300, seed=seed, self_loops=True)
        rng = np.random.default_rng(seed)
        # half random probes, half guaranteed-present edges
        src, dst = g.edge_array()
        pick = rng.integers(0, src.shape[0], 100)
        us = np.concatenate(
            [rng.integers(0, g.num_nodes, 100), src[pick]]
        ).astype(np.int64)
        vs = np.concatenate(
            [rng.integers(0, g.num_nodes, 100), dst[pick]]
        ).astype(np.int64)
        got = g.has_edges(us, vs)
        want = np.array(
            [g.has_edge(int(u), int(v)) for u, v in zip(us, vs)]
        )
        assert got.dtype == np.bool_
        assert np.array_equal(got, want)
        assert bool(got[100:].all())  # the present half is all True

    def test_empty_and_shape_checks(self):
        g = random_digraph(10, 20, seed=0)
        empty = g.has_edges(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert empty.shape == (0,) and empty.dtype == np.bool_
        with pytest.raises(ValueError):
            g.has_edges(
                np.array([0, 1], dtype=np.int64),
                np.array([0], dtype=np.int64),
            )

    def test_edgeless_graph(self):
        g = from_edge_array(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 4
        )
        got = g.has_edges(
            np.array([0, 3], dtype=np.int64),
            np.array([1, 2], dtype=np.int64),
        )
        assert not got.any()
