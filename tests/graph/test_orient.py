"""Unit tests for undirected-edge orientation (Table 1 preprocessing)."""

import numpy as np
import pytest

from repro.graph import from_edge_list, orient_undirected, symmetrize


def grid_edges():
    src = np.array([0, 1, 2, 3, 0, 1])
    dst = np.array([1, 2, 3, 0, 2, 3])
    return src, dst


class TestChooseMode:
    def test_one_directed_edge_per_undirected(self):
        src, dst = grid_edges()
        g = orient_undirected(src, dst, 4, mode="choose", rng=0)
        assert g.num_edges == 6

    def test_direction_is_random(self):
        src = np.zeros(200, dtype=np.int64)
        dst = np.arange(1, 201, dtype=np.int64)
        g = orient_undirected(src, dst, 201, mode="choose", rng=1)
        fwd = g.out_degree(0)
        assert 50 < fwd < 150  # both directions occur

    def test_duplicates_collapsed_before_orienting(self):
        # (0,1) appears in both orders; it must orient exactly once.
        g = orient_undirected(
            np.array([0, 1]), np.array([1, 0]), 2, mode="choose", rng=0
        )
        assert g.num_edges == 1

    def test_p_both_rejected(self):
        with pytest.raises(ValueError):
            orient_undirected(
                np.array([0]), np.array([1]), 2, mode="choose", p_both=0.3
            )


class TestIndependentMode:
    def test_expected_edge_count(self):
        rng = np.random.default_rng(2)
        src = rng.integers(0, 1000, 20000)
        dst = rng.integers(0, 1000, 20000)
        keep = src != dst
        g = orient_undirected(src[keep], dst[keep], 1000, rng=3)
        # each undirected edge yields 1 directed edge in expectation
        undirected = len(
            {(min(a, b), max(a, b)) for a, b in zip(src[keep], dst[keep])}
        )
        assert 0.9 * undirected < g.num_edges < 1.1 * undirected

    def test_reciprocal_pairs_exist(self):
        src = np.repeat(np.arange(500), 1)
        dst = (src + 1) % 500
        g = orient_undirected(src, dst, 500, rng=4)
        src_o, dst_o = g.edge_array()
        pairs = set(zip(src_o.tolist(), dst_o.tolist()))
        recip = sum(1 for a, b in pairs if (b, a) in pairs and a < b)
        assert recip > 0  # ~25% of 500

    def test_p_both_zero_has_no_reciprocal(self):
        src = np.arange(500)
        dst = (src + 1) % 500
        g = orient_undirected(src, dst, 500, p_both=0.0, rng=5)
        src_o, dst_o = g.edge_array()
        pairs = set(zip(src_o.tolist(), dst_o.tolist()))
        assert not any((b, a) in pairs for a, b in pairs)

    def test_p_both_out_of_range(self):
        with pytest.raises(ValueError):
            orient_undirected(
                np.array([0]), np.array([1]), 2, p_both=0.7
            )

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            orient_undirected(np.array([0]), np.array([1]), 2, mode="bogus")


class TestSymmetrize:
    def test_adds_reverse_edges(self):
        g = from_edge_list([(0, 1), (1, 2)], 3)
        s = symmetrize(g)
        assert s.has_edge(1, 0)
        assert s.has_edge(2, 1)
        assert s.num_edges == 4

    def test_idempotent(self):
        g = from_edge_list([(0, 1), (1, 0), (1, 2)], 3)
        assert symmetrize(symmetrize(g)) == symmetrize(g)
