"""Unit tests for graph I/O."""

import numpy as np

from repro.graph import (
    from_edge_list,
    load_npz,
    read_edge_list,
    save_npz,
    write_edge_list,
)


def sample():
    return from_edge_list([(0, 1), (1, 2), (2, 0), (3, 1)], 5)


class TestEdgeListIO:
    def test_roundtrip(self, tmp_path):
        g = sample()
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path, num_nodes=5)
        assert g == g2

    def test_header_written_as_comments(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(sample(), path, header="hello\nworld")
        text = path.read_text()
        assert text.startswith("# hello\n# world\n")

    def test_comments_skipped_on_read(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# SNAP-style header\n0 1\n1 0\n")
        g = read_edge_list(path)
        assert g.num_edges == 2
        assert g.has_edge(1, 0)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        g = read_edge_list(path, num_nodes=3)
        assert g.num_nodes == 3
        assert g.num_edges == 0

    def test_dedup_on_read(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n0 1\n")
        assert read_edge_list(path).num_edges == 1


class TestNpzIO:
    def test_roundtrip(self, tmp_path):
        g = sample()
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path) == g

    def test_preserves_isolated_nodes(self, tmp_path):
        g = from_edge_list([(0, 1)], 10)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path).num_nodes == 10
