"""Unit tests for edge-list -> CSR builders."""

import numpy as np
import pytest

from repro.graph import (
    build_csr_arrays,
    dedup_edges,
    from_edge_array,
    from_edge_list,
)


class TestDedup:
    def test_removes_exact_duplicates(self):
        src = np.array([0, 0, 1, 0])
        dst = np.array([1, 1, 2, 1])
        s, d = dedup_edges(src, dst)
        assert np.array_equal(s, [0, 1])
        assert np.array_equal(d, [1, 2])

    def test_sorts_lexicographically(self):
        s, d = dedup_edges(np.array([2, 0, 1]), np.array([0, 5, 3]))
        assert np.array_equal(s, [0, 1, 2])
        assert np.array_equal(d, [5, 3, 0])

    def test_drop_self_loops(self):
        s, d = dedup_edges(
            np.array([0, 1, 2]), np.array([0, 1, 0]), drop_self_loops=True
        )
        assert np.array_equal(s, [2])
        assert np.array_equal(d, [0])

    def test_empty_input(self):
        s, d = dedup_edges(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert s.size == 0 and d.size == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dedup_edges(np.array([0]), np.array([0, 1]))


class TestBuildArrays:
    def test_indptr_counts(self):
        indptr, indices = build_csr_arrays(
            np.array([0, 0, 2]), np.array([1, 2, 0]), 3
        )
        assert np.array_equal(indptr, [0, 2, 2, 3])
        assert np.array_equal(indices, [1, 2, 0])

    def test_unsorted_src_rejected(self):
        with pytest.raises(ValueError):
            build_csr_arrays(np.array([1, 0]), np.array([0, 1]), 2)


class TestFromEdgeArray:
    def test_infers_num_nodes(self):
        g = from_edge_array(np.array([0, 4]), np.array([1, 2]))
        assert g.num_nodes == 5

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            from_edge_array(np.array([0]), np.array([5]), 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            from_edge_array(np.array([-1]), np.array([0]), 3)

    def test_no_dedup_keeps_duplicates(self):
        g = from_edge_array(
            np.array([0, 0]), np.array([1, 1]), 2, dedup=False
        )
        assert g.num_edges == 2

    def test_drop_self_loops_without_dedup(self):
        g = from_edge_array(
            np.array([0, 1]), np.array([0, 0]), 2, dedup=False,
            drop_self_loops=True,
        )
        assert g.num_edges == 1
        assert g.has_edge(1, 0)

    def test_isolated_trailing_nodes(self):
        g = from_edge_array(np.array([0]), np.array([1]), 10)
        assert g.num_nodes == 10
        assert g.out_degree(9) == 0


class TestFromEdgeList:
    def test_pairs(self):
        g = from_edge_list([(0, 1), (1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_empty_list_with_nodes(self):
        g = from_edge_list([], 5)
        assert g.num_nodes == 5
        assert g.num_edges == 0

    def test_empty_list_no_nodes(self):
        g = from_edge_list([])
        assert g.num_nodes == 0

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            from_edge_list([(0, 1, 2)])
