"""Unit tests for induced-subgraph extraction."""

import numpy as np
import pytest

from repro.graph import color_subgraph, from_edge_list, induced_subgraph


def sample():
    return from_edge_list(
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)], 5
    )


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        g = sample()
        sub, mapping = induced_subgraph(g, np.array([0, 1, 2]))
        assert sub.num_nodes == 3
        assert sub.num_edges == 3  # the 0-1-2 cycle; (2,3) dropped
        assert np.array_equal(mapping, [0, 1, 2])

    def test_renumbering(self):
        g = sample()
        sub, mapping = induced_subgraph(g, np.array([3, 4]))
        assert sub.num_nodes == 2
        assert sub.has_edge(0, 1) and sub.has_edge(1, 0)
        assert np.array_equal(mapping, [3, 4])

    def test_duplicate_nodes_collapsed(self):
        g = sample()
        sub, mapping = induced_subgraph(g, np.array([1, 1, 2]))
        assert sub.num_nodes == 2
        assert np.array_equal(mapping, [1, 2])

    def test_empty_selection(self):
        g = sample()
        sub, mapping = induced_subgraph(g, np.array([], dtype=np.int64))
        assert sub.num_nodes == 0
        assert mapping.size == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            induced_subgraph(sample(), np.array([99]))


class TestColorSubgraph:
    def test_matches_color_filter(self):
        g = sample()
        color = np.array([7, 7, 7, 3, 3])
        sub, mapping = color_subgraph(g, color, 7)
        assert sub.num_nodes == 3
        assert sub.num_edges == 3

    def test_mark_excludes(self):
        g = sample()
        color = np.array([7, 7, 7, 7, 7])
        mark = np.array([False, False, False, True, True])
        sub, mapping = color_subgraph(g, color, 7, mark)
        assert np.array_equal(mapping, [0, 1, 2])
