"""Unit tests for the CSR graph container."""

import numpy as np
import pytest

from repro.graph import CSRGraph, from_edge_list, from_edge_array


def simple() -> CSRGraph:
    return from_edge_list([(0, 1), (0, 2), (1, 2), (2, 0)], 3)


class TestConstruction:
    def test_basic_counts(self):
        g = simple()
        assert g.num_nodes == 3
        assert g.num_edges == 4
        assert len(g) == 3

    def test_indptr_validation_endpoints(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_indptr_validation_monotone(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2]))

    def test_destination_range_checked(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_negative_destination_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([-1]))

    def test_empty_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([], dtype=np.int64), np.array([], dtype=np.int64))

    def test_rows_sorted_on_construction(self):
        g = CSRGraph(np.array([0, 3, 3, 3]), np.array([2, 0, 1]))
        assert np.array_equal(g.out_neighbors(0), [0, 1, 2])

    def test_arrays_read_only(self):
        g = simple()
        with pytest.raises(ValueError):
            g.indices[0] = 5
        with pytest.raises(ValueError):
            g.indptr[0] = 1

    def test_zero_node_graph(self):
        g = from_edge_list([], 0)
        assert g.num_nodes == 0
        assert g.num_edges == 0


class TestNeighborhoods:
    def test_out_neighbors(self):
        g = simple()
        assert np.array_equal(g.out_neighbors(0), [1, 2])
        assert np.array_equal(g.out_neighbors(1), [2])
        assert np.array_equal(g.out_neighbors(2), [0])

    def test_in_neighbors(self):
        g = simple()
        assert np.array_equal(g.in_neighbors(2), [0, 1])
        assert np.array_equal(g.in_neighbors(0), [2])

    def test_degrees(self):
        g = simple()
        assert np.array_equal(g.out_degrees(), [2, 1, 1])
        assert np.array_equal(g.in_degrees(), [1, 1, 2])
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 2

    def test_has_edge(self):
        g = simple()
        assert g.has_edge(0, 1)
        assert g.has_edge(2, 0)
        assert not g.has_edge(1, 0)
        assert not g.has_edge(0, 0)


class TestTranspose:
    def test_reverse_roundtrip(self):
        g = simple()
        gr = g.reverse()
        grr = gr.reverse()
        assert g == grr

    def test_transpose_edge_set(self):
        g = simple()
        src, dst = g.edge_array()
        gr = g.reverse()
        rsrc, rdst = gr.edge_array()
        fwd = set(zip(src.tolist(), dst.tolist()))
        bwd = set(zip(rdst.tolist(), rsrc.tolist()))
        assert fwd == bwd

    def test_transpose_rows_sorted(self):
        g = from_edge_list([(3, 0), (1, 0), (2, 0)], 4)
        assert np.array_equal(g.in_neighbors(0), [1, 2, 3])


class TestExport:
    def test_edge_array_roundtrip(self):
        g = simple()
        src, dst = g.edge_array()
        g2 = from_edge_array(src, dst, g.num_nodes)
        assert g == g2

    def test_iter_edges(self):
        g = simple()
        assert sorted(g.iter_edges()) == [(0, 1), (0, 2), (1, 2), (2, 0)]

    def test_to_networkx(self):
        nx_g = simple().to_networkx()
        assert nx_g.number_of_nodes() == 3
        assert nx_g.number_of_edges() == 4

    def test_equality_and_hash(self):
        assert simple() == simple()
        assert hash(simple()) == hash(simple())
        other = from_edge_list([(0, 1)], 3)
        assert simple() != other

    def test_nbytes_grows_with_transpose(self):
        g = simple()
        before = g.nbytes()
        g.in_indptr  # force transpose
        assert g.nbytes() > before
