"""DeltaCSR: the mutable edge-delta overlay must always agree with a
plain Python edge-set mirror of the same mutation stream — merged
neighborhoods, snapshots, kernel views, subgraphs, across compactions.
"""

import numpy as np
import pytest

from repro.graph import CSRGraph, from_edge_array, induced_subgraph
from repro.graph.delta import DEFAULT_COMPACT_RATIO, DeltaCSR
from repro.kernels import delta_expand_frontier, get_kernel, use_backend
from tests.conftest import random_digraph


def mirror_graph(edges: set, n: int) -> CSRGraph:
    """Frozen CSR of a Python ``{(u, v)}`` edge set."""
    if edges:
        arr = np.array(sorted(edges), dtype=np.int64)
        return from_edge_array(arr[:, 0], arr[:, 1], n, dedup=False)
    return from_edge_array(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), n
    )


def random_stream(rng, n, k):
    """``k`` random (insert?, u, v) operations."""
    return [
        (bool(rng.integers(0, 2)), int(rng.integers(0, n)), int(rng.integers(0, n)))
        for _ in range(k)
    ]


class TestMirrorFuzz:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stream_matches_edge_set_mirror(self, seed):
        n = 40
        base = random_digraph(n, 120, seed=seed, self_loops=True)
        delta = DeltaCSR(base, compact_ratio=10.0)  # never compact here
        src, dst = base.edge_array()
        mirror = set(zip(src.tolist(), dst.tolist()))
        rng = np.random.default_rng(seed + 100)
        for ins, u, v in random_stream(rng, n, 300):
            if ins:
                changed = delta.add_edge(u, v)
                assert changed == ((u, v) not in mirror)
                mirror.add((u, v))
            else:
                changed = delta.remove_edge(u, v)
                assert changed == ((u, v) in mirror)
                mirror.discard((u, v))
            assert delta.num_edges == len(mirror)
            assert delta.has_edge(u, v) == ((u, v) in mirror)
        # merged per-node views agree with the mirror on every node
        for u in range(n):
            want_out = sorted(v for (s, v) in mirror if s == u)
            want_in = sorted(s for (s, v) in mirror if v == u)
            assert delta.out_neighbors(u).tolist() == want_out
            assert delta.in_neighbors(u).tolist() == want_in
        # the materialized snapshot is the mirror graph, bit for bit
        assert delta.snapshot() == mirror_graph(mirror, n)
        es, ed = delta.edge_array()
        assert set(zip(es.tolist(), ed.tolist())) == mirror

    def test_resurrect_tombstoned_base_edge(self):
        base = from_edge_array(
            np.array([0, 1], dtype=np.int64),
            np.array([1, 2], dtype=np.int64),
            3,
        )
        delta = DeltaCSR(base)
        assert delta.remove_edge(0, 1)
        assert delta.log_size == 1
        # re-adding clears the tombstone instead of growing the add log
        assert delta.add_edge(0, 1)
        assert delta.log_size == 0
        assert delta.has_edge(0, 1)
        assert delta.snapshot() == base

    def test_idempotent_noops_leave_mutations_untouched(self):
        base = from_edge_array(
            np.array([0], dtype=np.int64), np.array([1], dtype=np.int64), 2
        )
        delta = DeltaCSR(base)
        before = delta.mutations
        assert not delta.add_edge(0, 1)  # already present
        assert not delta.remove_edge(1, 0)  # never existed
        assert delta.mutations == before
        assert delta.add_edge(1, 0)
        assert delta.mutations == before + 1

    def test_endpoint_validation(self):
        base = random_digraph(5, 10, seed=0)
        delta = DeltaCSR(base)
        with pytest.raises(ValueError):
            delta.add_edge(0, 5)
        with pytest.raises(ValueError):
            delta.remove_edge(-1, 0)
        with pytest.raises(ValueError):
            DeltaCSR(base, compact_ratio=0.0)


class TestCompaction:
    def test_maybe_compact_triggers_at_ratio(self):
        n = 30
        base = random_digraph(n, 100, seed=3)
        delta = DeltaCSR(base, compact_ratio=DEFAULT_COMPACT_RATIO)
        rng = np.random.default_rng(7)
        mirror = set(zip(*(a.tolist() for a in base.edge_array())))
        compacted = False
        for ins, u, v in random_stream(rng, n, 200):
            if ins:
                delta.add_edge(u, v)
                mirror.add((u, v))
            else:
                delta.remove_edge(u, v)
                mirror.discard((u, v))
            if delta.maybe_compact():
                compacted = True
                assert delta.log_size == 0
                assert delta.base == mirror_graph(mirror, n)
            assert delta.snapshot() == mirror_graph(mirror, n)
        assert compacted
        assert delta.compactions >= 1

    def test_compact_preserves_views(self):
        n = 12
        base = random_digraph(n, 30, seed=5)
        delta = DeltaCSR(base)
        delta.add_edge(0, n - 1)
        delta.remove_edge(*next(iter(zip(*base.edge_array()))))
        before = {u: delta.out_neighbors(u).tolist() for u in range(n)}
        delta.compact()
        assert delta.log_size == 0
        for u in range(n):
            assert delta.out_neighbors(u).tolist() == before[u]


class TestKernelViews:
    @pytest.mark.parametrize("backend", ["numpy", "numba"])
    def test_delta_expand_matches_merged_neighbors(self, backend):
        n = 25
        base = random_digraph(n, 80, seed=9)
        delta = DeltaCSR(base, compact_ratio=10.0)
        rng = np.random.default_rng(11)
        for ins, u, v in random_stream(rng, n, 120):
            (delta.add_edge if ins else delta.remove_edge)(u, v)
        frontier = np.array([0, 3, 3, n - 1, 7], dtype=np.int64)
        with use_backend(backend):
            targets, sources = delta_expand_frontier(
                *delta.forward_view(), frontier, return_sources=True
            )
            uniq = delta_expand_frontier(
                *delta.forward_view(), frontier, unique=True
            )
            back = delta_expand_frontier(
                *delta.backward_view(), frontier, unique=True
            )
        # per-slot contract: base survivors then adds, slots in order
        want_t, want_s = [], []
        for u in frontier.tolist():
            row = delta.out_neighbors(u).tolist()
            want_t.extend(row)
            want_s.extend([u] * len(row))
        assert sorted(targets.tolist()) == sorted(want_t)
        assert sources.tolist() == want_s
        assert uniq.tolist() == sorted(set(want_t))
        want_b = set()
        for u in frontier.tolist():
            want_b.update(delta.in_neighbors(u).tolist())
        assert back.tolist() == sorted(want_b)

    def test_backend_outputs_bit_identical(self):
        n = 30
        base = random_digraph(n, 90, seed=13)
        delta = DeltaCSR(base, compact_ratio=10.0)
        rng = np.random.default_rng(17)
        for ins, u, v in random_stream(rng, n, 150):
            (delta.add_edge if ins else delta.remove_edge)(u, v)
        frontier = rng.integers(0, n, 12).astype(np.int64)
        view = delta.forward_view()
        ref = get_kernel("delta_expand_frontier", backend="numpy")
        fast = get_kernel("delta_expand_frontier", backend="numba")
        for kwargs in (
            {},
            {"return_sources": True},
            {"unique": True},
        ):
            a = ref(*view, frontier, **kwargs)
            b = fast(*view, frontier, **kwargs)
            if isinstance(a, tuple):
                assert np.array_equal(a[0], b[0])
                assert np.array_equal(a[1], b[1])
            else:
                assert np.array_equal(a, b)

    def test_empty_frontier_and_unique_sources_conflict(self):
        base = random_digraph(6, 10, seed=1)
        delta = DeltaCSR(base)
        out = delta_expand_frontier(
            *delta.forward_view(), np.empty(0, dtype=np.int64)
        )
        assert out.size == 0
        with pytest.raises(ValueError):
            delta_expand_frontier(
                *delta.forward_view(),
                np.array([0], dtype=np.int64),
                return_sources=True,
                unique=True,
            )


class TestInducedSubgraph:
    @pytest.mark.parametrize("seed", [0, 4])
    def test_matches_snapshot_subgraph(self, seed):
        n = 35
        base = random_digraph(n, 100, seed=seed)
        delta = DeltaCSR(base, compact_ratio=10.0)
        rng = np.random.default_rng(seed + 50)
        for ins, u, v in random_stream(rng, n, 150):
            (delta.add_edge if ins else delta.remove_edge)(u, v)
        nodes = rng.choice(n, size=14, replace=False).astype(np.int64)
        sub_d, map_d = delta.induced_subgraph(nodes)
        sub_s, map_s = induced_subgraph(delta.snapshot(), nodes)
        assert np.array_equal(map_d, map_s)
        assert sub_d == sub_s

    def test_out_of_range_rejected(self):
        delta = DeltaCSR(random_digraph(5, 8, seed=0))
        with pytest.raises(ValueError):
            delta.induced_subgraph(np.array([0, 5], dtype=np.int64))
