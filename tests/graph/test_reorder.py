"""Tests for locality-aware node reordering."""

import numpy as np
import pytest

from repro.core import same_partition, tarjan_scc
from repro.graph import (
    apply_order,
    bfs_order,
    degree_order,
    from_edge_list,
    locality_score,
)
from tests.conftest import random_digraph, scipy_scc_labels


class TestPermutations:
    def test_bfs_order_is_permutation(self):
        g = random_digraph(80, 300, seed=0)
        perm = bfs_order(g)
        assert np.array_equal(np.sort(perm), np.arange(80))

    def test_degree_order_hubs_first(self):
        g = from_edge_list([(0, 1), (2, 1), (3, 1), (1, 0)], 4)
        perm = degree_order(g)
        assert perm[0] == 1  # highest total degree

    def test_empty_graph(self):
        g = from_edge_list([], 0)
        assert bfs_order(g).size == 0


class TestApplyOrder:
    def test_relabelled_graph_isomorphic(self):
        g = random_digraph(100, 400, seed=1)
        perm = bfs_order(g)
        rg, old_of_new = apply_order(g, perm)
        assert rg.num_nodes == g.num_nodes
        assert rg.num_edges == g.num_edges
        # edge (u, v) exists iff relabelled edge exists
        src, dst = g.edge_array()
        new_of_old = np.empty(100, dtype=np.int64)
        new_of_old[perm] = np.arange(100)
        for u, v in list(zip(src[:50], dst[:50])):
            assert rg.has_edge(int(new_of_old[u]), int(new_of_old[v]))

    def test_scc_structure_invariant(self):
        g = random_digraph(150, 600, seed=2)
        ref = scipy_scc_labels(g)
        for order_fn in (bfs_order, degree_order):
            perm = order_fn(g)
            rg, _ = apply_order(g, perm)
            labels_new = tarjan_scc(rg)
            # translate back: node perm[i] had new id i
            labels_old = np.empty(150, dtype=np.int64)
            labels_old[perm] = labels_new
            assert same_partition(labels_old, ref)

    def test_invalid_permutation_rejected(self):
        g = from_edge_list([(0, 1)], 3)
        with pytest.raises(ValueError):
            apply_order(g, np.array([0, 0, 1]))
        with pytest.raises(ValueError):
            apply_order(g, np.array([0, 1]))


class TestLocality:
    def test_bfs_order_improves_grid_locality(self):
        # a permuted grid has terrible locality; BFS ordering restores it
        from repro.generators import road_grid_graph

        g = road_grid_graph(40, 40, rng=0)
        rng = np.random.default_rng(1)
        shuffled, _ = apply_order(g, rng.permutation(g.num_nodes))
        reordered, _ = apply_order(shuffled, bfs_order(shuffled))
        assert locality_score(reordered) < locality_score(shuffled) / 3

    def test_score_zero_for_empty(self):
        assert locality_score(from_edge_list([], 5)) == 0.0
