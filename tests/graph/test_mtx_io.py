"""Tests for MatrixMarket I/O."""

import numpy as np
import pytest

from repro.graph import (
    from_edge_list,
    read_matrix_market,
    write_matrix_market,
)


def sample():
    return from_edge_list([(0, 1), (1, 2), (2, 0), (3, 1)], 5)


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path):
        g = sample()
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        g2 = read_matrix_market(path)
        assert g == g2

    def test_symmetric_header_mirrors_edges(self, tmp_path):
        path = tmp_path / "sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n"
            "2 1\n"
            "3 2\n"
        )
        g = read_matrix_market(path)
        assert g.has_edge(1, 0) and g.has_edge(0, 1)
        assert g.has_edge(2, 1) and g.has_edge(1, 2)

    def test_values_ignored(self, tmp_path):
        path = tmp_path / "w.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "1 2 3.5\n"
        )
        g = read_matrix_market(path)
        assert g.num_edges == 1
        assert g.has_edge(0, 1)

    def test_non_square_rejected(self, tmp_path):
        path = tmp_path / "rect.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 3 1\n"
            "1 2\n"
        )
        with pytest.raises(ValueError):
            read_matrix_market(path)

    def test_preserves_isolated_nodes(self, tmp_path):
        g = from_edge_list([(0, 1)], 7)
        path = tmp_path / "iso.mtx"
        write_matrix_market(g, path)
        assert read_matrix_market(path).num_nodes == 7
