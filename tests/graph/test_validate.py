"""Unit tests for structural validation."""

import numpy as np
import pytest

from repro.graph import CSRGraph, GraphValidationError, from_edge_list, validate_graph


class TestValidate:
    def test_valid_graph_passes(self, small_graph):
        _, g = small_graph
        validate_graph(g)

    def test_unsorted_rows_detected(self):
        g = from_edge_list([(0, 1), (0, 2)], 3)
        # Forge an unsorted-row graph by bypassing the sort.
        bad = CSRGraph.__new__(CSRGraph)
        bad._indptr = g.indptr
        idx = g.indices.copy()
        idx[0], idx[1] = idx[1], idx[0]
        idx.flags.writeable = False
        bad._indices = idx
        bad._in_indptr = None
        bad._in_indices = None
        with pytest.raises(GraphValidationError):
            validate_graph(bad, check_transpose=False)

    def test_transpose_check_runs(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], 3)
        validate_graph(g, check_transpose=True)

    def test_random_graphs_validate(self):
        from tests.conftest import random_digraph

        for seed in range(5):
            validate_graph(random_digraph(60, 240, seed))
