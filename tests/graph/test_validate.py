"""Unit tests for structural validation."""

import numpy as np
import pytest

from repro.graph import CSRGraph, GraphValidationError, from_edge_list, validate_graph


class TestValidate:
    def test_valid_graph_passes(self, small_graph):
        _, g = small_graph
        validate_graph(g)

    def test_unsorted_rows_detected(self):
        g = from_edge_list([(0, 1), (0, 2)], 3)
        # Forge an unsorted-row graph by bypassing the sort.
        bad = CSRGraph.__new__(CSRGraph)
        bad._indptr = g.indptr
        idx = g.indices.copy()
        idx[0], idx[1] = idx[1], idx[0]
        idx.flags.writeable = False
        bad._indices = idx
        bad._in_indptr = None
        bad._in_indices = None
        with pytest.raises(GraphValidationError):
            validate_graph(bad, check_transpose=False)

    def test_transpose_check_runs(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], 3)
        validate_graph(g, check_transpose=True)

    def test_random_graphs_validate(self):
        from tests.conftest import random_digraph

        for seed in range(5):
            validate_graph(random_digraph(60, 240, seed))


def _forge(indptr, indices, in_indptr=None, in_indices=None):
    """Build a CSRGraph bypassing all construction-time checks."""
    bad = CSRGraph.__new__(CSRGraph)
    bad._indptr = np.asarray(indptr, dtype=np.int64)
    bad._indices = np.asarray(indices, dtype=np.int64)
    bad._in_indptr = (
        None if in_indptr is None else np.asarray(in_indptr, dtype=np.int64)
    )
    bad._in_indices = (
        None if in_indices is None else np.asarray(in_indices, dtype=np.int64)
    )
    return bad


class TestMalformedCSR:
    """Corrupted inputs must fail fast with actionable messages."""

    def test_non_monotone_indptr(self):
        bad = _forge([0, 2, 1, 3], [1, 2, 0])
        with pytest.raises(GraphValidationError, match="not monotone"):
            validate_graph(bad, check_transpose=False)

    def test_non_monotone_message_names_row(self):
        bad = _forge([0, 2, 1, 3], [1, 2, 0])
        with pytest.raises(GraphValidationError, match="row 1"):
            validate_graph(bad, check_transpose=False)

    def test_bad_indptr_endpoints(self):
        bad = _forge([1, 2, 3], [0, 1])
        with pytest.raises(GraphValidationError, match="endpoints"):
            validate_graph(bad, check_transpose=False)

    def test_indptr_wrong_length(self):
        bad = _forge([0, 1, 2], [1, 0, 2])  # 2 rows declared, but...
        bad._indptr = np.array([0, 3], dtype=np.int64)  # n=1, 3 edges
        with pytest.raises(GraphValidationError):
            validate_graph(bad, check_transpose=False)

    def test_out_of_range_destination(self):
        bad = _forge([0, 1, 2], [1, 5])  # node 5 doesn't exist (n=2)
        with pytest.raises(GraphValidationError, match="out of range"):
            validate_graph(bad, check_transpose=False)

    def test_out_of_range_message_names_target(self):
        bad = _forge([0, 1, 2], [1, 5])
        with pytest.raises(GraphValidationError, match="node 5"):
            validate_graph(bad, check_transpose=False)

    def test_negative_destination(self):
        bad = _forge([0, 1, 2], [1, -1])
        with pytest.raises(GraphValidationError, match="out of range"):
            validate_graph(bad, check_transpose=False)

    def test_dangling_transpose_edge_count(self):
        g = from_edge_list([(0, 1), (1, 2)], 3)
        bad = _forge(
            g.indptr, g.indices,
            in_indptr=[0, 0, 1, 1],  # transpose dropped one edge
            in_indices=[0],
        )
        with pytest.raises(GraphValidationError, match="edge count"):
            validate_graph(bad)

    def test_dangling_transpose_out_of_range_source(self):
        g = from_edge_list([(0, 1), (1, 2)], 3)
        bad = _forge(
            g.indptr, g.indices,
            in_indptr=[0, 0, 1, 2],
            in_indices=[0, 9],  # node 9 doesn't exist
        )
        with pytest.raises(GraphValidationError, match="dangling"):
            validate_graph(bad)

    def test_transpose_wrong_edge_set(self):
        g = from_edge_list([(0, 1), (1, 2)], 3)
        bad = _forge(
            g.indptr, g.indices,
            in_indptr=[0, 1, 2, 2],  # right count, wrong edges
            in_indices=[1, 2],
        )
        with pytest.raises(GraphValidationError, match="mismatch"):
            validate_graph(bad)

    def test_transpose_ok_when_check_disabled(self):
        g = from_edge_list([(0, 1), (1, 2)], 3)
        bad = _forge(
            g.indptr, g.indices,
            in_indptr=[0, 1, 2, 2],
            in_indices=[1, 2],
        )
        validate_graph(bad, check_transpose=False)  # must not raise
