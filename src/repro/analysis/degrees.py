"""Degree statistics and power-law (scale-free) fitting.

Section 4.3: "there is another fundamental characteristic of
real-world graphs, the scale-free property ... there exist a few nodes
that have a huge number of neighbors while many nodes have only a
few."  That skew is why static work distribution fails for
neighbourhood-exploring loops; :func:`powerlaw_fit` quantifies it with
the standard Clauset-style MLE exponent over a tail cutoff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import CSRGraph

__all__ = ["DegreeStats", "degree_statistics", "powerlaw_fit"]


@dataclass(frozen=True)
class DegreeStats:
    mean_out: float
    max_out: int
    max_in: int
    #: ratio max/mean out-degree — the static-chunk imbalance driver.
    skew: float
    #: MLE power-law exponent of the out-degree tail (NaN if degenerate).
    alpha: float


def powerlaw_fit(values: np.ndarray, xmin: int = 2) -> float:
    """Continuous-approximation MLE exponent ``alpha`` for a power law.

    ``alpha = 1 + n / sum(ln(x / xmin))`` over ``x >= xmin`` (Clauset,
    Shalizi & Newman 2009, eq. 3.1).  Returns NaN when fewer than two
    tail samples exist.
    """
    values = np.asarray(values, dtype=np.float64)
    tail = values[values >= xmin]
    if tail.shape[0] < 2:
        return float("nan")
    return float(1.0 + tail.shape[0] / np.log(tail / (xmin - 0.5)).sum())


def degree_statistics(g: CSRGraph) -> DegreeStats:
    """Degree summary for one graph."""
    out = g.out_degrees()
    ins = g.in_degrees()
    mean_out = float(out.mean()) if out.size else 0.0
    return DegreeStats(
        mean_out=mean_out,
        max_out=int(out.max()) if out.size else 0,
        max_in=int(ins.max()) if ins.size else 0,
        skew=float(out.max() / mean_out) if mean_out > 0 else 0.0,
        alpha=powerlaw_fit(out),
    )
