"""SCC size-distribution statistics (Figures 2 and 9).

The paper's structural picture of real-world graphs (Section 2.2):
one giant SCC of size O(N), size-1 SCCs the most frequent class, and a
power-law-decaying spectrum in between.  These helpers turn an SCC
label array into the histogram and summary numbers the figures report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = [
    "scc_sizes_from_labels",
    "size_histogram",
    "giant_fraction",
    "summarize_scc_structure",
    "SCCStructureSummary",
]


def scc_sizes_from_labels(labels: np.ndarray) -> np.ndarray:
    """SCC sizes (one entry per component) from a label array."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return np.empty(0, dtype=np.int64)
    if labels.min() < 0:
        raise ValueError("labels must be non-negative (complete run)")
    return np.bincount(labels)


def size_histogram(labels: np.ndarray) -> Dict[int, int]:
    """``{scc_size: count}`` — the Figure 2 / Figure 9 scatter data."""
    sizes = scc_sizes_from_labels(labels)
    sizes = sizes[sizes > 0]
    values, counts = np.unique(sizes, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def giant_fraction(labels: np.ndarray) -> float:
    """Largest SCC size over node count."""
    sizes = scc_sizes_from_labels(labels)
    n = int(np.asarray(labels).shape[0])
    return float(sizes.max()) / n if n else 0.0


@dataclass(frozen=True)
class SCCStructureSummary:
    """The Table 1 / Section 2.2 numbers for one graph."""

    num_nodes: int
    num_sccs: int
    largest_scc: int
    giant_fraction: float
    #: count of size-1 SCCs (the Trim-step fodder).
    trivial_sccs: int
    #: count of SCCs with 2 <= size < giant (the Method-2 territory).
    mid_sccs: int
    #: True when the graph is a DAG (Patents): every SCC is size 1.
    acyclic: bool


def summarize_scc_structure(labels: np.ndarray) -> SCCStructureSummary:
    """Summarize an SCC labelling into the paper's headline numbers."""
    sizes = scc_sizes_from_labels(labels)
    sizes = sizes[sizes > 0]
    n = int(np.asarray(labels).shape[0])
    largest = int(sizes.max()) if sizes.size else 0
    trivial = int((sizes == 1).sum())
    mid = int(((sizes >= 2) & (sizes < largest)).sum())
    return SCCStructureSummary(
        num_nodes=n,
        num_sccs=int(sizes.shape[0]),
        largest_scc=largest,
        giant_fraction=largest / n if n else 0.0,
        trivial_sccs=trivial,
        mid_sccs=mid,
        acyclic=bool(largest <= 1),
    )
