"""Small-world classification.

Section 5 ends with: "in the common case, users have a priori
knowledge about the property of their graphs, small-world or not" —
and the methods' profitability hinges on it (CA-road is the
counterexample).  :func:`is_small_world` provides that a-priori check
empirically: a graph is small-world when its sampled diameter is
O(log N), i.e. within ``factor`` of ``log2(N)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import CSRGraph
from .diameter import estimate_diameter

__all__ = ["SmallWorldReport", "is_small_world", "classify_graph"]


@dataclass(frozen=True)
class SmallWorldReport:
    num_nodes: int
    diameter_estimate: int
    log2_n: float
    #: diameter / log2(N); small-world graphs sit near or below ~2-3.
    ratio: float
    small_world: bool


def classify_graph(
    g: CSRGraph,
    *,
    factor: float = 4.0,
    samples: int = 12,
    rng: np.random.Generator | int | None = 0,
) -> SmallWorldReport:
    """Classify ``g`` by the diameter-vs-log(N) criterion."""
    n = max(g.num_nodes, 2)
    diam = estimate_diameter(g, samples=samples, rng=rng)
    log2n = float(np.log2(n))
    ratio = diam / log2n
    return SmallWorldReport(
        num_nodes=g.num_nodes,
        diameter_estimate=diam,
        log2_n=log2n,
        ratio=ratio,
        small_world=bool(ratio <= factor),
    )


def is_small_world(
    g: CSRGraph,
    *,
    factor: float = 4.0,
    samples: int = 12,
    rng: np.random.Generator | int | None = 0,
) -> bool:
    """True when the sampled diameter is within ``factor * log2(N)``."""
    return classify_graph(g, factor=factor, samples=samples, rng=rng).small_world
