"""Bow-tie decomposition around the giant SCC (Broder et al. [11]).

Section 3.2 leans on the bow-tie picture — "the giant SCC can be
considered the center, to which most of the other small SCCs are
attached" — to explain both the Baseline's serialization and why
Par-WCC shatters the remainder.  This module computes the classic
decomposition: the giant SCC (CORE), nodes that reach it (IN), nodes
it reaches (OUT), and everything else (TENDRILS+DISCONNECTED, lumped
as OTHER since distinguishing them needs another pass the paper never
uses).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import CSRGraph
from ..traversal.bfs import bfs_mask
from .sccstats import scc_sizes_from_labels

__all__ = ["BowTie", "bowtie_decomposition"]


@dataclass(frozen=True)
class BowTie:
    """Node counts of the bow-tie regions."""

    core: int
    inset: int
    outset: int
    other: int

    @property
    def total(self) -> int:
        return self.core + self.inset + self.outset + self.other

    def fractions(self) -> dict[str, float]:
        t = max(self.total, 1)
        return {
            "core": self.core / t,
            "in": self.inset / t,
            "out": self.outset / t,
            "other": self.other / t,
        }


def bowtie_decomposition(g: CSRGraph, labels: np.ndarray) -> BowTie:
    """Decompose ``g`` around its largest SCC given SCC ``labels``."""
    sizes = scc_sizes_from_labels(labels)
    if sizes.size == 0:
        return BowTie(0, 0, 0, 0)
    giant = int(np.argmax(sizes))
    core_nodes = np.flatnonzero(labels == giant)
    # OUT: forward-reachable from any core node (BFS from the core).
    fw, _ = bfs_mask(g, core_nodes, direction="out")
    # IN: backward-reachable (BFS over reverse edges).
    bw, _ = bfs_mask(g, core_nodes, direction="in")
    core_mask = np.zeros(g.num_nodes, dtype=bool)
    core_mask[core_nodes] = True
    outset = fw & ~core_mask
    inset = bw & ~core_mask
    other = ~(core_mask | outset | inset)
    return BowTie(
        core=int(core_mask.sum()),
        inset=int(inset.sum()),
        outset=int(outset.sum()),
        other=int(other.sum()),
    )
