"""Sampled diameter estimation.

Table 1's diameters "are estimated from a random sampling of nodes;
the actual diameters are likely somewhat larger due to outlier nodes."
Same approach here: BFS from a node sample over the *undirected*
closure (the convention for reporting graph diameter) and take the
largest finite eccentricity observed, restricted to the largest weakly
connected block so unreachable fragments do not produce infinities.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph
from ..graph.orient import symmetrize
from ..traversal.bfs import bfs_levels

__all__ = ["eccentricity_sample", "estimate_diameter"]


def eccentricity_sample(
    g: CSRGraph,
    samples: int = 16,
    *,
    undirected: bool = True,
    rng: np.random.Generator | int | None = 0,
) -> np.ndarray:
    """Eccentricities (within reach) of a random node sample."""
    rng = np.random.default_rng(rng)
    if g.num_nodes == 0:
        return np.empty(0, dtype=np.int64)
    work_graph = symmetrize(g) if undirected else g
    nodes = rng.choice(
        g.num_nodes, size=min(samples, g.num_nodes), replace=False
    )
    eccs = np.empty(nodes.shape[0], dtype=np.int64)
    for i, s in enumerate(nodes):
        dist = bfs_levels(work_graph, int(s))
        eccs[i] = int(dist.max())
    return eccs


def estimate_diameter(
    g: CSRGraph,
    samples: int = 16,
    *,
    undirected: bool = True,
    rng: np.random.Generator | int | None = 0,
) -> int:
    """Lower-bound diameter estimate from sampled eccentricities."""
    eccs = eccentricity_sample(
        g, samples, undirected=undirected, rng=rng
    )
    return int(eccs.max()) if eccs.size else 0
