"""Graph and SCC-structure analysis utilities.

Everything Section 2.2 / Table 1 / Figures 2 & 9 measure: SCC size
distributions, giant-component fractions, sampled diameters,
small-world classification, degree power-law fits, and the Broder
et al. bow-tie decomposition around the giant SCC.
"""

from .sccstats import (
    scc_sizes_from_labels,
    size_histogram,
    giant_fraction,
    summarize_scc_structure,
    SCCStructureSummary,
)
from .diameter import estimate_diameter, eccentricity_sample
from .smallworld import is_small_world, SmallWorldReport, classify_graph
from .degrees import degree_statistics, powerlaw_fit, DegreeStats
from .bowtie import bowtie_decomposition, BowTie
from .clustering import local_clustering, average_clustering
from .reciprocity import edge_reciprocity, reciprocal_edge_count

__all__ = [
    "scc_sizes_from_labels",
    "size_histogram",
    "giant_fraction",
    "summarize_scc_structure",
    "SCCStructureSummary",
    "estimate_diameter",
    "eccentricity_sample",
    "is_small_world",
    "SmallWorldReport",
    "classify_graph",
    "degree_statistics",
    "powerlaw_fit",
    "DegreeStats",
    "bowtie_decomposition",
    "BowTie",
    "local_clustering",
    "average_clustering",
    "edge_reciprocity",
    "reciprocal_edge_count",
]
