"""Local clustering coefficient (sampled).

Watts & Strogatz's small-world definition [29] combines a short
characteristic path length with a *high clustering coefficient* —
random rewiring keeps clustering high while collapsing the diameter.
This sampled estimator completes the small-world toolkit next to the
diameter check: social surrogates cluster strongly, random-oriented
grids and uniform digraphs do not.

The coefficient is computed on the undirected closure (the standard
convention): for node ``v`` with ``k`` distinct neighbours,
``C(v) = 2 * links_between_neighbours / (k * (k - 1))``.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph
from ..graph.orient import symmetrize

__all__ = ["local_clustering", "average_clustering"]


def local_clustering(g: CSRGraph, node: int) -> float:
    """Clustering coefficient of one node (undirected closure)."""
    und = symmetrize(g)
    return _coefficient(und, node)


def _coefficient(und: CSRGraph, node: int) -> float:
    nbrs = und.out_neighbors(node)
    nbrs = nbrs[nbrs != node]
    k = int(nbrs.shape[0])
    if k < 2:
        return 0.0
    member = np.zeros(und.num_nodes, dtype=bool)
    member[nbrs] = True
    links = 0
    for u in nbrs:
        row = und.out_neighbors(int(u))
        links += int(member[row].sum())
    # each neighbour-neighbour link counted from both ends
    return links / (k * (k - 1))


def average_clustering(
    g: CSRGraph,
    samples: int = 200,
    *,
    rng: np.random.Generator | int | None = 0,
) -> float:
    """Sampled average clustering coefficient (undirected closure)."""
    if g.num_nodes == 0:
        return 0.0
    rng = np.random.default_rng(rng)
    und = symmetrize(g)
    nodes = rng.choice(
        g.num_nodes, size=min(samples, g.num_nodes), replace=False
    )
    return float(
        np.mean([_coefficient(und, int(v)) for v in nodes])
    )
