"""Edge reciprocity: the fraction of edges with a reverse partner.

Reciprocity drives the SCC structure of randomly oriented graphs
(Table 1's ``*`` datasets): a reciprocal pair is a ready-made 2-cycle,
and the giant SCC of the oriented CA-road grid exists *only* because
the independent-coin orientation leaves ~25 % of edges reciprocal
(see ``repro.graph.orient``).  Social follower graphs sit anywhere
between ~20 % (Twitter) and ~100 % (mutual-friendship networks).
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph

__all__ = ["edge_reciprocity", "reciprocal_edge_count"]


def reciprocal_edge_count(g: CSRGraph) -> int:
    """Number of edges ``u -> v`` whose reverse ``v -> u`` also exists.

    Counted per directed edge (a mutual pair contributes 2).  Computed
    with one vectorized membership pass: an edge set sorted by
    ``(src, dst)`` intersected with itself swapped.
    """
    if g.num_edges == 0:
        return 0
    src, dst = g.edge_array()
    key_fwd = src * np.int64(g.num_nodes) + dst
    key_bwd = dst * np.int64(g.num_nodes) + src
    key_fwd.sort()
    return int(np.isin(key_bwd, key_fwd, assume_unique=False).sum())


def edge_reciprocity(g: CSRGraph) -> float:
    """Reciprocal fraction in [0, 1] (0 for the empty graph)."""
    if g.num_edges == 0:
        return 0.0
    return reciprocal_edge_count(g) / g.num_edges
