"""Cluster model: replaying BSP superstep traces.

A distributed run is a sequence of supersteps; each records per-rank
compute work (edge-units, as in the shared-memory runtime) and per-rank
message volume (one unit per node-id crossing a partition boundary).
The cluster charges the classic BSP cost per superstep:

    t = max_r(work_r) / rank_throughput
      + alpha                       (barrier + message startup)
      + beta * max_r(bytes sent or received by r)

Default constants model a commodity cluster of small (4-core-class)
nodes on an HPC interconnect: ``rank_throughput=4``, sub-microsecond
barriers (``alpha=500`` edge-units) and a network moving ids at about
half the speed a core inspects edges (``beta=0.5``).  Two failure
modes emerge exactly as in practice: small-world graphs are
**cut-bound** (no partitioner gets their edge cut below ~50 %, so
scaling stalls at a comm floor) and high-diameter graphs are
**latency-bound** (hundreds of BFS/WCC supersteps multiply alpha —
the distributed mirror of the shared-memory barrier pathology the
paper describes for CA-road).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["ClusterConfig", "Superstep", "DistTrace", "Cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Per-rank speed and interconnect constants (edge-units)."""

    #: compute throughput of one rank (edge-units per unit time);
    #: default: a commodity 4-core-class node.
    rank_throughput: float = 4.0
    #: per-superstep latency: barrier + message startup.
    alpha: float = 500.0
    #: per-id transfer cost.
    beta: float = 0.5

    def __post_init__(self) -> None:
        if self.rank_throughput <= 0:
            raise ValueError("rank_throughput must be positive")
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")


@dataclass(frozen=True)
class Superstep:
    """One BSP superstep: per-rank compute and communication."""

    phase: str
    #: edge-units of compute per rank.
    work: np.ndarray
    #: ids sent per rank (received volume mirrors sent under our
    #: owner-directed sends, so one array suffices for the max term).
    sent: np.ndarray

    def __post_init__(self) -> None:
        if self.work.shape != self.sent.shape:
            raise ValueError("work and sent must have one entry per rank")


class DistTrace:
    """Append-only superstep sequence with per-phase accounting."""

    def __init__(self, num_ranks: int) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.num_ranks = num_ranks
        self.steps: List[Superstep] = []

    def superstep(
        self,
        phase: str,
        work: np.ndarray | Sequence[float],
        sent: np.ndarray | Sequence[float] | None = None,
    ) -> None:
        work = np.asarray(work, dtype=np.float64)
        if sent is None:
            sent = np.zeros_like(work)
        sent = np.asarray(sent, dtype=np.float64)
        if work.shape != (self.num_ranks,):
            raise ValueError(
                f"work must have {self.num_ranks} entries, got {work.shape}"
            )
        self.steps.append(Superstep(phase=phase, work=work, sent=sent))

    def total_work(self) -> float:
        return float(sum(s.work.sum() for s in self.steps))

    def total_messages(self) -> float:
        return float(sum(s.sent.sum() for s in self.steps))

    def phase_messages(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for s in self.steps:
            out[s.phase] = out.get(s.phase, 0.0) + float(s.sent.sum())
        return out


@dataclass
class DistSimResult:
    """Replay outcome for one cluster configuration."""

    num_ranks: int
    total_time: float
    compute_time: float
    comm_time: float
    phase_times: Dict[str, float] = field(default_factory=dict)

    @property
    def comm_fraction(self) -> float:
        return self.comm_time / self.total_time if self.total_time else 0.0


class Cluster:
    """Replays a :class:`DistTrace` under a :class:`ClusterConfig`."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()

    def simulate(self, trace: DistTrace) -> DistSimResult:
        cfg = self.config
        total = compute = comm = 0.0
        phase_times: Dict[str, float] = {}
        for step in trace.steps:
            t_compute = float(step.work.max()) / cfg.rank_throughput
            # single-rank runs pay no interconnect costs
            if trace.num_ranks > 1:
                t_comm = cfg.alpha + cfg.beta * float(step.sent.max())
            else:
                t_comm = 0.0
            total += t_compute + t_comm
            compute += t_compute
            comm += t_comm
            phase_times[step.phase] = (
                phase_times.get(step.phase, 0.0) + t_compute + t_comm
            )
        return DistSimResult(
            num_ranks=trace.num_ranks,
            total_time=total,
            compute_time=compute,
            comm_time=comm,
            phase_times=phase_times,
        )
