"""Cluster model: replaying BSP superstep traces.

A distributed run is a sequence of supersteps; each records per-rank
compute work (edge-units, as in the shared-memory runtime) and per-rank
message volume (one unit per node-id crossing a partition boundary).
The cluster charges the classic BSP cost per superstep:

    t = max_r(work_r) / rank_throughput
      + alpha                       (barrier + message startup)
      + beta * max_r(bytes sent or received by r)

Default constants model a commodity cluster of small (4-core-class)
nodes on an HPC interconnect: ``rank_throughput=4``, sub-microsecond
barriers (``alpha=500`` edge-units) and a network moving ids at about
half the speed a core inspects edges (``beta=0.5``).  Two failure
modes emerge exactly as in practice: small-world graphs are
**cut-bound** (no partitioner gets their edge cut below ~50 %, so
scaling stalls at a comm floor) and high-diameter graphs are
**latency-bound** (hundreds of BFS/WCC supersteps multiply alpha —
the distributed mirror of the shared-memory barrier pathology the
paper describes for CA-road).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "ClusterConfig",
    "Superstep",
    "DistTrace",
    "Cluster",
    "RankFailure",
    "CheckpointPolicy",
    "FaultySimResult",
    "sweep_checkpoint_interval",
]


@dataclass(frozen=True)
class ClusterConfig:
    """Per-rank speed and interconnect constants (edge-units)."""

    #: compute throughput of one rank (edge-units per unit time);
    #: default: a commodity 4-core-class node.
    rank_throughput: float = 4.0
    #: per-superstep latency: barrier + message startup.
    alpha: float = 500.0
    #: per-id transfer cost.
    beta: float = 0.5

    def __post_init__(self) -> None:
        if self.rank_throughput <= 0:
            raise ValueError("rank_throughput must be positive")
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")


@dataclass(frozen=True)
class Superstep:
    """One BSP superstep: per-rank compute and communication."""

    phase: str
    #: edge-units of compute per rank.
    work: np.ndarray
    #: ids sent per rank (received volume mirrors sent under our
    #: owner-directed sends, so one array suffices for the max term).
    sent: np.ndarray

    def __post_init__(self) -> None:
        if self.work.shape != self.sent.shape:
            raise ValueError("work and sent must have one entry per rank")


class DistTrace:
    """Append-only superstep sequence with per-phase accounting."""

    def __init__(self, num_ranks: int) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.num_ranks = num_ranks
        self.steps: List[Superstep] = []

    def superstep(
        self,
        phase: str,
        work: np.ndarray | Sequence[float],
        sent: np.ndarray | Sequence[float] | None = None,
    ) -> None:
        work = np.asarray(work, dtype=np.float64)
        if sent is None:
            sent = np.zeros_like(work)
        sent = np.asarray(sent, dtype=np.float64)
        if work.shape != (self.num_ranks,):
            raise ValueError(
                f"work must have {self.num_ranks} entries, got {work.shape}"
            )
        self.steps.append(Superstep(phase=phase, work=work, sent=sent))

    def total_work(self) -> float:
        return float(sum(s.work.sum() for s in self.steps))

    def total_messages(self) -> float:
        return float(sum(s.sent.sum() for s in self.steps))

    def phase_messages(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for s in self.steps:
            out[s.phase] = out.get(s.phase, 0.0) + float(s.sent.sum())
        return out


@dataclass(frozen=True)
class RankFailure:
    """One rank lost while executing superstep ``superstep``."""

    superstep: int
    rank: int = 0

    def __post_init__(self) -> None:
        if self.superstep < 0 or self.rank < 0:
            raise ValueError("superstep and rank must be non-negative")


@dataclass(frozen=True)
class CheckpointPolicy:
    """Checkpoint-every-C-supersteps with explicit costs.

    ``every=0`` disables checkpointing (recovery = full rerun).
    ``cost`` is the time to quiesce and write one checkpoint at a
    barrier; ``restart_cost`` the time to respawn a rank and load the
    last checkpoint.  Both are in the same time units the cluster
    model produces (edge-units / rank_throughput).
    """

    every: int = 0
    cost: float = 1000.0
    restart_cost: float = 2000.0

    def __post_init__(self) -> None:
        if self.every < 0:
            raise ValueError("every must be >= 0 (0 = no checkpoints)")
        if self.cost < 0 or self.restart_cost < 0:
            raise ValueError("costs must be non-negative")


@dataclass
class FaultySimResult:
    """Outcome of a failure-injected replay."""

    base: "DistSimResult"
    total_time: float
    checkpoint_time: float
    recompute_time: float
    restart_time: float
    checkpoints_taken: int
    failures: int

    @property
    def overhead(self) -> float:
        """Slowdown versus the failure-free replay (1.0 = free)."""
        if self.base.total_time == 0:
            return 1.0
        return self.total_time / self.base.total_time


def sweep_checkpoint_interval(
    cluster: "Cluster",
    trace: "DistTrace",
    failures: Sequence[RankFailure],
    intervals: Sequence[int],
    *,
    cost: float = 1000.0,
    restart_cost: float = 2000.0,
) -> Dict[int, FaultySimResult]:
    """Replay under each checkpoint interval; the classic U-curve.

    Small intervals pay checkpoint overhead every few supersteps; large
    ones (or 0 = none) pay long recomputation after a failure.  The
    minimum of ``total_time`` over ``intervals`` is the tuned
    recover-vs-rerun operating point for this trace + failure load.
    """
    out: Dict[int, FaultySimResult] = {}
    for every in intervals:
        policy = CheckpointPolicy(
            every=every, cost=cost, restart_cost=restart_cost
        )
        out[int(every)] = cluster.simulate_with_failures(
            trace, failures, policy
        )
    return out


@dataclass
class DistSimResult:
    """Replay outcome for one cluster configuration."""

    num_ranks: int
    total_time: float
    compute_time: float
    comm_time: float
    phase_times: Dict[str, float] = field(default_factory=dict)

    @property
    def comm_fraction(self) -> float:
        return self.comm_time / self.total_time if self.total_time else 0.0


class Cluster:
    """Replays a :class:`DistTrace` under a :class:`ClusterConfig`."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()

    def simulate(self, trace: DistTrace) -> DistSimResult:
        cfg = self.config
        total = compute = comm = 0.0
        phase_times: Dict[str, float] = {}
        for step in trace.steps:
            t_compute = float(step.work.max()) / cfg.rank_throughput
            # single-rank runs pay no interconnect costs
            if trace.num_ranks > 1:
                t_comm = cfg.alpha + cfg.beta * float(step.sent.max())
            else:
                t_comm = 0.0
            total += t_compute + t_comm
            compute += t_compute
            comm += t_comm
            phase_times[step.phase] = (
                phase_times.get(step.phase, 0.0) + t_compute + t_comm
            )
        return DistSimResult(
            num_ranks=trace.num_ranks,
            total_time=total,
            compute_time=compute,
            comm_time=comm,
            phase_times=phase_times,
        )

    # ------------------------------------------------------------------
    def _step_time(self, trace: DistTrace, step: Superstep) -> float:
        cfg = self.config
        t = float(step.work.max()) / cfg.rank_throughput
        if trace.num_ranks > 1:
            t += cfg.alpha + cfg.beta * float(step.sent.max())
        return t

    def simulate_with_failures(
        self,
        trace: DistTrace,
        failures: Sequence[RankFailure],
        policy: "CheckpointPolicy | None" = None,
    ) -> "FaultySimResult":
        """Replay ``trace`` under rank failures and a checkpoint policy.

        The BSP structure makes the recovery model exact: state is
        well-defined only at superstep barriers, so a checkpoint taken
        after superstep ``s`` lets a failed run resume at ``s + 1``.  A
        rank lost *during* superstep ``s`` voids that superstep; the
        cluster pays ``restart_cost`` (respawn + state load), then
        recomputes every superstep since the last checkpoint, ``s``
        included.  Without checkpoints recovery degenerates to a full
        rerun from superstep 0 — the recover-vs-rerun tradeoff the
        shared-memory supervisor faces per task, surfaced at cluster
        scale per superstep.

        ``failures`` are applied in superstep order; each recovers from
        the latest checkpoint taken before it.  A failure index past
        the end of the trace is ignored (the run already finished).
        """
        policy = policy or CheckpointPolicy()
        steps = trace.steps
        times = [self._step_time(trace, s) for s in steps]
        by_step: Dict[int, int] = {}
        for f in failures:
            if 0 <= f.superstep < len(steps):
                by_step[f.superstep] = by_step.get(f.superstep, 0) + 1

        base_time = float(sum(times))
        checkpoint_time = recompute_time = restart_time = 0.0
        checkpoints = 0
        last_checkpoint = 0  # resume point: first superstep NOT covered
        prefix = np.concatenate(([0.0], np.cumsum(times)))
        for s in range(len(steps)):
            for _ in range(by_step.get(s, 0)):
                restart_time += policy.restart_cost
                # recompute supersteps [last_checkpoint, s] — they ran
                # once already (their time is in base/recompute) and
                # must run again after the rollback.
                recompute_time += float(prefix[s + 1] - prefix[last_checkpoint])
            if policy.every and (s + 1) % policy.every == 0:
                checkpoint_time += policy.cost
                checkpoints += 1
                last_checkpoint = s + 1
        total = base_time + checkpoint_time + recompute_time + restart_time
        return FaultySimResult(
            base=self.simulate(trace),
            total_time=total,
            checkpoint_time=checkpoint_time,
            recompute_time=recompute_time,
            restart_time=restart_time,
            checkpoints_taken=checkpoints,
            failures=int(sum(by_step.values())),
        )
