"""Distributed-memory extension (the paper's stated future work).

Section 6: "As a next step, we plan to implement our algorithm in a
distributed environment.  Our extensions can be easily implemented in
such an environment as they only require data from direct neighbors."

This package builds that next step on the same substitution principle
as the shared-memory runtime (DESIGN.md §2): the algorithms execute
once with **per-rank ownership accounting** — every data-parallel
kernel attributes its work to the rank owning each node and counts a
message for every frontier/label update that crosses a partition
boundary — producing a BSP superstep trace that a cluster model
(per-rank throughput + alpha-beta communication) replays for any rank
count.  Graph partitioners (block / hash / BFS-locality) control the
edge cut, which is what the resulting scaling curves trade against
load balance.
"""

from .partition import (
    Partition,
    block_partition,
    hash_partition,
    bfs_partition,
    edge_cut,
)
from .cluster import (
    ClusterConfig,
    DistTrace,
    Superstep,
    Cluster,
    RankFailure,
    CheckpointPolicy,
    FaultySimResult,
    sweep_checkpoint_interval,
)
from .algorithms import (
    dist_bfs_reach,
    dist_trim,
    dist_wcc,
    distributed_method1,
    DistributedResult,
)

__all__ = [
    "Partition",
    "block_partition",
    "hash_partition",
    "bfs_partition",
    "edge_cut",
    "ClusterConfig",
    "DistTrace",
    "Superstep",
    "Cluster",
    "RankFailure",
    "CheckpointPolicy",
    "FaultySimResult",
    "sweep_checkpoint_interval",
    "dist_bfs_reach",
    "dist_trim",
    "dist_wcc",
    "distributed_method1",
    "DistributedResult",
]
