"""Distributed FW-BW-Trim: Method 1 in a BSP message-passing setting.

The paper's closing claim is that the extensions "can be easily
implemented in such an environment as they only require data from
direct neighbors."  This module substantiates that: every phase-1
kernel is re-expressed as BSP supersteps whose only remote reads are
one-hop neighbour state —

* **dist_trim** — the degree sweep reads neighbour colours: every cut
  edge costs one message per sweep; subsequent incremental rounds only
  exchange the trimmed frontier's cut edges.
* **dist_bfs_reach** — level-synchronous BFS; each level's frontier
  expansion sends every cut edge it touches to the target's owner.
* **dist_wcc** — hook-and-compress label propagation; each iteration
  exchanges labels over active cut edges.
* **phase 2** — each work item (colour partition) is an independent
  sequential FW-BW chain (spawned children inherit their parent's
  partition), so items are LPT-scheduled onto ranks whole; the only
  communication is shipping each item's node set to its assignee.

Work/messages are attributed by node ownership while the computation
itself runs on the global arrays (the same substitution as the
shared-memory runtime, DESIGN.md §2): the algorithm executed is
identical, and what the cluster model needs — per-rank work and cut
traffic per superstep — is counted exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.recurfwbw import collect_color_sets, run_recur_phase
from ..core.state import PHASE_FWBW, PHASE_TRIM, SCCState
from ..core.trim import effective_degrees, trim_candidates
from ..graph import CSRGraph
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from ..runtime.trace import TaskDAGRecord
from ..traversal.frontier import expand_frontier
from .cluster import DistTrace
from .partition import Partition

__all__ = [
    "dist_bfs_reach",
    "dist_trim",
    "dist_wcc",
    "distributed_method1",
    "DistributedResult",
]


def _per_rank(owner: np.ndarray, nodes: np.ndarray, weights, num_ranks: int):
    """Sum ``weights`` per owning rank of ``nodes``."""
    return np.bincount(
        owner[nodes], weights=weights, minlength=num_ranks
    ).astype(np.float64)


def _cut_sent(
    owner: np.ndarray, src: np.ndarray, dst: np.ndarray, num_ranks: int
) -> np.ndarray:
    """Messages sent per rank for the touched edges (cut edges only)."""
    cross = owner[src] != owner[dst]
    return np.bincount(
        owner[src[cross]], minlength=num_ranks
    ).astype(np.float64)


def dist_bfs_reach(
    state: SCCState,
    part: Partition,
    dtrace: DistTrace,
    pivot: int,
    transitions: Dict[int, int],
    *,
    direction: str = "out",
    phase: str = "par_fwbw",
) -> Dict[int, np.ndarray]:
    """Distributed Algorithm-5 traversal (colour-transforming BFS).

    Mirrors :func:`repro.traversal.bfs.bfs_color_transform`, recording
    one superstep per level: per-rank work = adjacency scanned from
    locally owned frontier nodes; messages = cut edges touched.
    Returns the recoloured node sets per target colour.
    """
    g, color, cost = state.graph, state.color, state.cost
    owner = part.owner
    if direction == "out":
        indptr, indices = g.indptr, g.indices
    elif direction == "in":
        indptr, indices = g.in_indptr, g.in_indices
    else:
        raise ValueError(f"bad direction {direction!r}")

    collected: Dict[int, List[np.ndarray]] = {
        new: [] for new in transitions.values()
    }
    pivot_color = int(color[pivot])
    if pivot_color not in transitions:
        raise ValueError("pivot colour not in transition map")
    new_pivot = transitions[pivot_color]
    color[pivot] = new_pivot
    collected[new_pivot].append(np.array([pivot], dtype=np.int64))
    frontier = np.array([pivot], dtype=np.int64)
    while frontier.size:
        targets, sources = expand_frontier(
            indptr, indices, frontier, return_sources=True
        )
        deg = indptr[frontier + 1] - indptr[frontier]
        work = _per_rank(
            owner, frontier, cost.bfs(nodes=1) + cost.bfs(edges=1) * deg,
            part.num_ranks,
        )
        sent = _cut_sent(owner, sources, targets, part.num_ranks)
        dtrace.superstep(phase, work, sent)
        if targets.size == 0:
            break
        tc = color[targets]
        next_parts: List[np.ndarray] = []
        for old, new in transitions.items():
            hit = np.unique(targets[tc == old])
            if hit.size:
                color[hit] = new
                collected[new].append(hit)
                next_parts.append(hit)
        if not next_parts:
            break
        frontier = np.concatenate(next_parts)
    return {
        new: (
            np.concatenate(parts) if parts else np.empty(0, np.int64)
        )
        for new, parts in collected.items()
    }


def dist_trim(
    state: SCCState,
    part: Partition,
    dtrace: DistTrace,
    *,
    phase: str = "par_trim",
) -> int:
    """Distributed Par-Trim (incremental, per-iteration supersteps)."""
    g, color, mark, cost = state.graph, state.color, state.mark, state.cost
    owner = part.owner
    active = np.flatnonzero(~mark)
    eff_out, eff_in, _ = effective_degrees(state, active)
    deg = (
        g.indptr[active + 1]
        - g.indptr[active]
        + g.in_indptr[active + 1]
        - g.in_indptr[active]
    )
    # The degree sweep reads every neighbour's colour: cut edges of the
    # active set are exchanged once.
    t_out, s_out = expand_frontier(
        g.indptr, g.indices, active, return_sources=True
    )
    work = _per_rank(
        owner, active, cost.stream(nodes=2) + cost.stream(edges=1) * deg,
        part.num_ranks,
    )
    sent = _cut_sent(owner, s_out, t_out, part.num_ranks)
    dtrace.superstep(phase, work, 2.0 * sent)  # out + in exchanges
    cand = trim_candidates(eff_out, eff_in, active)
    trimmed = 0
    while cand.size:
        trimmed += int(cand.size)
        old_colors = color[cand].copy()
        state.mark_singletons(cand, PHASE_TRIM)
        touched_parts = []
        step_sent = np.zeros(part.num_ranks, dtype=np.float64)
        step_work = np.zeros(part.num_ranks, dtype=np.float64)
        for indptr, indices, eff in (
            (g.indptr, g.indices, eff_in),
            (g.in_indptr, g.in_indices, eff_out),
        ):
            targets, sources = expand_frontier(
                indptr, indices, cand, return_sources=True
            )
            if targets.size == 0:
                continue
            src_pos = np.searchsorted(cand, sources)
            valid = color[targets] == old_colors[src_pos]
            hit = targets[valid]
            np.subtract.at(eff, hit, 1)
            touched_parts.append(hit)
            step_sent += _cut_sent(owner, sources, targets, part.num_ranks)
            step_work += _per_rank(
                owner,
                sources,
                np.full(sources.shape[0], cost.stream(edges=1)),
                part.num_ranks,
            )
        dtrace.superstep(phase, step_work, step_sent)
        if touched_parts:
            touched = np.unique(np.concatenate(touched_parts))
            touched = touched[~mark[touched]]
        else:
            touched = np.empty(0, dtype=np.int64)
        cand = trim_candidates(eff_out, eff_in, touched)
    state.profile.bump("trimmed_nodes", trimmed)
    return trimmed


def dist_wcc(
    state: SCCState,
    part: Partition,
    dtrace: DistTrace,
    *,
    phase: str = "par_wcc",
) -> List[Tuple[int, np.ndarray]]:
    """Distributed Par-WCC: label exchange over active cut edges."""
    g, color, mark, cost = state.graph, state.color, state.mark, state.cost
    owner = part.owner
    active = np.flatnonzero(~mark)
    if active.size == 0:
        return []
    targets, sources = expand_frontier(
        g.indptr, g.indices, active, return_sources=True
    )
    valid = color[targets] == color[sources]
    u, v = sources[valid], targets[valid]
    sent_per_iter = _cut_sent(owner, u, v, part.num_ranks) + _cut_sent(
        owner, v, u, part.num_ranks
    )
    work_per_iter = _per_rank(
        owner, u, np.full(u.shape[0], 2 * cost.stream(edges=1)),
        part.num_ranks,
    ) + _per_rank(
        owner,
        active,
        np.full(active.shape[0], 2 * cost.stream(nodes=1)),
        part.num_ranks,
    )
    wcc = np.arange(g.num_nodes, dtype=np.int64)
    while True:
        before = wcc[active].copy()
        np.minimum.at(wcc, u, wcc[v])
        np.minimum.at(wcc, v, wcc[u])
        wcc[active] = wcc[wcc[active]]
        dtrace.superstep(phase, work_per_iter, sent_per_iter)
        if np.array_equal(before, wcc[active]):
            break
    while True:
        jumped = wcc[wcc[active]]
        if np.array_equal(jumped, wcc[active]):
            break
        wcc[active] = jumped
    labels = wcc[active]
    roots, inverse = np.unique(labels, return_inverse=True)
    colors = state.new_colors(roots.size)
    color[active] = colors[inverse]
    order = np.argsort(inverse, kind="stable")
    boundaries = np.searchsorted(inverse[order], np.arange(roots.size))
    grouped = np.split(active[order], boundaries[1:])
    return [(int(colors[i]), grouped[i]) for i in range(roots.size)]


@dataclass
class DistributedResult:
    """Outcome of a distributed run: labels + the BSP trace."""

    labels: np.ndarray
    dtrace: DistTrace
    num_sccs: int
    #: per-rank phase-2 work after LPT assignment (diagnostics).
    phase2_rank_work: np.ndarray


def distributed_method1(
    g: CSRGraph,
    part: Partition,
    *,
    seed: int | None = 0,
    cost: CostModel = DEFAULT_COST_MODEL,
    giant_threshold: float = 0.01,
    max_fwbw_trials: int = 5,
    use_wcc: bool = True,
    pivot_strategy: str = "maxdegree",
) -> DistributedResult:
    """Method 1 (optionally + Par-WCC, i.e. Method 2's splitter) as BSP.

    Phase 1 runs the distributed kernels above; phase 2 LPT-schedules
    whole work items onto ranks (an item's recursive children never
    leave its rank, so intra-item communication is zero and the only
    cost is shipping each item's node ids to its assignee).
    """
    state = SCCState(g, seed=seed, cost=cost)
    dtrace = DistTrace(part.num_ranks)
    owner = part.owner

    dist_trim(state, part, dtrace)
    # giant-SCC hunt
    current = 0
    for _ in range(max_fwbw_trials):
        candidates = np.flatnonzero(state.color == current)
        if candidates.size == 0:
            break
        pivot = state.pick(candidates, pivot_strategy)
        cfw = state.new_color()
        cbw = state.new_color()
        cscc = state.new_color()
        fw = dist_bfs_reach(
            state, part, dtrace, pivot, {current: cfw}, direction="out"
        )
        bw = dist_bfs_reach(
            state,
            part,
            dtrace,
            pivot,
            {current: cbw, cfw: cscc},
            direction="in",
        )
        scc_nodes = bw[cscc]
        state.mark_scc(scc_nodes, PHASE_FWBW)
        if scc_nodes.size >= max(1, int(np.ceil(giant_threshold * g.num_nodes))):
            break
        sizes = {
            current: candidates.size
            - scc_nodes.size
            - (fw[cfw].size - scc_nodes.size)
            - bw[cbw].size,
            cfw: fw[cfw].size - scc_nodes.size,
            cbw: bw[cbw].size,
        }
        current = max(sizes, key=lambda k: sizes[k])
    dist_trim(state, part, dtrace)

    if use_wcc:
        items = dist_wcc(state, part, dtrace)
    else:
        items = collect_color_sets(state)

    # Phase 2: run the recursive FW-BW serially for correctness and the
    # per-item subtree costs, then LPT-assign items to ranks.
    before_records = len(state.trace.records)
    run_recur_phase(state, items, queue_k=1)
    rec = [
        r
        for r in state.trace.records[before_records:]
        if isinstance(r, TaskDAGRecord)
    ][0]
    # subtree cost per root (items appear as roots in spawn order)
    subtree = np.array([t.cost for t in rec.tasks], dtype=np.float64)
    root_of = np.empty(len(rec.tasks), dtype=np.int64)
    for i, t in enumerate(rec.tasks):
        root_of[i] = i if t.parent == -1 else root_of[t.parent]
    root_ids = np.flatnonzero(
        np.array([t.parent == -1 for t in rec.tasks])
    )
    root_cost = {
        int(r): float(subtree[root_of == r].sum()) for r in root_ids
    }
    # LPT assignment
    rank_work = np.zeros(part.num_ranks, dtype=np.float64)
    rank_sent = np.zeros(part.num_ranks, dtype=np.float64)
    items_sorted = sorted(
        zip(root_ids.tolist(), items), key=lambda x: -root_cost[x[0]]
    )
    for root, (color_value, nodes) in items_sorted:
        r = int(np.argmin(rank_work))
        rank_work[r] += root_cost[root]
        if nodes is not None and nodes.size:
            # ship ids owned elsewhere to the assignee
            rank_sent += np.bincount(
                owner[nodes][owner[nodes] != r],
                minlength=part.num_ranks,
            )
    dtrace.superstep("recur_fwbw", rank_work, rank_sent)

    state.check_done()
    return DistributedResult(
        labels=state.labels,
        dtrace=dtrace,
        num_sccs=state.num_sccs,
        phase2_rank_work=rank_work,
    )
