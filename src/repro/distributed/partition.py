"""Graph partitioners for the distributed substrate.

The communication volume of every distributed kernel is proportional
to the number of *cut edges* its frontier touches, so the partitioner
is the main lever.  Three classic strategies:

* :func:`block_partition` — contiguous node-id ranges.  Good for
  generators that emit local structure in id order; meaningless for
  permuted ids.
* :func:`hash_partition` — uniform random ownership.  Perfect load
  balance, worst-case cut (~``(R-1)/R`` of all edges) — the standard
  strawman.
* :func:`bfs_partition` — contiguous blocks of a BFS ordering of the
  undirected closure, a cheap locality-aware heuristic in the spirit
  of what distributed graph systems actually ship.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import CSRGraph
from ..graph.orient import symmetrize
from ..traversal.bfs import bfs_levels

__all__ = [
    "Partition",
    "block_partition",
    "hash_partition",
    "bfs_partition",
    "edge_cut",
]


@dataclass(frozen=True)
class Partition:
    """Node ownership: ``owner[v]`` is the rank that stores node ``v``."""

    owner: np.ndarray
    num_ranks: int

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if self.owner.size and (
            self.owner.min() < 0 or self.owner.max() >= self.num_ranks
        ):
            raise ValueError("owner rank out of range")

    def rank_sizes(self) -> np.ndarray:
        """Nodes owned per rank."""
        return np.bincount(self.owner, minlength=self.num_ranks)

    def imbalance(self) -> float:
        """max/mean owned-node count (1.0 = perfectly balanced)."""
        sizes = self.rank_sizes()
        mean = sizes.mean() if sizes.size else 0.0
        return float(sizes.max() / mean) if mean > 0 else 1.0


def block_partition(num_nodes: int, num_ranks: int) -> Partition:
    """Contiguous equal-size id ranges."""
    bounds = np.linspace(0, num_nodes, num_ranks + 1).round().astype(np.int64)
    owner = np.zeros(num_nodes, dtype=np.int64)
    for r in range(num_ranks):
        owner[bounds[r] : bounds[r + 1]] = r
    return Partition(owner=owner, num_ranks=num_ranks)


def hash_partition(
    num_nodes: int,
    num_ranks: int,
    *,
    rng: np.random.Generator | int | None = 0,
) -> Partition:
    """Uniform random ownership (balanced, maximal cut)."""
    rng = np.random.default_rng(rng)
    owner = rng.integers(0, num_ranks, num_nodes).astype(np.int64)
    return Partition(owner=owner, num_ranks=num_ranks)


def bfs_partition(g: CSRGraph, num_ranks: int) -> Partition:
    """Contiguous blocks of a BFS ordering (locality heuristic).

    BFS runs over the undirected closure from the highest-degree node;
    unreached fragments are appended in id order.  Neighbouring nodes
    land in the same block far more often than under hashing, shrinking
    the cut on graphs with any locality (grids dramatically so).
    """
    n = g.num_nodes
    if n == 0:
        return Partition(owner=np.zeros(0, dtype=np.int64), num_ranks=num_ranks)
    und = symmetrize(g)
    start = int(np.argmax(g.out_degrees() + g.in_degrees()))
    dist = bfs_levels(und, start)
    # order: reached nodes by (level, id), then unreached by id
    key = np.where(dist >= 0, dist, np.iinfo(np.int64).max)
    order = np.lexsort((np.arange(n), key))
    bounds = np.linspace(0, n, num_ranks + 1).round().astype(np.int64)
    owner = np.empty(n, dtype=np.int64)
    for r in range(num_ranks):
        owner[order[bounds[r] : bounds[r + 1]]] = r
    return Partition(owner=owner, num_ranks=num_ranks)


def edge_cut(g: CSRGraph, part: Partition) -> int:
    """Number of edges whose endpoints live on different ranks."""
    src, dst = g.edge_array()
    return int((part.owner[src] != part.owner[dst]).sum())
