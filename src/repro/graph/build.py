"""Builders: edge arrays / edge lists -> :class:`CSRGraph`.

All heavy lifting is vectorized: duplicate removal via ``lexsort`` and
row construction via ``bincount``/``cumsum``, per the HPC-Python
guidance of avoiding per-edge Python loops.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = [
    "dedup_edges",
    "build_csr_arrays",
    "from_edge_array",
    "from_edge_list",
]


def dedup_edges(
    src: np.ndarray, dst: np.ndarray, *, drop_self_loops: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort edges by ``(src, dst)`` and drop exact duplicates.

    Parameters
    ----------
    src, dst:
        Parallel integer arrays of edge endpoints.
    drop_self_loops:
        Also remove ``u -> u`` edges.  Self-loops are harmless for SCC
        detection (a node is always in its own SCC) but they defeat the
        Trim step's in/out-degree-zero test, so generators drop them.

    Returns the filtered ``(src, dst)`` pair, sorted lexicographically.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same shape")
    if src.size == 0:
        return src.copy(), dst.copy()
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    keep = np.empty(src.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(src[1:], src[:-1], out=keep[1:])
    keep[1:] |= dst[1:] != dst[:-1]
    if drop_self_loops:
        keep &= src != dst
    return src[keep], dst[keep]


def build_csr_arrays(
    src: np.ndarray, dst: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Build ``(indptr, indices)`` from edges sorted by ``src``.

    ``src`` must already be sorted ascending (e.g. the output of
    :func:`dedup_edges`); rows come out sorted when ``dst`` is sorted
    within equal ``src`` runs.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.size and np.any(src[1:] < src[:-1]):
        raise ValueError("src must be sorted ascending; use dedup_edges first")
    counts = np.bincount(src, minlength=num_nodes).astype(np.int64)
    if counts.shape[0] > num_nodes:
        raise ValueError("edge source out of range")
    indptr = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
    return indptr, dst.copy()


def from_edge_array(
    src: np.ndarray,
    dst: np.ndarray,
    num_nodes: int | None = None,
    *,
    dedup: bool = True,
    drop_self_loops: bool = False,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from parallel ``src``/``dst`` arrays.

    ``num_nodes`` defaults to ``max(endpoint) + 1`` (0 for no edges).
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if num_nodes is None:
        num_nodes = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    if src.size:
        lo = min(int(src.min()), int(dst.min()))
        hi = max(int(src.max()), int(dst.max()))
        if lo < 0 or hi >= num_nodes:
            raise ValueError(
                f"edge endpoint out of range [0, {num_nodes}): {lo}..{hi}"
            )
    if dedup:
        src, dst = dedup_edges(src, dst, drop_self_loops=drop_self_loops)
    elif drop_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
    else:
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
    indptr, indices = build_csr_arrays(src, dst, num_nodes)
    return CSRGraph(indptr, indices, sorted_rows=True)


def from_edge_list(
    edges: Iterable[Sequence[int]],
    num_nodes: int | None = None,
    *,
    dedup: bool = True,
    drop_self_loops: bool = False,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an iterable of ``(u, v)`` pairs."""
    pairs = list(edges)
    if pairs:
        arr = np.asarray(pairs, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be (u, v) pairs")
        src, dst = arr[:, 0], arr[:, 1]
    else:
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
    if num_nodes is None and not pairs:
        num_nodes = 0
    return from_edge_array(
        src, dst, num_nodes, dedup=dedup, drop_self_loops=drop_self_loops
    )
