"""Mutable edge-delta overlay on the immutable CSR graph.

:class:`~repro.graph.csr.CSRGraph` is deliberately frozen — algorithm
code layers ``Color``/``mark`` arrays on top and never mutates the
graph.  A live serving system cannot afford that: every edge insert or
delete would mean rebuilding the CSR arrays (O(M)) before the next
query.  :class:`DeltaCSR` keeps the frozen base and layers a small
mutable delta log over it:

* **tombstones** — deletions of base edges flip a position-indexed
  boolean in a mask aligned with ``base.indices`` (and the matching
  position in the transpose's ``in_indices``), so a traversal can skip
  dead entries without touching the CSR arrays;
* **insertions** — new edges land in per-node sorted add-lists
  (forward and transpose views), flattened lazily into a CSR-shaped
  ``(add_indptr, add_indices)`` pair the kernels can gather from.

Traversals therefore see a *merged adjacency view* — surviving base
entries plus delta insertions — through
:func:`repro.kernels.delta_expand_frontier` (or the per-node
:meth:`out_neighbors`/:meth:`in_neighbors` here), and stay correct
mid-log.  Once the log grows past ``compact_ratio`` of the base edge
count the overlay compacts into a fresh base CSR and the log resets —
the amortization that keeps a sustained update stream cheap while
bounding the per-traversal skip overhead.

The node set is fixed at construction: streams mutate edges, not
vertices (grow the graph by loading a larger base).  Inserting an edge
that exists (or deleting one that doesn't) is a no-op returning False,
which makes replaying a journal of updates after a crash idempotent —
the property the sharded serving tier's recovery leans on.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

import numpy as np

from .build import from_edge_array
from .csr import CSRGraph

__all__ = ["DeltaCSR", "DEFAULT_COMPACT_RATIO"]

#: default log-size / base-edge-count ratio that triggers compaction.
DEFAULT_COMPACT_RATIO = 0.25

_EMPTY = np.empty(0, dtype=np.int64)


class DeltaCSR:
    """An append-only edge delta log over a frozen :class:`CSRGraph`.

    Parameters
    ----------
    base:
        The frozen CSR graph the overlay starts from.  Its transpose is
        built here (deletes must tombstone the matching ``in_indices``
        position, so both directions need their masks from the start).
    compact_ratio:
        Compact into a fresh base once ``log_size / base.num_edges``
        reaches this ratio (see :meth:`maybe_compact`).
    """

    def __init__(
        self,
        base: CSRGraph,
        *,
        compact_ratio: float = DEFAULT_COMPACT_RATIO,
    ) -> None:
        if compact_ratio <= 0:
            raise ValueError("compact_ratio must be positive")
        self._base = base
        self.compact_ratio = float(compact_ratio)
        base.in_indptr  # build the transpose; masks below index into it
        self._tomb = np.zeros(base.num_edges, dtype=bool)
        self._tomb_in = np.zeros(base.num_edges, dtype=bool)
        self._add_out: Dict[int, List[int]] = {}
        self._add_in: Dict[int, List[int]] = {}
        self._n_add = 0
        self._n_tomb = 0
        #: total applied (graph-changing) mutations over the overlay's
        #: lifetime; no-ops do not count.
        self.mutations = 0
        #: compaction rounds performed.
        self.compactions = 0
        self._snapshot: Optional[CSRGraph] = None
        self._add_csr: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._add_csr_in: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def base(self) -> CSRGraph:
        """The current frozen base CSR (replaced by :meth:`compact`)."""
        return self._base

    @property
    def num_nodes(self) -> int:
        return self._base.num_nodes

    @property
    def num_edges(self) -> int:
        """Live edge count: base edges minus tombstones plus adds."""
        return self._base.num_edges - self._n_tomb + self._n_add

    @property
    def log_size(self) -> int:
        """Delta entries a traversal must account for (adds + tombs)."""
        return self._n_add + self._n_tomb

    @property
    def log_ratio(self) -> float:
        """``log_size`` relative to the base edge count."""
        return self.log_size / max(1, self._base.num_edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaCSR(n={self.num_nodes}, edges={self.num_edges}, "
            f"log={self.log_size}, compactions={self.compactions})"
        )

    # ------------------------------------------------------------------
    # Position lookups (sorted base rows -> binary search)
    # ------------------------------------------------------------------
    def _check_ids(self, u: int, v: int) -> None:
        n = self.num_nodes
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(
                f"edge endpoint out of range [0, {n}): ({u}, {v})"
            )

    def _pos_out(self, u: int, v: int) -> int:
        """Position of edge ``u -> v`` in ``base.indices`` or -1."""
        indptr = self._base.indptr
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        pos = lo + int(np.searchsorted(self._base.indices[lo:hi], v))
        if pos < hi and int(self._base.indices[pos]) == v:
            return pos
        return -1

    def _pos_in(self, u: int, v: int) -> int:
        """Position of edge ``u -> v`` in ``base.in_indices`` or -1."""
        indptr = self._base.in_indptr
        lo, hi = int(indptr[v]), int(indptr[v + 1])
        pos = lo + int(np.searchsorted(self._base.in_indices[lo:hi], u))
        if pos < hi and int(self._base.in_indices[pos]) == u:
            return pos
        return -1

    def _dirty(self) -> None:
        self.mutations += 1
        self._snapshot = None
        self._add_csr = None
        self._add_csr_in = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        """True if ``u -> v`` is live in the merged view."""
        self._check_ids(u, v)
        lst = self._add_out.get(u)
        if lst is not None:
            i = bisect.bisect_left(lst, v)
            if i < len(lst) and lst[i] == v:
                return True
        pos = self._pos_out(u, v)
        return pos >= 0 and not self._tomb[pos]

    def add_edge(self, u: int, v: int) -> bool:
        """Insert ``u -> v``; returns True when the graph changed.

        Resurrecting a tombstoned base edge clears the tombstone
        instead of growing the add log; inserting a live edge is a
        no-op (idempotent replay).
        """
        self._check_ids(u, v)
        pos = self._pos_out(u, v)
        if pos >= 0:
            if not self._tomb[pos]:
                return False
            self._tomb[pos] = False
            self._tomb_in[self._pos_in(u, v)] = False
            self._n_tomb -= 1
            self._dirty()
            return True
        lst = self._add_out.setdefault(u, [])
        i = bisect.bisect_left(lst, v)
        if i < len(lst) and lst[i] == v:
            return False
        lst.insert(i, v)
        bisect.insort(self._add_in.setdefault(v, []), u)
        self._n_add += 1
        self._dirty()
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete ``u -> v``; returns True when the graph changed.

        A delta insertion is removed from the add log; a base edge is
        tombstoned in both directions; deleting an absent edge is a
        no-op (idempotent replay).
        """
        self._check_ids(u, v)
        lst = self._add_out.get(u)
        if lst is not None:
            i = bisect.bisect_left(lst, v)
            if i < len(lst) and lst[i] == v:
                lst.pop(i)
                if not lst:
                    del self._add_out[u]
                lin = self._add_in[v]
                lin.pop(bisect.bisect_left(lin, u))
                if not lin:
                    del self._add_in[v]
                self._n_add -= 1
                self._dirty()
                return True
        pos = self._pos_out(u, v)
        if pos >= 0 and not self._tomb[pos]:
            self._tomb[pos] = True
            self._tomb_in[self._pos_in(u, v)] = True
            self._n_tomb += 1
            self._dirty()
            return True
        return False

    # ------------------------------------------------------------------
    # Merged adjacency views
    # ------------------------------------------------------------------
    def _flatten(self, adds: Dict[int, List[int]]) -> Tuple[np.ndarray, np.ndarray]:
        n = self.num_nodes
        counts = np.zeros(n, dtype=np.int64)
        for u, lst in adds.items():
            counts[u] = len(lst)
        indptr = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for u, lst in adds.items():
            indices[indptr[u] : indptr[u + 1]] = lst
        return indptr, indices

    def forward_view(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, indices, tomb, add_indptr, add_indices)`` for the
        out-direction — the argument layout of
        :func:`repro.kernels.delta_expand_frontier`."""
        if self._add_csr is None:
            self._add_csr = self._flatten(self._add_out)
        ap, ai = self._add_csr
        return self._base.indptr, self._base.indices, self._tomb, ap, ai

    def backward_view(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Transpose twin of :meth:`forward_view` (in-direction)."""
        if self._add_csr_in is None:
            self._add_csr_in = self._flatten(self._add_in)
        ap, ai = self._add_csr_in
        return (
            self._base.in_indptr,
            self._base.in_indices,
            self._tomb_in,
            ap,
            ai,
        )

    def out_neighbors(self, u: int) -> np.ndarray:
        """Merged (sorted) live out-neighbors of ``u``."""
        indptr = self._base.indptr
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        row = self._base.indices[lo:hi]
        mask = self._tomb[lo:hi]
        live = row[~mask] if mask.any() else row
        lst = self._add_out.get(u)
        if not lst:
            return live
        merged = np.concatenate([live, np.asarray(lst, dtype=np.int64)])
        merged.sort()
        return merged

    def in_neighbors(self, u: int) -> np.ndarray:
        """Merged (sorted) live in-neighbors of ``u``."""
        indptr = self._base.in_indptr
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        row = self._base.in_indices[lo:hi]
        mask = self._tomb_in[lo:hi]
        live = row[~mask] if mask.any() else row
        lst = self._add_in.get(u)
        if not lst:
            return live
        merged = np.concatenate([live, np.asarray(lst, dtype=np.int64)])
        merged.sort()
        return merged

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(src, dst)`` arrays of every live merged edge."""
        src_b, dst_b = self._base.edge_array()
        if self._n_tomb:
            keep = ~self._tomb
            src_b, dst_b = src_b[keep], dst_b[keep]
        if not self._n_add:
            return src_b, dst_b
        ap, ai = self.forward_view()[3:]
        src_a = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), np.diff(ap)
        )
        return (
            np.concatenate([src_b, src_a]),
            np.concatenate([dst_b, ai]),
        )

    # ------------------------------------------------------------------
    # Snapshot / compaction
    # ------------------------------------------------------------------
    def snapshot(self) -> CSRGraph:
        """The merged view materialized as a frozen :class:`CSRGraph`.

        Cached until the next mutation, so repeated reads (a run
        request against a quiescent mutable session) pay the O(M)
        rebuild once.  With an empty log this *is* the base graph.
        """
        if self._snapshot is None:
            if self.log_size == 0:
                self._snapshot = self._base
            else:
                src, dst = self.edge_array()
                self._snapshot = from_edge_array(
                    src, dst, self.num_nodes, dedup=False
                )
        return self._snapshot

    def compact(self) -> CSRGraph:
        """Fold the delta log into a fresh base CSR and reset the log."""
        snap = self.snapshot()
        self._base = snap
        snap.in_indptr  # rebuild the transpose for the new masks
        self._tomb = np.zeros(snap.num_edges, dtype=bool)
        self._tomb_in = np.zeros(snap.num_edges, dtype=bool)
        self._add_out = {}
        self._add_in = {}
        self._n_add = 0
        self._n_tomb = 0
        self._add_csr = None
        self._add_csr_in = None
        self._snapshot = snap
        self.compactions += 1
        return snap

    def maybe_compact(self) -> bool:
        """Compact when the log crossed ``compact_ratio``; True if so."""
        if self.log_size and self.log_ratio >= self.compact_ratio:
            self.compact()
            return True
        return False

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------
    def induced_subgraph(
        self, nodes: np.ndarray
    ) -> Tuple[CSRGraph, np.ndarray]:
        """Extract the merged-view subgraph induced by ``nodes``.

        Same contract as :func:`repro.graph.induced_subgraph` —
        ``(sub, mapping)`` with nodes renumbered ``0..k-1`` in
        ascending original-id order — but reading through the delta
        log, so the restricted FW-BW recompute after an intra-SCC
        delete sees the live graph without paying for a full snapshot.
        """
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        if nodes.size and (nodes[0] < 0 or nodes[-1] >= self.num_nodes):
            raise ValueError("node id out of range")
        member = np.zeros(self.num_nodes, dtype=bool)
        member[nodes] = True
        new_id = np.full(self.num_nodes, -1, dtype=np.int64)
        new_id[nodes] = np.arange(nodes.shape[0], dtype=np.int64)
        indptr, indices = self._base.indptr, self._base.indices
        starts = indptr[nodes]
        counts = (indptr[nodes + 1] - starts).astype(np.int64)
        total = int(counts.sum())
        if total:
            cum = np.cumsum(counts)
            idx = np.arange(total, dtype=np.int64) + np.repeat(
                starts - (cum - counts), counts
            )
            src_b = np.repeat(nodes, counts)
            dst_b = indices[idx]
            keep = ~self._tomb[idx] & member[dst_b]
            src_b, dst_b = src_b[keep], dst_b[keep]
        else:
            src_b = dst_b = _EMPTY
        add_src: List[int] = []
        add_dst: List[int] = []
        if self._add_out:
            if len(self._add_out) <= nodes.size:
                rows = (
                    (u, lst)
                    for u, lst in self._add_out.items()
                    if member[u]
                )
            else:
                rows = (
                    (int(u), self._add_out[int(u)])
                    for u in nodes
                    if int(u) in self._add_out
                )
            for u, lst in rows:
                for v in lst:
                    if member[v]:
                        add_src.append(u)
                        add_dst.append(v)
        src = np.concatenate(
            [src_b, np.asarray(add_src, dtype=np.int64)]
        )
        dst = np.concatenate(
            [dst_b, np.asarray(add_dst, dtype=np.int64)]
        )
        sub = from_edge_array(
            new_id[src], new_id[dst], nodes.shape[0], dedup=False
        )
        return sub, nodes

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Approximate bytes held (base CSR + masks + add log)."""
        total = self._base.nbytes()
        total += self._tomb.nbytes + self._tomb_in.nbytes
        total += 8 * 2 * self._n_add  # both add-list directions
        if self._snapshot is not None and self._snapshot is not self._base:
            total += self._snapshot.nbytes()
        return int(total)
