"""Structural validation for :class:`CSRGraph` instances.

Used by tests and by generators as a post-condition: a malformed CSR
(unsorted rows, dangling ids, inconsistent transpose) produces silently
wrong traversals, so catching it early is worth the O(N + M) scan.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = ["GraphValidationError", "validate_graph"]


class GraphValidationError(ValueError):
    """Raised when a CSR graph violates a structural invariant."""


def validate_graph(g: CSRGraph, *, check_transpose: bool = True) -> None:
    """Check CSR invariants, raising :class:`GraphValidationError`.

    Checks: indptr monotone with correct endpoints, destinations in
    range, rows sorted, and (optionally) that the lazily built
    transpose encodes exactly the same edge set.
    """
    indptr, indices = g.indptr, g.indices
    n = g.num_nodes
    if indptr[0] != 0 or indptr[-1] != indices.shape[0]:
        raise GraphValidationError("indptr endpoints inconsistent")
    if n and np.any(np.diff(indptr) < 0):
        raise GraphValidationError("indptr not monotone")
    if indices.shape[0]:
        if indices.min() < 0 or indices.max() >= n:
            raise GraphValidationError("destination id out of range")
        row = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        # Rows sorted <=> composite key (row, dst) globally sorted.
        key = row * np.int64(n + 1) + indices
        if np.any(np.diff(key) < 0):
            raise GraphValidationError("adjacency rows not sorted")
    if check_transpose:
        src, dst = g.edge_array()
        tsrc = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(g.in_indptr)
        )
        tdst = g.in_indices
        fwd = np.lexsort((dst, src))
        bwd = np.lexsort((tsrc, tdst))
        if not (
            np.array_equal(src[fwd], tdst[bwd])
            and np.array_equal(dst[fwd], tsrc[bwd])
        ):
            raise GraphValidationError("transpose edge set mismatch")
