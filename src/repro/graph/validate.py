"""Structural validation for :class:`CSRGraph` instances.

Used by tests and by generators as a post-condition: a malformed CSR
(unsorted rows, dangling ids, inconsistent transpose) produces silently
wrong traversals, so catching it early is worth the O(N + M) scan.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphValidationError
from .csr import CSRGraph

__all__ = ["GraphValidationError", "validate_graph"]


def validate_graph(g: CSRGraph, *, check_transpose: bool = True) -> None:
    """Check CSR invariants, raising :class:`GraphValidationError`.

    Checks: indptr monotone with correct endpoints, destinations in
    range, rows sorted, and (optionally) that the lazily built
    transpose encodes exactly the same edge set.
    """
    indptr, indices = g.indptr, g.indices
    n = g.num_nodes
    if indptr.shape[0] != n + 1:
        raise GraphValidationError(
            f"indptr has {indptr.shape[0]} entries, expected "
            f"num_nodes + 1 = {n + 1}"
        )
    if indptr[0] != 0 or indptr[-1] != indices.shape[0]:
        raise GraphValidationError(
            f"indptr endpoints inconsistent: indptr[0]={int(indptr[0])} "
            f"(want 0), indptr[-1]={int(indptr[-1])} "
            f"(want num_edges={indices.shape[0]})"
        )
    if n:
        drops = np.flatnonzero(np.diff(indptr) < 0)
        if drops.size:
            r = int(drops[0])
            raise GraphValidationError(
                f"indptr not monotone: decreases at row {r} "
                f"({int(indptr[r])} -> {int(indptr[r + 1])})"
            )
    if indices.shape[0]:
        if indices.min() < 0 or indices.max() >= n:
            bad = np.flatnonzero((indices < 0) | (indices >= n))
            e = int(bad[0])
            raise GraphValidationError(
                f"destination id out of range: edge slot {e} targets "
                f"node {int(indices[e])} (valid range 0..{n - 1})"
            )
        row = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        # Rows sorted <=> composite key (row, dst) globally sorted.
        key = row * np.int64(n + 1) + indices
        if np.any(np.diff(key) < 0):
            raise GraphValidationError("adjacency rows not sorted")
    if check_transpose:
        src, dst = g.edge_array()
        if g.in_indices.shape[0] != indices.shape[0]:
            raise GraphValidationError(
                f"transpose edge count mismatch: forward has "
                f"{indices.shape[0]} edges, transpose has "
                f"{g.in_indices.shape[0]}"
            )
        if g.in_indices.shape[0] and (
            g.in_indices.min() < 0 or g.in_indices.max() >= n
        ):
            raise GraphValidationError(
                "transpose source id out of range (dangling transpose)"
            )
        tsrc = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(g.in_indptr)
        )
        tdst = g.in_indices
        fwd = np.lexsort((dst, src))
        bwd = np.lexsort((tsrc, tdst))
        if not (
            np.array_equal(src[fwd], tdst[bwd])
            and np.array_equal(dst[fwd], tsrc[bwd])
        ):
            raise GraphValidationError(
                "transpose edge set mismatch: the lazily built "
                "transpose does not encode the same edges as the "
                "forward CSR"
            )
