"""Graph substrate: immutable CSR directed graphs and builders.

The paper (Section 4.1) stores graphs in Compressed Sparse Row (CSR)
form — one O(N) ``indptr`` array of row starts and one O(M) ``indices``
array holding all adjacency lists back to back — because it is compact
and bandwidth-friendly for traversals.  :class:`CSRGraph` mirrors that
layout with NumPy arrays and adds a lazily-built transpose (in-CSR) for
backward traversals.
"""

from .csr import CSRGraph
from .build import (
    from_edge_array,
    from_edge_list,
    dedup_edges,
    build_csr_arrays,
)
from .delta import DeltaCSR, DEFAULT_COMPACT_RATIO
from .orient import orient_undirected, symmetrize
from .subgraph import induced_subgraph, color_subgraph
from .io import (
    IngestReport,
    ON_ERROR_POLICIES,
    read_edge_list,
    write_edge_list,
    save_npz,
    load_npz,
    read_matrix_market,
    write_matrix_market,
)
from ..errors import GraphIngestError
from .validate import validate_graph, GraphValidationError
from .reorder import bfs_order, degree_order, apply_order, locality_score

__all__ = [
    "CSRGraph",
    "from_edge_array",
    "from_edge_list",
    "dedup_edges",
    "build_csr_arrays",
    "DeltaCSR",
    "DEFAULT_COMPACT_RATIO",
    "orient_undirected",
    "symmetrize",
    "induced_subgraph",
    "color_subgraph",
    "IngestReport",
    "ON_ERROR_POLICIES",
    "GraphIngestError",
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
    "read_matrix_market",
    "write_matrix_market",
    "validate_graph",
    "GraphValidationError",
    "bfs_order",
    "degree_order",
    "apply_order",
    "locality_score",
]
