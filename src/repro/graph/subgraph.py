"""Induced-subgraph extraction.

The algorithms themselves never materialize subgraphs — they filter by
``Color``/``mark`` exactly as Section 4.1 prescribes.  Materialized
subgraphs are used by tests (comparing a colour-restricted traversal
against a real subgraph) and by analysis utilities.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .csr import CSRGraph
from .build import from_edge_array

__all__ = ["induced_subgraph", "color_subgraph"]


def induced_subgraph(
    g: CSRGraph, nodes: np.ndarray
) -> Tuple[CSRGraph, np.ndarray]:
    """Extract the subgraph induced by ``nodes``.

    Returns ``(sub, mapping)`` where ``mapping[i]`` is the original id
    of the subgraph's node ``i``.  Nodes are renumbered ``0..k-1`` in
    ascending original-id order.
    """
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    if nodes.size and (nodes[0] < 0 or nodes[-1] >= g.num_nodes):
        raise ValueError("node id out of range")
    member = np.zeros(g.num_nodes, dtype=bool)
    member[nodes] = True
    new_id = np.full(g.num_nodes, -1, dtype=np.int64)
    new_id[nodes] = np.arange(nodes.shape[0], dtype=np.int64)
    src, dst = g.edge_array()
    keep = member[src] & member[dst]
    sub = from_edge_array(
        new_id[src[keep]], new_id[dst[keep]], nodes.shape[0], dedup=False
    )
    return sub, nodes


def color_subgraph(
    g: CSRGraph, color: np.ndarray, c: int, mark: np.ndarray | None = None
) -> Tuple[CSRGraph, np.ndarray]:
    """Materialize the partition of colour ``c`` as a standalone graph.

    Mirrors the implicit subgraph the algorithms operate on: nodes with
    ``color == c`` and (optionally) ``mark == False``.
    """
    sel = color == c
    if mark is not None:
        sel &= ~mark
    return induced_subgraph(g, np.flatnonzero(sel))
