"""Graph I/O: SNAP-style edge lists, compact ``.npz``, MatrixMarket.

The paper's datasets come from SNAP / KONECT edge-list dumps — real,
multi-gigabyte, frequently dirty files.  This module therefore treats
ingestion as a *policy-governed boundary* rather than a trusting parse:

* The text reader **streams** the file in bounded chunks (optionally
  gzip-compressed), so peak parser memory is governed by
  ``chunk_lines``, not file size, and a clean chunk is parsed with one
  vectorized NumPy conversion while a dirty chunk falls back to a
  per-line scan that knows exactly which 1-based line offended.
* Every loader takes ``on_error``:

  - ``"strict"`` (default) — the first malformed line / missing array /
    corrupt header raises :class:`~repro.errors.GraphIngestError`
    naming the file and line;
  - ``"repair"`` — recoverable defects are coerced (integral float ids
    truncated, float dtypes cast, overlong ``.npz`` edge arrays
    trimmed, non-square adjacency padded) and everything else dropped;
  - ``"skip"`` — defective records are dropped without coercion.

  Both lenient policies account for every decision in a structured
  :class:`IngestReport` (counts plus a bounded sample of offending
  lines) returned via ``return_report=True``.
* All writers publish atomically (temp file + ``os.replace``), so a
  crash mid-write never leaves a truncated dataset where a complete one
  used to be.
* ``validate=True`` runs the :func:`~repro.graph.validate.validate_graph`
  structural gate on the loaded graph before returning it.

Self-loops and exact duplicate edges are *not* parse errors — SNAP
dumps legitimately contain both — so every policy accepts them; they
are counted in the report and removed according to the ``dedup`` /
``drop_self_loops`` arguments, exactly as the builders do.
"""

from __future__ import annotations

import gzip
import os
from dataclasses import dataclass, field
from typing import IO, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..errors import GraphIngestError
from ..ingest.framing import LineFramer
from ..ioutil import atomic_path, atomic_write
from .csr import CSRGraph
from .build import from_edge_array
from .validate import validate_graph

__all__ = [
    "ON_ERROR_POLICIES",
    "IngestReport",
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
    "read_matrix_market",
    "write_matrix_market",
]

PathLike = Union[str, os.PathLike]

#: ingestion policies accepted by every loader's ``on_error``.
ON_ERROR_POLICIES = ("strict", "repair", "skip")

#: default streaming chunk: bounds parser memory, amortizes NumPy calls.
DEFAULT_CHUNK_LINES = 1 << 18

#: bytes per raw read when streaming a text edge list through the
#: shared line framer.
_READ_CHUNK_BYTES = 1 << 20
#: read size for the lenient salvage pass over a broken stream: small
#: enough that a truncated gzip yields its decodable prefix instead of
#: discarding it inside one failing large read.
_SALVAGE_CHUNK_BYTES = 256

_INT64_MAX = int(np.iinfo(np.int64).max)

#: problem category -> IngestReport counter attribute.
_CATEGORY_FIELDS = {
    "malformed": "malformed",
    "float": "float_ids",
    "negative": "negative_ids",
    "overflow": "overflow_ids",
    "out_of_range": "out_of_range",
}


@dataclass
class IngestReport:
    """Structured account of one lenient (or clean strict) ingestion.

    Counters cover every line/record decision; ``samples`` holds up to
    ``max_samples`` ``(where, excerpt, reason)`` triples so an operator
    can see *representative* bad records without the report growing
    with the file.
    """

    path: str
    policy: str
    #: physical lines seen / comment lines / blank lines (text formats).
    lines: int = 0
    comments: int = 0
    blanks: int = 0
    #: edges accepted into the builder (before dedup).
    edges: int = 0
    #: records dropped under ``repair``/``skip`` (any category).
    dropped: int = 0
    #: records coerced into valid form under ``repair``.
    repaired: int = 0
    malformed: int = 0
    float_ids: int = 0
    negative_ids: int = 0
    overflow_ids: int = 0
    out_of_range: int = 0
    #: lines with more than two columns (extras ignored, not an error).
    extra_columns: int = 0
    #: self-loop edge instances seen (kept unless ``drop_self_loops``).
    self_loops: int = 0
    #: exact duplicate edges removed by ``dedup``.
    duplicates: int = 0
    max_samples: int = 8
    samples: List[Tuple[str, str, str]] = field(default_factory=list)

    def note(
        self, category: str, where: str, excerpt: str, reason: str
    ) -> None:
        """Count one dropped record and sample it (bounded)."""
        attr = _CATEGORY_FIELDS.get(category)
        if attr is not None:
            setattr(self, attr, getattr(self, attr) + 1)
        self.dropped += 1
        if len(self.samples) < self.max_samples:
            self.samples.append((where, excerpt[:120], reason))

    @property
    def clean(self) -> bool:
        """True when nothing was dropped or repaired."""
        return self.dropped == 0 and self.repaired == 0

    def summary(self) -> str:
        parts = [f"{self.path}: {self.edges} edges ({self.policy})"]
        for name in (
            "dropped", "repaired", "malformed", "float_ids",
            "negative_ids", "overflow_ids", "out_of_range",
            "self_loops", "duplicates",
        ):
            v = getattr(self, name)
            if v:
                parts.append(f"{name}={v}")
        return " ".join(parts)

    def to_dict(self) -> dict:
        """JSON-serializable form (written as a CI artifact on failure)."""
        return {
            "path": self.path,
            "policy": self.policy,
            "lines": self.lines,
            "comments": self.comments,
            "blanks": self.blanks,
            "edges": self.edges,
            "dropped": self.dropped,
            "repaired": self.repaired,
            "malformed": self.malformed,
            "float_ids": self.float_ids,
            "negative_ids": self.negative_ids,
            "overflow_ids": self.overflow_ids,
            "out_of_range": self.out_of_range,
            "extra_columns": self.extra_columns,
            "self_loops": self.self_loops,
            "duplicates": self.duplicates,
            "samples": [list(s) for s in self.samples],
        }


def _check_policy(on_error: str) -> None:
    if on_error not in ON_ERROR_POLICIES:
        raise ValueError(
            f"on_error must be one of {ON_ERROR_POLICIES}, got {on_error!r}"
        )


def _open_text(path: PathLike) -> IO[str]:
    p = os.fspath(path)
    if p.endswith(".gz"):
        return gzip.open(p, "rt", encoding="utf-8", errors="replace")
    return open(p, "r", encoding="utf-8", errors="replace")


def _open_binary(path: PathLike) -> IO[bytes]:
    p = os.fspath(path)
    if p.endswith(".gz"):
        return gzip.open(p, "rb")
    return open(p, "rb")


# ---------------------------------------------------------------------------
# Edge-list text format
# ---------------------------------------------------------------------------
def _coerce_id(
    tok: str, on_error: str, num_nodes: Optional[int]
) -> Tuple[Optional[int], bool, Optional[Tuple[str, str]]]:
    """Parse one id token -> ``(value, repaired, problem)``.

    ``problem`` is ``(category, reason)`` when the token cannot become
    a valid node id under the active policy.
    """
    repaired = False
    try:
        v = int(tok)
    except ValueError:
        try:
            f = float(tok)
        except (ValueError, OverflowError):
            return None, False, ("malformed", f"non-integer token {tok!r}")
        if not (f.is_integer() and abs(f) <= _INT64_MAX):
            return None, False, (
                "float", f"non-integral float token {tok!r}"
            )
        if on_error != "repair":
            return None, False, (
                "float",
                f"float token {tok!r} (on_error='repair' would coerce it)",
            )
        v = int(f)
        repaired = True
    if not (-_INT64_MAX - 1 <= v <= _INT64_MAX):
        return None, False, (
            "overflow", f"node id {tok} overflows int64"
        )
    if v < 0:
        return None, False, ("negative", f"negative node id {v}")
    if num_nodes is not None and v >= num_nodes:
        return None, False, (
            "out_of_range", f"node id {v} >= num_nodes={num_nodes}"
        )
    return v, repaired, None


def _parse_chunk_fast(
    chunk: List[Tuple[int, str]], num_nodes: Optional[int]
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """One-shot vectorized parse of a clean two-column chunk.

    Returns ``None`` when the chunk is not provably clean (wrong token
    count, unparseable token, negative or out-of-range id) — the caller
    then re-parses it line by line to localise and police the defects.
    """
    tokens = " ".join(line for _, line in chunk).split()
    if len(tokens) != 2 * len(chunk):
        return None
    try:
        arr = np.array(tokens, dtype=np.int64)
    except (ValueError, OverflowError):
        return None
    arr = arr.reshape(-1, 2)
    if arr.size and int(arr.min()) < 0:
        return None
    if num_nodes is not None and arr.size and int(arr.max()) >= num_nodes:
        return None
    return np.ascontiguousarray(arr[:, 0]), np.ascontiguousarray(arr[:, 1])


def _parse_chunk_slow(
    chunk: List[Tuple[int, str]],
    path: PathLike,
    on_error: str,
    num_nodes: Optional[int],
    report: IngestReport,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-line parse with exact diagnostics; applies the policy."""
    src: List[int] = []
    dst: List[int] = []
    for lineno, line in chunk:
        toks = line.split()
        if len(toks) < 2:
            problem = ("malformed", "expected at least two columns")
            vals: List[int] = []
        else:
            if len(toks) > 2:
                report.extra_columns += 1
            problem = None
            repaired_line = False
            vals = []
            for tok in toks[:2]:
                v, repaired, problem = _coerce_id(tok, on_error, num_nodes)
                if problem is not None:
                    break
                repaired_line |= repaired
                vals.append(v)
        if problem is not None:
            category, reason = problem
            if on_error == "strict":
                raise GraphIngestError(
                    f"{reason} in line {line!r}", path=path, line=lineno
                )
            report.note(category, f"line {lineno}", line, reason)
            continue
        if repaired_line:
            report.repaired += 1
        src.append(vals[0])
        dst.append(vals[1])
    return (
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
    )


def read_edge_list(
    path: PathLike,
    *,
    comments: str = "#",
    num_nodes: int | None = None,
    dedup: bool = True,
    drop_self_loops: bool = False,
    on_error: str = "strict",
    chunk_lines: int = DEFAULT_CHUNK_LINES,
    max_samples: int = 8,
    validate: bool = False,
    return_report: bool = False,
) -> Union[CSRGraph, Tuple[CSRGraph, IngestReport]]:
    """Stream a whitespace-separated ``src dst`` edge list into a graph.

    Lines starting with ``comments`` and blank lines are skipped; a
    ``.gz`` suffix selects transparent gzip decompression.  Extra
    columns (timestamps, weights) are ignored.  Node ids must be
    non-negative integers; ids need not be contiguous but the graph is
    built over ``0..max_id`` (or ``0..num_nodes-1`` when given).

    See the module docstring for the ``on_error`` policy semantics.
    With ``return_report=True`` returns ``(graph, IngestReport)``.
    """
    _check_policy(on_error)
    if chunk_lines < 1:
        raise ValueError("chunk_lines must be >= 1")
    report = IngestReport(
        path=os.fspath(path), policy=on_error, max_samples=max_samples
    )
    src_chunks: List[np.ndarray] = []
    dst_chunks: List[np.ndarray] = []

    def flush(chunk: List[Tuple[int, str]]) -> None:
        parsed = _parse_chunk_fast(chunk, num_nodes)
        if parsed is None:
            parsed = _parse_chunk_slow(
                chunk, path, on_error, num_nodes, report
            )
        s, d = parsed
        if s.size:
            src_chunks.append(s)
            dst_chunks.append(d)
            report.edges += int(s.size)

    # The byte stream runs through the same LineFramer the live
    # ingestion tier uses: CRLF, a final record with no trailing
    # newline, and records torn at a truncation point are all handled
    # once, byte-exactly, for both readers.
    framer = LineFramer()
    pending: List[Tuple[int, str]] = []

    def take(frame) -> None:
        nonlocal pending
        report.lines += 1
        line = frame.text.strip()
        if not line:
            report.blanks += 1
            return
        if line.startswith(comments):
            report.comments += 1
            return
        pending.append((frame.lineno, line))
        if len(pending) >= chunk_lines:
            flush(pending)
            pending = []

    broken: Optional[BaseException] = None
    try:
        with _open_binary(path) as f:
            pos = 0
            while True:
                try:
                    data = f.read(_READ_CHUNK_BYTES)
                except (OSError, EOFError) as exc:
                    # gzip truncation surfaces as EOFError mid-read;
                    # raw I/O failures and bad gzip streams as OSError.
                    broken = exc
                    break
                if not data:
                    break
                for frame in framer.feed_at(pos, data):
                    take(frame)
                pos += len(data)
            if broken is None:
                final = framer.flush()
                if final is not None:
                    take(final)
    except FileNotFoundError:
        raise
    except (OSError, EOFError, UnicodeDecodeError) as exc:
        broken = exc
    if broken is not None and on_error != "strict":
        # Salvage pass for the lenient policies.  A failing gzip read
        # discards everything it decompressed in that call, so a large
        # first-pass chunk can lose kilobytes that *are* recoverable.
        # Replay the stream with small reads; the framer's offset-keyed
        # overlap trim drops every byte already framed, so only the
        # newly recovered tail parses, exactly once.
        try:
            with _open_binary(path) as f:
                pos = 0
                while True:
                    data = f.read(_SALVAGE_CHUNK_BYTES)
                    if not data:
                        break
                    for frame in framer.feed_at(pos, data):
                        take(frame)
                    pos += len(data)
        except (OSError, EOFError, UnicodeDecodeError):
            pass
    if broken is not None:
        if on_error == "strict":
            raise GraphIngestError(
                f"unreadable edge list near line {report.lines + 1} "
                f"({broken})",
                path=path,
            ) from broken
        # lenient policies keep the readable prefix — a multi-gigabyte
        # download truncated in its last record should not cost every
        # edge that parsed cleanly — and account for the torn tail.
        tail = framer.partial
        if tail:
            report.lines += 1
            report.note(
                "malformed",
                f"line {framer.lineno + 1}",
                tail.decode("utf-8", "replace"),
                f"unreadable tail ({broken})",
            )
            framer.discard_partial()
        else:
            report.note(
                "malformed",
                f"line {report.lines + 1}",
                "",
                f"stream broke mid-file ({broken})",
            )
    if pending:
        flush(pending)

    if not src_chunks:
        g = from_edge_array(
            np.empty(0, np.int64), np.empty(0, np.int64), num_nodes or 0
        )
    else:
        src = np.concatenate(src_chunks)
        dst = np.concatenate(dst_chunks)
        del src_chunks[:], dst_chunks[:]
        report.self_loops = int(np.count_nonzero(src == dst))
        before = int(src.size)
        g = from_edge_array(
            src, dst, num_nodes, dedup=dedup,
            drop_self_loops=drop_self_loops,
        )
        removed = before - g.num_edges
        if drop_self_loops:
            removed -= report.self_loops
        if dedup:
            report.duplicates = max(0, removed)
    if validate:
        validate_graph(g, check_transpose=False)
    return (g, report) if return_report else g


def write_edge_list(
    g: CSRGraph, path: PathLike, *, header: str | None = None
) -> None:
    """Write the graph as a ``src dst`` text edge list (atomically).

    A ``.gz`` suffix selects gzip compression.  The file is written to
    a same-directory temp file and renamed into place, so readers never
    observe a truncated edge list.
    """
    p = os.fspath(path)

    def emit(f: IO[str]) -> None:
        if header:
            for line in header.splitlines():
                f.write(f"# {line}\n")
        f.write(f"# nodes: {g.num_nodes} edges: {g.num_edges}\n")
        src, dst = g.edge_array()
        np.savetxt(f, np.column_stack([src, dst]), fmt="%d")

    if p.endswith(".gz"):
        with atomic_path(p, suffix=".gz") as tmp:
            with gzip.open(tmp, "wt", encoding="utf-8") as f:
                emit(f)
    else:
        with atomic_write(p, "w", encoding="utf-8") as f:
            emit(f)


# ---------------------------------------------------------------------------
# Compact .npz format
# ---------------------------------------------------------------------------
def save_npz(g: CSRGraph, path: PathLike) -> None:
    """Save the CSR arrays to a compressed ``.npz`` file (atomically)."""
    with atomic_path(path, suffix=".npz") as tmp:
        np.savez_compressed(tmp, indptr=g.indptr, indices=g.indices)


def _npz_cast(
    name: str,
    arr: np.ndarray,
    on_error: str,
    path: PathLike,
    report: IngestReport,
) -> np.ndarray:
    """Check one stored array's shape/dtype, coercing under ``repair``."""
    if arr.ndim != 1:
        raise GraphIngestError(
            f"array {name!r} must be 1-D, got shape {arr.shape}", path=path
        )
    if arr.dtype.kind in "iu":
        return arr.astype(np.int64, copy=False)
    if (
        on_error == "repair"
        and arr.dtype.kind == "f"
        and (arr.size == 0 or bool(np.all(np.mod(arr, 1) == 0)))
    ):
        report.repaired += 1
        return arr.astype(np.int64)
    raise GraphIngestError(
        f"array {name!r} has non-integer dtype {arr.dtype}"
        + (" (on_error='repair' would cast integral floats)"
           if arr.dtype.kind == "f" else ""),
        path=path,
    )


def load_npz(
    path: PathLike,
    *,
    on_error: str = "strict",
    validate: bool = True,
    return_report: bool = False,
) -> Union[CSRGraph, Tuple[CSRGraph, IngestReport]]:
    """Load a graph saved by :func:`save_npz`, defensively.

    The required arrays (``indptr``, ``indices``), their dtypes, and
    the CSR shape contract are checked *before* a graph is constructed,
    so a truncated or corrupt file surfaces as a located
    :class:`~repro.errors.GraphIngestError` instead of a deep
    ``KeyError`` or shape mismatch.  Under ``repair``/``skip``,
    recoverable defects (integral float dtypes, an overlong edge array,
    out-of-range destinations) are coerced or dropped and reported.
    ``validate=True`` (default) additionally runs the structural
    :func:`validate_graph` gate.
    """
    _check_policy(on_error)
    report = IngestReport(path=os.fspath(path), policy=on_error)
    try:
        data = np.load(os.fspath(path), allow_pickle=False)
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise GraphIngestError(
            f"not a readable .npz archive ({exc})", path=path
        ) from exc
    with data:
        missing = [k for k in ("indptr", "indices") if k not in data.files]
        if missing:
            raise GraphIngestError(
                f"missing required array(s) {missing}; file contains "
                f"{sorted(data.files)}",
                path=path,
            )
        try:
            indptr = data["indptr"]
            indices = data["indices"]
        except Exception as exc:  # truncated/corrupt zip member payload
            raise GraphIngestError(
                f"corrupt array payload ({exc})", path=path
            ) from exc

    indptr = _npz_cast("indptr", indptr, on_error, path, report)
    indices = _npz_cast("indices", indices, on_error, path, report)
    if indptr.size == 0:
        raise GraphIngestError(
            "indptr is empty (expected num_nodes + 1 entries)", path=path
        )
    if int(indptr[0]) != 0:
        raise GraphIngestError(
            f"indptr must start at 0, got {int(indptr[0])}", path=path
        )
    if indptr.size > 1 and bool(np.any(np.diff(indptr) < 0)):
        raise GraphIngestError("indptr is not monotone", path=path)
    m = int(indptr[-1])
    if m != indices.size:
        if on_error != "strict" and indices.size > m:
            report.note(
                "malformed", "indices",
                f"{indices.size} stored edges",
                f"trimmed overlong edge array to indptr[-1]={m}",
            )
            indices = indices[:m]
        else:
            raise GraphIngestError(
                f"indptr[-1]={m} disagrees with {indices.size} stored "
                "edges (truncated or corrupt file)",
                path=path,
            )
    n = indptr.size - 1
    if indices.size and (
        int(indices.min()) < 0 or int(indices.max()) >= n
    ):
        bad = (indices < 0) | (indices >= n)
        nbad = int(np.count_nonzero(bad))
        if on_error == "strict":
            slot = int(np.flatnonzero(bad)[0])
            raise GraphIngestError(
                f"{nbad} edge destination(s) out of range [0, {n}): "
                f"first at edge slot {slot} -> {int(indices[slot])}",
                path=path,
            )
        report.note(
            "out_of_range", "indices", f"{nbad} edges",
            f"dropped {nbad} out-of-range destination(s)",
        )
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        keep = ~bad
        g = from_edge_array(src[keep], indices[keep], n, dedup=False)
    else:
        # sorted_rows=False: rows are re-sorted here, so an unsorted
        # (hand-edited) file still yields a canonical graph.
        g = CSRGraph(indptr, indices, sorted_rows=(on_error == "strict"))
    report.edges = g.num_edges
    if validate:
        validate_graph(g, check_transpose=False)
    return (g, report) if return_report else g


# ---------------------------------------------------------------------------
# MatrixMarket
# ---------------------------------------------------------------------------
def read_matrix_market(
    path: PathLike,
    *,
    dedup: bool = True,
    on_error: str = "strict",
    validate: bool = False,
    return_report: bool = False,
) -> Union[CSRGraph, Tuple[CSRGraph, IngestReport]]:
    """Read a MatrixMarket ``coordinate`` file as a directed graph.

    SuiteSparse (the other big public graph repository besides SNAP /
    KONECT) distributes graphs as ``.mtx``: entry ``(i, j)`` becomes
    the edge ``i -> j`` (1-based in the file).  ``symmetric`` headers
    add the mirrored edge.  Values, if present, are ignored — SCC
    detection is unweighted.

    Parse failures (bad banner, malformed coordinates, truncation)
    raise :class:`~repro.errors.GraphIngestError`.  A non-square
    matrix is rejected under ``strict`` and padded to
    ``max(rows, cols)`` nodes under ``repair``/``skip``.
    """
    import scipy.io

    _check_policy(on_error)
    report = IngestReport(path=os.fspath(path), policy=on_error)
    try:
        mat = scipy.io.mmread(os.fspath(path)).tocoo()
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise GraphIngestError(
            f"invalid MatrixMarket file ({exc})", path=path
        ) from exc
    rows, cols = int(mat.shape[0]), int(mat.shape[1])
    n = rows
    if rows != cols:
        if on_error == "strict":
            raise GraphIngestError(
                f"adjacency matrix must be square, got {rows}x{cols} "
                "(on_error='repair' would pad to the larger dimension)",
                path=path,
            )
        n = max(rows, cols)
        report.repaired += 1
    src = mat.row.astype(np.int64)
    dst = mat.col.astype(np.int64)
    report.self_loops = int(np.count_nonzero(src == dst))
    before = int(src.size)
    g = from_edge_array(src, dst, n, dedup=dedup)
    if dedup:
        report.duplicates = max(0, before - g.num_edges)
    report.edges = g.num_edges
    if validate:
        validate_graph(g, check_transpose=False)
    return (g, report) if return_report else g


def write_matrix_market(g: CSRGraph, path: PathLike) -> None:
    """Write the graph as a MatrixMarket pattern matrix (atomically)."""
    import scipy.io
    import scipy.sparse as sp

    mat = sp.csr_matrix(
        (np.ones(g.num_edges, dtype=np.int8), g.indices, g.indptr),
        shape=(g.num_nodes, g.num_nodes),
    )
    with atomic_path(path, suffix=".mtx") as tmp:
        scipy.io.mmwrite(tmp, mat, field="pattern", symmetry="general")
