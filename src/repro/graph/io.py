"""Graph I/O: SNAP-style edge-list text files and compact ``.npz``.

The paper's datasets come from SNAP / KONECT edge-list dumps; the text
reader accepts that format (``#`` comments, whitespace-separated
``src dst`` per line).  The ``.npz`` format stores the CSR arrays
directly for fast reload of generated surrogates.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .csr import CSRGraph
from .build import from_edge_array

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
    "read_matrix_market",
    "write_matrix_market",
]

PathLike = Union[str, os.PathLike]


def read_edge_list(
    path: PathLike,
    *,
    comments: str = "#",
    num_nodes: int | None = None,
    dedup: bool = True,
) -> CSRGraph:
    """Read a whitespace-separated ``src dst`` edge list.

    Lines starting with ``comments`` are skipped.  Node ids must be
    non-negative integers; ids need not be contiguous but the graph is
    built over ``0..max_id``.
    """
    import warnings

    with warnings.catch_warnings():
        # np.loadtxt warns on files with no data rows; an empty edge
        # list is legitimate here.
        warnings.simplefilter("ignore", UserWarning)
        data = np.loadtxt(path, comments=comments, dtype=np.int64, ndmin=2)
    if data.size == 0:
        return from_edge_array(
            np.empty(0, np.int64), np.empty(0, np.int64), num_nodes or 0
        )
    if data.shape[1] < 2:
        raise ValueError("edge list rows must have at least two columns")
    return from_edge_array(data[:, 0], data[:, 1], num_nodes, dedup=dedup)


def write_edge_list(g: CSRGraph, path: PathLike, *, header: str | None = None) -> None:
    """Write the graph as a ``src dst`` text edge list."""
    src, dst = g.edge_array()
    with open(path, "w", encoding="utf-8") as f:
        if header:
            for line in header.splitlines():
                f.write(f"# {line}\n")
        f.write(f"# nodes: {g.num_nodes} edges: {g.num_edges}\n")
        np.savetxt(f, np.column_stack([src, dst]), fmt="%d")


def save_npz(g: CSRGraph, path: PathLike) -> None:
    """Save the CSR arrays to a compressed ``.npz`` file."""
    np.savez_compressed(path, indptr=g.indptr, indices=g.indices)


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(path) as data:
        return CSRGraph(data["indptr"], data["indices"], sorted_rows=True)


def read_matrix_market(path: PathLike, *, dedup: bool = True) -> CSRGraph:
    """Read a MatrixMarket ``coordinate`` file as a directed graph.

    SuiteSparse (the other big public graph repository besides SNAP /
    KONECT) distributes graphs as ``.mtx``: entry ``(i, j)`` becomes
    the edge ``i -> j`` (1-based in the file).  ``symmetric`` headers
    add the mirrored edge.  Values, if present, are ignored — SCC
    detection is unweighted.
    """
    import scipy.io

    mat = scipy.io.mmread(str(path)).tocoo()
    if mat.shape[0] != mat.shape[1]:
        raise ValueError("adjacency matrix must be square")
    return from_edge_array(
        mat.row.astype(np.int64),
        mat.col.astype(np.int64),
        mat.shape[0],
        dedup=dedup,
    )


def write_matrix_market(g: CSRGraph, path: PathLike) -> None:
    """Write the graph as a MatrixMarket pattern matrix."""
    import scipy.io
    import scipy.sparse as sp

    mat = sp.csr_matrix(
        (np.ones(g.num_edges, dtype=np.int8), g.indices, g.indptr),
        shape=(g.num_nodes, g.num_nodes),
    )
    scipy.io.mmwrite(str(path), mat, field="pattern", symmetry="general")
