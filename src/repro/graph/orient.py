"""Edge-orientation helpers for originally-undirected datasets.

Table 1 of the paper marks Friendster, Orkut and CA-road with ``*``:
those datasets are undirected, and the authors "randomly assign a
direction for each edge with 50% probability for each direction".
:func:`orient_undirected` reproduces that preprocessing step;
:func:`symmetrize` does the opposite (used by WCC tests to compare the
directed WCC kernel against an explicit undirected graph).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .build import dedup_edges, from_edge_array
from .csr import CSRGraph

__all__ = ["orient_undirected", "symmetrize"]


def orient_undirected(
    src: np.ndarray,
    dst: np.ndarray,
    num_nodes: int | None = None,
    *,
    mode: str = "independent",
    p_both: float | None = None,
    rng: np.random.Generator | int | None = None,
) -> CSRGraph:
    """Randomly orient undirected edges, per the paper's preprocessing.

    Table 1: "we randomly assign a direction for each edge with 50%
    probability for each direction".  Two readings are supported:

    * ``mode="independent"`` (default): each direction of each
      undirected edge is included independently with probability 1/2 —
      so 25 % of edges become reciprocal pairs, 25 % vanish.  This is
      the reading consistent with the published largest-SCC sizes: the
      sparse CA-road grid (average undirected degree ~2.8) retains a
      giant SCC of 59 % only if reciprocal edges exist.
    * ``mode="choose"``: each undirected edge becomes exactly one
      directed edge, direction chosen uniformly.

    ``p_both`` (only with ``mode="independent"``) overrides the
    reciprocal-pair probability: an edge becomes bidirectional with
    probability ``p_both``, one-way (direction uniform) with probability
    ``0.5``, and vanishes otherwise.  The default ``p_both=0.25`` is the
    exact independent-coin model; road-network surrogates tune it
    because a 2-D grid sits near its directed-percolation threshold,
    where the giant-SCC fraction is acutely sensitive to the reciprocal
    density (DESIGN.md §2).

    Duplicate undirected edges (either order) are collapsed first so an
    edge is oriented once.
    """
    rng = np.random.default_rng(rng)
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    # Canonicalize each undirected edge as (min, max) then dedup.
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    lo, hi = dedup_edges(lo, hi, drop_self_loops=True)
    if mode == "choose":
        if p_both is not None:
            raise ValueError("p_both only applies to mode='independent'")
        flip = rng.random(lo.shape[0]) < 0.5
        out_src = np.where(flip, hi, lo)
        out_dst = np.where(flip, lo, hi)
    elif mode == "independent":
        if p_both is None:
            fwd = rng.random(lo.shape[0]) < 0.5
            bwd = rng.random(lo.shape[0]) < 0.5
            out_src = np.concatenate([lo[fwd], hi[bwd]])
            out_dst = np.concatenate([hi[fwd], lo[bwd]])
        else:
            if not (0.0 <= p_both <= 0.5):
                raise ValueError("p_both must be in [0, 0.5]")
            u = rng.random(lo.shape[0])
            both = u < p_both
            fwd = (u >= p_both) & (u < p_both + 0.25)
            bwd = (u >= p_both + 0.25) & (u < p_both + 0.5)
            out_src = np.concatenate([lo[both], hi[both], lo[fwd], hi[bwd]])
            out_dst = np.concatenate([hi[both], lo[both], hi[fwd], lo[bwd]])
    else:
        raise ValueError(f"unknown orientation mode {mode!r}")
    return from_edge_array(out_src, out_dst, num_nodes, dedup=True)


def symmetrize(g: CSRGraph) -> CSRGraph:
    """Return the undirected closure: for every ``u -> v`` add ``v -> u``."""
    src, dst = g.edge_array()
    both_src = np.concatenate([src, dst])
    both_dst = np.concatenate([dst, src])
    return from_edge_array(both_src, both_dst, g.num_nodes, dedup=True)


def edge_arrays_from_pairs(pairs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split an ``(m, 2)`` pair array into ``(src, dst)`` (convenience)."""
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError("expected an (m, 2) array of pairs")
    return pairs[:, 0].copy(), pairs[:, 1].copy()
