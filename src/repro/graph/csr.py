"""Immutable directed graph in Compressed Sparse Row (CSR) form.

The representation follows Section 4.1 of the paper: a node array of
``N + 1`` offsets (``indptr``) pointing into a single edge array of
``M`` destination ids (``indices``).  The transpose (in-edges, "CSC" of
the adjacency matrix) is built lazily and cached because only the
backward-reachability and trim steps need it.

Design notes
------------
* Arrays are **read-only views** (``writeable=False``) so algorithm code
  cannot accidentally mutate the graph; the paper never mutates the
  graph either — it layers ``Color``/``mark`` arrays on top.
* Adjacency lists are sorted by destination id.  Sorted rows make
  membership tests (needed by Trim2's ``k in OutNbr(n)``) a binary
  search via :func:`numpy.searchsorted` and make graph equality and
  hashing deterministic.
* Index dtype is ``int64`` throughout.  The surrogate graphs used in
  this reproduction are far below the ``int32`` limit, but ``int64``
  keeps every downstream kernel free of overflow checks and matches
  NumPy's default index type.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

__all__ = ["CSRGraph"]


def _as_readonly(a: np.ndarray) -> np.ndarray:
    view = a.view()
    view.flags.writeable = False
    return view


class CSRGraph:
    """A directed graph stored in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of shape ``(num_nodes + 1,)``; ``indptr[i]`` is
        the offset of node ``i``'s adjacency list in ``indices``.
    indices:
        ``int64`` array of shape ``(num_edges,)`` holding destination
        node ids, adjacency lists stored back to back.
    sorted_rows:
        If True the caller guarantees each adjacency list is already
        sorted ascending; otherwise rows are sorted here.

    Use :func:`repro.graph.from_edge_array` to build a graph from raw
    edges; the constructor expects well-formed CSR arrays.
    """

    __slots__ = ("_indptr", "_indices", "_in_indptr", "_in_indices")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        sorted_rows: bool = False,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if indptr.shape[0] == 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0 or indptr[-1] != indices.shape[0]:
            raise ValueError(
                "indptr must start at 0 and end at len(indices) "
                f"(got {indptr[0]}..{indptr[-1]} for {indices.shape[0]} edges)"
            )
        if indptr.shape[0] > 1 and np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = indptr.shape[0] - 1
        if indices.shape[0] and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("edge destination out of range")
        if not sorted_rows:
            indices = _sort_rows(indptr, indices)
        self._indptr = _as_readonly(indptr)
        self._indices = _as_readonly(indices)
        self._in_indptr: np.ndarray | None = None
        self._in_indices: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def indptr(self) -> np.ndarray:
        """Out-adjacency row offsets, shape ``(num_nodes + 1,)``."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Out-adjacency destinations, shape ``(num_edges,)``."""
        return self._indices

    @property
    def num_nodes(self) -> int:
        return self._indptr.shape[0] - 1

    @property
    def num_edges(self) -> int:
        return self._indices.shape[0]

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"

    # ------------------------------------------------------------------
    # Transpose (in-edges)
    # ------------------------------------------------------------------
    def _build_transpose(self) -> None:
        n = self.num_nodes
        src = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self._indptr)
        )
        dst = self._indices
        order = np.argsort(dst, kind="stable")
        in_indices = src[order]
        counts = np.bincount(dst, minlength=n).astype(np.int64)
        in_indptr = np.concatenate(
            ([0], np.cumsum(counts, dtype=np.int64))
        )
        # stable sort on dst keeps src ascending within each row because
        # rows of the forward CSR are emitted in ascending src order.
        self._in_indptr = _as_readonly(in_indptr)
        self._in_indices = _as_readonly(in_indices)

    @property
    def in_indptr(self) -> np.ndarray:
        """In-adjacency row offsets (lazily built transpose)."""
        if self._in_indptr is None:
            self._build_transpose()
        assert self._in_indptr is not None
        return self._in_indptr

    @property
    def in_indices(self) -> np.ndarray:
        """In-adjacency sources (lazily built transpose)."""
        if self._in_indices is None:
            self._build_transpose()
        assert self._in_indices is not None
        return self._in_indices

    def reverse(self) -> "CSRGraph":
        """Return the transpose graph as a standalone :class:`CSRGraph`.

        The reverse graph shares no state with ``self``; its own
        transpose is again built lazily.
        """
        g = CSRGraph(self.in_indptr.copy(), self.in_indices.copy(), sorted_rows=True)
        return g

    # ------------------------------------------------------------------
    # Degrees and neighborhoods
    # ------------------------------------------------------------------
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node, shape ``(num_nodes,)``."""
        return np.diff(self._indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node, shape ``(num_nodes,)``."""
        return np.diff(self.in_indptr)

    def out_degree(self, u: int) -> int:
        return int(self._indptr[u + 1] - self._indptr[u])

    def in_degree(self, u: int) -> int:
        return int(self.in_indptr[u + 1] - self.in_indptr[u])

    def out_neighbors(self, u: int) -> np.ndarray:
        """Destinations of ``u``'s out-edges (read-only, sorted)."""
        return self._indices[self._indptr[u] : self._indptr[u + 1]]

    def in_neighbors(self, u: int) -> np.ndarray:
        """Sources of ``u``'s in-edges (read-only, sorted)."""
        return self.in_indices[self.in_indptr[u] : self.in_indptr[u + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """True if the edge ``u -> v`` exists (binary search)."""
        row = self.out_neighbors(u)
        pos = int(np.searchsorted(row, v))
        return pos < row.shape[0] and int(row[pos]) == v

    def has_edges(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`has_edge` over aligned endpoint arrays.

        One batched binary search against the row-sorted ``indices``
        array: edge ``us[i] -> vs[i]`` is present iff the composite key
        ``us[i] * (n + 1) + vs[i]`` occurs among the per-row keys (the
        same total order :meth:`_sort_rows` sorts by, so the global
        array is key-sorted and a single ``searchsorted`` answers every
        query).  Returns a boolean array aligned with the inputs.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape:
            raise ValueError(
                f"endpoint arrays must align: {us.shape} vs {vs.shape}"
            )
        if us.size == 0:
            return np.zeros(0, dtype=bool)
        n = np.int64(self.num_nodes)
        src = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64),
            np.diff(self._indptr),
        )
        keys = src * (n + 1) + self._indices
        probes = us * (n + 1) + vs
        pos = np.searchsorted(keys, probes)
        found = np.zeros(us.shape, dtype=bool)
        in_range = pos < keys.shape[0]
        found[in_range] = keys[pos[in_range]] == probes[in_range]
        return found

    # ------------------------------------------------------------------
    # Edge iteration / export
    # ------------------------------------------------------------------
    def edge_array(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` arrays of all edges."""
        src = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), self.out_degrees()
        )
        return src, self._indices.copy()

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate edges as python ``(u, v)`` tuples (small graphs only)."""
        for u in range(self.num_nodes):
            for v in self.out_neighbors(u):
                yield u, int(v)

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (test/diagnostic helper)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_nodes))
        src, dst = self.edge_array()
        g.add_edges_from(zip(src.tolist(), dst.tolist()))
        return g

    # ------------------------------------------------------------------
    # Equality / hashing (structural)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and self.num_edges == other.num_edges
            and bool(np.array_equal(self._indptr, other._indptr))
            and bool(np.array_equal(self._indices, other._indices))
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.num_nodes,
                self.num_edges,
                self._indices[:64].tobytes(),
                self._indptr[:64].tobytes(),
            )
        )

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Bytes held by the CSR arrays (including cached transpose)."""
        total = self._indptr.nbytes + self._indices.nbytes
        if self._in_indptr is not None:
            total += self._in_indptr.nbytes
        if self._in_indices is not None:
            total += self._in_indices.nbytes
        return total


def _sort_rows(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Sort each adjacency list ascending without Python-level loops.

    Sorting key: ``row_id * (n + 1) + dst`` is monotone in ``(row, dst)``
    so one global argsort orders every row internally while preserving
    row boundaries.
    """
    if indices.shape[0] == 0:
        return indices
    n = indptr.shape[0] - 1
    row = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    key = row * np.int64(n + 1) + indices
    order = np.argsort(key, kind="stable")
    return indices[order]
