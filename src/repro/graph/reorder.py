"""Locality-aware node reordering.

Section 4.1 chooses CSR because it is "memory bandwidth-friendly"; how
friendly depends on the node numbering — neighbours with nearby ids
land in nearby cache lines.  Real-world graph dumps arrive in
arbitrary (often hash) order, so production graph systems renumber.
Two standard orderings:

* :func:`bfs_order` — breadth-first numbering from a high-degree seed
  (a light-weight RCM cousin): neighbours cluster by level.
* :func:`degree_order` — descending-degree numbering: the hub rows the
  traversals hit most often pack together at the front.

:func:`apply_order` relabels a graph under any permutation and returns
the mapping, so results can be translated back.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .csr import CSRGraph
from .build import from_edge_array
from .orient import symmetrize

__all__ = ["bfs_order", "degree_order", "apply_order", "locality_score"]


def bfs_order(g: CSRGraph) -> np.ndarray:
    """Permutation ``perm[new_id] = old_id`` in BFS-level order.

    BFS runs over the undirected closure from the highest-degree node;
    unreached fragments are appended in id order.
    """
    from ..traversal.bfs import bfs_levels

    n = g.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    und = symmetrize(g)
    seed = int(np.argmax(g.out_degrees() + g.in_degrees()))
    dist = bfs_levels(und, seed)
    key = np.where(dist >= 0, dist, np.iinfo(np.int64).max)
    return np.lexsort((np.arange(n), key)).astype(np.int64)


def degree_order(g: CSRGraph) -> np.ndarray:
    """Permutation ``perm[new_id] = old_id`` by descending total degree."""
    total = g.out_degrees() + g.in_degrees()
    return np.lexsort((np.arange(g.num_nodes), -total)).astype(np.int64)


def apply_order(
    g: CSRGraph, perm: np.ndarray
) -> Tuple[CSRGraph, np.ndarray]:
    """Relabel ``g`` so node ``perm[i]`` becomes node ``i``.

    Returns ``(relabelled_graph, old_of_new)`` where
    ``old_of_new[i] = perm[i]``; translate result labels back with
    ``labels_old[perm] = labels_new``... i.e.
    ``labels_old = labels_new[inverse]`` for the inverse permutation.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = g.num_nodes
    if perm.shape != (n,) or not np.array_equal(
        np.sort(perm), np.arange(n)
    ):
        raise ValueError("perm must be a permutation of node ids")
    new_of_old = np.empty(n, dtype=np.int64)
    new_of_old[perm] = np.arange(n, dtype=np.int64)
    src, dst = g.edge_array()
    relabelled = from_edge_array(
        new_of_old[src], new_of_old[dst], n, dedup=False
    )
    return relabelled, perm.copy()


def locality_score(g: CSRGraph) -> float:
    """Mean |dst - src| over edges, normalized by N (lower = better).

    A proxy for the cache behaviour of a CSR traversal: small id gaps
    mean neighbour accesses stay in nearby pages.
    """
    if g.num_edges == 0:
        return 0.0
    src, dst = g.edge_array()
    return float(np.abs(dst - src).mean() / max(g.num_nodes, 1))
