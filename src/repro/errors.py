"""The :class:`ReproError` taxonomy: one exception class per failure
boundary, each with a distinct process exit code.

A production run can fail at three boundaries — ingesting a graph,
executing/checkpointing the run, and verifying the result — and an
operator (or a retry controller) needs to tell them apart without
parsing tracebacks.  Every failure the library raises deliberately is a
:class:`ReproError` subclass carrying an ``exit_code``; the CLI maps an
uncaught instance to that code (``repro ... ; echo $?``).

========================  ====  =============================================
class                     exit  raised when
========================  ====  =============================================
``ReproError``              10  generic library failure (base class)
``GraphIngestError``        11  malformed / corrupt input data (file + line)
``GraphValidationError``    12  a loaded/built CSR violates an invariant
``CheckpointError``         13  checkpoint missing, corrupt, or mismatched
``PhaseTimeoutError``       14  a pipeline phase exceeded its deadline
``StateInvariantError``     15  self-verification found corrupted labels
``PoolBrokenError``         16  worker pool exhausted its retry budgets
``ServiceOverloadError``    17  admission control shed the request
``MemoryBudgetError``       18  request refused: memory budget would be blown
``WorkerLostError``         19  a serving worker died and replay was impossible
``IntegrityError``          20  checksum/certification caught silent corruption
``StreamFeedError``         21  a live edge feed died past its reconnect budget
========================  ====  =============================================

Every exit code is unique across the taxonomy — a retry controller or
an operator script can branch on ``$?`` alone — and
``tests/service/test_errors_taxonomy.py`` walks the subclass tree to
keep it that way.

Classes that replace historically raised builtin exceptions keep the
builtin as a secondary base (``GraphIngestError`` is a ``ValueError``,
``StateInvariantError`` a ``RuntimeError``, ...) so pre-existing
``except`` clauses keep working.
"""

from __future__ import annotations

import os
from typing import Optional, Union

__all__ = [
    "ReproError",
    "GraphIngestError",
    "GraphValidationError",
    "CheckpointError",
    "PhaseTimeoutError",
    "ServiceOverloadError",
    "MemoryBudgetError",
    "WorkerLostError",
    "IntegrityError",
    "StreamFeedError",
    "exit_code_for",
]

PathLike = Union[str, "os.PathLike[str]"]


class ReproError(Exception):
    """Base class of every deliberate failure this library raises."""

    #: process exit status the CLI uses for this failure class.
    exit_code = 10


class GraphIngestError(ReproError, ValueError):
    """Input data could not be ingested under the active policy.

    Carries the offending ``path`` and (for line-oriented formats) the
    1-based ``line`` number, both woven into the message so the error
    is actionable without opening a debugger.
    """

    exit_code = 11

    def __init__(
        self,
        message: str,
        *,
        path: Optional[PathLike] = None,
        line: Optional[int] = None,
    ) -> None:
        self.path = os.fspath(path) if path is not None else None
        self.line = line
        if self.path is not None and line is not None:
            message = f"{self.path}:{line}: {message}"
        elif self.path is not None:
            message = f"{self.path}: {message}"
        super().__init__(message)


class GraphValidationError(ReproError, ValueError):
    """A CSR graph violates a structural invariant (see graph.validate)."""

    exit_code = 12


class CheckpointError(ReproError, RuntimeError):
    """A run checkpoint is missing, corrupt, or from a different run."""

    exit_code = 13

    def __init__(
        self, message: str, *, path: Optional[PathLike] = None
    ) -> None:
        self.path = os.fspath(path) if path is not None else None
        if self.path is not None:
            message = f"{self.path}: {message}"
        super().__init__(message)


class PhaseTimeoutError(ReproError, TimeoutError):
    """A pipeline phase exceeded its wall-clock deadline."""

    exit_code = 14

    def __init__(self, phase: str, seconds: float) -> None:
        self.phase = phase
        self.seconds = seconds
        super().__init__(
            f"phase {phase!r} exceeded its {seconds:g}s deadline"
        )


class ServiceOverloadError(ReproError, RuntimeError):
    """Admission control shed this request (queue full, or draining).

    The canonical *retry later, elsewhere* signal: the service is
    healthy but saturated, so the request was rejected **before** any
    work was done on it.  ``reason`` distinguishes queue-full shedding
    from drain-time shedding and governor refusals.
    """

    exit_code = 17

    def __init__(
        self, message: str = "request shed", *, reason: str = "overload"
    ) -> None:
        self.reason = reason
        super().__init__(message)


class MemoryBudgetError(ReproError, MemoryError):
    """A request was refused because it would blow the memory budget.

    Raised *before* allocation (cost-model admission check) or by the
    RSS governor when the process is already over its hard limit —
    either way, refusing typed beats dying to the OOM killer.
    """

    exit_code = 18

    def __init__(
        self,
        message: str,
        *,
        required_bytes: Optional[int] = None,
        budget_bytes: Optional[int] = None,
    ) -> None:
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes
        if required_bytes is not None and budget_bytes is not None:
            message = (
                f"{message} (needs ~{required_bytes / 1e6:.0f} MB, "
                f"budget {budget_bytes / 1e6:.0f} MB)"
            )
        super().__init__(message)


class WorkerLostError(ReproError, RuntimeError):
    """A serving worker process died and the request could not be
    re-driven onto a survivor.

    Raised by the sharded serving tier (:mod:`repro.service.workers`)
    only after recovery has been exhausted: no live worker remained to
    replay onto, or the request already burned its replay budget.  The
    failure is *transient* from the client's perspective — a respawned
    worker can serve the retry — which is why the retry layer
    classifies it that way.
    """

    exit_code = 19

    def __init__(
        self,
        message: str = "serving worker lost",
        *,
        worker: Optional[int] = None,
    ) -> None:
        self.worker = worker
        if worker is not None:
            message = f"worker {worker}: {message}"
        super().__init__(message)


class IntegrityError(ReproError, RuntimeError):
    """Silent data corruption was caught before it could be served.

    Raised by the integrity tier (:mod:`repro.integrity`) when a
    block checksum over warm session state mismatches, when a result
    certificate fails its reachability proof, or when the self-audit
    loop finds a label CRC that disagrees with the serial reference
    re-execution.  The serving layer treats it as *transient* under
    the default ``on_corruption="quarantine"`` policy — the session is
    evicted and rebuilt from source, so a retry runs on fresh arrays —
    and as permanent (fail fast, exit 20) under ``"fail"``.
    """

    exit_code = 20

    def __init__(
        self,
        message: str = "integrity check failed",
        *,
        array: Optional[str] = None,
        block: Optional[int] = None,
        context: Optional[str] = None,
    ) -> None:
        self.array = array
        self.block = block
        self.context = context
        detail = []
        if array is not None:
            detail.append(f"array={array}")
        if block is not None:
            detail.append(f"block={block}")
        if context:
            detail.append(f"at {context}")
        if detail:
            message = f"{message} ({', '.join(detail)})"
        super().__init__(message)


class StreamFeedError(ReproError, ConnectionError):
    """A live edge feed could not be kept alive.

    Raised by the streaming-ingestion tier (:mod:`repro.ingest`) when
    a source exhausts its bounded reconnect budget, or when the
    stalled-feed watchdog gives up on a peer that stopped sending.
    ``ConnectionError`` is a secondary base on purpose: the retry
    layer already classifies connection failures as *transient*, and
    a feed that died now may answer a redial later — the consumer's
    checkpointed watermark makes that resume exact.
    """

    exit_code = 21

    def __init__(
        self,
        message: str = "stream feed lost",
        *,
        source: Optional[str] = None,
        reconnects: Optional[int] = None,
    ) -> None:
        self.source = source
        self.reconnects = reconnects
        detail = []
        if source is not None:
            detail.append(f"source={source}")
        if reconnects is not None:
            detail.append(f"after {reconnects} reconnect(s)")
        if detail:
            message = f"{message} ({', '.join(detail)})"
        super().__init__(message)


def exit_code_for(exc: BaseException) -> int:
    """The CLI exit status for ``exc`` (1 for non-Repro failures)."""
    if isinstance(exc, ReproError):
        return exc.exit_code
    return 1
