"""The :class:`ReproError` taxonomy: one exception class per failure
boundary, each with a distinct process exit code.

A production run can fail at three boundaries — ingesting a graph,
executing/checkpointing the run, and verifying the result — and an
operator (or a retry controller) needs to tell them apart without
parsing tracebacks.  Every failure the library raises deliberately is a
:class:`ReproError` subclass carrying an ``exit_code``; the CLI maps an
uncaught instance to that code (``repro ... ; echo $?``).

========================  ====  =============================================
class                     exit  raised when
========================  ====  =============================================
``ReproError``              10  generic library failure (base class)
``GraphIngestError``        11  malformed / corrupt input data (file + line)
``GraphValidationError``    12  a loaded/built CSR violates an invariant
``CheckpointError``         13  checkpoint missing, corrupt, or mismatched
``PhaseTimeoutError``       14  a pipeline phase exceeded its deadline
``StateInvariantError``     15  self-verification found corrupted labels
``PoolBrokenError``         16  worker pool exhausted its retry budgets
========================  ====  =============================================

Classes that replace historically raised builtin exceptions keep the
builtin as a secondary base (``GraphIngestError`` is a ``ValueError``,
``StateInvariantError`` a ``RuntimeError``, ...) so pre-existing
``except`` clauses keep working.
"""

from __future__ import annotations

import os
from typing import Optional, Union

__all__ = [
    "ReproError",
    "GraphIngestError",
    "GraphValidationError",
    "CheckpointError",
    "PhaseTimeoutError",
    "exit_code_for",
]

PathLike = Union[str, "os.PathLike[str]"]


class ReproError(Exception):
    """Base class of every deliberate failure this library raises."""

    #: process exit status the CLI uses for this failure class.
    exit_code = 10


class GraphIngestError(ReproError, ValueError):
    """Input data could not be ingested under the active policy.

    Carries the offending ``path`` and (for line-oriented formats) the
    1-based ``line`` number, both woven into the message so the error
    is actionable without opening a debugger.
    """

    exit_code = 11

    def __init__(
        self,
        message: str,
        *,
        path: Optional[PathLike] = None,
        line: Optional[int] = None,
    ) -> None:
        self.path = os.fspath(path) if path is not None else None
        self.line = line
        if self.path is not None and line is not None:
            message = f"{self.path}:{line}: {message}"
        elif self.path is not None:
            message = f"{self.path}: {message}"
        super().__init__(message)


class GraphValidationError(ReproError, ValueError):
    """A CSR graph violates a structural invariant (see graph.validate)."""

    exit_code = 12


class CheckpointError(ReproError, RuntimeError):
    """A run checkpoint is missing, corrupt, or from a different run."""

    exit_code = 13

    def __init__(
        self, message: str, *, path: Optional[PathLike] = None
    ) -> None:
        self.path = os.fspath(path) if path is not None else None
        if self.path is not None:
            message = f"{self.path}: {message}"
        super().__init__(message)


class PhaseTimeoutError(ReproError, TimeoutError):
    """A pipeline phase exceeded its wall-clock deadline."""

    exit_code = 14

    def __init__(self, phase: str, seconds: float) -> None:
        self.phase = phase
        self.seconds = seconds
        super().__init__(
            f"phase {phase!r} exceeded its {seconds:g}s deadline"
        )


def exit_code_for(exc: BaseException) -> int:
    """The CLI exit status for ``exc`` (1 for non-Repro failures)."""
    if isinstance(exc, ReproError):
        return exc.exit_code
    return 1
