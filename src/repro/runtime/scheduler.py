"""Discrete-event simulation of the paper's two-level work queue.

Section 4.3: "our custom work queue implementation ... is composed of
two levels of queues: a global queue and per-thread private queues.
Initially, each thread fetches up to K work items from the global queue
into its local queue; whenever the local queue becomes empty, more work
is fetched from the global queue.  Each newly generated work item goes
to a local queue first.  When the size of a local queue grows to 2K,
K items are moved to the global queue."

:func:`simulate_task_dag` replays a recorded Recur-FWBW task tree under
that policy for any worker count, with per-worker speeds taken from the
machine's efficiency curve (so the second socket's and SMT lanes' lower
throughput shows up in task phases too).  It also records the queue
depths over time — the diagnostic the paper uses in Section 3.3 to
expose the serialization pathology ("the recorded maximum queue depth
with single threaded execution is only six").
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["QueueStats", "simulate_task_dag"]


@dataclass(frozen=True)
class QueueStats:
    """Queue diagnostics for one simulated task phase."""

    #: maximum length of the global queue.
    max_global_depth: int
    #: maximum total pending items (global + all local queues).
    max_total_depth: int
    #: number of tasks executed.
    tasks: int
    #: number of global-queue accesses (fetches + spills).
    global_accesses: int
    #: total busy time / (workers * makespan); 1.0 = perfect.
    utilization: float
    #: number of initial (root) work items.
    initial_items: int

    def merge(self, other: "QueueStats") -> "QueueStats":
        """Combine stats of consecutive task phases with one label."""
        total_busy = (
            self.utilization * self.tasks + other.utilization * other.tasks
        )
        denom = max(self.tasks + other.tasks, 1)
        return QueueStats(
            max_global_depth=max(self.max_global_depth, other.max_global_depth),
            max_total_depth=max(self.max_total_depth, other.max_total_depth),
            tasks=self.tasks + other.tasks,
            global_accesses=self.global_accesses + other.global_accesses,
            utilization=total_busy / denom,
            initial_items=self.initial_items + other.initial_items,
        )


def simulate_task_dag(record, workers: int, config) -> tuple[float, QueueStats]:
    """Simulate a :class:`~repro.runtime.trace.TaskDAGRecord`.

    Returns ``(makespan, stats)``.  Deterministic: ties are broken by
    worker index, tasks preserve spawn order.
    """
    tasks = record.tasks
    n = len(tasks)
    k = record.queue_k
    if n == 0:
        return 0.0, QueueStats(0, 0, 0, 0, 1.0, 0)

    children: list[list[int]] = [[] for _ in range(n)]
    roots: list[int] = []
    for i, t in enumerate(tasks):
        if t.parent == -1:
            roots.append(i)
        else:
            children[t.parent].append(i)

    effs = config.thread_efficiencies()
    workers = max(1, min(workers, effs.shape[0]))
    speed = effs[:workers]

    global_q: deque[int] = deque(roots)
    local_qs: list[deque[int]] = [deque() for _ in range(workers)]
    # Event heap of (time, seq, worker, task) completions; seq for
    # deterministic tie-breaking.
    heap: list[tuple[float, int, int, int]] = []
    seq = 0
    now = 0.0
    busy = np.zeros(workers, dtype=np.float64)
    idle_workers: deque[int] = deque()
    done = 0
    max_global = len(global_q)
    max_total = len(global_q)
    global_accesses = 0

    def total_pending() -> int:
        return len(global_q) + sum(len(q) for q in local_qs)

    def try_dispatch(w: int, at: float) -> bool:
        """Give worker ``w`` its next task at time ``at``; False if none."""
        nonlocal seq, global_accesses, max_global
        overhead = 0.0
        lq = local_qs[w]
        if not lq:
            if not global_q:
                return False
            take = min(k, len(global_q))
            for _ in range(take):
                lq.append(global_q.popleft())
            global_accesses += 1
            overhead += config.queue_global_access
        task = lq.popleft()
        overhead += config.queue_local_op
        duration = overhead + tasks[task].cost / speed[w]
        heapq.heappush(heap, (at + duration, seq, w, task))
        seq += 1
        busy[w] += duration
        return True

    # t=0: all workers try to grab work.
    for w in range(workers):
        if not try_dispatch(w, 0.0):
            idle_workers.append(w)

    while done < n:
        if not heap:  # pragma: no cover - defensive: DAG must drain
            raise RuntimeError("task scheduler deadlocked (bad task DAG)")
        now, _, w, task = heapq.heappop(heap)
        done += 1
        # Spawn children into w's local queue; spill K to global at 2K.
        lq = local_qs[w]
        spawned = children[task]
        post_overhead = 0.0
        if spawned:
            post_overhead += config.task_spawn * len(spawned)
            for c in spawned:
                lq.append(c)
                if len(lq) >= 2 * k:
                    for _ in range(k):
                        global_q.append(lq.popleft())
                    global_accesses += 1
                    post_overhead += config.queue_global_access
            max_global = max(max_global, len(global_q))
            max_total = max(max_total, total_pending())
            # Wake idle workers now that the global queue may have work.
            while idle_workers and global_q:
                iw = idle_workers.popleft()
                if not try_dispatch(iw, now):
                    idle_workers.append(iw)
                    break
        busy[w] += post_overhead
        if not try_dispatch(w, now + post_overhead):
            idle_workers.append(w)

    makespan = now
    util = (
        float(busy.sum()) / (workers * makespan) if makespan > 0 else 1.0
    )
    return makespan, QueueStats(
        max_global_depth=max_global,
        max_total_depth=max_total,
        tasks=n,
        global_accesses=global_accesses,
        utilization=util,
        initial_items=len(roots),
    )
