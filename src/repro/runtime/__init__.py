"""Parallel-runtime substrate: the simulated multicore machine.

The paper evaluates on a 2-socket, 16-core, 32-hardware-thread Xeon
with OpenMP.  This package substitutes for that hardware (DESIGN.md §2):
algorithms record their parallel structure into a
:class:`~repro.runtime.trace.WorkTrace`, and
:class:`~repro.runtime.machine.Machine` replays the trace on a
configurable machine model — per-socket/SMT throughput, barrier costs,
and a discrete-event simulation of the two-level work queue.  A real
:mod:`threading`-based work queue is also provided for executing the
task phase concurrently (correctness path; the GIL forbids speedup).
"""

from .cost import CostModel, DEFAULT_COST_MODEL
from .trace import (
    ParallelForRecord,
    SequentialRecord,
    Task,
    TaskDAGRecord,
    WorkTrace,
    STANDARD_THREAD_COUNTS,
    static_chunk_maxima,
)
from .machine import Machine, MachineConfig, SimResult, PAPER_MACHINE
from .scheduler import QueueStats, simulate_task_dag
from .workqueue import TwoLevelWorkQueue, QueueTelemetry
from .metrics import ExecutionProfile, TaskLogEntry
from .serialize import save_trace, load_trace, trace_to_dict, trace_from_dict
from .mp_backend import fork_available, run_recur_phase_processes
from .faults import FaultInjected, FaultPlan, FaultSpec
from .supervisor import (
    PoolBrokenError,
    SupervisorConfig,
    SupervisorReport,
    run_supervised_recur_phase,
)
from .lifecycle import (
    RunHarness,
    RunReport,
    latest_checkpoint,
    load_checkpoint,
)

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "ParallelForRecord",
    "SequentialRecord",
    "Task",
    "TaskDAGRecord",
    "WorkTrace",
    "STANDARD_THREAD_COUNTS",
    "static_chunk_maxima",
    "Machine",
    "MachineConfig",
    "SimResult",
    "PAPER_MACHINE",
    "QueueStats",
    "simulate_task_dag",
    "TwoLevelWorkQueue",
    "QueueTelemetry",
    "ExecutionProfile",
    "TaskLogEntry",
    "save_trace",
    "load_trace",
    "trace_to_dict",
    "trace_from_dict",
    "fork_available",
    "run_recur_phase_processes",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "PoolBrokenError",
    "SupervisorConfig",
    "SupervisorReport",
    "run_supervised_recur_phase",
    "RunHarness",
    "RunReport",
    "latest_checkpoint",
    "load_checkpoint",
]
