"""Deterministic fault injection for the execution backends.

A :class:`FaultPlan` is a seedable, fully deterministic description of
*which* task executions fail and *how*: a worker process can be killed
mid-task (``crash``), a task can be delayed past its deadline
(``hang``), an exception can be raised inside the task body
(``raise``), a shared-memory label write can be silently corrupted
(``poison``), or seeded bit flips can be driven into a named warm
array (``corrupt`` — the silent-data-corruption drill the integrity
tier detects).  The plan is matched against ``(site, index, attempt)``
triples that the *dispatcher* assigns — not against per-process event
counters — so injection stays deterministic across forked workers,
pool rebuilds and retries.

Injection sites:

* ``"task"`` — the phase-2 Recur-FWBW task kernel
  (:func:`repro.runtime.mp_backend._exec_task`); the supervisor or
  backend numbers every dispatch with a monotone sequence id.
* ``"queue"`` — the threaded :class:`~repro.runtime.workqueue.
  TwoLevelWorkQueue` worker loop (tasks numbered in start order).
* ``"phase"`` — the run-lifecycle harness
  (:class:`~repro.runtime.lifecycle.RunHarness`); the index is the
  phase position in the plan and the stage maps to the checkpoint
  boundary (``"pre"`` = phase entry, ``"mid"`` = phase done but
  checkpoint not yet written, ``"post"`` = checkpoint published) —
  the kill-and-resume tests crash the run at exact boundaries.
* ``"job"`` — the batch runner (:func:`repro.engine.batch.run_batch`);
  the index is the job position in the manifest, and the attempt
  number is the job's retry attempt, so a transient fault with the
  default ``times=1`` fails the first attempt and lets the retry
  policy's second attempt through.  ``crash`` is downgraded to
  ``raise`` here (``thread_site``) — the drill must fail the job, not
  the batch process.
* ``"request"`` — the serve daemon (:mod:`repro.service.server`); the
  index is the request admission sequence number, attempts count the
  retry policy's attempts.  Also a ``thread_site``: requests execute
  on service threads.
* ``"stream"`` — the live-ingestion sources (:mod:`repro.ingest.
  sources`); the index is the source's monotone read sequence number,
  so a plan like ``disconnect@3,garbage@7`` drops the feed on exactly
  the 4th read and injects garbage bytes on the 8th, every run.  Only
  the :data:`NETWORK_KINDS` fire here, and they are *applied by the
  source itself* (via :meth:`FaultPlan.network`), never by
  :meth:`FaultPlan.fire` — a disconnect is a simulated peer failure
  the source must absorb, not an exception the harness throws.

Each fault fires at one *stage* of the task lifecycle:

* ``"pre"`` — before any shared-state mutation (trivially retry-safe),
* ``"mid"`` — after the FW/BW recolouring but before the SCC commit
  (retry requires colour repair; see :mod:`repro.runtime.supervisor`),
* ``"post"`` — after the commit but before the children reach the
  master (the SCC survives; the child partitions need repair).

The hook is zero-overhead when off: executors hold a plan reference
that is ``None`` in normal runs and guard every call site with a
single ``is not None`` test.  A module-level plan can also be armed
with :func:`install_plan` (used by the threaded work queue, which has
no per-run configuration channel) — again a single global read when
disarmed.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "NETWORK_KINDS",
    "FAULT_STAGES",
    "CORRUPTIBLE_ARRAYS",
    "FaultInjected",
    "FaultSpec",
    "FaultPlan",
    "apply_corruption",
    "install_plan",
    "clear_plan",
    "active_plan",
    "injected",
]

#: network failure modes (applied by stream sources, never by
#: :meth:`FaultPlan.fire`): drop the connection, stall the read past
#: the watchdog, inject garbage bytes, re-deliver the previous chunk.
NETWORK_KINDS = ("disconnect", "stall", "garbage", "dup")

#: supported failure modes.
FAULT_KINDS = (
    "crash", "hang", "raise", "poison", "corrupt",
) + NETWORK_KINDS

#: array names a ``corrupt`` fault may target (warm session state the
#: integrity tier seals; see :mod:`repro.integrity`).
CORRUPTIBLE_ARRAYS = (
    "indptr",
    "indices",
    "in_indptr",
    "in_indices",
    "out_degrees",
    "in_degrees",
    "labels",
    "color",
)
#: task-lifecycle points at which a fault can fire.
FAULT_STAGES = ("pre", "mid", "post")

#: exit status used by an injected worker crash (recognisable in logs).
CRASH_EXIT_CODE = 87


class FaultInjected(RuntimeError):
    """Raised inside a task body by a ``raise``-kind fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes
    ----------
    kind: one of :data:`FAULT_KINDS`.
    site: injection site (``"task"`` or ``"queue"``).
    index: dispatcher-assigned task sequence id this fault targets.
    stage: lifecycle point (``"pre"``/``"mid"``/``"post"``); ignored
        for ``poison``, which always corrupts the commit.
    times: number of *attempts* of the target task that fail — with
        the default 1 the first retry succeeds; set it above the
        supervisor's retry budget to force degradation.
    hang_seconds: sleep duration for ``hang`` faults.  Must exceed the
        supervisor's task timeout to register as a hang.
    array: for ``corrupt`` faults, the warm array to flip bits in
        (one of :data:`CORRUPTIBLE_ARRAYS`); ignored otherwise.
    bit_flips: for ``corrupt`` faults, how many bits to flip.
    flip_seed: for ``corrupt`` faults, the RNG seed choosing *which*
        bits — same seed, same flips, every run.
    """

    kind: str
    site: str = "task"
    index: int = 0
    stage: str = "pre"
    times: int = 1
    hang_seconds: float = 30.0
    array: str = "indices"
    bit_flips: int = 1
    flip_seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.stage not in FAULT_STAGES:
            raise ValueError(f"unknown fault stage {self.stage!r}")
        if self.index < 0 or self.times < 1:
            raise ValueError("index must be >= 0 and times >= 1")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")
        if self.kind == "corrupt":
            if self.array not in CORRUPTIBLE_ARRAYS:
                raise ValueError(
                    f"corrupt target {self.array!r} is not one of "
                    f"{CORRUPTIBLE_ARRAYS}"
                )
            if self.bit_flips < 1:
                raise ValueError("bit_flips must be >= 1")
            if self.array in ("labels", "color") and self.site != "phase":
                # run-owned state only exists between phase boundaries;
                # any other site would be a silent no-op.
                raise ValueError(
                    f"corrupt target {self.array!r} requires "
                    f"site='phase' (got {self.site!r})"
                )


class FaultPlan:
    """An immutable, deterministic collection of :class:`FaultSpec`."""

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self.specs: tuple[FaultSpec, ...] = tuple(specs)

    # -- construction --------------------------------------------------
    @classmethod
    def single(cls, kind: str, index: int = 0, **kwargs) -> "FaultPlan":
        """Plan with exactly one fault (the common test shape)."""
        return cls([FaultSpec(kind=kind, index=index, **kwargs)])

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        n_faults: int = 3,
        max_index: int = 16,
        site: str = "task",
        kinds: Sequence[str] = ("crash", "hang", "raise"),
        hang_seconds: float = 30.0,
    ) -> "FaultPlan":
        """Seeded random plan: same seed, same faults, every run."""
        rng = np.random.default_rng(seed)
        specs = [
            FaultSpec(
                kind=str(rng.choice(list(kinds))),
                site=site,
                index=int(rng.integers(0, max_index)),
                stage=str(rng.choice(FAULT_STAGES)),
                hang_seconds=hang_seconds,
            )
            for _ in range(n_faults)
        ]
        return cls(specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a CLI plan string.

        Two formats: a JSON list of spec objects, or a compact
        comma-separated ``kind@index[:stage]`` list, e.g.
        ``"crash@2,hang@0:mid,poison@5"``.  A ``corrupt`` kind names
        its target array with a dot — ``corrupt.indptr@0:post`` flips
        one seeded bit in the warm ``indptr`` array.  Run-owned arrays
        (``corrupt.labels@1:post``) imply the ``"phase"`` site: they
        only exist between phase boundaries, so the index is the phase
        position and the flip fires inside :meth:`Engine.run`.
        """
        text = text.strip()
        if not text:
            return cls()
        if text.startswith("["):
            return cls(FaultSpec(**obj) for obj in json.loads(text))
        specs: List[FaultSpec] = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "@" not in part:
                raise ValueError(
                    f"bad fault spec {part!r}: expected kind@index[:stage]"
                )
            kind, _, where = part.partition("@")
            kind, _, array = kind.strip().partition(".")
            idx_str, _, stage = where.partition(":")
            extra = {"array": array} if array else {}
            if array in ("labels", "color"):
                extra["site"] = "phase"
            specs.append(
                FaultSpec(
                    kind=kind,
                    index=int(idx_str),
                    stage=stage.strip() or "pre",
                    **extra,
                )
            )
        return cls(specs)

    # -- matching ------------------------------------------------------
    def match(
        self, site: str, index: int, attempt: int = 0
    ) -> Optional[FaultSpec]:
        """The spec armed for this ``(site, index, attempt)``, if any."""
        for spec in self.specs:
            if (
                spec.site == site
                and spec.index == index
                and attempt < spec.times
            ):
                return spec
        return None

    def fire(
        self,
        site: str,
        index: int,
        *,
        stage: str,
        attempt: int = 0,
        thread_site: bool = False,
    ) -> None:
        """Execute any crash/hang/raise fault armed for this point.

        ``thread_site=True`` (the threaded work queue) downgrades
        ``crash`` to ``raise`` — killing the whole interpreter to
        simulate one worker death would take the test runner with it.
        """
        spec = self.match(site, index, attempt)
        if (
            spec is None
            or spec.stage != stage
            or spec.kind in ("poison", "corrupt")
            or spec.kind in NETWORK_KINDS
        ):
            # poison corrupts the commit, corrupt flips warm arrays,
            # network kinds degrade a stream source's reads — all are
            # applied by their own call sites, never here.
            return
        if spec.kind == "hang":
            time.sleep(spec.hang_seconds)
            return
        if spec.kind == "crash" and not thread_site:
            os._exit(CRASH_EXIT_CODE)
        raise FaultInjected(
            f"injected {spec.kind} at {site}[{index}] "
            f"stage={stage} attempt={attempt}"
        )

    def network(
        self, site: str, index: int, attempt: int = 0
    ) -> Optional[FaultSpec]:
        """The network-kind spec armed for this read, if any.

        Stream sources call this once per read with their monotone
        read counter; a hit tells the source to degrade *itself* —
        drop and redial (``disconnect``), sleep ``hang_seconds``
        so the watchdog sees a stalled feed (``stall``), splice
        garbage bytes into the chunk (``garbage``), or re-deliver the
        previous chunk at its old offset (``dup``) so the at-least-
        once machinery downstream has something to deduplicate.
        """
        spec = self.match(site, index, attempt)
        if spec is not None and spec.kind in NETWORK_KINDS:
            return spec
        return None

    def poison(self, site: str, index: int, attempt: int = 0) -> bool:
        """True when this task's commit should be corrupted."""
        spec = self.match(site, index, attempt)
        return spec is not None and spec.kind == "poison"

    def corruptions(
        self,
        site: str,
        index: int,
        attempt: int = 0,
        *,
        stage: Optional[str] = None,
    ) -> tuple:
        """Every ``corrupt`` spec armed for this ``(site, index,
        attempt)`` (optionally filtered by stage).

        Unlike :meth:`match` this returns *all* hits: one drill may
        rot several arrays at the same boundary.  The caller applies
        them with :func:`apply_corruption` against the arrays it owns.
        """
        return tuple(
            s
            for s in self.specs
            if s.kind == "corrupt"
            and s.site == site
            and s.index == index
            and attempt < s.times
            and (stage is None or s.stage == stage)
        )

    def has_only_corruptions(self) -> bool:
        """True when every spec is a ``corrupt`` (integrity drills
        need no supervised backend — detection is the engine's job)."""
        return bool(self.specs) and all(
            s.kind == "corrupt" for s in self.specs
        )

    # -- misc ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ",".join(
            f"{s.kind}@{s.site}:{s.index}:{s.stage}" for s in self.specs
        )
        return f"FaultPlan({inner})"


def apply_corruption(array: np.ndarray, spec: FaultSpec) -> List[int]:
    """Flip ``spec.bit_flips`` seeded bits in ``array``'s buffer.

    The flips go through the array's *ultimate base* — warm graph
    arrays are read-only views over writeable owners (see
    :mod:`repro.graph.csr`), exactly the shape real rot takes: the
    bytes change underneath every guard except a checksum.  Bit
    positions are drawn from ``default_rng(spec.flip_seed)``, so the
    same spec flips the same bits every run.  Returns the flipped bit
    positions (empty for a zero-byte array — nothing to rot).
    """
    if spec.kind != "corrupt":
        raise ValueError(f"not a corrupt spec: {spec.kind!r}")
    base = array
    while isinstance(base.base, np.ndarray):
        base = base.base
    if not base.flags.writeable:  # pragma: no cover - defensive
        raise ValueError(
            f"cannot corrupt {spec.array!r}: owning buffer is read-only"
        )
    raw = base.view(np.uint8).reshape(-1)
    nbits = int(raw.size) * 8
    if nbits == 0:
        return []
    rng = np.random.default_rng(spec.flip_seed)
    positions = rng.integers(0, nbits, size=spec.bit_flips)
    for pos in positions:
        raw[int(pos) // 8] ^= np.uint8(1 << (int(pos) % 8))
    return [int(p) for p in positions]


# ---------------------------------------------------------------------------
# Module-level arming (used by executors with no per-run config channel).
# ---------------------------------------------------------------------------
_PLAN: Optional[FaultPlan] = None


def install_plan(plan: FaultPlan) -> None:
    """Arm ``plan`` globally (picked up by the threaded work queue)."""
    global _PLAN
    _PLAN = plan


def clear_plan() -> None:
    """Disarm the global plan (restores the zero-overhead path)."""
    global _PLAN
    _PLAN = None


def active_plan() -> Optional[FaultPlan]:
    """The globally armed plan, or ``None`` when injection is off."""
    return _PLAN


class injected:
    """Context manager arming a plan for the duration of a block."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def __enter__(self) -> FaultPlan:
        install_plan(self.plan)
        return self.plan

    def __exit__(self, *exc) -> None:
        clear_plan()
