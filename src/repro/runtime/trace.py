"""Work traces: the record of *where parallelism exists* in a run.

This is the heart of the reproduction's hardware substitution
(DESIGN.md §2).  The paper measures wall-clock time on a 32-hardware-
thread Xeon; we cannot, so every algorithm in :mod:`repro.core` runs
once (single-threaded, deterministic) and records a trace of its
parallel structure:

* :class:`ParallelForRecord` — one data-parallel region (a trim sweep,
  a BFS level, a WCC iteration): how much work, over how many
  independent items, under which scheduling policy.
* :class:`SequentialRecord` — inherently serial work (Tarjan's DFS,
  pivot scans).
* :class:`TaskDAGRecord` — the Recur-FWBW phase: a tree of tasks,
  each with a cost, each spawning up to three children (the FW, BW and
  remainder partitions), exactly the structure the paper's two-level
  work queue consumes.

:class:`~repro.runtime.machine.Machine` then replays a trace for any
thread count.  Because the trace is independent of the thread count,
a single algorithm run yields the whole Figure 6 x-axis.

Work units: **1 unit = one edge inspection by a streaming (vectorized/
sequential-scan) kernel.**  Node touches and cache-unfriendly kernels
are converted into edge-units by :class:`~repro.runtime.cost.CostModel`
at record time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

__all__ = [
    "ParallelForRecord",
    "SequentialRecord",
    "Task",
    "TaskDAGRecord",
    "WorkTrace",
    "STANDARD_THREAD_COUNTS",
]

#: Thread counts for which static-chunk imbalance is precomputed; also
#: the Figure 6 sweep.
STANDARD_THREAD_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class ParallelForRecord:
    """One data-parallel region (``parallel for`` in the paper).

    Attributes
    ----------
    phase: phase label for Figure 7 grouping (e.g. ``"par_trim"``).
    work: total work in edge-units.
    items: number of independent iterations (parallelism bound).
    schedule: ``"dynamic"`` or ``"static"`` (Section 4.3: dynamic for
        neighborhood exploration, static otherwise).
    static_chunk_max: for static scheduling over skewed per-item work,
        ``{p: max contiguous-chunk work}`` for the standard thread
        counts — the load-imbalance floor when each of ``p`` threads
        takes one contiguous chunk.  Empty for balanced regions.
    """

    phase: str
    work: float
    items: int
    schedule: str = "dynamic"
    static_chunk_max: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.schedule not in ("dynamic", "static"):
            raise ValueError(f"bad schedule {self.schedule!r}")
        if self.work < 0 or self.items < 0:
            raise ValueError("work and items must be non-negative")


@dataclass(frozen=True)
class SequentialRecord:
    """Inherently sequential work (runs on one thread at any p)."""

    phase: str
    work: float

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError("work must be non-negative")


@dataclass(frozen=True)
class Task:
    """One Recur-FWBW task: processes one colour, spawns its children.

    ``parent`` is the index of the spawning task within the same
    :class:`TaskDAGRecord` (or -1 for tasks seeded into the queue
    before the phase starts).  Children become runnable only when the
    parent completes, matching Algorithm 5's push-at-end.
    """

    cost: float
    parent: int = -1

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError("cost must be non-negative")


@dataclass(frozen=True)
class TaskDAGRecord:
    """A task-parallel phase: the spawn tree of Recur-FWBW tasks.

    ``queue_k`` is the two-level work queue's batch size (Section 4.3:
    K = 1 for Baseline and Method 1, K = 8 for Method 2).
    """

    phase: str
    tasks: tuple[Task, ...]
    queue_k: int = 1

    def __post_init__(self) -> None:
        if self.queue_k < 1:
            raise ValueError("queue_k must be >= 1")
        for i, t in enumerate(self.tasks):
            if t.parent >= i:
                raise ValueError(
                    f"task {i} has parent {t.parent} >= its own index; "
                    "tasks must be listed in spawn order"
                )

    @property
    def total_work(self) -> float:
        return float(sum(t.cost for t in self.tasks))

    @property
    def num_roots(self) -> int:
        return sum(1 for t in self.tasks if t.parent == -1)


TraceRecord = ParallelForRecord | SequentialRecord | TaskDAGRecord


def static_chunk_maxima(
    item_work: np.ndarray,
    thread_counts: Sequence[int] = STANDARD_THREAD_COUNTS,
) -> Dict[int, float]:
    """Max contiguous-chunk work when splitting items across p threads.

    Models OpenMP ``schedule(static)``: thread ``t`` of ``p`` gets the
    ``t``-th contiguous block of items.  For scale-free graphs the
    block containing the hubs dominates — the imbalance Section 4.3
    fixes with dynamic scheduling.
    """
    item_work = np.asarray(item_work, dtype=np.float64)
    n = item_work.shape[0]
    if n == 0:
        return {int(p): 0.0 for p in thread_counts}
    csum = np.concatenate(([0.0], np.cumsum(item_work)))
    out: Dict[int, float] = {}
    for p in thread_counts:
        bounds = np.linspace(0, n, int(p) + 1).round().astype(np.int64)
        chunk_sums = csum[bounds[1:]] - csum[bounds[:-1]]
        out[int(p)] = float(chunk_sums.max())
    return out


class WorkTrace:
    """An append-only sequence of trace records with phase accounting."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    # -- recording -----------------------------------------------------
    def parallel_for(
        self,
        phase: str,
        *,
        work: float,
        items: int,
        schedule: str = "dynamic",
        item_work: np.ndarray | None = None,
    ) -> None:
        """Record a data-parallel region.

        Pass ``item_work`` (per-item work array) for *static* regions
        with skewed items so the imbalance floor can be simulated.
        """
        chunk_max: Dict[int, float] = {}
        if schedule == "static" and item_work is not None:
            chunk_max = static_chunk_maxima(item_work)
        self._records.append(
            ParallelForRecord(
                phase=phase,
                work=float(work),
                items=int(items),
                schedule=schedule,
                static_chunk_max=chunk_max,
            )
        )

    def sequential(self, phase: str, *, work: float) -> None:
        self._records.append(SequentialRecord(phase=phase, work=float(work)))

    def task_dag(
        self, phase: str, tasks: Sequence[Task], *, queue_k: int = 1
    ) -> None:
        self._records.append(
            TaskDAGRecord(phase=phase, tasks=tuple(tasks), queue_k=queue_k)
        )

    # -- access ----------------------------------------------------------
    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        return tuple(self._records)

    def phases(self) -> list[str]:
        """Distinct phase labels in first-appearance order."""
        seen: dict[str, None] = {}
        for r in self._records:
            seen.setdefault(r.phase)
        return list(seen)

    def total_work(self) -> float:
        """Total work in the trace (edge-units) — the p=∞ lower bound
        on compute, and the p=1 execution time (minus overheads)."""
        total = 0.0
        for r in self._records:
            if isinstance(r, TaskDAGRecord):
                total += r.total_work
            else:
                total += r.work
        return total

    def phase_work(self) -> Dict[str, float]:
        """Work per phase label."""
        out: Dict[str, float] = {}
        for r in self._records:
            w = r.total_work if isinstance(r, TaskDAGRecord) else r.work
            out[r.phase] = out.get(r.phase, 0.0) + w
        return out

    def merged(self, other: "WorkTrace") -> "WorkTrace":
        """Concatenate two traces (used when composing algorithms)."""
        t = WorkTrace()
        t._records = list(self._records) + list(other._records)
        return t
