"""Supervised process backend: fault-tolerant phase-2 execution.

The plain process backend (:mod:`repro.runtime.mp_backend`) is correct
but fragile: ``multiprocessing.Pool`` silently respawns a crashed
worker and never completes its lost result, so a single worker death
or hung task wedges the whole run.  This module wraps the same task
kernel in a supervisor that makes the phase survive:

* **per-task deadlines** — every result wait is bounded; a worker that
  crashes or hangs surfaces as a timeout instead of a deadlock;
* **liveness checks** — after a deadline expires the pool's worker
  processes are inspected to distinguish *worker death* from *task
  hang*; either way the pool is condemned (a hung worker would keep
  mutating shared memory after we give up on it) and rebuilt;
* **bounded retry with backoff** — failed tasks are repaired and
  re-dispatched up to ``max_task_retries`` times.  Retrying a
  Recur-FWBW task is safe because the supervisor pre-allocates each
  task's colour triple: whatever recolouring a dead attempt leaked
  into shared memory is confined to those three colours and is undone
  by :func:`repair_partition` before the retry (nodes whose SCC commit
  completed stay detached — removing a whole SCC from a partition
  leaves a valid partition);
* **graceful degradation** — when the retry budget is exhausted (or
  verification fails), the state rolls back to a snapshot taken at
  phase entry and the serial driver finishes the phase;
* **self-verifying recovery** — after the phase, structural label
  invariants are always checked; any run that needed recovery (or ran
  under an armed fault plan) is additionally cross-checked against an
  independent Tarjan run, so recovery is proven, not assumed;
* **guaranteed cleanup** — the shared-memory mirror and pool come from
  :mod:`repro.engine.shm` / :mod:`repro.engine.pool` (the same
  plumbing as the plain backend); ephemeral ones are released on every
  exit path including degradation, warm session-owned ones persist for
  the next run.

Telemetry (retries, timeouts, worker deaths, pool rebuilds,
degradation, recovery wall-time) flows into the run's
:class:`~repro.runtime.metrics.ExecutionProfile` counters and is
summarised in the returned :class:`SupervisorReport`.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..engine.pool import WorkerPool, fork_available
from ..engine.shm import SharedStateMirror, arm_worker_context
from ..errors import ReproError
from .faults import FaultPlan
from .mp_backend import _exec_batch_task, _exec_task

__all__ = [
    "SupervisorConfig",
    "SupervisorReport",
    "PoolBrokenError",
    "repair_partition",
    "run_supervised_recur_phase",
]


class PoolBrokenError(ReproError, RuntimeError):
    """The worker pool could not finish the phase within its budgets."""

    exit_code = 16


@dataclass(frozen=True)
class SupervisorConfig:
    """Budgets and policies for the supervised backend."""

    #: per-task result deadline (seconds).
    task_timeout: float = 30.0
    #: how many times one task may fail before the run degrades.
    max_task_retries: int = 2
    #: base of the exponential retry backoff (seconds).
    backoff_base: float = 0.05
    #: extra wait granted to in-flight siblings once a failure is seen.
    grace: float = 0.25
    #: run the structural invariant verifier after the phase.
    verify: bool = True
    #: force the Tarjan cross-check even on clean runs.
    always_cross_check: bool = False
    #: deterministic fault-injection plan (tests/demos only).
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")


@dataclass
class SupervisorReport:
    """What one supervised phase execution observed and did."""

    tasks: int = 0
    retries: int = 0
    timeouts: int = 0
    task_errors: int = 0
    worker_deaths: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False
    verified: bool = False
    cross_checked: bool = False
    recovery_seconds: float = 0.0


@dataclass
class _STask:
    """One supervised work item (master-side bookkeeping)."""

    seq: int
    color: int
    nodes: Optional[np.ndarray]
    parent: int = -1
    attempt: int = 0
    triple: Tuple[int, int, int] = (0, 0, 0)


def _plan_stask_units(batch, policy):
    """Group a generation's :class:`_STask` list into batch units.

    Only first-attempt hybrid tasks within the storm profile batch —
    a retried task always re-runs as a single so
    :func:`repair_partition`'s per-task damage confinement argument
    stays simple.  Units keep generation order and pairwise-distinct
    colours (the multi-source kernel's wave contract).
    """
    units: List = []
    run: List[_STask] = []
    colors: set = set()

    def flush() -> None:
        if len(run) >= policy.min_run:
            units.append(list(run))
        else:
            units.extend(run)
        run.clear()
        colors.clear()

    for t in batch:
        eligible = (
            t.attempt == 0
            and t.nodes is not None
            and (
                policy.max_item_nodes is None
                or t.nodes.size <= policy.max_item_nodes
            )
        )
        if not eligible:
            flush()
            units.append(t)
            continue
        if len(run) >= policy.width or t.color in colors:
            flush()
        run.append(t)
        colors.add(t.color)
    flush()
    return units


def repair_partition(
    color: np.ndarray,
    mark: np.ndarray,
    c: int,
    triple: Tuple[int, int, int],
    nodes: Optional[np.ndarray],
) -> int:
    """Undo the colour damage of a failed task attempt; return #repaired.

    A dead attempt of the task owning colour ``c`` can only have
    recoloured nodes into its pre-allocated ``triple`` (cfw/cbw/cscc).
    Nodes it fully committed are marked and stay detached (their colour
    is forced to ``DONE_COLOR``); every other triple-coloured node is
    returned to ``c``.  The resulting colour class again contains only
    whole SCCs, so re-running FW-BW on it is correct.
    """
    if nodes is not None:
        sel = nodes
        cols = color[sel]
    else:
        sel = None
        cols = color
    hit = (cols == triple[0]) | (cols == triple[1]) | (cols == triple[2])
    idx = np.flatnonzero(hit)
    if sel is not None:
        idx = sel[idx]
    if idx.size == 0:
        return 0
    committed = mark[idx]
    color[idx[committed]] = -1  # DONE_COLOR
    color[idx[~committed]] = c
    return int(idx.size)


def run_supervised_recur_phase(
    state,
    initial: Sequence[Tuple[int, Optional[np.ndarray]]],
    *,
    num_workers: int = 2,
    queue_k: int = 1,
    phase: str = "recur_fwbw",
    pivot_strategy: str = "random",
    config: SupervisorConfig | None = None,
    session=None,
    phase2_batch=None,
) -> SupervisorReport:
    """Drain the phase-2 queue under supervision; always terminates.

    Drop-in replacement for
    :func:`~repro.runtime.mp_backend.run_recur_phase_processes` with
    recovery semantics (see module docstring).  On unrecoverable pool
    failure the state is rolled back and the phase re-runs on the
    serial driver, so the caller always receives a completed phase.

    ``session`` optionally supplies a warm
    :class:`~repro.engine.session.GraphSession` whose persistent mirror
    and forked pool are reused across runs.
    """
    cfg = config or SupervisorConfig()
    report = SupervisorReport()
    profile = state.profile
    snap = state.snapshot()

    def _degrade(reason: str) -> None:
        report.degraded = True
        profile.bump("supervisor_degraded")
        with profile.wall_timer("recovery"):
            state.restore(snap)
            from ..core.recurfwbw import run_recur_phase

            report.tasks = run_recur_phase(
                state,
                initial,
                queue_k=queue_k,
                phase=phase,
                pivot_strategy=pivot_strategy,
                backend="serial",
                phase2_batch=(
                    phase2_batch if phase2_batch is not None else False
                ),
            )
        profile.bump("supervisor_degrade_" + reason)

    if not fork_available():  # pragma: no cover - non-POSIX only
        _degrade("no_fork")
    else:
        try:
            report.tasks = _run_pool_supervised(
                state,
                initial,
                num_workers,
                queue_k,
                phase,
                cfg,
                report,
                session,
                phase2_batch,
            )
        except PoolBrokenError:
            _degrade("pool_broken")

    if cfg.verify:
        # Full verification (density + Tarjan) is only meaningful when
        # the phase resolved everything; a deliberately partial phase
        # (tests seeding a subset) still gets the structural checks.
        complete = state.unfinished() == 0
        cross = complete and (
            cfg.always_cross_check
            or cfg.fault_plan is not None
            or report.degraded
            or report.retries > 0
        )
        try:
            state.check_invariants(
                require_complete=complete, cross_check=cross
            )
        except Exception:
            if report.degraded:
                raise  # serial driver failed verification: a real bug
            # e.g. a poisoned write that completed "successfully" —
            # roll back and redo serially, then re-verify strictly.
            profile.bump("supervisor_verify_failures")
            _degrade("verify_failed")
            state.check_invariants(
                require_complete=complete, cross_check=complete
            )
            cross = complete
        report.verified = True
        report.cross_checked = cross

    report.recovery_seconds = profile.wall_times.get("recovery", 0.0)
    return report


def _supervised_resources(state, num_workers: int, cfg, session):
    """The mirror/pool pair for a supervised run (warm or ephemeral)."""
    from ..core.state import PHASE_RECUR
    from ..kernels import get_backend

    if session is not None:
        mirror, pool = session.executor_resources(
            num_workers=num_workers,
            faults=cfg.fault_plan,
            kernel_backend=get_backend(),
        )
        return mirror, pool, False

    state.graph.in_indptr  # build the transpose before forking
    mirror = SharedStateMirror(state.num_nodes)

    def arm() -> None:
        arm_worker_context(
            state.graph,
            mirror,
            cost=state.cost,
            phase_id=PHASE_RECUR,
            faults=cfg.fault_plan,
            kernel_backend=get_backend(),
        )

    pool = WorkerPool(num_workers, arm=arm)
    try:
        pool.start()
    except BaseException:
        mirror.close()
        raise
    return mirror, pool, True


def _run_pool_supervised(
    state,
    initial: Sequence[Tuple[int, Optional[np.ndarray]]],
    num_workers: int,
    queue_k: int,
    phase: str,
    cfg: SupervisorConfig,
    report: SupervisorReport,
    session=None,
    phase2_batch=None,
) -> int:
    """The supervised pool loop; raises :class:`PoolBrokenError` when
    the retry budget is exhausted."""
    from ..core.state import skip_colour_triple
    from .trace import Task

    profile = state.profile
    mirror, pool, owns = _supervised_resources(
        state, num_workers, cfg, session
    )
    try:
        mirror.load(state)
        color, mark = mirror.color, mirror.mark
        # The master owns colour allocation so it can repair after any
        # failure; workers never touch the shared counter (triples are
        # passed in), but the context key is still required by
        # _exec_task.
        next_color = int(mirror.color_counter.value)

        seq = 0
        tasks: List[Task] = []
        pending: List[_STask] = []
        for c, nd in initial:
            pending.append(_STask(seq=seq, color=c, nodes=nd))
            seq += 1

        policy = phase2_batch
        n_batches = n_batched = 0
        while pending:
            batch, pending = pending, []
            for t in batch:
                # Skip the task's own colour (the BW transition-map
                # contract; see state.skip_colour_triple) — the same
                # sequence every executor allocates.
                t.triple, next_color = skip_colour_triple(
                    next_color, t.color
                )
            units = (
                _plan_stask_units(batch, policy)
                if policy is not None
                else list(batch)
            )
            futures = []
            for u in units:
                if isinstance(u, list):
                    futures.append(
                        (
                            u,
                            pool.apply_async(
                                _exec_batch_task,
                                (
                                    [(t.color, t.nodes) for t in u],
                                    [t.seq for t in u],
                                    0,
                                    [t.triple for t in u],
                                ),
                            ),
                        )
                    )
                    n_batches += 1
                    n_batched += len(u)
                else:
                    futures.append(
                        (
                            u,
                            pool.apply_async(
                                _exec_task,
                                (
                                    u.color,
                                    u.nodes,
                                    u.seq,
                                    u.attempt,
                                    u.triple,
                                ),
                            ),
                        )
                    )

            def commit(t: _STask, children, task_cost, log_entry) -> None:
                nonlocal seq
                idx = len(tasks)
                tasks.append(Task(cost=task_cost, parent=t.parent))
                if log_entry is not None:
                    profile.log_task(*log_entry)
                for c, nd in children:
                    pending.append(
                        _STask(seq=seq, color=c, nodes=nd, parent=idx)
                    )
                    seq += 1

            failed: List[_STask] = []
            broken = False
            for u, fut in futures:
                members = u if isinstance(u, list) else [u]
                if broken:
                    # The pool is condemned; only harvest what already
                    # finished (bounded by the grace window below).
                    if not fut.ready():
                        failed.extend(members)
                        continue
                try:
                    res = fut.get(timeout=cfg.task_timeout)
                except mp.TimeoutError:
                    report.timeouts += 1
                    profile.bump("supervisor_timeouts")
                    deaths = pool.dead_workers()
                    if deaths:
                        report.worker_deaths += deaths
                        profile.bump("supervisor_worker_deaths", deaths)
                    # A failed batch unit fails all its members; each
                    # is repaired and retried individually below.
                    failed.extend(members)
                    # A hung worker may still mutate shared state later;
                    # a crashed one broke the pool's result plumbing.
                    # Either way this pool cannot be trusted: give the
                    # in-flight siblings a grace window, then rebuild.
                    time.sleep(cfg.grace)
                    broken = True
                    continue
                except Exception:
                    report.task_errors += 1
                    profile.bump("supervisor_task_errors")
                    failed.extend(members)
                    continue
                if isinstance(u, list):
                    for t, (children, task_cost, log_entry) in zip(
                        u, res
                    ):
                        commit(t, children, task_cost, log_entry)
                else:
                    children, task_cost, log_entry = res
                    commit(u, children, task_cost, log_entry)

            if broken:
                pool.rebuild()
                report.pool_rebuilds += 1
                profile.bump("supervisor_pool_rebuilds")

            if failed:
                with profile.wall_timer("recovery"):
                    for t in failed:
                        if t.attempt >= cfg.max_task_retries:
                            raise PoolBrokenError(
                                f"task {t.seq} failed "
                                f"{t.attempt + 1} times; degrading"
                            )
                        repair_partition(
                            color, mark, t.color, t.triple, t.nodes
                        )
                        t.attempt += 1
                        report.retries += 1
                        profile.bump("supervisor_retries")
                        pending.append(t)
                    time.sleep(
                        cfg.backoff_base
                        * (2 ** max(t.attempt - 1 for t in failed))
                    )

        # Publish the master-owned colour watermark, then copy the
        # shared results back into the state.
        mirror.color_counter.value = next_color
        mirror.flush(state)
        state.trace.task_dag(phase, tasks, queue_k=queue_k)
        profile.bump("recur_tasks", len(tasks))
        if n_batches:
            profile.bump("phase2_batches", n_batches)
            profile.bump("phase2_batched_tasks", n_batched)
        return len(tasks)
    finally:
        if owns:
            pool.terminate()
            mirror.close()
