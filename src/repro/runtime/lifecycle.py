"""Run lifecycle: checkpointed, resumable, deadline-bounded SCC runs.

PR 1 hardened the *task* level (supervised workers, bounded retries);
this layer hardens the *run* level.  A :class:`RunHarness` executes the
Method 1/2 phase plans (:mod:`repro.core.phases`) and, at every phase
boundary, publishes an atomic, CRC-verified checkpoint containing
everything the next phase needs:

* the :class:`~repro.core.state.SCCState` arrays (``color``, ``mark``,
  ``labels``, ``phase_of``) and counters,
* the phase-2 work-queue contents (the ``(color, nodes)`` items),
* the pivot RNG state — restoring it makes a resumed run re-draw the
  exact pivot sequence, so resumed labels are **bit-identical** to an
  uninterrupted run (serial phase-2 driver),
* the run configuration and a CRC fingerprint of the input graph.

A run killed at any point (power loss, OOM killer, SIGKILL) resumes
with ``RunHarness.from_checkpoint(...)`` / ``repro run --resume`` at
the first incomplete phase; a torn or bit-rotted checkpoint is detected
by its CRC and the harness falls back to the newest older checkpoint
that verifies.

Two more run-level defences:

* **per-phase deadlines** — ``phase_timeout`` arms the same SIGALRM
  watchdog machinery the test suite uses, plus a cooperative deadline
  threaded into the phase-2 drivers; a wedged phase raises
  :class:`~repro.errors.PhaseTimeoutError` instead of hanging forever;
* **backend degradation** — when the phase-2 executor fails repeatedly
  (pool broken, fork unavailable, deadline exceeded), the state rolls
  back to the phase entry snapshot and the phase retries on the next
  backend down the chain ``supervised -> processes -> serial``.

Every run finishes with the PR-1 self-verification gate
(:meth:`SCCState.check_invariants`); resumed or degraded runs are
additionally cross-checked against an independent Tarjan run.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..engine.session import GraphSession, graph_fingerprint
from ..errors import CheckpointError, PhaseTimeoutError, ReproError
from ..graph import CSRGraph, load_npz, save_npz
from ..ioutil import atomic_path, crc32_chunks
from .cost import CostModel, DEFAULT_COST_MODEL
from .faults import FaultPlan
from .supervisor import SupervisorConfig

__all__ = [
    "CHECKPOINT_VERSION",
    "DEGRADE_CHAIN",
    "RunReport",
    "RunHarness",
    "load_checkpoint",
    "latest_checkpoint",
    "phase_deadline",
]

PathLike = Union[str, os.PathLike]

CHECKPOINT_VERSION = 1

#: file the input graph is persisted to, once per checkpointed run.
GRAPH_FILENAME = "graph.npz"

#: next backend to try when the phase-2 executor keeps failing — the
#: one degradation ladder, shared with the service circuit breaker
#: (:mod:`repro.service.retry`): supervised -> processes -> serial.
DEGRADE_CHAIN = {
    "supervised": "processes",
    "processes": "serial",
    "threads": "serial",
}
_DEGRADE_CHAIN = DEGRADE_CHAIN

#: checkpointed array payload, in CRC order.
_CKPT_ARRAYS = (
    "color",
    "mark",
    "labels",
    "phase_of",
    "q_colors",
    "q_has_nodes",
    "q_offsets",
    "q_nodes",
)


# ---------------------------------------------------------------------------
# Queue / graph serialization helpers
# ---------------------------------------------------------------------------
#: the graph identity in checkpoints is the same CRC fingerprint the
#: engine keys its session cache by (one definition, one meaning).
_graph_crc = graph_fingerprint


def _serialize_queue(
    queue: Sequence[Tuple[int, Optional[np.ndarray]]]
) -> dict:
    colors = np.array([c for c, _ in queue], dtype=np.int64)
    has_nodes = np.array([nd is not None for _, nd in queue], dtype=bool)
    parts = [
        np.asarray(nd, dtype=np.int64)
        if nd is not None
        else np.empty(0, np.int64)
        for _, nd in queue
    ]
    sizes = np.array([p.size for p in parts], dtype=np.int64)
    offsets = np.concatenate(
        ([0], np.cumsum(sizes, dtype=np.int64))
    )
    nodes = (
        np.concatenate(parts) if parts else np.empty(0, np.int64)
    )
    return {
        "q_colors": colors,
        "q_has_nodes": has_nodes,
        "q_offsets": offsets,
        "q_nodes": nodes,
    }


def _deserialize_queue(
    arrays: Mapping[str, np.ndarray]
) -> List[Tuple[int, Optional[np.ndarray]]]:
    colors = arrays["q_colors"]
    has_nodes = arrays["q_has_nodes"]
    offsets = arrays["q_offsets"]
    nodes = arrays["q_nodes"]
    items: List[Tuple[int, Optional[np.ndarray]]] = []
    for i in range(colors.size):
        if has_nodes[i]:
            items.append(
                (int(colors[i]), nodes[offsets[i]:offsets[i + 1]].copy())
            )
        else:
            items.append((int(colors[i]), None))
    return items


def _supervisor_to_dict(cfg: Optional[SupervisorConfig]) -> Optional[dict]:
    if cfg is None:
        return None
    # fault_plan is a test/demo-only injection channel; deliberately
    # not persisted — a resumed production run must not replay faults.
    return {
        "task_timeout": cfg.task_timeout,
        "max_task_retries": cfg.max_task_retries,
        "backoff_base": cfg.backoff_base,
        "grace": cfg.grace,
        "verify": cfg.verify,
        "always_cross_check": cfg.always_cross_check,
    }


def _supervisor_from_dict(d: Optional[dict]) -> Optional[SupervisorConfig]:
    return None if d is None else SupervisorConfig(**d)


# ---------------------------------------------------------------------------
# Checkpoint files
# ---------------------------------------------------------------------------
def _save_checkpoint_file(
    path: PathLike, arrays: Mapping[str, np.ndarray], meta: dict
) -> None:
    meta_json = json.dumps(meta, sort_keys=True)
    crc = crc32_chunks(
        *(np.ascontiguousarray(arrays[k]).tobytes() for k in _CKPT_ARRAYS),
        meta_json.encode(),
    )
    with atomic_path(path, suffix=".npz") as tmp:
        np.savez_compressed(
            tmp,
            meta=np.array(meta_json),
            crc=np.array(crc, dtype=np.uint32),
            **{k: arrays[k] for k in _CKPT_ARRAYS},
        )


def load_checkpoint(path: PathLike) -> Tuple[dict, dict]:
    """Load and CRC-verify one checkpoint -> ``(arrays, meta)``.

    Raises :class:`~repro.errors.CheckpointError` on any defect:
    unreadable archive, missing payload, CRC mismatch (torn write /
    bit rot), or an incompatible format version.
    """
    try:
        data = np.load(os.fspath(path), allow_pickle=False)
    except FileNotFoundError:
        raise CheckpointError("checkpoint does not exist", path=path)
    except Exception as exc:
        raise CheckpointError(
            f"unreadable checkpoint archive ({exc})", path=path
        ) from exc
    with data:
        missing = [
            k
            for k in _CKPT_ARRAYS + ("meta", "crc")
            if k not in data.files
        ]
        if missing:
            raise CheckpointError(
                f"checkpoint missing array(s) {missing}", path=path
            )
        try:
            arrays = {k: data[k] for k in _CKPT_ARRAYS}
            meta_json = str(data["meta"][()])
            stored_crc = int(data["crc"][()])
        except Exception as exc:
            raise CheckpointError(
                f"corrupt checkpoint payload ({exc})", path=path
            ) from exc
    crc = crc32_chunks(
        *(np.ascontiguousarray(arrays[k]).tobytes() for k in _CKPT_ARRAYS),
        meta_json.encode(),
    )
    if crc != stored_crc:
        raise CheckpointError(
            f"CRC mismatch (stored {stored_crc:#010x}, computed "
            f"{crc:#010x}): torn write or bit rot",
            path=path,
        )
    meta = json.loads(meta_json)
    if meta.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {meta.get('version')!r} "
            f"(this build reads version {CHECKPOINT_VERSION})",
            path=path,
        )
    return arrays, meta


def latest_checkpoint(
    where: PathLike,
) -> Tuple[str, dict, dict]:
    """Find the newest *valid* checkpoint -> ``(path, arrays, meta)``.

    ``where`` may be a single checkpoint file or a checkpoint
    directory.  Corrupt candidates are skipped (the harness falls back
    to the newest older checkpoint that verifies); if nothing
    verifies, the raised :class:`CheckpointError` lists every
    candidate's defect.
    """
    where = os.fspath(where)
    if os.path.isdir(where):
        candidates = sorted(
            os.path.join(where, f)
            for f in os.listdir(where)
            if f.endswith(".ckpt.npz")
        )
    else:
        candidates = [where]
    if not candidates:
        raise CheckpointError("no checkpoint files found", path=where)
    best: Optional[Tuple[int, str, dict, dict]] = None
    defects: List[str] = []
    for path in candidates:
        try:
            arrays, meta = load_checkpoint(path)
        except CheckpointError as exc:
            defects.append(str(exc))
            continue
        key = int(meta["phase_index"])
        if best is None or key > best[0]:
            best = (key, path, arrays, meta)
    if best is None:
        raise CheckpointError(
            "no valid checkpoint among candidates: " + "; ".join(defects),
            path=where,
        )
    return best[1], best[2], best[3]


# ---------------------------------------------------------------------------
# Phase deadline watchdog
# ---------------------------------------------------------------------------
@contextmanager
def phase_deadline(seconds: Optional[float], phase: str):
    """SIGALRM watchdog bounding one unit of work (same machinery as
    the test suite's deadlock guard); raises
    :class:`~repro.errors.PhaseTimeoutError` labelled ``phase`` on
    expiry.  Shared by the run harness (per-phase deadlines), the batch
    runner (per-job deadlines) and the serve daemon (per-request
    deadlines).  No-op when unavailable (non-POSIX or a non-main
    thread) — the cooperative ``ctx['deadline']`` bound still covers
    the phase-2 drivers there."""
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _timed_out(signum, frame):
        raise PhaseTimeoutError(phase, seconds)

    old_handler = signal.signal(signal.SIGALRM, _timed_out)
    old_timer = signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, *old_timer)
        signal.signal(signal.SIGALRM, old_handler)


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------
@dataclass
class RunReport:
    """What one harnessed run (or resumption) observed and did."""

    method: str
    phases_run: List[str] = field(default_factory=list)
    checkpoints: List[str] = field(default_factory=list)
    resumed_from: Optional[str] = None
    resumed_phase: Optional[str] = None
    #: backend the recur phase finally ran on (None = as requested).
    degraded_to: Optional[str] = None
    degradations: int = 0
    verified: bool = False
    cross_checked: bool = False


class RunHarness:
    """Checkpointed, resumable executor for the Method 1/2 pipelines.

    Parameters mirror :func:`strongly_connected_components` for the
    covered methods; the lifecycle-specific ones are:

    checkpoint_dir:
        Directory to persist phase-boundary checkpoints (plus the
        input graph, once) into.  ``None`` disables persistence.
    phase_timeout:
        Per-phase wall-clock deadline in seconds (None = unbounded).
    fault_plan:
        Deterministic boundary fault injection (site ``"phase"``,
        index = phase position): tests/demos kill or fail the run at
        exact phase boundaries.
    phase_hook:
        ``hook(phase_name, stage)`` called at ``"pre"`` (phase entry),
        ``"mid"`` (phase done, checkpoint not yet written) and
        ``"post"`` (checkpoint published).  Test instrumentation.
    """

    def __init__(
        self,
        method: str = "method2",
        *,
        seed: int | None = 0,
        cost: CostModel = DEFAULT_COST_MODEL,
        checkpoint_dir: Optional[PathLike] = None,
        phase_timeout: Optional[float] = None,
        backend: str = "serial",
        num_threads: int = 4,
        supervisor: Optional[SupervisorConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        phase_hook: Optional[Callable[[str, str], None]] = None,
        verify: bool = True,
        **method_kwargs,
    ) -> None:
        if method not in ("method1", "method2"):
            raise ValueError(
                "RunHarness covers the paper pipelines 'method1' and "
                f"'method2', not {method!r}"
            )
        self.method = method
        self.seed = seed
        self.cost = cost
        self.checkpoint_dir = (
            os.fspath(checkpoint_dir) if checkpoint_dir is not None else None
        )
        if phase_timeout is not None and phase_timeout <= 0:
            raise ValueError("phase_timeout must be positive")
        self.phase_timeout = phase_timeout
        self.backend = backend
        self.num_threads = num_threads
        self.supervisor = supervisor
        self.fault_plan = fault_plan
        self.phase_hook = phase_hook
        self.verify = verify
        self.method_kwargs = dict(method_kwargs)
        if self.checkpoint_dir is not None:
            try:
                json.dumps(self.method_kwargs)
            except TypeError as exc:
                raise ValueError(
                    "checkpointed runs require JSON-serializable method "
                    f"kwargs ({exc})"
                ) from exc
        self.report: Optional[RunReport] = None

    # -- construction from a checkpoint --------------------------------
    @classmethod
    def from_checkpoint(cls, ckpt: PathLike, **overrides) -> "RunHarness":
        """Rebuild a harness from a checkpoint's recorded configuration.

        ``overrides`` replace recorded settings (e.g. a different
        ``checkpoint_dir`` or ``backend``).  Pair with :meth:`resume`::

            harness = RunHarness.from_checkpoint("ckpts/")
            result = harness.resume("ckpts/")
        """
        _, _, meta = latest_checkpoint(ckpt)
        where = os.fspath(ckpt)
        ckpt_dir = where if os.path.isdir(where) else os.path.dirname(where)
        params = dict(
            seed=meta["seed"],
            checkpoint_dir=ckpt_dir,
            phase_timeout=meta.get("phase_timeout"),
            backend=meta["backend"],
            num_threads=meta["num_threads"],
            supervisor=_supervisor_from_dict(meta.get("supervisor")),
            **meta["config"],
        )
        params.update(overrides)
        return cls(meta["method"], **params)

    # -- plan -----------------------------------------------------------
    def _plan(self):
        from ..core.method1 import method1_phases
        from ..core.method2 import method2_phases

        factory = {
            "method1": method1_phases,
            "method2": method2_phases,
        }[self.method]
        return factory(
            backend=self.backend,
            num_threads=self.num_threads,
            supervisor=self.supervisor,
            **self.method_kwargs,
        )

    # -- entry points ---------------------------------------------------
    def _session_of(
        self, g: Union[CSRGraph, GraphSession]
    ) -> Tuple[GraphSession, bool]:
        """Resolve the warm session this run executes on.

        A caller-supplied :class:`~repro.engine.session.GraphSession`
        (e.g. from an :class:`~repro.engine.Engine`) is borrowed — its
        pools and caches survive this run.  A bare graph gets an
        ephemeral session the harness tears down afterwards.
        """
        if isinstance(g, GraphSession):
            return g, False
        return GraphSession(g, cost=self.cost), True

    def run(self, g: Union[CSRGraph, GraphSession]):
        """Execute the pipeline from scratch; returns the
        :class:`~repro.core.result.SCCResult` (see ``self.report`` for
        lifecycle telemetry).

        ``g`` may be a graph or a warm
        :class:`~repro.engine.session.GraphSession`; with a session,
        the process executors reuse its cached transpose, shared
        mirror and forked worker pool.
        """
        from ..core.state import SCCState

        session, owns = self._session_of(g)
        g = session.graph
        plan = self._plan()
        self.report = RunReport(method=self.method)
        if self.checkpoint_dir is not None:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
            save_npz(g, os.path.join(self.checkpoint_dir, GRAPH_FILENAME))
        state = SCCState(g, seed=self.seed, cost=self.cost)
        try:
            return self._execute(
                g, state, {"session": session}, plan, 0
            )
        finally:
            if owns:
                session.close()

    def resume(
        self, ckpt: PathLike, g: CSRGraph | GraphSession | None = None
    ):
        """Pick the run up at the first incomplete phase.

        ``ckpt`` is a checkpoint file or directory; with ``g=None``
        the input graph is reloaded from the ``graph.npz`` persisted
        beside the checkpoints.  The graph's CRC fingerprint (the same
        value the engine keys its session cache by), the method, and
        the phase plan must match what the checkpoint recorded —
        resuming against different data is refused, not silently
        wrong.  Like :meth:`run`, ``g`` may be a warm
        :class:`~repro.engine.session.GraphSession`.
        """
        from ..core.state import SCCState, StateSnapshot

        path, arrays, meta = latest_checkpoint(ckpt)
        if meta["method"] != self.method:
            raise CheckpointError(
                f"checkpoint is a {meta['method']!r} run but this "
                f"harness is configured for {self.method!r}",
                path=path,
            )
        if g is None:
            gpath = os.path.join(
                os.path.dirname(path), GRAPH_FILENAME
            )
            if not os.path.exists(gpath):
                raise CheckpointError(
                    f"no {GRAPH_FILENAME} beside the checkpoint; pass "
                    "the input graph explicitly",
                    path=path,
                )
            g = load_npz(gpath)
        session, owns = self._session_of(g)
        g = session.graph
        # Compare the *actual* arrays being resumed against, not the
        # session's base fingerprint: a mutable session serves a merged
        # snapshot whose CRC diverges from the frozen base the moment
        # an update lands.
        if _graph_crc(g) != meta["graph_crc"]:
            if owns:
                session.close()
            raise CheckpointError(
                "input graph does not match the checkpointed run "
                "(CRC fingerprint mismatch)",
                path=path,
            )
        if session.mutable and session.version != meta.get(
            "graph_version", 0
        ):
            if owns:
                session.close()
            raise CheckpointError(
                f"checkpoint was taken at graph version "
                f"{meta.get('graph_version', 0)} but the session has "
                f"advanced to version {session.version}; a stale "
                "checkpoint cannot be resumed against mutated state",
                path=path,
            )
        try:
            plan = self._plan()
            if [ph.name for ph in plan] != list(meta["plan"]):
                raise CheckpointError(
                    f"phase plan mismatch: checkpoint has {meta['plan']}, "
                    f"current configuration builds "
                    f"{[ph.name for ph in plan]}",
                    path=path,
                )

            state = SCCState(g, seed=self.seed, cost=self.cost)
            state.restore(
                StateSnapshot(
                    color=np.ascontiguousarray(arrays["color"], np.int64),
                    mark=np.ascontiguousarray(arrays["mark"], bool),
                    labels=np.ascontiguousarray(arrays["labels"], np.int64),
                    phase_of=np.ascontiguousarray(
                        arrays["phase_of"], np.int8
                    ),
                    next_color=int(meta["next_color"]),
                    num_sccs=int(meta["num_sccs"]),
                )
            )
            state.set_rng_state(meta["rng_state"])
            ctx: dict = {"session": session}
            if meta["has_queue"]:
                ctx["queue"] = _deserialize_queue(arrays)
            if meta.get("ctx_backend"):
                ctx["backend"] = meta["ctx_backend"]

            start = int(meta["phase_index"]) + 1
            self.report = RunReport(
                method=self.method,
                resumed_from=path,
                resumed_phase=(
                    plan[start].name if start < len(plan) else None
                ),
                degraded_to=meta.get("ctx_backend"),
            )
            return self._execute(g, state, ctx, plan, start)
        finally:
            if owns:
                session.close()

    # -- internals ------------------------------------------------------
    def _fire(self, index: int, name: str, stage: str) -> None:
        if self.fault_plan is not None:
            self.fault_plan.fire("phase", index, stage=stage)
        if self.phase_hook is not None:
            self.phase_hook(name, stage)

    def _save_checkpoint(
        self, state, ctx, plan, phase_index: int, graph_crc: int
    ) -> str:
        queue = ctx.get("queue")
        arrays = {
            "color": state.color,
            "mark": state.mark,
            "labels": state.labels,
            "phase_of": state.phase_of,
        }
        arrays.update(_serialize_queue(queue if queue is not None else []))
        meta = {
            "version": CHECKPOINT_VERSION,
            "method": self.method,
            "phase_index": phase_index,
            "phase_name": plan[phase_index].name,
            "plan": [ph.name for ph in plan],
            "num_sccs": int(state.num_sccs),
            "next_color": int(state.color_watermark()),
            "rng_state": state.rng_state(),
            # graph_crc doubles as the engine's session fingerprint
            # (one identity, two consumers — see engine.session).
            "graph_crc": graph_crc,
            # Mutation epoch of the session the run executed on; 0 for
            # frozen graphs.  Resume refuses a checkpoint whose epoch
            # no longer matches a mutable session (version fencing).
            "graph_version": (
                ctx["session"].version if ctx.get("session") else 0
            ),
            "has_queue": queue is not None,
            "ctx_backend": ctx.get("backend"),
            "seed": self.seed,
            "backend": self.backend,
            "num_threads": self.num_threads,
            "phase_timeout": self.phase_timeout,
            "supervisor": _supervisor_to_dict(self.supervisor),
            "config": self.method_kwargs,
            "kernels": self._kernel_backend(),
        }
        path = os.path.join(
            self.checkpoint_dir,
            f"phase-{phase_index:02d}-{plan[phase_index].name}.ckpt.npz",
        )
        _save_checkpoint_file(path, arrays, meta)
        return path

    @staticmethod
    def _kernel_backend() -> str:
        from ..kernels import backend_info

        return str(backend_info()["resolved"])

    def _execute(self, g, state, ctx, plan, start: int):
        from ..core.result import SCCResult

        report = self.report
        graph_crc = _graph_crc(g)
        profile = state.profile
        for i in range(start, len(plan)):
            ph = plan[i]
            self._fire(i, ph.name, "pre")
            while True:
                snap = state.snapshot()
                rng = state.rng_state()
                queue_before = ctx.get("queue")
                if self.phase_timeout is not None:
                    ctx["deadline"] = (
                        time.monotonic() + self.phase_timeout
                    )
                # The threads backend shares the state arrays with its
                # workers; only its cooperative deadline (which joins
                # the workers before raising) may interrupt it.  The
                # SIGALRM watchdog covers everything else.
                alarm = self.phase_timeout
                if (
                    ph.uses_backend
                    and ctx.get("backend", self.backend) == "threads"
                ):
                    alarm = None
                try:
                    with phase_deadline(alarm, ph.name):
                        with profile.wall_timer(ph.timer):
                            ph.fn(state, ctx)
                    break
                except Exception as exc:
                    backend_now = ctx.get("backend", self.backend)
                    degraded = (
                        _DEGRADE_CHAIN.get(backend_now)
                        if ph.uses_backend
                        else None
                    )
                    if degraded is None:
                        raise
                    # Roll back everything the failed attempt touched
                    # and retry the phase on the next backend down.
                    state.restore(snap)
                    state.set_rng_state(rng)
                    if queue_before is not None:
                        ctx["queue"] = queue_before
                    ctx["backend"] = degraded
                    report.degradations += 1
                    report.degraded_to = degraded
                    profile.bump("lifecycle_degradations")
                    profile.bump(
                        "lifecycle_degrade_"
                        + type(exc).__name__.lower()
                    )
                finally:
                    ctx.pop("deadline", None)
            report.phases_run.append(ph.name)
            self._fire(i, ph.name, "mid")
            if self.checkpoint_dir is not None:
                with profile.wall_timer("checkpoint"):
                    path = self._save_checkpoint(
                        state, ctx, plan, i, graph_crc
                    )
                report.checkpoints.append(path)
                profile.bump("lifecycle_checkpoints")
            self._fire(i, ph.name, "post")

        state.check_done()
        if self.verify:
            cross = (
                report.degradations > 0
                or report.resumed_from is not None
                or self.fault_plan is not None
            )
            state.check_invariants(
                require_complete=True, cross_check=cross
            )
            report.verified = True
            report.cross_checked = cross
        return SCCResult(
            labels=state.labels,
            method=self.method,
            profile=profile,
            phase_of=state.phase_of,
        )
