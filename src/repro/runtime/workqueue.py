"""A real (threaded) two-level work queue.

This is the executable counterpart of the simulated scheduler: the same
global-queue + per-thread-local-queue policy from Section 4.3, built on
:mod:`threading`.  Under CPython's GIL it yields no speedup — which is
precisely the hardware gate this reproduction documents (DESIGN.md §2)
— but it executes the *same* concurrent code path as the paper's
OpenMP implementation: local pops without locking (thread-confined
deques), batched global fetches of K, spills at 2K, and idle-based
termination detection.  The test suite runs the phase-2 Recur-FWBW
under this queue to validate that the algorithm is correct under real
concurrent interleavings, not just in the serial driver.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from ..errors import PhaseTimeoutError
from . import faults as _faults

__all__ = ["QueueTelemetry", "TwoLevelWorkQueue"]


@dataclass
class QueueTelemetry:
    """Observed queue behaviour of one :meth:`TwoLevelWorkQueue.run`."""

    tasks: int = 0
    max_global_depth: int = 0
    global_accesses: int = 0
    per_worker_tasks: list[int] = field(default_factory=list)
    #: tasks whose callback raised (dropped in ``on_error="record"``).
    failed: int = 0
    #: the exceptions those tasks raised, in completion order.
    errors: list[BaseException] = field(default_factory=list)


class TwoLevelWorkQueue:
    """Two-level work queue (global + per-worker local, batch size K).

    Parameters
    ----------
    num_workers:
        Worker thread count.
    k:
        Batch size: workers fetch up to ``k`` items from the global
        queue at a time, and spill ``k`` items back when their local
        queue reaches ``2k`` (Section 4.3).
    on_error:
        ``"raise"`` (default): the first callback exception stops the
        queue and re-raises after all workers exit.  ``"record"``: the
        failing task is dropped, its exception appended to
        ``QueueTelemetry.errors``, and the queue keeps draining —
        termination detection stays exact either way (a failed task
        never wedges the idle-based exit).
    """

    def __init__(
        self, num_workers: int, k: int = 1, *, on_error: str = "raise"
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if k < 1:
            raise ValueError("k must be >= 1")
        if on_error not in ("raise", "record"):
            raise ValueError(f"bad on_error {on_error!r}")
        self.num_workers = num_workers
        self.k = k
        self.on_error = on_error

    def run(
        self,
        initial: Iterable[Any],
        process: Callable[[Any], Iterable[Any] | None],
        *,
        deadline: Optional[float] = None,
        phase: str = "workqueue",
    ) -> QueueTelemetry:
        """Drain the queue: ``process(item)`` may return child items.

        Blocks until every item (including spawned children) has been
        processed.  Exceptions raised by ``process`` propagate after
        all workers stop.

        ``deadline`` (absolute ``time.monotonic()`` value) bounds the
        drain: once it passes, workers stop picking up work and the
        call raises :class:`~repro.errors.PhaseTimeoutError` after all
        workers exit — the run-lifecycle layer turns that into backend
        degradation or a typed CLI failure instead of a silent hang.
        """
        start = time.monotonic()
        global_q: deque[Any] = deque(initial)
        lock = threading.Lock()
        work_available = threading.Condition(lock)
        pending = len(global_q)  # items enqueued anywhere, not yet done
        telemetry = QueueTelemetry(
            max_global_depth=len(global_q),
            per_worker_tasks=[0] * self.num_workers,
        )
        errors: list[BaseException] = []
        done = threading.Event()
        timed_out = threading.Event()
        if pending == 0:
            return telemetry
        # Fault-injection hook: one global read; None in normal runs.
        plan = _faults.active_plan()
        seq_counter = itertools.count() if plan is not None else None

        def worker(wid: int) -> None:
            nonlocal pending
            local: deque[Any] = deque()
            while True:
                if deadline is not None and time.monotonic() >= deadline:
                    with work_available:
                        timed_out.set()
                        done.set()
                        work_available.notify_all()
                    return
                if local:
                    item = local.popleft()
                else:
                    with work_available:
                        while not global_q and not done.is_set():
                            if deadline is None:
                                work_available.wait()
                                continue
                            remaining = deadline - time.monotonic()
                            if remaining <= 0:
                                timed_out.set()
                                done.set()
                                work_available.notify_all()
                                return
                            work_available.wait(remaining)
                        if done.is_set() and not global_q:
                            return
                        take = min(self.k, len(global_q))
                        for _ in range(take):
                            local.append(global_q.popleft())
                        telemetry.global_accesses += 1
                    item = local.popleft()
                try:
                    if plan is not None:
                        seq = next(seq_counter)
                        plan.fire("queue", seq, stage="pre", thread_site=True)
                        children = process(item)
                        plan.fire("queue", seq, stage="post", thread_site=True)
                    else:
                        children = process(item)
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    with work_available:
                        telemetry.failed += 1
                        telemetry.errors.append(exc)
                        if self.on_error == "raise":
                            errors.append(exc)
                            done.set()
                            work_available.notify_all()
                            return
                        # "record": drop the task but account for it, so
                        # idle-based termination detection stays exact.
                        pending -= 1
                        if pending == 0:
                            done.set()
                            work_available.notify_all()
                        if done.is_set() and not local and not global_q:
                            return
                    continue
                telemetry.per_worker_tasks[wid] += 1
                spawned = list(children) if children else []
                spill: list[Any] = []
                for c in spawned:
                    local.append(c)
                    if len(local) >= 2 * self.k:
                        for _ in range(self.k):
                            spill.append(local.popleft())
                with work_available:
                    telemetry.tasks += 1
                    pending += len(spawned) - 1
                    if spill:
                        global_q.extend(spill)
                        telemetry.global_accesses += 1
                        work_available.notify_all()
                    telemetry.max_global_depth = max(
                        telemetry.max_global_depth, len(global_q)
                    )
                    if pending == 0:
                        done.set()
                        work_available.notify_all()
                    if done.is_set() and not local and not global_q:
                        return

        threads = [
            threading.Thread(target=worker, args=(w,), daemon=True)
            for w in range(self.num_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        if timed_out.is_set():
            raise PhaseTimeoutError(phase, time.monotonic() - start)
        if pending != 0:  # pragma: no cover - invariant check
            raise RuntimeError(f"work queue exited with {pending} pending items")
        return telemetry
