"""The simulated shared-memory multiprocessor.

Models the paper's evaluation machine — two Intel Xeon E5-2660 sockets,
8 cores per socket, 2-way SMT (32 hardware threads) — as a throughput
curve plus synchronization overheads, and replays a
:class:`~repro.runtime.trace.WorkTrace` on it for any thread count.

The model deliberately captures the three effects the paper calls out
in Section 5:

* **NUMA knee (8 -> 16 threads):** threads placed on the second socket
  run at ``numa_eff`` relative efficiency (remote memory accesses).
* **SMT knee (16 -> 32 threads):** hardware threads sharing a core add
  only ``smt_eff`` of a core each.
* **Synchronization floor:** every parallel region (each trim sweep,
  each BFS level, each WCC iteration) pays a barrier cost that grows
  with the thread count, so phases made of many tiny regions — BFS on
  the high-diameter CA-road graph — stop scaling (Section 5's
  "level-synchronous BFS does not scale up well in such graphs").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from .cost import CostModel, DEFAULT_COST_MODEL
from .scheduler import QueueStats, simulate_task_dag
from .trace import (
    ParallelForRecord,
    SequentialRecord,
    TaskDAGRecord,
    WorkTrace,
)

__all__ = ["MachineConfig", "SimResult", "Machine", "PAPER_MACHINE"]


@dataclass(frozen=True)
class MachineConfig:
    """Topology and overhead constants of the simulated machine."""

    sockets: int = 2
    cores_per_socket: int = 8
    smt: int = 2
    #: relative per-thread efficiency once threads span two sockets.
    numa_eff: float = 0.85
    #: relative per-thread efficiency of the second SMT lane of a core.
    smt_eff: float = 0.55
    #: barrier cost per parallel region (edge-units), fixed part.
    sync_base: float = 150.0
    #: barrier cost per parallel region, per participating thread.
    sync_per_thread: float = 10.0
    #: cost of one global work-queue access (fetch or spill).
    queue_global_access: float = 30.0
    #: cost of one local (per-thread) queue operation.
    queue_local_op: float = 3.0
    #: cost of spawning one child task.
    task_spawn: float = 8.0
    #: aggregate memory-bandwidth ceiling for data-parallel regions, in
    #: edge-units per unit time (None = compute-bound model).  Graph
    #: kernels are famously bandwidth-bound: once the ceiling is below
    #: the thread-throughput curve, adding cores stops helping long
    #: before the SMT knee (see bench_ablation_bandwidth.py).
    mem_bandwidth_cap: float | None = None

    @property
    def max_threads(self) -> int:
        return self.sockets * self.cores_per_socket * self.smt

    def thread_efficiencies(self) -> np.ndarray:
        """Per-hardware-thread relative speeds, in placement order.

        OpenMP-style placement: fill the first socket's cores, then the
        second socket's cores, then SMT lanes.
        """
        cores = self.cores_per_socket
        effs: list[float] = []
        effs.extend([1.0] * cores)  # socket 0, first SMT lane
        effs.extend([self.numa_eff] * (cores * (self.sockets - 1)))
        smt_lanes = self.sockets * cores * (self.smt - 1)
        effs.extend([self.smt_eff] * smt_lanes)
        return np.array(effs, dtype=np.float64)

    def throughput(self, threads: int) -> float:
        """Aggregate relative speed of the first ``threads`` threads,
        clipped at the memory-bandwidth ceiling when one is set."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        effs = self.thread_efficiencies()
        t = min(threads, effs.shape[0])
        raw = float(effs[:t].sum())
        if self.mem_bandwidth_cap is not None:
            return min(raw, self.mem_bandwidth_cap)
        return raw

    def sync_cost(self, threads: int) -> float:
        """Barrier cost of one parallel region with ``threads`` threads."""
        if threads <= 1:
            return 0.0
        return self.sync_base + self.sync_per_thread * threads


#: The paper's evaluation machine (Section 5).
PAPER_MACHINE = MachineConfig()


@dataclass
class SimResult:
    """Outcome of replaying a trace at a fixed thread count."""

    threads: int
    total_time: float
    phase_times: Dict[str, float] = field(default_factory=dict)
    #: per task-phase queue statistics (max depths, utilization).
    queue_stats: Dict[str, QueueStats] = field(default_factory=dict)

    def phase_fraction(self, phase: str) -> float:
        return self.phase_times.get(phase, 0.0) / self.total_time


class Machine:
    """Replays work traces on a :class:`MachineConfig`."""

    def __init__(
        self,
        config: MachineConfig | None = None,
        cost_model: CostModel | None = None,
    ) -> None:
        self.config = config or PAPER_MACHINE
        self.cost_model = cost_model or DEFAULT_COST_MODEL

    # ------------------------------------------------------------------
    def _parallel_for_time(
        self, rec: ParallelForRecord, threads: int
    ) -> float:
        cfg = self.config
        if rec.work == 0.0 and rec.items == 0:
            return 0.0
        if threads == 1:
            return rec.work
        # Parallelism cannot exceed the number of independent items.
        usable = max(1, min(threads, rec.items if rec.items > 0 else 1))
        compute = rec.work / cfg.throughput(usable)
        if rec.schedule == "static" and rec.static_chunk_max:
            # The slowest static chunk runs on one thread.
            chunk = _chunk_max_for(rec.static_chunk_max, threads)
            compute = max(compute, chunk)
        return compute + cfg.sync_cost(usable)

    def _record_time(self, rec, threads: int) -> tuple[float, QueueStats | None]:
        if isinstance(rec, SequentialRecord):
            return rec.work, None
        if isinstance(rec, ParallelForRecord):
            return self._parallel_for_time(rec, threads), None
        if isinstance(rec, TaskDAGRecord):
            time, stats = simulate_task_dag(rec, threads, self.config)
            return time, stats
        raise TypeError(f"unknown trace record {type(rec).__name__}")

    def simulate(self, trace: WorkTrace, threads: int) -> SimResult:
        """Replay ``trace`` with ``threads`` threads; phases run in order."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if threads > self.config.max_threads:
            raise ValueError(
                f"machine supports at most {self.config.max_threads} threads"
            )
        total = 0.0
        phase_times: Dict[str, float] = {}
        queue_stats: Dict[str, QueueStats] = {}
        for rec in trace:
            t, stats = self._record_time(rec, threads)
            total += t
            phase_times[rec.phase] = phase_times.get(rec.phase, 0.0) + t
            if stats is not None:
                if rec.phase in queue_stats:
                    queue_stats[rec.phase] = queue_stats[rec.phase].merge(stats)
                else:
                    queue_stats[rec.phase] = stats
        return SimResult(
            threads=threads,
            total_time=total,
            phase_times=phase_times,
            queue_stats=queue_stats,
        )

    def sweep(
        self, trace: WorkTrace, thread_counts: Sequence[int]
    ) -> list[SimResult]:
        """Simulate the same trace at several thread counts (Fig. 6 x-axis)."""
        return [self.simulate(trace, p) for p in thread_counts]


def _chunk_max_for(chunk_map: Dict[int, float], threads: int) -> float:
    """Look up (or conservatively interpolate) the static-chunk maximum."""
    if threads in chunk_map:
        return chunk_map[threads]
    keys = sorted(chunk_map)
    # fall back to the nearest smaller precomputed count (its chunks are
    # larger, hence conservative); else the smallest available.
    smaller = [k for k in keys if k < threads]
    return chunk_map[smaller[-1]] if smaller else chunk_map[keys[0]]
