"""Trace serialization: persist work traces as JSON.

Recording a trace takes one full algorithm run; replaying it is
instant.  Serializing traces lets the benches (and downstream users)
separate the two — record once on a big machine, sweep machine models
offline — and gives tests a stable fixture format.
"""

from __future__ import annotations

import json
import os
from typing import Union

from .trace import (
    ParallelForRecord,
    SequentialRecord,
    Task,
    TaskDAGRecord,
    WorkTrace,
)

__all__ = ["trace_to_dict", "trace_from_dict", "save_trace", "load_trace"]

PathLike = Union[str, os.PathLike]

_FORMAT_VERSION = 1


def trace_to_dict(trace: WorkTrace) -> dict:
    """Lossless dict form of a :class:`WorkTrace`."""
    records = []
    for rec in trace:
        if isinstance(rec, ParallelForRecord):
            records.append(
                {
                    "type": "parallel_for",
                    "phase": rec.phase,
                    "work": rec.work,
                    "items": rec.items,
                    "schedule": rec.schedule,
                    "static_chunk_max": {
                        str(k): v for k, v in rec.static_chunk_max.items()
                    },
                }
            )
        elif isinstance(rec, SequentialRecord):
            records.append(
                {"type": "sequential", "phase": rec.phase, "work": rec.work}
            )
        elif isinstance(rec, TaskDAGRecord):
            records.append(
                {
                    "type": "task_dag",
                    "phase": rec.phase,
                    "queue_k": rec.queue_k,
                    "tasks": [[t.cost, t.parent] for t in rec.tasks],
                }
            )
        else:  # pragma: no cover - future-proofing
            raise TypeError(f"unknown record {type(rec).__name__}")
    return {"version": _FORMAT_VERSION, "records": records}


def trace_from_dict(data: dict) -> WorkTrace:
    """Inverse of :func:`trace_to_dict`."""
    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {data.get('version')!r}"
        )
    trace = WorkTrace()
    for rec in data["records"]:
        kind = rec["type"]
        if kind == "parallel_for":
            trace._records.append(
                ParallelForRecord(
                    phase=rec["phase"],
                    work=float(rec["work"]),
                    items=int(rec["items"]),
                    schedule=rec["schedule"],
                    static_chunk_max={
                        int(k): float(v)
                        for k, v in rec["static_chunk_max"].items()
                    },
                )
            )
        elif kind == "sequential":
            trace.sequential(rec["phase"], work=float(rec["work"]))
        elif kind == "task_dag":
            trace.task_dag(
                rec["phase"],
                [Task(cost=float(c), parent=int(p)) for c, p in rec["tasks"]],
                queue_k=int(rec["queue_k"]),
            )
        else:
            raise ValueError(f"unknown record type {kind!r}")
    return trace


def save_trace(trace: WorkTrace, path: PathLike) -> None:
    """Write a trace to a JSON file."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(trace_to_dict(trace), f)


def load_trace(path: PathLike) -> WorkTrace:
    """Read a trace saved by :func:`save_trace`."""
    with open(path, encoding="utf-8") as f:
        return trace_from_dict(json.load(f))
