"""GIL-free execution: phase-2 tasks on worker *processes*.

The calibration note for this reproduction says it plainly: "GIL
blocks shared-memory parallel BFS".  Threads cannot run the paper's
algorithms in parallel under CPython, but processes sharing their
mutable state through :mod:`multiprocessing.shared_memory` can — the
``Color``/``mark``/``labels`` arrays live in a shared segment, worker
processes execute Recur-FWBW tasks against them exactly as the
paper's OpenMP threads would, and the disjoint-partition property
(tasks own disjoint colours) provides the same race freedom.

Scope: the task-parallel phase 2 (where the paper's work queue lives).
Phase 1's data-parallel kernels are single large vectorized NumPy
calls, which already release the GIL internally where it matters.

The shared-memory mirrors, worker-context arming and pool lifecycle
live in :mod:`repro.engine.shm` / :mod:`repro.engine.pool` (shared
with the supervised backend); this module owns only the task kernel
(:func:`_exec_task`) and the plain breadth-first dispatch loop.  A
warm :class:`~repro.engine.session.GraphSession` can supply the mirror
and an already-forked pool, in which case a run pays no shm setup and
no fork at all.

Requires a ``fork`` start method (the read-only CSR graph is inherited
copy-on-write; only the mutable arrays use explicit shared memory).
On this repo's single-core CI box the backend yields no speedup — the
point is that the *code path* is real and tested, not simulated.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..engine.pool import WorkerPool, fork_available
from ..engine.shm import (
    WORKER_CTX,
    SharedStateMirror,
    arm_worker_context,
    shm_array,
)

__all__ = ["run_recur_phase_processes", "fork_available"]

# Historical names, kept importable for existing callers and tests;
# both refer to the canonical objects in repro.engine.shm.
_WORKER_CTX: dict = WORKER_CTX
_shm_array = shm_array


def _exec_task(
    color_value: int,
    nodes: Optional[np.ndarray],
    seq: int = -1,
    attempt: int = 0,
    colors: Optional[Tuple[int, int, int]] = None,
):
    """Run one Recur-FWBW task inside a worker process.

    Reads/writes the shared arrays set up in ``_WORKER_CTX``; returns
    ``(children, task_cost, log_entry)`` to the master.

    ``seq`` is the dispatcher-assigned sequence id (used only to match
    injected faults deterministically), ``attempt`` the retry count,
    and ``colors`` an optional master-allocated ``(cfw, cbw, cscc)``
    triple — the supervisor pre-allocates it so that after a mid-task
    worker death it knows exactly which colours may have leaked into
    the shared array and can repair the partition before retrying.
    """
    ctx = _WORKER_CTX
    g = ctx["graph"]
    color: np.ndarray = ctx["color"]
    mark: np.ndarray = ctx["mark"]
    labels: np.ndarray = ctx["labels"]
    phase_of: np.ndarray = ctx["phase_of"]
    scc_counter = ctx["scc_counter"]
    color_counter = ctx["color_counter"]
    cost = ctx["cost"]
    phase_id = ctx["phase_id"]
    faults = ctx.get("faults")

    from .. import kernels

    backend = ctx.get("kernel_backend")
    if backend is not None:
        # Fork inheritance already carries the parent's choice; setting
        # it explicitly keeps the worker honest even if the pool ever
        # re-execs instead of forking.
        kernels.set_backend(backend)
    dfs_collect_colored = kernels.dfs_collect_colored

    if faults is not None:
        faults.fire("task", seq, stage="pre", attempt=attempt)

    c = color_value
    if nodes is None:
        candidates = np.flatnonzero(color == c)
        select_cost = cost.stream(nodes=color.shape[0])
    else:
        candidates = nodes[color[nodes] == c]
        select_cost = cost.stream(nodes=nodes.size)
    if candidates.size == 0:
        return [], select_cost, None

    pivot = int(candidates[0])  # deterministic within a task
    if colors is None:
        # Same skip-c allocation sequence as every other executor
        # (see state.skip_colour_triple), under the shared counter lock.
        from ..core.state import skip_colour_triple

        with color_counter.get_lock():
            (cfw, cbw, cscc), color_counter.value = skip_colour_triple(
                color_counter.value, c
            )
    else:
        cfw, cbw, cscc = colors

    fw_collected, fw_edges = dfs_collect_colored(
        g.indptr, g.indices, pivot, {c: cfw}, color
    )
    bw_collected, bw_edges = dfs_collect_colored(
        g.in_indptr, g.in_indices, pivot, {c: cbw, cfw: cscc}, color
    )
    if faults is not None:
        # "mid": the partition is recoloured but the SCC not committed.
        faults.fire("task", seq, stage="mid", attempt=attempt)
    scc_nodes = np.asarray(bw_collected[cscc], dtype=np.int64)
    with scc_counter.get_lock():
        sid = scc_counter.value
        scc_counter.value += 1
    labels[scc_nodes] = sid
    mark[scc_nodes] = True
    color[scc_nodes] = -1  # DONE_COLOR
    phase_of[scc_nodes] = phase_id
    if faults is not None and faults.poison("task", seq, attempt):
        # Corrupt the committed label write: detach the pivot from its
        # SCC-mates (or merge a singleton into a foreign SCC) — wrong
        # either way, and only a label-level verifier can tell.
        labels[pivot] = sid + 1 if sid == 0 else sid - 1

    fw_all = np.asarray(fw_collected[cfw], dtype=np.int64)
    fw_only = fw_all[color[fw_all] == cfw]
    bw_only = np.asarray(bw_collected[cbw], dtype=np.int64)
    remain = candidates[color[candidates] == c]
    visited = fw_all.size + bw_only.size + scc_nodes.size
    task_cost = select_cost + cost.dfs(
        nodes=visited, edges=fw_edges + bw_edges
    )
    children = [
        (child_color, child_nodes if nodes is not None else None)
        for child_color, child_nodes in (
            (c, remain),
            (cfw, fw_only),
            (cbw, bw_only),
        )
        if child_nodes.size
    ]
    log_entry = (
        int(scc_nodes.size),
        int(fw_only.size),
        int(bw_only.size),
        int(remain.size),
    )
    if faults is not None:
        # "post": SCC committed; the children are lost with the worker.
        faults.fire("task", seq, stage="post", attempt=attempt)
    return children, task_cost, log_entry


def _dead_workers(pool) -> int:
    """Count dead worker processes in a raw :class:`multiprocessing.Pool`
    (kept for callers holding one; :class:`~repro.engine.pool.WorkerPool`
    exposes the same check as a method)."""
    procs = getattr(pool, "_pool", None) or []
    return sum(1 for p in procs if not p.is_alive())


def _executor_resources(state, num_workers: int, session):
    """The mirror/pool pair for one run: the session's warm pair, or an
    ephemeral one the caller must tear down (``owns=True``)."""
    from ..core.state import PHASE_RECUR
    from ..kernels import get_backend
    from . import faults as _faults

    # A globally installed fault plan (faults.install_plan) rides
    # along; None in normal runs keeps the hook zero-overhead.
    plan = _faults.active_plan()
    if session is not None:
        mirror, pool = session.executor_resources(
            num_workers=num_workers,
            faults=plan,
            kernel_backend=get_backend(),
        )
        return mirror, pool, False

    state.graph.in_indptr  # build the transpose BEFORE forking
    mirror = SharedStateMirror(state.num_nodes)

    def arm() -> None:
        arm_worker_context(
            state.graph,
            mirror,
            cost=state.cost,
            phase_id=PHASE_RECUR,
            faults=plan,
            kernel_backend=get_backend(),
        )

    pool = WorkerPool(num_workers, arm=arm)
    try:
        pool.start()
    except BaseException:
        mirror.close()
        raise
    return mirror, pool, True


def run_recur_phase_processes(
    state,
    initial: Sequence[Tuple[int, Optional[np.ndarray]]],
    *,
    num_workers: int = 2,
    queue_k: int = 1,
    phase: str = "recur_fwbw",
    task_timeout: float | None = 120.0,
    session=None,
) -> int:
    """Drain the phase-2 queue with real worker processes.

    Semantics match the serial/threads drivers in
    :mod:`repro.engine.backends` (and the spawn tree is recorded the
    same way); the mutable state lives in shared memory for the
    duration and is copied back at the end.

    ``session`` optionally supplies a warm
    :class:`~repro.engine.session.GraphSession`: its persistent mirror
    and already-forked pool are reused (no shm creation, no fork), and
    the session keeps them for the next run.  Without a session the
    mirror and pool are ephemeral and torn down on every exit path.

    ``task_timeout`` bounds every result wait: a worker that dies or
    hangs mid-task would otherwise leave ``fut.get()`` blocked forever
    (``multiprocessing.Pool`` silently respawns crashed workers but
    never completes their lost results).  On expiry the run fails with
    a diagnosis of the pool state instead of deadlocking; the
    supervised backend (:mod:`repro.runtime.supervisor`) builds
    retry/degradation on top of this guard.
    """
    if not fork_available():  # pragma: no cover - non-POSIX only
        raise RuntimeError("process backend requires the 'fork' start method")
    from .trace import Task

    mirror, pool, owns = _executor_resources(state, num_workers, session)
    try:
        mirror.load(state)
        tasks: List[Task] = []
        seq = 0  # dispatch sequence id (deterministic fault matching)
        # (parent_index, color, nodes) items; breadth-first dispatch
        pending = [(-1, c, nd) for c, nd in initial]
        while pending:
            batch = pending
            pending = []
            futures = []
            for parent, c, nd in batch:
                futures.append(
                    (parent, pool.apply_async(_exec_task, (c, nd, seq)))
                )
                seq += 1
            for parent, fut in futures:
                try:
                    children, task_cost, log_entry = fut.get(
                        timeout=task_timeout
                    )
                except mp.TimeoutError:
                    dead = pool.dead_workers()
                    diagnosis = (
                        f"{dead} worker(s) died (pool broken)"
                        if dead
                        else "workers alive but task hung"
                    )
                    if not owns:
                        # Condemn the warm pool: a hung worker could
                        # keep mutating the shared mirror.  The session
                        # respawns a fresh pool on its next run.
                        pool.terminate()
                    raise RuntimeError(
                        "phase-2 task did not complete within "
                        f"{task_timeout:.1f}s: {diagnosis}; use the "
                        "'supervised' backend for retry/recovery"
                    ) from None
                idx = len(tasks)
                tasks.append(Task(cost=task_cost, parent=parent))
                if log_entry is not None:
                    state.profile.log_task(*log_entry)
                for c, nd in children:
                    pending.append((idx, c, nd))

        # copy shared results back into the state
        mirror.flush(state)
        state.trace.task_dag(phase, tasks, queue_k=queue_k)
        state.profile.bump("recur_tasks", len(tasks))
        return len(tasks)
    finally:
        if owns:
            pool.terminate()
            mirror.close()
