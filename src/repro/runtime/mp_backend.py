"""GIL-free execution: phase-2 tasks on worker *processes*.

The calibration note for this reproduction says it plainly: "GIL
blocks shared-memory parallel BFS".  Threads cannot run the paper's
algorithms in parallel under CPython, but processes sharing their
mutable state through :mod:`multiprocessing.shared_memory` can — the
``Color``/``mark``/``labels`` arrays live in a shared segment, worker
processes execute Recur-FWBW tasks against them exactly as the
paper's OpenMP threads would, and the disjoint-partition property
(tasks own disjoint colours) provides the same race freedom.

Scope: the task-parallel phase 2 (where the paper's work queue lives).
Phase 1's data-parallel kernels are single large vectorized NumPy
calls, which already release the GIL internally where it matters.

The shared-memory mirrors, worker-context arming and pool lifecycle
live in :mod:`repro.engine.shm` / :mod:`repro.engine.pool` (shared
with the supervised backend); this module owns only the task kernel
(:func:`_exec_task`) and the plain breadth-first dispatch loop.  A
warm :class:`~repro.engine.session.GraphSession` can supply the mirror
and an already-forked pool, in which case a run pays no shm setup and
no fork at all.

Requires a ``fork`` start method (the read-only CSR graph is inherited
copy-on-write; only the mutable arrays use explicit shared memory).
On this repo's single-core CI box the backend yields no speedup — the
point is that the *code path* is real and tested, not simulated.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..engine.pool import WorkerPool, fork_available
from ..engine.shm import (
    WORKER_CTX,
    SharedStateMirror,
    arm_worker_context,
    shm_array,
)

__all__ = ["run_recur_phase_processes", "fork_available"]

# Historical names, kept importable for existing callers and tests;
# both refer to the canonical objects in repro.engine.shm.
_WORKER_CTX: dict = WORKER_CTX
_shm_array = shm_array


def _exec_task(
    color_value: int,
    nodes: Optional[np.ndarray],
    seq: int = -1,
    attempt: int = 0,
    colors: Optional[Tuple[int, int, int]] = None,
):
    """Run one Recur-FWBW task inside a worker process.

    Reads/writes the shared arrays set up in ``_WORKER_CTX``; returns
    ``(children, task_cost, log_entry)`` to the master.

    ``seq`` is the dispatcher-assigned sequence id (used only to match
    injected faults deterministically), ``attempt`` the retry count,
    and ``colors`` an optional master-allocated ``(cfw, cbw, cscc)``
    triple — the supervisor pre-allocates it so that after a mid-task
    worker death it knows exactly which colours may have leaked into
    the shared array and can repair the partition before retrying.
    """
    ctx = _WORKER_CTX
    g = ctx["graph"]
    color: np.ndarray = ctx["color"]
    mark: np.ndarray = ctx["mark"]
    labels: np.ndarray = ctx["labels"]
    phase_of: np.ndarray = ctx["phase_of"]
    scc_counter = ctx["scc_counter"]
    color_counter = ctx["color_counter"]
    cost = ctx["cost"]
    phase_id = ctx["phase_id"]
    faults = ctx.get("faults")

    from .. import kernels

    backend = ctx.get("kernel_backend")
    if backend is not None:
        # Fork inheritance already carries the parent's choice; setting
        # it explicitly keeps the worker honest even if the pool ever
        # re-execs instead of forking.
        kernels.set_backend(backend)
    dfs_collect_colored = kernels.dfs_collect_colored

    if faults is not None:
        faults.fire("task", seq, stage="pre", attempt=attempt)

    c = color_value
    if nodes is None:
        candidates = np.flatnonzero(color == c)
        select_cost = cost.stream(nodes=color.shape[0])
    else:
        candidates = nodes[color[nodes] == c]
        select_cost = cost.stream(nodes=nodes.size)
    if candidates.size == 0:
        return [], select_cost, None

    pivot = int(candidates[0])  # deterministic within a task
    if colors is None:
        # Same skip-c allocation sequence as every other executor
        # (see state.skip_colour_triple), under the shared counter lock.
        from ..core.state import skip_colour_triple

        with color_counter.get_lock():
            (cfw, cbw, cscc), color_counter.value = skip_colour_triple(
                color_counter.value, c
            )
    else:
        cfw, cbw, cscc = colors

    fw_collected, fw_edges = dfs_collect_colored(
        g.indptr, g.indices, pivot, {c: cfw}, color
    )
    bw_collected, bw_edges = dfs_collect_colored(
        g.in_indptr, g.in_indices, pivot, {c: cbw, cfw: cscc}, color
    )
    if faults is not None:
        # "mid": the partition is recoloured but the SCC not committed.
        faults.fire("task", seq, stage="mid", attempt=attempt)
    scc_nodes = np.asarray(bw_collected[cscc], dtype=np.int64)
    with scc_counter.get_lock():
        sid = scc_counter.value
        scc_counter.value += 1
    labels[scc_nodes] = sid
    mark[scc_nodes] = True
    color[scc_nodes] = -1  # DONE_COLOR
    phase_of[scc_nodes] = phase_id
    if faults is not None and faults.poison("task", seq, attempt):
        # Corrupt the committed label write: detach the pivot from its
        # SCC-mates (or merge a singleton into a foreign SCC) — wrong
        # either way, and only a label-level verifier can tell.
        labels[pivot] = sid + 1 if sid == 0 else sid - 1

    fw_all = np.asarray(fw_collected[cfw], dtype=np.int64)
    fw_only = fw_all[color[fw_all] == cfw]
    bw_only = np.asarray(bw_collected[cbw], dtype=np.int64)
    remain = candidates[color[candidates] == c]
    visited = fw_all.size + bw_only.size + scc_nodes.size
    task_cost = select_cost + cost.dfs(
        nodes=visited, edges=fw_edges + bw_edges
    )
    children = [
        (child_color, child_nodes if nodes is not None else None)
        for child_color, child_nodes in (
            (c, remain),
            (cfw, fw_only),
            (cbw, bw_only),
        )
        if child_nodes.size
    ]
    log_entry = (
        int(scc_nodes.size),
        int(fw_only.size),
        int(bw_only.size),
        int(remain.size),
    )
    if faults is not None:
        # "post": SCC committed; the children are lost with the worker.
        faults.fire("task", seq, stage="post", attempt=attempt)
    return children, task_cost, log_entry


def _exec_batch_task(
    specs: Sequence[Tuple[int, Optional[np.ndarray]]],
    seqs: Optional[Sequence[int]] = None,
    attempt: int = 0,
    triples: Optional[Sequence[Tuple[int, int, int]]] = None,
):
    """Run ≤64 Recur-FWBW tasks as one multi-source sweep in a worker.

    The batched twin of :func:`_exec_task`: same shared arrays, same
    counters, same fault hooks (``seqs`` aligns one dispatcher
    sequence id per member so injected faults keep matching), same
    pivot rule (first candidate).  Returns the per-member
    ``(children, task_cost, log_entry)`` list aligned with ``specs``.

    ``triples`` optionally carries master-allocated colour triples per
    member (the supervisor's repair bookkeeping); without it the live
    members draw their triples under one ``color_counter`` lock in the
    same sequential :func:`~repro.core.state.skip_colour_triple` chain
    per-task execution would.
    """
    ctx = _WORKER_CTX
    g = ctx["graph"]
    color: np.ndarray = ctx["color"]
    mark: np.ndarray = ctx["mark"]
    labels: np.ndarray = ctx["labels"]
    phase_of: np.ndarray = ctx["phase_of"]
    scc_counter = ctx["scc_counter"]
    color_counter = ctx["color_counter"]
    cost = ctx["cost"]
    phase_id = ctx["phase_id"]
    faults = ctx.get("faults")
    if seqs is None:
        seqs = [-1] * len(specs)

    from .. import kernels

    backend = ctx.get("kernel_backend")
    if backend is not None:
        kernels.set_backend(backend)
    from ..core.recurfwbw import multi_source_reach
    from ..core.state import skip_colour_triple

    if faults is not None:
        for seq in seqs:
            faults.fire("task", seq, stage="pre", attempt=attempt)

    candidates: List[Optional[np.ndarray]] = []
    select_costs: List[float] = []
    for c, nodes in specs:
        if nodes is None:
            cand = np.flatnonzero(color == c)
            select_costs.append(cost.stream(nodes=color.shape[0]))
        else:
            cand = nodes[color[nodes] == c]
            select_costs.append(cost.stream(nodes=nodes.size))
        candidates.append(cand if cand.size else None)

    results: List = [None] * len(specs)
    live = []
    for i, cand in enumerate(candidates):
        if cand is None:
            results[i] = ([], select_costs[i], None)
        else:
            live.append(i)
    if not live:
        return results

    pivots = np.array(
        [int(candidates[i][0]) for i in live], dtype=np.int64
    )
    live_colors = np.array(
        [specs[i][0] for i in live], dtype=np.int64
    )
    if triples is None:
        with color_counter.get_lock():
            nxt = color_counter.value
            live_triples = []
            for i in live:
                triple, nxt = skip_colour_triple(nxt, specs[i][0])
                live_triples.append(triple)
            color_counter.value = nxt
    else:
        live_triples = [triples[i] for i in live]

    bits, fw_visited, bw_visited = multi_source_reach(
        g.indptr, g.indices, g.in_indptr, g.in_indices,
        color, live_colors, pivots,
    )
    if faults is not None:
        for i in live:
            faults.fire("task", seqs[i], stage="mid", attempt=attempt)

    sizes = np.array(
        [candidates[i].size for i in live], dtype=np.int64
    )
    concat = np.concatenate([candidates[i] for i in live])
    cat = kernels.ms_fwbw_intersect(
        concat, np.repeat(bits, sizes), fw_visited, bw_visited
    )
    counts_out = kernels.segment_counts(g.indptr, concat)
    counts_in = kernels.segment_counts(g.in_indptr, concat)
    bounds = np.zeros(len(live) + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])

    with scc_counter.get_lock():
        base = scc_counter.value
        scc_counter.value += len(live)

    MS_SCC, MS_FW_ONLY, MS_BW_ONLY = (
        kernels.MS_SCC, kernels.MS_FW_ONLY, kernels.MS_BW_ONLY,
    )
    for k, i in enumerate(live):
        lo, hi = bounds[k], bounds[k + 1]
        ck = cat[lo:hi]
        cand = concat[lo:hi]
        scc_nodes = cand[ck == MS_SCC]
        fw_only = cand[ck == MS_FW_ONLY]
        bw_only = cand[ck == MS_BW_ONLY]
        remain = cand[ck > MS_BW_ONLY]
        cfw, cbw, _cscc = live_triples[k]
        sid = base + k
        labels[scc_nodes] = sid
        mark[scc_nodes] = True
        color[scc_nodes] = -1  # DONE_COLOR
        phase_of[scc_nodes] = phase_id
        if faults is not None and faults.poison("task", seqs[i], attempt):
            pivot = int(pivots[k])
            labels[pivot] = sid + 1 if sid == 0 else sid - 1
        color[fw_only] = cfw
        color[bw_only] = cbw
        fw_edges = int(counts_out[lo:hi][ck <= MS_FW_ONLY].sum())
        bw_edges = int(
            counts_in[lo:hi][
                (ck == MS_SCC) | (ck == MS_BW_ONLY)
            ].sum()
        )
        visited = (
            scc_nodes.size + fw_only.size + bw_only.size + scc_nodes.size
        )
        task_cost = select_costs[i] + cost.dfs(
            nodes=visited, edges=fw_edges + bw_edges
        )
        hybrid = specs[i][1] is not None
        children = [
            (child_color, child_nodes if hybrid else None)
            for child_color, child_nodes in (
                (specs[i][0], remain),
                (cfw, fw_only),
                (cbw, bw_only),
            )
            if child_nodes.size
        ]
        log_entry = (
            int(scc_nodes.size),
            int(fw_only.size),
            int(bw_only.size),
            int(remain.size),
        )
        results[i] = (children, task_cost, log_entry)
    if faults is not None:
        for i in live:
            faults.fire("task", seqs[i], stage="post", attempt=attempt)
    return results


def _plan_tuple_batches(pending, policy):
    """Group a generation's ``(parent, color, nodes)`` tuples into
    batch runs and singles — the dispatch-loop twin of
    :func:`~repro.core.recurfwbw.plan_batches`."""
    entries: List[Tuple[str, object]] = []
    run: List = []
    colors: set = set()

    def flush() -> None:
        if len(run) >= policy.min_run:
            entries.append(("batch", list(run)))
        else:
            entries.extend(("single", t) for t in run)
        run.clear()
        colors.clear()

    for t in pending:
        _parent, c, nd = t
        batchable = nd is not None and (
            policy.max_item_nodes is None
            or nd.size <= policy.max_item_nodes
        )
        if not batchable:
            flush()
            entries.append(("single", t))
            continue
        if len(run) >= policy.width or c in colors:
            flush()
        run.append(t)
        colors.add(c)
    flush()
    return entries


def _dead_workers(pool) -> int:
    """Count dead worker processes in a raw :class:`multiprocessing.Pool`
    (kept for callers holding one; :class:`~repro.engine.pool.WorkerPool`
    exposes the same check as a method)."""
    procs = getattr(pool, "_pool", None) or []
    return sum(1 for p in procs if not p.is_alive())


def _executor_resources(state, num_workers: int, session):
    """The mirror/pool pair for one run: the session's warm pair, or an
    ephemeral one the caller must tear down (``owns=True``)."""
    from ..core.state import PHASE_RECUR
    from ..kernels import get_backend
    from . import faults as _faults

    # A globally installed fault plan (faults.install_plan) rides
    # along; None in normal runs keeps the hook zero-overhead.
    plan = _faults.active_plan()
    if session is not None:
        mirror, pool = session.executor_resources(
            num_workers=num_workers,
            faults=plan,
            kernel_backend=get_backend(),
        )
        return mirror, pool, False

    state.graph.in_indptr  # build the transpose BEFORE forking
    mirror = SharedStateMirror(state.num_nodes)

    def arm() -> None:
        arm_worker_context(
            state.graph,
            mirror,
            cost=state.cost,
            phase_id=PHASE_RECUR,
            faults=plan,
            kernel_backend=get_backend(),
        )

    pool = WorkerPool(num_workers, arm=arm)
    try:
        pool.start()
    except BaseException:
        mirror.close()
        raise
    return mirror, pool, True


def run_recur_phase_processes(
    state,
    initial: Sequence[Tuple[int, Optional[np.ndarray]]],
    *,
    num_workers: int = 2,
    queue_k: int = 1,
    phase: str = "recur_fwbw",
    task_timeout: float | None = 120.0,
    session=None,
    phase2_batch=None,
) -> int:
    """Drain the phase-2 queue with real worker processes.

    Semantics match the serial/threads drivers in
    :mod:`repro.engine.backends` (and the spawn tree is recorded the
    same way); the mutable state lives in shared memory for the
    duration and is copied back at the end.

    ``session`` optionally supplies a warm
    :class:`~repro.engine.session.GraphSession`: its persistent mirror
    and already-forked pool are reused (no shm creation, no fork), and
    the session keeps them for the next run.  Without a session the
    mirror and pool are ephemeral and torn down on every exit path.

    ``task_timeout`` bounds every result wait: a worker that dies or
    hangs mid-task would otherwise leave ``fut.get()`` blocked forever
    (``multiprocessing.Pool`` silently respawns crashed workers but
    never completes their lost results).  On expiry the run fails with
    a diagnosis of the pool state instead of deadlocking; the
    supervised backend (:mod:`repro.runtime.supervisor`) builds
    retry/degradation on top of this guard.
    """
    if not fork_available():  # pragma: no cover - non-POSIX only
        raise RuntimeError("process backend requires the 'fork' start method")
    from .trace import Task

    policy = phase2_batch
    mirror, pool, owns = _executor_resources(state, num_workers, session)
    try:
        mirror.load(state)
        tasks: List[Task] = []
        seq = 0  # dispatch sequence id (deterministic fault matching)
        n_batches = n_batched = 0

        def get_result(fut):
            try:
                return fut.get(timeout=task_timeout)
            except mp.TimeoutError:
                dead = pool.dead_workers()
                diagnosis = (
                    f"{dead} worker(s) died (pool broken)"
                    if dead
                    else "workers alive but task hung"
                )
                if not owns:
                    # Condemn the warm pool: a hung worker could
                    # keep mutating the shared mirror.  The session
                    # respawns a fresh pool on its next run.
                    pool.terminate()
                raise RuntimeError(
                    "phase-2 task did not complete within "
                    f"{task_timeout:.1f}s: {diagnosis}; use the "
                    "'supervised' backend for retry/recovery"
                ) from None

        def commit(parent, children, task_cost, log_entry):
            idx = len(tasks)
            tasks.append(Task(cost=task_cost, parent=parent))
            if log_entry is not None:
                state.profile.log_task(*log_entry)
            for c, nd in children:
                pending.append((idx, c, nd))

        # (parent_index, color, nodes) items; breadth-first dispatch
        pending = [(-1, c, nd) for c, nd in initial]
        while pending:
            generation = pending
            pending = []
            if policy is not None:
                entries = _plan_tuple_batches(generation, policy)
            else:
                entries = [("single", t) for t in generation]
            futures = []
            for kind, payload in entries:
                if kind == "batch":
                    specs = [(c, nd) for _p, c, nd in payload]
                    member_seqs = list(range(seq, seq + len(specs)))
                    seq += len(specs)
                    futures.append(
                        (
                            [p for p, _c, _nd in payload],
                            pool.apply_async(
                                _exec_batch_task, (specs, member_seqs)
                            ),
                        )
                    )
                    n_batches += 1
                    n_batched += len(specs)
                else:
                    parent, c, nd = payload
                    futures.append(
                        (
                            parent,
                            pool.apply_async(_exec_task, (c, nd, seq)),
                        )
                    )
                    seq += 1
            for parent, fut in futures:
                if isinstance(parent, list):
                    for p, (children, task_cost, log_entry) in zip(
                        parent, get_result(fut)
                    ):
                        commit(p, children, task_cost, log_entry)
                else:
                    children, task_cost, log_entry = get_result(fut)
                    commit(parent, children, task_cost, log_entry)

        # copy shared results back into the state
        mirror.flush(state)
        state.trace.task_dag(phase, tasks, queue_k=queue_k)
        state.profile.bump("recur_tasks", len(tasks))
        if n_batches:
            state.profile.bump("phase2_batches", n_batches)
            state.profile.bump("phase2_batched_tasks", n_batched)
        return len(tasks)
    finally:
        if owns:
            pool.terminate()
            mirror.close()
