"""GIL-free execution: phase-2 tasks on worker *processes*.

The calibration note for this reproduction says it plainly: "GIL
blocks shared-memory parallel BFS".  Threads cannot run the paper's
algorithms in parallel under CPython, but processes sharing their
mutable state through :mod:`multiprocessing.shared_memory` can — the
``Color``/``mark``/``labels`` arrays live in a shared segment, worker
processes execute Recur-FWBW tasks against them exactly as the
paper's OpenMP threads would, and the disjoint-partition property
(tasks own disjoint colours) provides the same race freedom.

Scope: the task-parallel phase 2 (where the paper's work queue lives).
Phase 1's data-parallel kernels are single large vectorized NumPy
calls, which already release the GIL internally where it matters.

Requires a ``fork`` start method (the read-only CSR graph is inherited
copy-on-write; only the mutable arrays use explicit shared memory).
On this repo's single-core CI box the backend yields no speedup — the
point is that the *code path* is real and tested, not simulated.
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing import shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["run_recur_phase_processes", "fork_available"]

# Globals inherited by forked workers (set immediately before fork).
_WORKER_CTX: dict = {}


def fork_available() -> bool:
    """True when the 'fork' start method exists (POSIX)."""
    return "fork" in mp.get_all_start_methods()


def _shm_array(shape, dtype, init: np.ndarray, registry: list):
    """Create a shared segment backing a copy of ``init``.

    The segment is appended to ``registry`` *before* anything else can
    fail, so the caller's ``finally`` block always sees (and unlinks)
    every segment that was actually created — an exception between
    creation and registration would otherwise leak it until reboot.
    """
    shm = shared_memory.SharedMemory(create=True, size=max(init.nbytes, 1))
    registry.append(shm)
    arr = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
    arr[:] = init
    return arr


def _exec_task(
    color_value: int,
    nodes: Optional[np.ndarray],
    seq: int = -1,
    attempt: int = 0,
    colors: Optional[Tuple[int, int, int]] = None,
):
    """Run one Recur-FWBW task inside a worker process.

    Reads/writes the shared arrays set up in ``_WORKER_CTX``; returns
    ``(children, task_cost, log_entry)`` to the master.

    ``seq`` is the dispatcher-assigned sequence id (used only to match
    injected faults deterministically), ``attempt`` the retry count,
    and ``colors`` an optional master-allocated ``(cfw, cbw, cscc)``
    triple — the supervisor pre-allocates it so that after a mid-task
    worker death it knows exactly which colours may have leaked into
    the shared array and can repair the partition before retrying.
    """
    ctx = _WORKER_CTX
    g = ctx["graph"]
    color: np.ndarray = ctx["color"]
    mark: np.ndarray = ctx["mark"]
    labels: np.ndarray = ctx["labels"]
    phase_of: np.ndarray = ctx["phase_of"]
    scc_counter = ctx["scc_counter"]
    color_counter = ctx["color_counter"]
    cost = ctx["cost"]
    phase_id = ctx["phase_id"]
    faults = ctx.get("faults")

    from .. import kernels

    backend = ctx.get("kernel_backend")
    if backend is not None:
        # Fork inheritance already carries the parent's choice; setting
        # it explicitly keeps the worker honest even if the pool ever
        # re-execs instead of forking.
        kernels.set_backend(backend)
    dfs_collect_colored = kernels.dfs_collect_colored

    if faults is not None:
        faults.fire("task", seq, stage="pre", attempt=attempt)

    c = color_value
    if nodes is None:
        candidates = np.flatnonzero(color == c)
        select_cost = cost.stream(nodes=color.shape[0])
    else:
        candidates = nodes[color[nodes] == c]
        select_cost = cost.stream(nodes=nodes.size)
    if candidates.size == 0:
        return [], select_cost, None

    pivot = int(candidates[0])  # deterministic within a task
    if colors is None:
        # Skip c while allocating: the BW transition map {c: cbw,
        # cfw: cscc} needs its targets distinct from its sources
        # (kernel-layer contract; see recur_fwbw_task).
        with color_counter.get_lock():
            fresh = []
            nxt = color_counter.value
            while len(fresh) < 3:
                if nxt != c:
                    fresh.append(nxt)
                nxt += 1
            color_counter.value = nxt
        cfw, cbw, cscc = fresh
    else:
        cfw, cbw, cscc = colors

    fw_collected, fw_edges = dfs_collect_colored(
        g.indptr, g.indices, pivot, {c: cfw}, color
    )
    bw_collected, bw_edges = dfs_collect_colored(
        g.in_indptr, g.in_indices, pivot, {c: cbw, cfw: cscc}, color
    )
    if faults is not None:
        # "mid": the partition is recoloured but the SCC not committed.
        faults.fire("task", seq, stage="mid", attempt=attempt)
    scc_nodes = np.asarray(bw_collected[cscc], dtype=np.int64)
    with scc_counter.get_lock():
        sid = scc_counter.value
        scc_counter.value += 1
    labels[scc_nodes] = sid
    mark[scc_nodes] = True
    color[scc_nodes] = -1  # DONE_COLOR
    phase_of[scc_nodes] = phase_id
    if faults is not None and faults.poison("task", seq, attempt):
        # Corrupt the committed label write: detach the pivot from its
        # SCC-mates (or merge a singleton into a foreign SCC) — wrong
        # either way, and only a label-level verifier can tell.
        labels[pivot] = sid + 1 if sid == 0 else sid - 1

    fw_all = np.asarray(fw_collected[cfw], dtype=np.int64)
    fw_only = fw_all[color[fw_all] == cfw]
    bw_only = np.asarray(bw_collected[cbw], dtype=np.int64)
    remain = candidates[color[candidates] == c]
    visited = fw_all.size + bw_only.size + scc_nodes.size
    task_cost = select_cost + cost.dfs(
        nodes=visited, edges=fw_edges + bw_edges
    )
    children = [
        (child_color, child_nodes if nodes is not None else None)
        for child_color, child_nodes in (
            (c, remain),
            (cfw, fw_only),
            (cbw, bw_only),
        )
        if child_nodes.size
    ]
    log_entry = (
        int(scc_nodes.size),
        int(fw_only.size),
        int(bw_only.size),
        int(remain.size),
    )
    if faults is not None:
        # "post": SCC committed; the children are lost with the worker.
        faults.fire("task", seq, stage="post", attempt=attempt)
    return children, task_cost, log_entry


def _dead_workers(pool) -> int:
    """Count dead worker processes in a :class:`multiprocessing.Pool`."""
    procs = getattr(pool, "_pool", None) or []
    return sum(1 for p in procs if not p.is_alive())


def run_recur_phase_processes(
    state,
    initial: Sequence[Tuple[int, Optional[np.ndarray]]],
    *,
    num_workers: int = 2,
    queue_k: int = 1,
    phase: str = "recur_fwbw",
    task_timeout: float | None = 120.0,
) -> int:
    """Drain the phase-2 queue with real worker processes.

    Semantics match the serial/threads drivers in
    :mod:`repro.core.recurfwbw` (and the spawn tree is recorded the
    same way); the mutable state lives in shared memory for the
    duration and is copied back at the end.

    ``task_timeout`` bounds every result wait: a worker that dies or
    hangs mid-task would otherwise leave ``fut.get()`` blocked forever
    (``multiprocessing.Pool`` silently respawns crashed workers but
    never completes their lost results).  On expiry the run fails with
    a diagnosis of the pool state instead of deadlocking; the
    supervised backend (:mod:`repro.runtime.supervisor`) builds
    retry/degradation on top of this guard.
    """
    if not fork_available():  # pragma: no cover - non-POSIX only
        raise RuntimeError("process backend requires the 'fork' start method")
    from ..core.state import PHASE_RECUR
    from .trace import Task

    n = state.num_nodes
    shms: list = []
    try:
        color = _shm_array((n,), np.int64, state.color, shms)
        mark = _shm_array((n,), np.bool_, state.mark, shms)
        labels = _shm_array((n,), np.int64, state.labels, shms)
        phase_of = _shm_array((n,), np.int8, state.phase_of, shms)
        scc_counter = mp.Value("q", state.num_sccs)
        color_counter = mp.Value("q", int(state.color_watermark()))

        # Arm the fork-inherited context, then fork the pool.  A
        # globally installed fault plan (faults.install_plan) rides
        # along; None in normal runs keeps the hook zero-overhead.
        from . import faults as _faults
        from ..kernels import get_backend

        _WORKER_CTX.clear()
        _WORKER_CTX.update(
            graph=state.graph,
            color=color,
            mark=mark,
            labels=labels,
            phase_of=phase_of,
            scc_counter=scc_counter,
            color_counter=color_counter,
            cost=state.cost,
            phase_id=PHASE_RECUR,
            faults=_faults.active_plan(),
            kernel_backend=get_backend(),
        )
        # build the transpose BEFORE forking so workers share it
        state.graph.in_indptr

        ctx = mp.get_context("fork")
        tasks: List[Task] = []
        seq = 0  # dispatch sequence id (deterministic fault matching)
        with ctx.Pool(processes=num_workers) as pool:
            # (parent_index, color, nodes) items; breadth-first dispatch
            pending = [(-1, c, nd) for c, nd in initial]
            while pending:
                batch = pending
                pending = []
                futures = []
                for parent, c, nd in batch:
                    futures.append(
                        (parent, pool.apply_async(_exec_task, (c, nd, seq)))
                    )
                    seq += 1
                for parent, fut in futures:
                    try:
                        children, task_cost, log_entry = fut.get(
                            timeout=task_timeout
                        )
                    except mp.TimeoutError:
                        dead = _dead_workers(pool)
                        diagnosis = (
                            f"{dead} worker(s) died (pool broken)"
                            if dead
                            else "workers alive but task hung"
                        )
                        raise RuntimeError(
                            "phase-2 task did not complete within "
                            f"{task_timeout:.1f}s: {diagnosis}; use the "
                            "'supervised' backend for retry/recovery"
                        ) from None
                    idx = len(tasks)
                    tasks.append(Task(cost=task_cost, parent=parent))
                    if log_entry is not None:
                        state.profile.log_task(*log_entry)
                    for c, nd in children:
                        pending.append((idx, c, nd))

        # copy shared results back into the state
        state.color[:] = color
        state.mark[:] = mark
        state.labels[:] = labels
        state.phase_of[:] = phase_of
        state.sync_counters(
            int(scc_counter.value), int(color_counter.value)
        )
        state.trace.task_dag(phase, tasks, queue_k=queue_k)
        state.profile.bump("recur_tasks", len(tasks))
        return len(tasks)
    finally:
        _WORKER_CTX.clear()
        for shm in shms:
            shm.close()
            shm.unlink()
