"""Cost model: converting counted operations into simulated work units.

Everything the simulator reports is expressed in **edge-units**: the
cost of one edge inspection by a streaming kernel (a vectorized scan or
a sequential array walk over CSR).  The constants below convert other
operations into that currency.  They are calibration constants, not
measurements — chosen so the *shape* of the paper's results holds
(DESIGN.md §5) — and every one of them is centralized here so the
ablation benches and the calibration tests can reason about them.

Rationale for the defaults:

``DFS_EDGE`` / ``DFS_NODE`` (8.0):
    Tarjan's DFS chases pointers in node order with no locality; on the
    paper's multi-million-node graphs every edge hop is effectively a
    DRAM-latency stall, while streaming kernels read CSR contiguously
    at bandwidth rates.  An 8x penalty per touched element is at the
    low end of the measured random-vs-stream DRAM gap and is the value
    that calibrates the simulated Figure 6 to the paper's reported
    envelope (geometric-mean speedup ~14x at 32 threads, Section 5);
    the calibration sweep lives in ``tests/integration`` and the
    sensitivity of the headline numbers to this constant is reported
    in EXPERIMENTS.md.

``STREAM_NODE`` (1.0):
    Node-indexed array touches in vectorized sweeps cost about one
    edge-unit.

``TRAVERSAL_BFS_EDGE`` (1.25):
    The level-synchronous BFS pays for frontier compaction and atomics
    on top of the stream cost (Section 4.2 cites the "larger fixed
    cost" of the parallel BFS).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs in edge-units (see module docstring)."""

    #: streaming edge inspection — the unit.
    stream_edge: float = 1.0
    #: streaming node touch (degree read, mask update).
    stream_node: float = 1.0
    #: DFS edge hop (pointer chasing, cache-hostile).
    dfs_edge: float = 8.0
    #: DFS node visit (stack push/pop, lowlink bookkeeping).
    dfs_node: float = 8.0
    #: parallel-BFS edge relaxation (frontier compaction + CAS).
    bfs_edge: float = 1.25
    #: parallel-BFS node visit.
    bfs_node: float = 1.25

    def stream(self, nodes: float = 0.0, edges: float = 0.0) -> float:
        """Work of a streaming sweep touching ``nodes`` + ``edges``."""
        return self.stream_node * nodes + self.stream_edge * edges

    def dfs(self, nodes: float = 0.0, edges: float = 0.0) -> float:
        """Work of a sequential DFS visiting ``nodes`` + ``edges``."""
        return self.dfs_node * nodes + self.dfs_edge * edges

    def bfs(self, nodes: float = 0.0, edges: float = 0.0) -> float:
        """Work of one parallel-BFS level over ``nodes`` + ``edges``."""
        return self.bfs_node * nodes + self.bfs_edge * edges


DEFAULT_COST_MODEL = CostModel()
