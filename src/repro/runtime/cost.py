"""Cost model: converting counted operations into simulated work units.

Everything the simulator reports is expressed in **edge-units**: the
cost of one edge inspection by a streaming kernel (a vectorized scan or
a sequential array walk over CSR).  The constants below convert other
operations into that currency.  They are calibration constants, not
measurements — chosen so the *shape* of the paper's results holds
(DESIGN.md §5) — and every one of them is centralized here so the
ablation benches and the calibration tests can reason about them.

Rationale for the defaults:

``DFS_EDGE`` / ``DFS_NODE`` (8.0):
    Tarjan's DFS chases pointers in node order with no locality; on the
    paper's multi-million-node graphs every edge hop is effectively a
    DRAM-latency stall, while streaming kernels read CSR contiguously
    at bandwidth rates.  An 8x penalty per touched element is at the
    low end of the measured random-vs-stream DRAM gap and is the value
    that calibrates the simulated Figure 6 to the paper's reported
    envelope (geometric-mean speedup ~14x at 32 threads, Section 5);
    the calibration sweep lives in ``tests/integration`` and the
    sensitivity of the headline numbers to this constant is reported
    in EXPERIMENTS.md.

``STREAM_NODE`` (1.0):
    Node-indexed array touches in vectorized sweeps cost about one
    edge-unit.

``TRAVERSAL_BFS_EDGE`` (1.25):
    The level-synchronous BFS pays for frontier compaction and atomics
    on top of the stream cost (Section 4.2 cites the "larger fixed
    cost" of the parallel BFS).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "MemoryModel",
    "DEFAULT_MEMORY_MODEL",
]


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs in edge-units (see module docstring)."""

    #: streaming edge inspection — the unit.
    stream_edge: float = 1.0
    #: streaming node touch (degree read, mask update).
    stream_node: float = 1.0
    #: DFS edge hop (pointer chasing, cache-hostile).
    dfs_edge: float = 8.0
    #: DFS node visit (stack push/pop, lowlink bookkeeping).
    dfs_node: float = 8.0
    #: parallel-BFS edge relaxation (frontier compaction + CAS).
    bfs_edge: float = 1.25
    #: parallel-BFS node visit.
    bfs_node: float = 1.25

    def stream(self, nodes: float = 0.0, edges: float = 0.0) -> float:
        """Work of a streaming sweep touching ``nodes`` + ``edges``."""
        return self.stream_node * nodes + self.stream_edge * edges

    def dfs(self, nodes: float = 0.0, edges: float = 0.0) -> float:
        """Work of a sequential DFS visiting ``nodes`` + ``edges``."""
        return self.dfs_node * nodes + self.dfs_edge * edges

    def bfs(self, nodes: float = 0.0, edges: float = 0.0) -> float:
        """Work of one parallel-BFS level over ``nodes`` + ``edges``."""
        return self.bfs_node * nodes + self.bfs_edge * edges


DEFAULT_COST_MODEL = CostModel()


@dataclass(frozen=True)
class MemoryModel:
    """Peak-memory estimate of one SCC run, for admission control.

    The serving layer (:mod:`repro.service.govern`) must decide whether
    to *admit* a request **before** loading the graph it names — an
    estimate that is cheap, conservative, and derived from the same
    structural facts the rest of the repo builds on:

    * the CSR arrays are ``int64`` throughout (``graph.csr``), so a
      graph costs ``8 * (nodes + 1 + edges)`` bytes, and every method
      that traverses backwards also materializes the transpose (same
      size again);
    * :class:`~repro.core.state.SCCState` keeps ``color``/``labels``
      (int64), ``mark`` (bool) and ``phase_of`` (int8) — 18 bytes per
      node — and the shared-memory mirror of a process backend doubles
      exactly that set;
    * each forked worker costs a near-constant interpreter overhead on
      top of the copy-on-write graph pages.

    ``headroom`` is a multiplicative safety factor covering transient
    peaks the static inventory misses (frontier buffers, trim
    scratch, checkpoint serialization).  Estimates are deliberately
    conservative: the admission check refuses a request the budget
    *might not* cover, because the alternative is the OOM killer.
    """

    #: bytes per CSR index (int64 throughout — see graph.csr).
    index_bytes: int = 8
    #: SCCState bytes per node (color 8 + labels 8 + mark 1 + phase 1).
    state_bytes_per_node: float = 18.0
    #: shared-memory mirror bytes per node (same array set as the state).
    mirror_bytes_per_node: float = 18.0
    #: cached effective-degree arrays (out + in, int64 each).
    degree_bytes_per_node: float = 16.0
    #: per-worker interpreter overhead of a forked pool (bytes).
    worker_bytes: float = 48e6
    #: safety factor over the static inventory.
    headroom: float = 1.25

    def graph_bytes(self, nodes: int, edges: int) -> float:
        """Bytes of one CSR (indptr + indices)."""
        return self.index_bytes * (nodes + 1 + edges)

    def session_bytes(
        self, nodes: int, edges: int, *, processes: bool = False
    ) -> float:
        """Bytes a warm session pins: graph + transpose + degrees
        (+ the shared mirror once a process backend has run)."""
        total = 2 * self.graph_bytes(nodes, edges)
        total += self.degree_bytes_per_node * nodes
        if processes:
            total += self.mirror_bytes_per_node * nodes
        return total

    def run_bytes(
        self,
        nodes: int,
        edges: int,
        *,
        backend: str = "serial",
        num_workers: int = 0,
    ) -> float:
        """Conservative peak bytes of one run on a cold session."""
        processes = backend in ("processes", "supervised")
        total = self.session_bytes(nodes, edges, processes=processes)
        total += self.state_bytes_per_node * nodes
        if processes:
            total += self.worker_bytes * max(num_workers, 0)
        return total * self.headroom


DEFAULT_MEMORY_MODEL = MemoryModel()
