"""Execution profiles: what one algorithm run produced and recorded.

An :class:`ExecutionProfile` bundles the work trace (for the simulated
machine), measured wall-clock per phase (real Python time, reported for
transparency but *not* used for the paper's figures — see DESIGN.md),
named counters (trim iterations, WCC iterations, FW-BW trials, ...),
and the per-task log that reproduces the Section 3.3 listing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from .trace import WorkTrace

__all__ = ["TaskLogEntry", "ExecutionProfile"]


@dataclass(frozen=True)
class TaskLogEntry:
    """One Recur-FWBW task execution (the Section 3.3 log columns)."""

    #: size of the SCC identified by this task.
    scc: int
    #: size of the forward-only partition produced.
    fw: int
    #: size of the backward-only partition produced.
    bw: int
    #: size of the unreached remainder partition.
    remain: int


@dataclass
class ExecutionProfile:
    """Everything recorded while running one SCC algorithm once."""

    trace: WorkTrace = field(default_factory=WorkTrace)
    #: measured wall-clock seconds per phase (diagnostic only).
    wall_times: Dict[str, float] = field(default_factory=dict)
    #: named counters: trim_iterations, wcc_iterations, fwbw_trials, ...
    counters: Dict[str, float] = field(default_factory=dict)
    #: per-task log of the recursive FW-BW phase (Section 3.3).
    task_log: List[TaskLogEntry] = field(default_factory=list)

    @contextmanager
    def wall_timer(self, phase: str) -> Iterator[None]:
        """Accumulate wall-clock time for ``phase`` around a block."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.wall_times[phase] = self.wall_times.get(phase, 0.0) + dt

    def bump(self, counter: str, amount: float = 1.0) -> None:
        self.counters[counter] = self.counters.get(counter, 0.0) + amount

    def log_task(self, scc: int, fw: int, bw: int, remain: int) -> None:
        self.task_log.append(TaskLogEntry(scc=scc, fw=fw, bw=bw, remain=remain))
