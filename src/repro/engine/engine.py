"""The unified execution engine: load once, run many.

:class:`Engine` is the serving front end the ROADMAP's production
north star asks for.  It owns a cache of :class:`~repro.engine.session.
GraphSession` objects keyed by graph fingerprint (and by load source,
so a manifest that names the same graph twice never reloads it),
resolves executors through the one :mod:`repro.engine.backends`
registry, and exposes:

* :meth:`Engine.run` — one SCC detection over a warm session,
  returning the library's existing :class:`~repro.core.result.
  SCCResult`;
* :meth:`Engine.run_many` — a manifest of jobs executed over warm
  sessions with per-job error isolation (see :mod:`repro.engine.
  batch`), the ``repro batch`` CLI's engine.

Determinism: by default the engine canonicalizes result labels (SCC
ids ordered by first node occurrence).  The SCC *partition* of a graph
is unique, so canonical labels are bit-identical across every backend
and across cold vs. warm sessions — the property the engine parity
gate pins.  Pass ``canonical=False`` to get each algorithm's raw label
order (bit-identical to calling the method functions directly).
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.result import SCCResult, canonical_labels
from ..graph import CSRGraph
from ..ioutil import crc32_chunks
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from .backends import get_executor
from .session import GraphSession, graph_fingerprint

__all__ = ["Engine", "UpdateReport"]

#: methods that accept neither seed nor backend options.
_SEQUENTIAL = ("tarjan", "kosaraju", "gabow")


def _bound_plan(plan, expiry: float, budget: float):
    """Wrap every phase of ``plan`` with a deadline check.

    The check runs at phase *entry* — cooperative, thread-safe, no
    signals — so a run whose earlier phases consumed the budget fails
    typed before starting the next phase instead of overshooting by a
    whole phase.  In-phase enforcement comes from the deadline-aware
    phase-2 executors via ``ctx["deadline"]``.
    """
    import dataclasses

    from ..errors import PhaseTimeoutError

    def bound(ph):
        inner = ph.fn

        def fn(state, ctx, _inner=inner, _name=ph.name):
            if time.monotonic() >= expiry:
                raise PhaseTimeoutError(_name, budget)
            return _inner(state, ctx)

        return dataclasses.replace(ph, fn=fn)

    return [bound(ph) for ph in plan]


def _method2_labels(g: CSRGraph) -> np.ndarray:
    """From-scratch labels via the paper's Method-2 pipeline.

    The recompute hook handed to :class:`~repro.engine.dynamic.
    DynamicSCC` — the partition is unique, so any correct method works,
    and the pipeline beats the serial Tarjan fallback on the large
    graphs where rebuilds actually hurt.
    """
    from ..core.api import strongly_connected_components

    return strongly_connected_components(g, "method2").labels


@dataclass
class UpdateReport:
    """What one :meth:`Engine.update` batch did to a mutable session.

    ``applied`` says the *graph* changed (at least one insert/delete
    was not an idempotent no-op); ``changed`` says the *labels* did.
    ``labels_crc32`` is the CRC of the canonicalized maintained labels
    — directly comparable to the CRC of a from-scratch run's canonical
    labels, which is exactly how the equivalence tests and the service
    certificates use it.
    """

    fingerprint: int
    version: int
    applied: bool
    changed: bool
    compacted: bool
    inserts: int
    deletes: int
    num_components: int
    labels_crc32: int
    stats: dict
    #: delta-log size relative to the base edge count *after* this
    #: batch — the compaction-debt signal streaming consumers watch to
    #: decide when to degrade to a snapshot recompute.
    log_ratio: float = 0.0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class Engine:
    """Warm-session executor for every SCC method in the library.

    Parameters
    ----------
    backend:
        Default phase-2 executor name (see
        :func:`repro.engine.backends.backend_names`).
    num_workers:
        Default worker count for the non-serial executors.
    cost:
        Cost model attached to new sessions (overridable per run).
    canonical:
        Canonicalize result labels (default True; see module docstring).
    max_sessions:
        Session-cache capacity; least-recently-used sessions beyond it
        are closed and evicted.
    integrity:
        Seal session arrays into block-CRC sidecars
        (:mod:`repro.integrity.checksums`) and verify them at session
        borrow, at every pipeline phase boundary, and before a result
        is returned.  A mismatch raises
        :class:`~repro.errors.IntegrityError` (exit 20); the serving
        layer answers it with :meth:`quarantine`.
    """

    def __init__(
        self,
        *,
        backend: str = "serial",
        num_workers: int = 2,
        cost: CostModel = DEFAULT_COST_MODEL,
        canonical: bool = True,
        max_sessions: int = 8,
        integrity: bool = False,
    ) -> None:
        get_executor(backend)  # validate eagerly
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.backend = backend
        self.num_workers = num_workers
        self.cost = cost
        self.canonical = canonical
        self.max_sessions = max_sessions
        self.integrity = integrity
        self.quarantines = 0
        self._sessions: "OrderedDict[int, GraphSession]" = OrderedDict()
        self._by_source: Dict[tuple, int] = {}
        self._closed = False

    # -- session management ---------------------------------------------
    def session(
        self, graph: Union[CSRGraph, GraphSession], *, name: str | None = None
    ) -> GraphSession:
        """The (cached) session for ``graph``, keyed by fingerprint."""
        self._check_open()
        if isinstance(graph, GraphSession):
            return graph
        key = graph_fingerprint(graph)
        sess = self._sessions.get(key)
        if sess is None or sess.closed:
            sess = GraphSession(
                graph, name=name, cost=self.cost, integrity=self.integrity
            )
            self._admit(key, sess)
        else:
            self._sessions.move_to_end(key)
        return sess

    def load(
        self,
        source: str,
        *,
        scale: float | None = None,
        seed: int | None = None,
        on_error: str = "strict",
        name: str | None = None,
    ) -> GraphSession:
        """Load a graph source into a session (cached by source).

        ``source`` is a surrogate dataset name (see ``repro datasets``)
        or an edge-list path.  Loading the same source again returns
        the existing warm session — *after* checking the file has not
        changed on disk (mtime + size): a rewritten edge list drops
        the stale mapping and reloads instead of silently serving the
        bytes it used to contain.  Generated datasets are immutable by
        construction and skip the check.
        """
        self._check_open()
        from ..generators import DATASETS, generate

        is_dataset = source in DATASETS
        skey = (source, scale, seed, on_error)
        entry = self._by_source.get(skey)
        if entry is not None:
            fp, token = entry
            sess = self._sessions.get(fp)
            if sess is not None and not sess.closed:
                fresh = None if is_dataset else self._source_token(source)
                # an unstat-able source (deleted, permissions) is
                # treated as unchanged: keep serving the warm session.
                if token is None or fresh is None or fresh == token:
                    self._sessions.move_to_end(fp)
                    return sess
                del self._by_source[skey]

        t0 = time.perf_counter()
        if is_dataset:
            token = None
            g = generate(source, scale=scale, seed=seed).graph
        else:
            from ..graph import read_edge_list

            # stat *before* reading: if the file changes mid-read, the
            # stored token is already stale and the next load reloads.
            token = self._source_token(source)
            g = read_edge_list(source, on_error=on_error)
        load_seconds = time.perf_counter() - t0
        key = graph_fingerprint(g)
        sess = self._sessions.get(key)
        if sess is None or sess.closed:
            sess = GraphSession(
                g,
                name=name or source,
                cost=self.cost,
                load_seconds=load_seconds,
                integrity=self.integrity,
            )
            self._admit(key, sess)
        else:
            self._sessions.move_to_end(key)
        self._by_source[skey] = (key, token)
        return sess

    @staticmethod
    def _source_token(source: str) -> Optional[Tuple[int, int]]:
        """Freshness token ``(st_mtime_ns, st_size)`` for a file path,
        or ``None`` when it cannot be stat'ed."""
        try:
            st = os.stat(source)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def _admit(self, key: int, sess: GraphSession) -> None:
        self._sessions[key] = sess
        self._sessions.move_to_end(key)
        while len(self._sessions) > self.max_sessions:
            _, evicted = self._sessions.popitem(last=False)
            evicted.close()

    def set_max_sessions(self, max_sessions: int) -> int:
        """Rebalance the session-cache capacity at runtime.

        The sharded serving tier calls this when a worker slot is lost
        for good and the survivors inherit its share of the global
        session budget (and, symmetrically, could shrink it back).
        Shrinking evicts LRU sessions down to the new capacity;
        returns how many were evicted.
        """
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        evicted = 0
        while len(self._sessions) > self.max_sessions:
            _, sess = self._sessions.popitem(last=False)
            sess.close()
            evicted += 1
        return evicted

    def evict_lru(self, count: int = 1) -> int:
        """Close and drop up to ``count`` least-recently-used sessions.

        The memory governor's pressure-relief hook; returns how many
        sessions were actually evicted.  The fingerprint and source
        caches self-heal: a later request for an evicted graph loads a
        fresh session.
        """
        evicted = 0
        while self._sessions and evicted < count:
            _, sess = self._sessions.popitem(last=False)
            sess.close()
            evicted += 1
        return evicted

    def quarantine(self, fingerprint: int) -> bool:
        """Evict one session *because its bytes can no longer be
        trusted* (checksum mismatch, audit disagreement).

        Unlike LRU eviction this also purges every source-cache entry
        pointing at the fingerprint, so the next request for the same
        input rebuilds the session from the original source instead of
        resurrecting the rotten arrays.  Returns True when a session
        was actually quarantined; counted in :attr:`quarantines`.
        """
        sess = self._sessions.pop(fingerprint, None)
        if sess is None:
            return False
        sess.close()
        for skey in [
            k
            for k, v in self._by_source.items()
            if v[0] == fingerprint
        ]:
            del self._by_source[skey]
        self.quarantines += 1
        return True

    def estimated_bytes(self) -> int:
        """Approximate bytes pinned by every live session."""
        return sum(s.estimated_bytes() for s in self._sessions.values())

    @property
    def sessions(self) -> tuple:
        """Live sessions, least- to most-recently used."""
        return tuple(self._sessions.values())

    # -- execution ------------------------------------------------------
    def run(
        self,
        target: Union[CSRGraph, GraphSession],
        *,
        method: str = "method2",
        backend: str | None = None,
        num_workers: int | None = None,
        seed: int | None = 0,
        cost: CostModel | None = None,
        supervisor=None,
        canonical: bool | None = None,
        deadline: float | None = None,
        fault_plan=None,
        **method_kwargs,
    ) -> SCCResult:
        """One SCC detection over a (warm) session.

        ``target`` is a graph or an existing session.  ``method`` may
        be any registered algorithm; the paper pipelines ``method1``/
        ``method2`` get the full warm-session treatment (cached
        transpose, shared mirror, persistent worker pool), everything
        else reuses the cached graph.  ``deadline`` bounds the run in
        wall-clock seconds: for the pipelines it is checked at every
        phase boundary and threaded into the deadline-aware phase-2
        executors (cooperative — safe from any thread); expiry raises
        :class:`~repro.errors.PhaseTimeoutError`.  ``fault_plan`` arms
        ``corrupt``-kind faults at the ``"phase"`` site for the
        pipelines — seeded bit flips driven into warm arrays at exact
        phase boundaries, the silent-data-corruption drill the
        integrity sidecars must catch.  Remaining keywords flow to the
        method (``queue_k``, ``pivot_strategy``, ...).
        """
        self._check_open()
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive")
        session = self.session(target)
        session.verify_integrity(context="session:borrow")
        backend = backend if backend is not None else self.backend
        num_workers = (
            num_workers if num_workers is not None else self.num_workers
        )
        canonical = canonical if canonical is not None else self.canonical
        cost = cost if cost is not None else session.cost
        get_executor(backend)  # fail fast on typos, one resolution path

        setup_before = session.stats.setup_seconds()
        was_run = session.stats.runs > 0
        if method in ("method1", "method2"):
            result = self._run_plan(
                session,
                method,
                backend=backend,
                num_workers=num_workers,
                seed=seed,
                cost=cost,
                supervisor=supervisor,
                deadline=deadline,
                fault_plan=fault_plan,
                **method_kwargs,
            )
        else:
            result = self._run_other(
                session,
                method,
                backend=backend,
                num_workers=num_workers,
                seed=seed,
                cost=cost,
                **method_kwargs,
            )
            session.verify_integrity(context="session:return")
        warm = was_run and (
            session.stats.setup_seconds() == setup_before
        )
        session.note_run(warm=warm)
        if canonical:
            result.labels = canonical_labels(result.labels)
        return result

    def _integrity_plan(self, plan, session, state, fault_plan):
        """Wrap every phase with the silent-corruption defenses.

        Two independent jobs share the wrapper because they must agree
        on ordering:

        * ``corrupt``-kind faults at the ``"phase"`` site flip seeded
          bits in warm arrays: ``pre``-stage before the phase's entry
          verification (caught immediately), ``mid``/``post`` after the
          phase's state reseal (caught at the next boundary or the
          final verification) — exactly where real rot lands, between
          the moments anything looks.
        * When the session carries checksum sidecars, a run-local
          sidecar seals the mutable :class:`SCCState` arrays (labels,
          colours) after every phase and re-verifies graph + state
          seals at every phase entry, so corruption never crosses a
          phase boundary undetected.

        Returns ``(wrapped_plan, final_verify)``; ``final_verify``
        runs after the plan completes, before the result escapes.
        """
        import dataclasses

        from ..errors import IntegrityError
        from ..runtime.faults import apply_corruption

        run_cs = None
        if session.checksums is not None:
            from ..integrity import ChecksummedArrays

            run_cs = ChecksummedArrays()
            # seal the fresh state immediately: a flip landing before
            # the first phase must not be absorbed into the baseline.
            run_cs.seal("labels", state.labels)
            run_cs.seal("color", state.color)

        def resolve(name):
            if name in ("labels", "color"):
                return getattr(state, name)
            if name in ("out_degrees", "in_degrees"):
                session.effective_degrees()
            return session.integrity_arrays()[name]

        def corrupt(index, stages):
            if fault_plan is None:
                return
            for spec in fault_plan.corruptions("phase", index):
                if spec.stage in stages:
                    apply_corruption(resolve(spec.array), spec)

        def reseal():
            if run_cs is not None:
                run_cs.seal("labels", state.labels)
                run_cs.seal("color", state.color)

        def verify(context):
            session.verify_integrity(context=context)
            if run_cs is None:
                return
            try:
                run_cs.verify("labels", state.labels, context=context)
                run_cs.verify("color", state.color, context=context)
            except IntegrityError:
                session.stats.integrity_failures += 1
                raise
            session.stats.integrity_verifications += 2

        def wrap(i, ph):
            inner = ph.fn

            def fn(st, ctx, _inner=inner, _i=i, _name=ph.name):
                corrupt(_i, ("pre",))
                verify(f"phase[{_i}]:{_name}")
                out = _inner(st, ctx)
                reseal()
                corrupt(_i, ("mid", "post"))
                return out

            return dataclasses.replace(ph, fn=fn)

        wrapped = [wrap(i, ph) for i, ph in enumerate(plan)]
        return wrapped, (lambda: verify("run:final"))

    def _run_plan(
        self,
        session: GraphSession,
        method: str,
        *,
        backend: str,
        num_workers: int,
        seed: int | None,
        cost: CostModel,
        supervisor,
        deadline: float | None = None,
        fault_plan=None,
        **method_kwargs,
    ) -> SCCResult:
        from ..core.method1 import method1_phases
        from ..core.method2 import method2_phases
        from ..core.phases import run_plan
        from ..core.state import SCCState

        factory = {
            "method1": method1_phases,
            "method2": method2_phases,
        }[method]
        session.ensure_transpose()
        plan = factory(
            backend=backend,
            num_threads=num_workers,
            supervisor=supervisor,
            **method_kwargs,
        )
        ctx: dict = {"session": session}
        if deadline is not None:
            expiry = time.monotonic() + deadline
            plan = _bound_plan(plan, expiry, deadline)
            ctx["deadline"] = expiry
        state = SCCState(session.graph, seed=seed, cost=cost)
        final_verify = None
        if session.checksums is not None or fault_plan is not None:
            plan, final_verify = self._integrity_plan(
                plan, session, state, fault_plan
            )
        run_plan(state, plan, ctx)
        if final_verify is not None:
            final_verify()
        state.check_done()
        return SCCResult(
            labels=state.labels,
            method=method,
            profile=state.profile,
            phase_of=state.phase_of,
        )

    def _run_other(
        self,
        session: GraphSession,
        method: str,
        *,
        backend: str,
        num_workers: int,
        seed: int | None,
        cost: CostModel,
        **method_kwargs,
    ) -> SCCResult:
        import inspect

        from ..core.api import METHODS, strongly_connected_components

        kwargs = dict(method_kwargs)
        kwargs["cost"] = cost
        if method not in _SEQUENTIAL:
            kwargs["seed"] = seed
            runner = METHODS.get(method)
            accepts = (
                set(inspect.signature(runner).parameters)
                if runner is not None
                else set()
            )
            # comparators like "coloring" have no executor knob at all;
            # only forward the backend options where they exist.
            if backend != "serial" and "backend" in accepts:
                kwargs["backend"] = backend
                kwargs["num_threads"] = num_workers
        return strongly_connected_components(
            session.graph, method, **kwargs
        )

    def update(
        self,
        target: Union[str, CSRGraph, GraphSession],
        inserts: Sequence[Tuple[int, int]] = (),
        deletes: Sequence[Tuple[int, int]] = (),
        *,
        compact_ratio: float | None = None,
        damage_threshold: float | None = None,
    ) -> UpdateReport:
        """Apply a batch of edge updates to a (mutable) session.

        ``target`` is a graph, a session, or a loadable source name
        (resolved through :meth:`load`).  The first update against a
        session *promotes* it: one full detection seeds the labels,
        the graph gains a :class:`~repro.graph.delta.DeltaCSR` overlay,
        and a :class:`~repro.engine.dynamic.DynamicSCC` maintainer
        takes over — subsequent batches touch only the affected
        region.  Inserts apply before deletes; both are idempotent
        (inserting a present edge / deleting an absent one is a no-op),
        which is what makes journal replay after a crash convergent.

        After an applied batch the session's version advances, the
        delta log may compact into a fresh base, and the integrity
        sidecars (when armed) are re-sealed over the mutated state and
        re-verified before the report escapes.
        """
        self._check_open()
        if isinstance(target, str):
            session = self.load(target)
        else:
            session = self.session(target)
        session.verify_integrity(context="update:borrow")
        if session.dynamic is None:
            from .dynamic import DEFAULT_DAMAGE_THRESHOLD, DynamicSCC

            base = self.run(session, canonical=False)
            delta = session.make_mutable(compact_ratio=compact_ratio)
            session.dynamic = DynamicSCC(
                delta,
                base.labels,
                damage_threshold=(
                    damage_threshold
                    if damage_threshold is not None
                    else DEFAULT_DAMAGE_THRESHOLD
                ),
                recompute=_method2_labels,
            )
            # the sidecars sealed the frozen base; switch them to the
            # delta state the mutable session now exposes.
            session.reseal_integrity()
        dyn = session.dynamic
        if damage_threshold is not None:
            dyn.damage_threshold = float(damage_threshold)
        before = session.delta.mutations
        i0, d0 = dyn.stats.inserts, dyn.stats.deletes
        changed = dyn.apply(inserts, deletes)
        applied = session.delta.mutations != before
        if applied:
            session.mark_mutated()
        compacted = session.delta.maybe_compact()
        if applied or compacted:
            session.reseal_integrity()
        session.verify_integrity(context="update:return")
        labels = canonical_labels(
            np.ascontiguousarray(dyn.labels, dtype=np.int64)
        )
        return UpdateReport(
            fingerprint=session.fingerprint,
            version=session.version,
            applied=applied,
            changed=changed,
            compacted=compacted,
            inserts=dyn.stats.inserts - i0,
            deletes=dyn.stats.deletes - d0,
            num_components=dyn.num_components,
            labels_crc32=crc32_chunks(labels.tobytes()),
            stats=dyn.stats.to_dict(),
            log_ratio=session.delta.log_ratio,
        )

    def compact(
        self, target: Union[str, CSRGraph, GraphSession]
    ) -> UpdateReport:
        """Fold a mutable session's delta log into a fresh base now.

        The *degrade to snapshot-recompute* escape hatch for sustained
        update streams: when a consumer sees compaction debt
        (:attr:`UpdateReport.log_ratio`) exceed its budget — e.g. a
        compact ratio tuned high for batch work starving a live feed —
        it pays one synchronous snapshot fold here and resumes
        incremental maintenance against a clean base.  Labels are
        unchanged (compaction preserves the graph), so the session
        version does not advance; the integrity sidecars are re-sealed
        over the folded arrays.  A no-op on sessions that are not yet
        mutable or have an empty log.
        """
        self._check_open()
        if isinstance(target, str):
            session = self.load(target)
        else:
            session = self.session(target)
        session.verify_integrity(context="compact:borrow")
        if session.dynamic is None:
            # not yet promoted: an empty update promotes and reports.
            return self.update(session)
        dyn = session.dynamic
        compacted = session.delta.log_size > 0
        if compacted:
            session.delta.compact()
            session.reseal_integrity()
        session.verify_integrity(context="compact:return")
        labels = canonical_labels(
            np.ascontiguousarray(dyn.labels, dtype=np.int64)
        )
        return UpdateReport(
            fingerprint=session.fingerprint,
            version=session.version,
            applied=False,
            changed=False,
            compacted=compacted,
            inserts=0,
            deletes=0,
            num_components=dyn.num_components,
            labels_crc32=crc32_chunks(labels.tobytes()),
            stats=dyn.stats.to_dict(),
            log_ratio=session.delta.log_ratio,
        )

    def run_many(self, jobs, **kwargs):
        """Execute a batch of jobs over warm sessions; see
        :func:`repro.engine.batch.run_batch` for jobs, isolation and
        report semantics."""
        from .batch import run_batch

        return run_batch(self, jobs, **kwargs)

    # -- lifecycle ------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("engine is closed")

    def close(self) -> None:
        """Close every session (pools, shared memory); idempotent."""
        if self._closed:
            return
        self._closed = True
        for sess in self._sessions.values():
            sess.close()
        self._sessions.clear()
        self._by_source.clear()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
