"""Load-once / run-many batch serving over warm graph sessions.

A batch is a manifest of jobs — ``(graph source, method, backend,
kernels, seed, options)`` — executed by one :class:`~repro.engine.
engine.Engine` so that every job against the same graph reuses the
same warm session (graph, transpose, shared mirror, forked pool).

**Per-job error isolation** is the contract that makes this a serving
surface rather than a script: one failing job produces an exit record
(the :class:`~repro.errors.ReproError` taxonomy's typed exit code, or
1 for untyped failures) and the batch *continues*; the report carries
every record plus the session amortization stats.  A batch-level
:class:`~repro.runtime.faults.FaultPlan` can inject failures at the
``"job"`` site (index = job position, ``attempt`` = retry attempt) to
prove the isolation under test — a ``crash`` there is downgraded to
``raise`` so chaos drills don't take the whole batch process down.

Three hardening knobs from the service layer also apply per job:

* ``BatchJob.timeout`` bounds one job in wall-clock seconds (SIGALRM
  in the main thread, plus the engine's cooperative phase deadline);
* ``run_batch(..., retry=RetryPolicy(...))`` retries *transient* job
  failures with backoff (``JobRecord.attempts`` records the count);
* SIGTERM/SIGINT during a batch stops admitting jobs: the in-flight
  job finishes, the remainder is marked ``shed`` (exit code 17), and
  the report is still returned — so ``--report`` publishes atomically.

The ``repro batch`` CLI subcommand is a thin wrapper over
:func:`load_manifest` + :func:`run_batch`.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..errors import ReproError, ServiceOverloadError, exit_code_for

__all__ = [
    "BatchJob",
    "JobRecord",
    "BatchReport",
    "load_manifest",
    "run_batch",
]


@dataclass(frozen=True)
class BatchJob:
    """One unit of batch work.

    ``graph`` is a surrogate dataset name or an edge-list path (the
    engine deduplicates sessions by source and by fingerprint, so
    repeating a graph across jobs costs one load).  ``options`` carries
    extra method keywords (``queue_k``, ``pivot_strategy``, ...).
    """

    graph: str
    method: str = "method2"
    backend: str = "serial"
    kernels: Optional[str] = None
    seed: int = 0
    scale: Optional[float] = None
    workers: int = 2
    on_error: str = "strict"
    #: per-job fault plan string (tests/demos).  ``corrupt`` specs rot
    #: the warm session's arrays before the run (the integrity drill);
    #: any other kind forces the supervised backend, exactly like
    #: ``repro scc --fault-plan``.
    fault_plan: Optional[str] = None
    #: wall-clock budget for this job, seconds (None = unbounded).
    timeout: Optional[float] = None
    #: certification level for the result ("crc", "sample", "full";
    #: None = no certificate) — see :func:`repro.integrity.certify_result`.
    certify: Optional[str] = None
    options: dict = field(default_factory=dict)
    label: Optional[str] = None

    @classmethod
    def from_dict(cls, d: dict) -> "BatchJob":
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(d) - known)
        if unknown:
            raise ValueError(
                f"unknown batch-job key(s) {unknown}; known: {sorted(known)}"
            )
        if "graph" not in d:
            raise ValueError("batch job needs a 'graph' source")
        return cls(**d)

    def describe(self) -> str:
        return self.label or f"{self.method}@{self.graph}[{self.backend}]"


@dataclass
class JobRecord:
    """What one job did (success or typed failure)."""

    index: int
    label: str
    graph: str
    method: str
    backend: str
    ok: bool = False
    #: 0 on success; the ReproError exit code (or 1) on failure.
    exit_code: int = 0
    error: Optional[str] = None
    error_type: Optional[str] = None
    num_sccs: Optional[int] = None
    largest_scc: Optional[int] = None
    giant_fraction: Optional[float] = None
    seconds: float = 0.0
    #: the serving-economics flag: True when every session artifact
    #: (graph, transpose, pool) was reused.
    warm: bool = False
    session_fingerprint: Optional[int] = None
    #: attempts actually made (> 1 when a retry policy re-ran the job).
    attempts: int = 1
    #: True when the job never ran because the batch was interrupted.
    shed: bool = False
    #: the machine-checkable result certificate, when the job asked
    #: for one (see :func:`repro.integrity.certify_result`).
    certificate: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "graph": self.graph,
            "method": self.method,
            "backend": self.backend,
            "ok": self.ok,
            "exit_code": self.exit_code,
            "error": self.error,
            "error_type": self.error_type,
            "num_sccs": self.num_sccs,
            "largest_scc": self.largest_scc,
            "giant_fraction": self.giant_fraction,
            "seconds": self.seconds,
            "warm": self.warm,
            "session_fingerprint": self.session_fingerprint,
            "attempts": self.attempts,
            "shed": self.shed,
            "certificate": self.certificate,
        }


@dataclass
class BatchReport:
    """Everything one batch run observed."""

    records: List[JobRecord] = field(default_factory=list)
    seconds: float = 0.0
    #: per-session setup/amortization stats, keyed by fingerprint hex.
    sessions: dict = field(default_factory=dict)

    @property
    def jobs_total(self) -> int:
        return len(self.records)

    @property
    def jobs_ok(self) -> int:
        return sum(1 for r in self.records if r.ok)

    @property
    def jobs_failed(self) -> int:
        return self.jobs_total - self.jobs_ok

    @property
    def jobs_shed(self) -> int:
        return sum(1 for r in self.records if r.shed)

    @property
    def first_failure_code(self) -> int:
        """0 when every job succeeded, else the first failure's code."""
        for r in self.records:
            if not r.ok:
                return r.exit_code
        return 0

    @property
    def certificates_issued(self) -> int:
        return sum(1 for r in self.records if r.certificate is not None)

    @property
    def integrity_failures(self) -> int:
        """Jobs that failed with detected corruption (exit 20)."""
        return sum(
            1
            for r in self.records
            if not r.ok and r.error_type == "IntegrityError"
        )

    def to_dict(self) -> dict:
        return {
            "jobs_total": self.jobs_total,
            "jobs_ok": self.jobs_ok,
            "jobs_failed": self.jobs_failed,
            "jobs_shed": self.jobs_shed,
            "certificates_issued": self.certificates_issued,
            "integrity_failures": self.integrity_failures,
            "seconds": self.seconds,
            "sessions": self.sessions,
            "jobs": [r.to_dict() for r in self.records],
        }

    def write(self, path) -> None:
        """Atomically publish the JSON report."""
        from ..ioutil import atomic_path

        with atomic_path(path, suffix=".json") as tmp:
            with open(tmp, "w") as fh:
                json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")


def load_manifest(path) -> List[BatchJob]:
    """Parse a batch manifest: ``{"jobs": [...]}`` or a bare list."""
    with open(path) as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: invalid manifest JSON ({exc})")
    if isinstance(data, dict):
        data = data.get("jobs")
    if not isinstance(data, list) or not data:
        raise ValueError(
            f"{path}: manifest must be a non-empty job list or "
            "{'jobs': [...]}"
        )
    return [BatchJob.from_dict(obj) for obj in data]


@contextmanager
def _interrupt_guard(stop: threading.Event):
    """SIGTERM/SIGINT -> stop admitting jobs (graceful batch drain).

    Main thread only (signals cannot be installed elsewhere; a batch
    driven from a worker thread relies on its caller's handling).  The
    previous handlers are restored on exit, so nested uses — a batch
    inside the serve daemon's drain window — compose.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _stop(signum, frame):
        stop.set()

    old = {
        sig: signal.signal(sig, _stop)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        yield
    finally:
        for sig, handler in old.items():
            signal.signal(sig, handler)


def run_batch(
    engine,
    jobs: Sequence[BatchJob],
    *,
    fault_plan=None,
    retry=None,
    progress: Optional[Callable[[JobRecord], None]] = None,
) -> BatchReport:
    """Execute ``jobs`` on ``engine`` with per-job error isolation.

    Every job runs to an explicit :class:`JobRecord`; a failure is
    captured (typed exit code, message), never propagated, and the
    remaining jobs still run.  ``fault_plan`` fires at the ``"job"``
    site before each attempt of each job body (chaos testing of the
    isolation); ``retry`` is an optional :class:`~repro.service.retry.
    RetryPolicy` re-running *transient* job failures with backoff;
    ``progress`` is called with each finished record (the CLI's
    per-line printer).

    A SIGTERM/SIGINT during the batch finishes the in-flight job,
    marks every remaining job ``shed`` (exit code 17), and returns the
    report normally so callers still publish it atomically.
    """
    report = BatchReport()
    t_batch = time.perf_counter()
    stop = threading.Event()
    with _interrupt_guard(stop):
        for index, job in enumerate(jobs):
            rec = JobRecord(
                index=index,
                label=job.describe(),
                graph=job.graph,
                method=job.method,
                backend=job.backend,
            )
            if stop.is_set():
                shed = ServiceOverloadError(
                    "batch interrupted; job shed", reason="draining"
                )
                rec.shed = True
                rec.attempts = 0
                rec.error = str(shed)
                rec.error_type = type(shed).__name__
                rec.exit_code = exit_code_for(shed)
                report.records.append(rec)
                if progress is not None:
                    progress(rec)
                continue
            t0 = time.perf_counter()

            def attempt_job(attempt: int, _index=index, _job=job):
                if fault_plan is not None:
                    # thread_site: a "crash" here must fail the job,
                    # not kill the batch process.
                    fault_plan.fire(
                        "job",
                        _index,
                        stage="pre",
                        attempt=attempt,
                        thread_site=True,
                    )
                from ..runtime.lifecycle import phase_deadline

                with phase_deadline(_job.timeout, f"job[{_index}]"):
                    return _run_job(
                        engine,
                        _job,
                        attempt=attempt,
                        batch_plan=fault_plan,
                        job_index=_index,
                    )

            try:
                if retry is not None:
                    outcome = retry.execute(attempt_job, key=index)
                    rec.attempts = outcome.attempts
                    fingerprint, result, warm, cert = outcome.value
                else:
                    fingerprint, result, warm, cert = attempt_job(0)
                rec.session_fingerprint = fingerprint
                rec.warm = warm
                rec.certificate = cert
                rec.num_sccs = result.num_sccs
                rec.largest_scc = result.largest_scc_size()
                rec.giant_fraction = result.giant_fraction()
                rec.ok = True
            except ReproError as exc:
                rec.error = str(exc)
                rec.error_type = type(exc).__name__
                rec.exit_code = exit_code_for(exc)
                _note_attempts(rec, exc)
            except Exception as exc:  # untyped: still isolated, code 1
                rec.error = str(exc) or type(exc).__name__
                rec.error_type = type(exc).__name__
                rec.exit_code = 1
                _note_attempts(rec, exc)
            rec.seconds = time.perf_counter() - t0
            report.records.append(rec)
            if progress is not None:
                progress(rec)
    report.seconds = time.perf_counter() - t_batch
    report.sessions = {
        f"{sess.fingerprint:#010x}": dict(
            sess.stats.to_dict(), name=sess.name
        )
        for sess in engine.sessions
    }
    return report


def _note_attempts(rec: JobRecord, exc: BaseException) -> None:
    """Copy the attempt count a retry policy stamped on the failure."""
    outcome = getattr(exc, "__retry_outcome__", None)
    if outcome is not None:
        rec.attempts = outcome.attempts


def _run_job(
    engine,
    job: BatchJob,
    attempt: int = 0,
    batch_plan=None,
    job_index: int = 0,
):
    """One job body: resolve the session, run, return the essentials."""
    from ..errors import IntegrityError
    from ..runtime.faults import FaultPlan, apply_corruption
    from ..runtime.supervisor import SupervisorConfig

    session = engine.load(
        job.graph, scale=job.scale, seed=None, on_error=job.on_error
    )
    backend = job.backend
    supervisor = None
    run_fault_plan = None
    corrupt_specs = []
    if job.fault_plan:
        plan = FaultPlan.parse(job.fault_plan)
        # job-carried specs target *this* job regardless of site/index.
        corrupt_specs += [s for s in plan.specs if s.kind == "corrupt"]
        rest = [s for s in plan.specs if s.kind != "corrupt"]
        if rest:
            # only the supervised backend recovers from the rest.
            backend = "supervised"
            supervisor = SupervisorConfig(fault_plan=FaultPlan(rest))
    if batch_plan is not None:
        # batch-level --fault-plan: "job"-site corruptions pick their
        # job by manifest position; "phase"-site ones (the only legal
        # site for run-owned labels/color) ride along into every job.
        corrupt_specs += list(
            batch_plan.corruptions("job", job_index, attempt)
        )
        corrupt_specs += [
            s
            for s in batch_plan.specs
            if s.kind == "corrupt" and s.site == "phase"
        ]
    if corrupt_specs:
        # "phase"-site corruptions fire at exact phase boundaries
        # inside the engine; anything else rots the warm session right
        # now (attempt < times, so the default 1 lets the retry's
        # rebuilt session through clean).
        phase_specs = [
            s
            for s in corrupt_specs
            if s.site == "phase" and attempt < s.times
        ]
        if phase_specs:
            run_fault_plan = FaultPlan(phase_specs)
        for spec in corrupt_specs:
            if spec.site == "phase" or attempt >= spec.times:
                continue
            if spec.array in ("in_indptr", "in_indices"):
                session.ensure_transpose()
            elif spec.array in ("out_degrees", "in_degrees"):
                session.effective_degrees()
            apply_corruption(session.integrity_arrays()[spec.array], spec)
    runs_before = session.stats.runs
    warm_before = session.stats.warm_runs

    def execute():
        return engine.run(
            session,
            method=job.method,
            backend=backend,
            num_workers=job.workers,
            seed=job.seed,
            supervisor=supervisor,
            # cooperative twin of the SIGALRM job guard: enforced at
            # phase boundaries even off the main thread.
            deadline=job.timeout,
            fault_plan=run_fault_plan,
            **job.options,
        )

    try:
        if job.kernels is not None:
            from ..kernels import use_backend

            with use_backend(job.kernels):
                result = execute()
        else:
            result = execute()
        certificate = None
        if job.certify:
            from ..integrity import certify_result

            certificate = certify_result(
                session.graph,
                result.labels,
                level=job.certify,
                seed=job.seed,
            )
    except IntegrityError:
        # detected corruption: evict the rotten session so a retry —
        # or the next job against this graph — rebuilds from source.
        engine.quarantine(session.fingerprint)
        raise
    warm = (
        session.stats.runs == runs_before + 1
        and session.stats.warm_runs == warm_before + 1
    )
    return session.fingerprint, result, warm, certificate
